//! # jobs — minimal scoped data-parallel pool
//!
//! The workspace builds without a crate registry, so rayon is unavailable.
//! This crate provides the small slice of it that the ACT build pipeline
//! needs: fan a range (or slice) of independent work items out over a fixed
//! number of threads and collect the results **in input order**.
//!
//! Deliberately *work-stealing-free*: there are no per-thread deques to
//! steal from. Load balancing comes from *self-scheduling* instead — workers
//! atomically claim the next unclaimed chunk (an `AtomicUsize` cursor for
//! range jobs, a shared MPMC [`crossbeam::channel`] for owned items), so a
//! thread that finishes a cheap chunk immediately picks up the next one.
//! For the coarse-grained chunks of an index build this captures almost all
//! of work stealing's benefit at a fraction of the complexity.
//!
//! Scoping: [`JobPool`] stores only the thread *count*; each call spawns
//! workers inside [`std::thread::scope`], which lets closures borrow from
//! the caller's stack safely (no `'static` bounds, no `Arc` plumbing) and
//! re-raises worker panics on the caller. Spawn overhead (~tens of µs per
//! worker) is negligible against the multi-millisecond phases it amortizes
//! over; a persistent pool would buy nothing here but unsafe lifetime
//! erasure.
//!
//! Determinism contract: `map`, `map_range`, and `map_owned` return results
//! ordered exactly as the inputs, whatever the execution interleaving, so a
//! parallel build that is per-item deterministic stays *globally*
//! deterministic (the property `ActIndex::build_parallel` relies on for
//! byte-identical arenas).

use parking_lot::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-width data-parallel executor.
///
/// Cheap to create; holds no threads between calls (see module docs).
#[derive(Debug, Clone)]
pub struct JobPool {
    threads: usize,
}

impl JobPool {
    /// A pool that runs jobs on `threads` workers. `threads == 1` executes
    /// every job inline on the caller with zero spawn overhead, so serial
    /// baselines can share the parallel code path.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> JobPool {
        assert!(threads >= 1, "JobPool needs at least one thread");
        JobPool { threads }
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`,
    /// falling back to 1).
    pub fn with_available_parallelism() -> JobPool {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        JobPool::new(threads)
    }

    /// Worker count.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over `range` split into chunks of `chunk` indices.
    ///
    /// Chunks are claimed by an atomic cursor in ascending order, but may
    /// *complete* in any order — `f` must only touch state it owns or that
    /// is safe to share. Blocks until every chunk ran; worker panics
    /// propagate to the caller.
    pub fn run<F>(&self, range: Range<usize>, chunk: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let chunk = chunk.max(1);
        let n = range.len();
        if n == 0 {
            return;
        }
        let num_chunks = n.div_ceil(chunk);
        let workers = self.threads.min(num_chunks);
        let piece = |i: usize| {
            let start = range.start + i * chunk;
            start..(start + chunk).min(range.end)
        };
        if workers == 1 {
            for i in 0..num_chunks {
                f(piece(i));
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= num_chunks {
                        break;
                    }
                    f(piece(i));
                });
            }
        });
    }

    /// Maps `f` over chunk sub-ranges of `range`, returning one result per
    /// chunk **in range order**.
    pub fn map_range<R, F>(&self, range: Range<usize>, chunk: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
        self.run(range, chunk, |r| {
            let start = r.start;
            let out = f(r);
            results.lock().push((start, out));
        });
        let mut results = results.into_inner();
        results.sort_unstable_by_key(|&(start, _)| start);
        results.into_iter().map(|(_, r)| r).collect()
    }

    /// Order-preserving parallel map over a slice (the `par_chunks` shape:
    /// items are processed in chunks sized for ~4 chunks per worker).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let chunk = items.len().div_ceil(self.threads * 4).max(1);
        let per_chunk = self.map_range(0..items.len(), chunk, |r| {
            items[r].iter().map(&f).collect::<Vec<R>>()
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Order-preserving parallel map that *consumes* its items (for jobs
    /// like per-face super-covering merges whose input is taken by value).
    /// Items are distributed through an MPMC channel: idle workers pull the
    /// next item, so a handful of very uneven jobs still balances.
    pub fn map_owned<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        if self.threads == 1 || n == 1 {
            return items.into_iter().map(f).collect();
        }
        let (tx, rx) = crossbeam::channel::unbounded::<(usize, T)>();
        for pair in items.into_iter().enumerate() {
            if tx.send(pair).is_err() {
                unreachable!("jobs: receiver alive until scope ends");
            }
        }
        drop(tx);
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        let workers = self.threads.min(n);
        let (f_ref, results_ref) = (&f, &results);
        std::thread::scope(|s| {
            for _ in 0..workers {
                let rx = rx.clone();
                s.spawn(move || {
                    // recv (not try_recv): exits only on disconnect, so the
                    // loop stays correct even if a future variant streams
                    // sends concurrently with the workers.
                    while let Ok((i, item)) = rx.recv() {
                        let out = f_ref(item);
                        results_ref.lock().push((i, out));
                    }
                });
            }
        });
        let mut results = results.into_inner();
        debug_assert_eq!(results.len(), n);
        results.sort_unstable_by_key(|&(i, _)| i);
        results.into_iter().map(|(_, r)| r).collect()
    }
}

impl Default for JobPool {
    fn default() -> Self {
        JobPool::with_available_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_covers_range_exactly_once() {
        for threads in [1usize, 2, 4, 7] {
            for (len, chunk) in [(0usize, 3usize), (1, 3), (10, 3), (64, 64), (100, 1)] {
                let pool = JobPool::new(threads);
                let hits: Vec<AtomicU64> = (0..len).map(|_| AtomicU64::new(0)).collect();
                pool.run(0..len, chunk, |r| {
                    for i in r {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "threads={threads} len={len} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1usize, 3, 8] {
            let pool = JobPool::new(threads);
            let out = pool.map(&items, |&x| x * x);
            assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_range_orders_by_chunk() {
        let pool = JobPool::new(4);
        let out = pool.map_range(10..35, 10, |r| (r.start, r.end));
        assert_eq!(out, vec![(10, 20), (20, 30), (30, 35)]);
    }

    #[test]
    fn map_owned_preserves_order_and_consumes() {
        let items: Vec<Vec<u32>> = (0..17).map(|i| vec![i; i as usize + 1]).collect();
        for threads in [1usize, 2, 6] {
            let pool = JobPool::new(threads);
            let out = pool.map_owned(items.clone(), |v| v.iter().sum::<u32>());
            let expect: Vec<u32> = items.iter().map(|v| v.iter().sum()).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_inputs() {
        let pool = JobPool::new(4);
        pool.run(5..5, 8, |_| panic!("must not be called"));
        assert!(pool.map(&[] as &[u32], |&x| x).is_empty());
        assert!(pool.map_owned(Vec::<u32>::new(), |x| x).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        JobPool::new(0);
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = JobPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(0..8, 1, |r| {
                if r.start == 5 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
    }
}
