//! # crossbeam — minimal offline stand-in
//!
//! The workspace builds without a crate registry, so the real
//! [crossbeam](https://crates.io/crates/crossbeam) is unavailable. Only
//! the `channel` module is provided: a blocking bounded/unbounded MPMC
//! channel over `Mutex<VecDeque>` + two condvars. Semantically compatible
//! with `crossbeam::channel` for the send/recv/clone/disconnect surface;
//! not lock-free, so expect lower peak throughput than the real thing.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value like the real crossbeam.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if self.shared.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(value));
                }
                match self.shared.cap {
                    Some(cap) if q.len() >= cap => {
                        q = self.shared.not_full.wait(q).unwrap();
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            drop(q);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake all blocked receivers so they observe
                // the disconnect.
                let _guard = self.shared.queue.lock().unwrap();
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.not_empty.wait(q).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            match q.pop_front() {
                Some(v) => {
                    drop(q);
                    self.shared.not_full.notify_one();
                    Ok(v)
                }
                None => Err(RecvError),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver: wake all blocked senders.
                let _guard = self.shared.queue.lock().unwrap();
                self.shared.not_full.notify_all();
            }
        }
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// A channel that blocks senders once `cap` messages are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap))
    }

    /// A channel with an unbounded queue.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }
}
