//! `collection::vec` and the `SizeRange` it accepts.

use crate::strategy::Strategy;
use crate::test_runner::{Rejected, TestRng};

/// Length specification: a fixed size or a half-open/inclusive range,
/// mirroring `proptest::collection::SizeRange`'s `Into` conversions.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejected> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
