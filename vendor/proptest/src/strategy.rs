//! The `Strategy` trait, primitive strategies, and combinators.

use crate::test_runner::{Rejected, TestRng};

/// A recipe for generating values of `Self::Value` from a deterministic
/// RNG. Unlike the real proptest there is no shrink tree: `generate`
/// returns the value directly (or `Err(Rejected)` if a filter gave up).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejected>;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_union(self, other: Self) -> Union<Self::Value>
    where
        Self: Sized + 'static,
    {
        Union::new(vec![Box::new(self), Box::new(other)])
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejected> {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejected> {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Result<T, Rejected> {
        Ok(self.0.clone())
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Result<O, Rejected> {
        self.inner.generate(rng).map(&self.f)
    }
}

pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejected> {
        // Retry locally before rejecting the whole case; 64 draws is far
        // beyond what the workspace's mild filters need.
        for _ in 0..64 {
            let v = self.inner.generate(rng)?;
            if (self.f)(&v) {
                return Ok(v);
            }
        }
        Err(Rejected)
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Result<T::Value, Rejected> {
        let mid = self.inner.generate(rng)?;
        (self.f)(mid).generate(rng)
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejected> {
        let k = rng.below(self.options.len() as u64) as usize;
        self.options[k].generate(rng)
    }
}

// ---- ranges ----------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejected> {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                Ok((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejected> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                // span + 1 may wrap only for the full u64 domain, which the
                // workspace never uses as an inclusive range.
                Ok((lo as i128 + rng.below(span + 1) as i128) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejected> {
                assert!(self.start < self.end, "empty float range strategy");
                Ok(self.start + (self.end - self.start) * rng.next_f64() as $t)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---- tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejected> {
                let ($($name,)+) = self;
                Ok(($($name.generate(rng)?,)+))
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

// ---- any / Arbitrary -------------------------------------------------------

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejected> {
        Ok(T::arbitrary(rng))
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes.
        let m = rng.next_f64() * 2.0 - 1.0;
        let e = (rng.below(61) as i32 - 30) as f64;
        m * e.exp2()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}
