//! Deterministic RNG and runner configuration for the proptest stand-in.

/// Why a test case did not complete normally.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the message explains what.
    Fail(String),
    /// `prop_assume!` (or a `prop_filter`) discarded the case.
    Reject,
}

/// Marker for a strategy-level rejection (e.g. an exhausted `prop_filter`).
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// Runner configuration; mirrors the fields of the real
/// `proptest::test_runner::Config` that this workspace uses.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of *accepted* cases each test must pass.
    pub cases: u32,
    /// Global budget of rejected cases before the test errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// SplitMix64 seeded from `fnv1a(test_name) ^ case_index`: deterministic
/// across runs, machines, and thread schedules.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(test_name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Decorrelate consecutive case indices through one splitmix step.
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)` (n > 0), by rejection-free multiply-shift.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}
