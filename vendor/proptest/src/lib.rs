//! # proptest — minimal offline stand-in
//!
//! This workspace builds in an environment with **no crate registry**, so
//! the real [proptest](https://crates.io/crates/proptest) cannot be
//! fetched. This crate reimplements the small slice of its API that the
//! workspace's property tests use, with the same macro surface
//! (`proptest!`, `prop_assert*`, `prop_assume!`, `prop_oneof!`) and the
//! same strategy combinators (`prop_map`, `prop_filter`,
//! `collection::vec`, ranges, tuples, `Just`, `bool::ANY`).
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the assertion message
//!   and the case's deterministic seed; it does not search for a minimal
//!   counterexample.
//! * **Fully deterministic.** Case `k` of test `t` is generated from
//!   `splitmix64(fnv1a(t) ⊕ k)` — there is no environment-dependent
//!   entropy, so CI runs are reproducible by construction (no
//!   `PROPTEST_*` env vars needed).
//!
//! If the workspace ever gains registry access, swapping this out for the
//! real proptest requires only deleting `vendor/proptest` and pointing
//! `[workspace.dependencies] proptest` back at crates.io.

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, Rejected, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError};

/// Asserts a condition inside a `proptest!` body; on failure the current
/// case returns a [`TestCaseError::Fail`] instead of unwinding, so the
/// runner can report the deterministic case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!(a == b)` with a diff-style message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                stringify!($a), stringify!($b), a, b, format!($($fmt)*),
            )));
        }
    }};
}

/// `prop_assert!(a != b)` with a diff-style message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects the current case (does not count as a failure); the runner
/// draws a replacement case, up to a global rejection budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// The `proptest!` block: each contained `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_tests!(($cfg); $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr); ) => {};
    ( ($cfg:expr);
      $(#[$meta:meta])*
      fn $name:ident( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            'cases: while accepted < config.cases {
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest '{}': too many rejected cases ({} rejects, {} accepted)",
                        stringify!($name), rejected, accepted
                    );
                }
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                case += 1;
                $(
                    let $arg = match $crate::strategy::Strategy::generate(&($strat), &mut rng) {
                        ::core::result::Result::Ok(v) => v,
                        ::core::result::Result::Err(_) => { rejected += 1; continue 'cases; }
                    };
                )+
                let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at deterministic case {}:\n{}",
                            stringify!($name), case - 1, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests!(($cfg); $($rest)*);
    };
}
