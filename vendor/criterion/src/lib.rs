//! # criterion — minimal offline stand-in
//!
//! The workspace builds without a crate registry, so the real
//! [criterion](https://crates.io/crates/criterion) is unavailable. This
//! crate provides the same macro/type surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`) backed by a simple
//! median-of-samples wall-clock harness instead of criterion's
//! statistical machinery. Benches therefore *run and print numbers* under
//! `cargo bench`, they just don't produce HTML reports or regression
//! analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle passed to each registered bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let name = id.full.clone();
        let mut g = self.benchmark_group(name);
        g.bench_function(id, f);
        g.finish();
    }
}

/// Units-per-iteration annotation used to report a rate next to the time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A named group of related measurements.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        // One untimed call to warm caches and page in the data.
        let mut warm = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut warm);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples.get(samples.len() / 2).copied().unwrap_or(f64::NAN);
        // median is ns/iter; n units/iter ÷ (median ns × 1e-9 s/ns) ÷ 1e6
        // units/M = n / median × 1e3 M-units/s.
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.2} Melem/s", n as f64 / median * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10.2} MB/s", n as f64 / median * 1e3)
            }
            None => String::new(),
        };
        println!(
            "{}/{}: {:>12.1} ns/iter{}",
            self.name, id.full, median, rate
        );
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Times the closure passed to [`Bencher::iter`] over an adaptively
/// chosen iteration count.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Calibrate: grow the batch until it runs >= 1 ms, then time it.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let dt = start.elapsed();
            if dt >= Duration::from_millis(1) || n >= 1 << 24 {
                self.elapsed = dt;
                self.iters = n;
                return;
            }
            n *= 8;
        }
    }
}

/// A function/parameter pair naming one measurement.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            full: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// Registers bench functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
