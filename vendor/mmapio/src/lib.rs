//! # mmapio — minimal read-only file memory mapping
//!
//! The build environment has no crate registry, so instead of `memmap2`
//! this tiny shim exposes exactly what the snapshot loader needs: map a
//! whole file read-only ([`Mmap`]), hand out its bytes, and unmap on
//! drop. On unix targets it calls the raw `mmap`/`munmap` syscalls
//! through `extern "C"` declarations (no libc crate); everywhere else
//! [`Mmap::map_file`] returns [`std::io::ErrorKind::Unsupported`] and
//! callers fall back to an owned heap read (`act_core`'s
//! `SnapshotBuf`), so the portable path is never more than one `match`
//! away.
//!
//! The crate also centralizes the workspace's *aligned slice
//! reinterpretation* helpers ([`cast`]): checked, safe-to-call wrappers
//! over `slice::from_raw_parts` that the snapshot code uses to view
//! word-aligned byte buffers as `u64`/`u32` arrays. Keeping them here —
//! next to the only other `unsafe` the serving stack needs — lets every
//! non-vendored crate carry `#![forbid(unsafe_code)]`.
//!
//! ## Safety model
//!
//! A [`Mmap`] is a **private, read-only** mapping of a regular file:
//! `PROT_READ` + `MAP_PRIVATE`. The kernel guarantees page (≥ 8-byte)
//! alignment of the base address. One sharp edge is inherited from mmap
//! itself and documented on [`Mmap::map_file`]: if another process
//! *truncates* the file while it is mapped, touching pages past the new
//! end raises `SIGBUS`. The snapshot workflow writes new files and
//! renames them into place (never truncating a live one), which is also
//! the contract the serving hot-swap watcher documents.

use std::fs::File;
use std::io;
use std::ops::Deref;
use std::path::Path;

/// Checked reinterpretation of aligned byte slices as word slices (and
/// back). Every function validates alignment and length divisibility and
/// panics on violation, so the `unsafe` inside is locally provable and
/// callers stay entirely safe code.
pub mod cast {
    /// Views an 8-byte-aligned byte slice as `u64` words.
    ///
    /// # Panics
    /// Panics if `bytes` is not 8-byte aligned or its length is not a
    /// multiple of 8.
    pub fn bytes_as_u64s(bytes: &[u8]) -> &[u64] {
        assert!(
            (bytes.as_ptr() as usize).is_multiple_of(8) && bytes.len().is_multiple_of(8),
            "bytes_as_u64s: misaligned or ragged buffer"
        );
        // SAFETY: u64 has no invalid bit patterns; the pointer is 8-byte
        // aligned and the length a whole number of words (asserted
        // above); the returned borrow has the same lifetime as `bytes`.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u64, bytes.len() / 8) }
    }

    /// Views a 4-byte-aligned byte slice as `u32` words.
    ///
    /// # Panics
    /// Panics if `bytes` is not 4-byte aligned or its length is not a
    /// multiple of 4.
    pub fn bytes_as_u32s(bytes: &[u8]) -> &[u32] {
        assert!(
            (bytes.as_ptr() as usize).is_multiple_of(4) && bytes.len().is_multiple_of(4),
            "bytes_as_u32s: misaligned or ragged buffer"
        );
        // SAFETY: as bytes_as_u64s, with 4-byte alignment and u32
        // elements.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, bytes.len() / 4) }
    }

    /// Views a `u64` slice as raw bytes (always valid: every byte of an
    /// initialized `u64` slice is an initialized `u8`, and u8 has
    /// alignment 1).
    pub fn u64s_as_bytes(words: &[u64]) -> &[u8] {
        // SAFETY: u8 has alignment 1 and no invalid bit patterns; the
        // length covers exactly the words' storage; lifetime inherited.
        unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, words.len() * 8) }
    }

    /// Mutable byte view of a `u64` buffer — lets loaders stream file
    /// bytes straight into aligned storage.
    pub fn u64s_as_bytes_mut(words: &mut [u64]) -> &mut [u8] {
        // SAFETY: as u64s_as_bytes; any byte pattern written through the
        // view is a valid u64 pattern.
        unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, words.len() * 8) }
    }
}

/// Test-only fault injection (the `fault-injection` feature): a harness
/// can force the next N [`Mmap::map_file`] attempts to fail with
/// [`io::ErrorKind::Other`], proving out callers' heap-read fallbacks
/// without needing an actually unmappable file. Process-global, like the
/// syscall it stands in for.
#[cfg(feature = "fault-injection")]
pub mod faults {
    use std::sync::atomic::{AtomicU64, Ordering};

    static FAIL_NEXT: AtomicU64 = AtomicU64::new(0);
    static FIRED: AtomicU64 = AtomicU64::new(0);

    /// Arms the hook: the next `n` map attempts fail.
    pub fn fail_next_maps(n: u64) {
        FAIL_NEXT.store(n, Ordering::SeqCst);
    }

    /// How many injected failures have fired since the last [`reset`].
    pub fn fires() -> u64 {
        FIRED.load(Ordering::SeqCst)
    }

    /// Disarms the hook and zeroes the fire count.
    pub fn reset() {
        FAIL_NEXT.store(0, Ordering::SeqCst);
        FIRED.store(0, Ordering::SeqCst);
    }

    /// Consumes one armed failure, if any (called by `map_file`).
    pub(crate) fn take() -> bool {
        let mut cur = FAIL_NEXT.load(Ordering::SeqCst);
        loop {
            if cur == 0 {
                return false;
            }
            match FAIL_NEXT.compare_exchange(cur, cur - 1, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => {
                    FIRED.fetch_add(1, Ordering::SeqCst);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }
}

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};

    // Values shared by every tier-1 unix target (Linux, macOS, the BSDs).
    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        /// `off_t` is declared as `isize` (pointer-width `long`), which
        /// matches the default ABI on both 32- and 64-bit unix targets;
        /// we only ever pass offset 0.
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: isize,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only, private memory mapping of an entire regular file.
///
/// Dereferences to `&[u8]`; the base address is page-aligned (so always
/// 8-byte aligned, which is what the snapshot view requires). The
/// mapping is unmapped on drop.
#[derive(Debug)]
pub struct Mmap {
    #[cfg(unix)]
    ptr: std::ptr::NonNull<u8>,
    #[cfg(not(unix))]
    never: std::convert::Infallible,
    len: usize,
}

// SAFETY: the mapping is private and read-only for its whole lifetime —
// no view into it is ever mutable, and unmapping requires `&mut self`
// (drop). Sharing or sending it between threads is therefore no
// different from sharing a `&[u8]` into leaked memory.
unsafe impl Send for Mmap {}
// SAFETY: as for Send — immutable shared reads only.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps all of `file` read-only.
    ///
    /// Fails with [`io::ErrorKind::Unsupported`] on non-unix targets and
    /// with [`io::ErrorKind::InvalidInput`] for empty files (`mmap`
    /// rejects zero-length mappings); callers are expected to fall back
    /// to reading the file into an owned buffer. Other failures surface
    /// the OS error.
    ///
    /// The file must not be truncated while the mapping is alive:
    /// accessing pages past a shrunken end is a `SIGBUS` on unix.
    /// Replace files by writing a sibling and renaming over the old
    /// path — the old inode (and this mapping) stays intact.
    pub fn map_file(file: &File) -> io::Result<Mmap> {
        #[cfg(feature = "fault-injection")]
        if faults::take() {
            return Err(io::Error::other("injected mmap failure"));
        }
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "file exceeds address space")
        })?;
        Self::map_len(file, len)
    }

    /// Opens `path` and maps it via [`Mmap::map_file`].
    pub fn map_path(path: impl AsRef<Path>) -> io::Result<Mmap> {
        Self::map_file(&File::open(path)?)
    }

    #[cfg(unix)]
    fn map_len(file: &File, len: usize) -> io::Result<Mmap> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map an empty file",
            ));
        }
        // SAFETY: a fresh PROT_READ + MAP_PRIVATE mapping of `len` bytes
        // at a kernel-chosen address. The fd stays valid for the duration
        // of the call (we hold `&File`), and the mapping's validity does
        // not depend on the fd afterwards. MAP_FAILED (-1) is checked
        // before the pointer is used.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        let ptr = std::ptr::NonNull::new(ptr as *mut u8)
            .ok_or_else(|| io::Error::other("mmap returned a null mapping"))?;
        Ok(Mmap { ptr, len })
    }

    #[cfg(not(unix))]
    fn map_len(_file: &File, _len: usize) -> io::Result<Mmap> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "mmap is only wired up on unix targets; read the file instead",
        ))
    }

    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        #[cfg(unix)]
        {
            // SAFETY: `ptr` is the base of a live mapping exactly `len`
            // bytes long (established in map_len, immutable until drop),
            // and the mapping is readable (PROT_READ).
            unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
        }
        #[cfg(not(unix))]
        match self.never {}
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        {
            // SAFETY: `ptr`/`len` describe a mapping we own and have not
            // yet unmapped; after this call nothing can touch it (drop
            // takes the only remaining handle by &mut).
            let rc = unsafe { sys::munmap(self.ptr.as_ptr() as *mut std::ffi::c_void, self.len) };
            debug_assert_eq!(rc, 0, "munmap failed");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mmapio-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    #[cfg(unix)]
    fn maps_whole_file_and_matches_read() {
        let path = temp_path("whole");
        let payload: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let map = Mmap::map_path(&path).unwrap();
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        assert_eq!(&*map, payload.as_slice());
        assert!(
            (map.as_bytes().as_ptr() as usize).is_multiple_of(8),
            "mmap base must be at least 8-byte aligned"
        );
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[cfg(unix)]
    fn empty_file_is_a_clean_error() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let err = Mmap::map_path(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(Mmap::map_path(temp_path("nonexistent")).is_err());
    }

    #[test]
    fn casts_roundtrip() {
        let mut words = vec![0u64, u64::MAX, 0x0102_0304_0506_0708];
        let bytes = cast::u64s_as_bytes(&words);
        assert_eq!(bytes.len(), 24);
        assert_eq!(cast::bytes_as_u64s(bytes), words.as_slice());
        assert_eq!(cast::bytes_as_u32s(bytes).len(), 6);
        cast::u64s_as_bytes_mut(&mut words)[0] = 7;
        assert_eq!(words[0], 7);
    }

    #[test]
    #[should_panic(expected = "misaligned or ragged")]
    fn ragged_cast_panics() {
        let words = [0u64; 2];
        let bytes = cast::u64s_as_bytes(&words);
        let _ = cast::bytes_as_u64s(&bytes[..12]);
    }
}
