//! # sigflag — a minimal self-pipe signal flag
//!
//! The build environment has no crate registry, so instead of `signal-hook`
//! (or the `ctrlc` crate) this tiny shim exposes exactly what a
//! long-running server binary needs to turn SIGINT into a graceful
//! drain: install a handler that (a) sets a process-global atomic flag
//! and (b) writes one byte to a **self-pipe**, then let the main loop
//! poll [`SigFlag::is_raised`] (or block on [`SigFlag::fd`] if it has an
//! event loop to park in).
//!
//! The handler body is the classic async-signal-safe minimum: one
//! atomic store and one `write(2)` to a non-blocking pipe — no
//! allocation, no locks, no formatting. Everything interesting happens
//! on the normal control flow after the flag is observed.
//!
//! Scope, by design:
//!
//! * **One process-global flag.** Installing the handler for several
//!   signals (say SIGINT and SIGTERM) folds them into the same "please
//!   drain" bit — which is what a drain loop wants anyway.
//! * **Unix only.** On other targets [`SigFlag::install`] succeeds and
//!   the flag simply never raises, so callers need no `cfg` of their
//!   own; the portable path is the polling loop they already have.
//! * Raw `extern "C"` declarations (`signal`, `pipe`, `read`, `write`,
//!   `raise`), no libc crate — the same pattern as `vendor/mmapio`.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

/// Interrupt from the terminal (Ctrl-C).
pub const SIGINT: i32 = 2;
/// User-defined signal 1 (used by this crate's own tests so they never
/// touch the test harness's SIGINT disposition).
pub const SIGUSR1: i32 = 10;
/// Termination request (what `kill` sends by default).
pub const SIGTERM: i32 = 15;

static RAISED: AtomicBool = AtomicBool::new(false);
static PIPE_RD: AtomicI32 = AtomicI32::new(-1);
static PIPE_WR: AtomicI32 = AtomicI32::new(-1);

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    extern "C" {
        /// Returns the previous handler (a pointer-sized value; only
        /// compared against `SIG_ERR`, never called).
        pub fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, n: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, n: usize) -> isize;
        pub fn raise(signum: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    }

    /// `SIG_ERR` is `(void (*)(int)) -1`.
    pub const SIG_ERR: usize = usize::MAX;

    /// Marks `fd` non-blocking so the handler's `write` (and the
    /// drain's `read`) can never park a thread. Linux-only constants;
    /// on other unixes the pipe stays blocking and [`super::SigFlag`]
    /// skips draining it (one byte per raise is far below pipe
    /// capacity, so the handler still cannot block in practice).
    #[cfg(target_os = "linux")]
    pub fn set_nonblocking(fd: c_int) {
        const F_GETFL: c_int = 3;
        const F_SETFL: c_int = 4;
        const O_NONBLOCK: c_int = 0o4000;
        // SAFETY: fcntl on a fd this process just created; worst case a
        // failure leaves the pipe blocking, which is only a lost
        // optimization (see the doc comment).
        unsafe {
            let flags = fcntl(fd, F_GETFL, 0);
            if flags >= 0 {
                let _ = fcntl(fd, F_SETFL, flags | O_NONBLOCK);
            }
        }
    }

    #[cfg(not(target_os = "linux"))]
    pub fn set_nonblocking(_fd: c_int) {}

    /// True when the pipe reads are safe to drain without blocking.
    pub const CAN_DRAIN: bool = cfg!(target_os = "linux");
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: std::os::raw::c_int) {
    // Async-signal-safe: an atomic store and one write to a
    // non-blocking pipe. A full pipe (impossible in practice: one byte
    // per raise) just drops the wakeup byte; the flag is already set.
    RAISED.store(true, Ordering::SeqCst);
    let fd = PIPE_WR.load(Ordering::SeqCst);
    if fd >= 0 {
        let byte = [1u8];
        // SAFETY: write(2) on a valid pipe fd with a 1-byte stack
        // buffer; async-signal-safe per POSIX.
        unsafe {
            let _ = sys::write(fd, byte.as_ptr().cast(), 1);
        }
    }
}

/// A handle to the process-global signal flag. All handles observe the
/// same flag; see the module docs for why that is the intended shape.
#[derive(Debug, Clone, Copy)]
pub struct SigFlag {
    _priv: (),
}

impl SigFlag {
    /// Installs the self-pipe handler for `signum` and returns the
    /// flag handle. Call once per signal of interest (SIGINT, SIGTERM);
    /// repeated installs are idempotent and share one pipe.
    ///
    /// # Errors
    /// `pipe(2)` or `signal(2)` failures (unix). Never fails elsewhere.
    #[cfg(unix)]
    pub fn install(signum: i32) -> io::Result<SigFlag> {
        if PIPE_WR.load(Ordering::SeqCst) < 0 {
            let mut fds = [-1i32; 2];
            // SAFETY: pipe(2) with a valid 2-int out-array.
            if unsafe { sys::pipe(fds.as_mut_ptr()) } != 0 {
                return Err(io::Error::last_os_error());
            }
            sys::set_nonblocking(fds[0]);
            sys::set_nonblocking(fds[1]);
            PIPE_RD.store(fds[0], Ordering::SeqCst);
            // Publish the write end last: the handler checks it.
            PIPE_WR.store(fds[1], Ordering::SeqCst);
        }
        // SAFETY: installing a handler whose body is async-signal-safe
        // (see on_signal); the returned previous-handler value is only
        // compared, never invoked.
        if unsafe { sys::signal(signum, on_signal) } == sys::SIG_ERR {
            return Err(io::Error::last_os_error());
        }
        Ok(SigFlag { _priv: () })
    }

    /// Non-unix: a flag that never raises (so callers need no `cfg`).
    #[cfg(not(unix))]
    pub fn install(_signum: i32) -> io::Result<SigFlag> {
        Ok(SigFlag { _priv: () })
    }

    /// True once any installed signal has fired. Latches: it stays true
    /// (the process is expected to drain and exit). Draining the
    /// self-pipe's wakeup bytes happens here, where reads are known
    /// non-blocking.
    pub fn is_raised(&self) -> bool {
        let raised = RAISED.load(Ordering::SeqCst);
        #[cfg(unix)]
        if raised && sys::CAN_DRAIN {
            let fd = PIPE_RD.load(Ordering::SeqCst);
            if fd >= 0 {
                let mut buf = [0u8; 64];
                // SAFETY: read(2) on our own non-blocking pipe fd into a
                // stack buffer; loops until the pipe is empty (EAGAIN).
                unsafe { while sys::read(fd, buf.as_mut_ptr().cast(), buf.len()) > 0 {} }
            }
        }
        raised
    }

    /// The self-pipe's read end, for callers that want to park in
    /// `poll`/`select` instead of polling [`SigFlag::is_raised`].
    /// `-1` when no pipe exists (non-unix, or before `install`).
    pub fn fd(&self) -> i32 {
        PIPE_RD.load(Ordering::SeqCst)
    }
}

/// Sends `signum` to the current process (test hook; also handy for a
/// binary that wants to trigger its own drain path).
pub fn raise(signum: i32) {
    #[cfg(unix)]
    // SAFETY: raise(3) is always safe to call.
    unsafe {
        let _ = sys::raise(signum);
    }
    #[cfg(not(unix))]
    let _ = signum;
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    /// One test (not several) because the flag is process-global: the
    /// full install → raise → observe → self-pipe sequence.
    #[test]
    fn raise_sets_flag_and_writes_self_pipe() {
        let flag = SigFlag::install(SIGUSR1).expect("install handler");
        assert!(!flag.is_raised(), "flag must start clear");
        assert!(flag.fd() >= 0, "self-pipe must exist after install");

        raise(SIGUSR1);
        // raise() runs the handler synchronously on this thread, so the
        // flag is already observable — no sleep needed.
        assert!(flag.is_raised(), "flag must latch after the signal");
        assert!(flag.is_raised(), "and stay latched");

        // The wakeup byte was drained by is_raised (linux): the pipe is
        // empty again, so a fresh raise writes a fresh byte — exercise
        // the handler a second time for the latch-stays-true property.
        raise(SIGUSR1);
        assert!(flag.is_raised());
    }
}
