//! # parking_lot — minimal offline stand-in
//!
//! The workspace builds without a crate registry, so the real
//! [parking_lot](https://crates.io/crates/parking_lot) is unavailable.
//! `Mutex` and `RwLock` here wrap the std primitives and expose
//! parking_lot's panic-free, non-poisoning lock API (a poisoned std lock
//! is transparently recovered, matching parking_lot's "no poisoning"
//! semantics).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}
