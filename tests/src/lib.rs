//! Integration-test package: cross-crate tests live in `tests/tests/`.
//!
//! * `pipeline.rs` — datasets → index → join, validated against geometry
//! * `precision.rs` — the ε guarantee end-to-end (incl. adaptive/budgeted)
//! * `cross_index.rs` — ACT / sorted-array / flat-grid / R-tree agreement
//! * `parallel_and_determinism.rs` — parallel ≡ sequential; seeded determinism
//! * `full_scale.rs` — paper-sized runs (`--ignored`)

#![forbid(unsafe_code)]
