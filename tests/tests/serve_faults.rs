//! The chaos soak: a seeded, deterministic fault schedule fired at a
//! live act-serve under real traffic. Everything here is gated on the
//! `fault-injection` feature — the hooks it drives compile to nothing
//! in a default build:
//!
//! ```text
//! cargo test -p act-tests --features fault-injection --test serve_faults
//! ```
//!
//! The contract under attack, end to end:
//!
//! * a worker panic mid-batch poisons **one batch** — its frames answer
//!   a typed `INTERNAL`, the worker lives, `panics_contained` counts it,
//!   and the next frame on the same connection is answered correctly;
//! * a corrupt or wrong-chain delta is **quarantined** (renamed to
//!   `*.quarantine`), the current epoch keeps serving without a blip,
//!   and the watcher resumes on the next good file;
//! * socket resets and stalls mid-reply cost the [`ResilientClient`] a
//!   reconnect-and-retry, never a lost or duplicated answer;
//! * through all of it the golden invariant holds:
//!   `accepted = answered + shed`, with every well-formed frame getting
//!   exactly one typed reply.
//!
//! The schedule is hit-count driven (`FaultSpec { first, every, count }`
//! per site), so the same seed and traffic replay the same faults.

#![cfg(feature = "fault-injection")]

use act_core::{header_checksum, save_delta_file, ActIndex, DeltaLink, DeltaOp};
use act_serve::faults::{FaultPlan, FaultSpec, Site};
use act_serve::{delta_path, Client, ResilientClient, RetryPolicy, ServeConfig, Server};
use geom::{Coord, Polygon, Ring};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 0xC4A0_55ED;

fn square(cx: f64, cy: f64, half: f64) -> Polygon {
    Polygon::new(
        Ring::new(vec![
            Coord::new(cx - half, cy - half),
            Coord::new(cx + half, cy - half),
            Coord::new(cx + half, cy + half),
            Coord::new(cx - half, cy + half),
        ]),
        vec![],
    )
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("act-faults-{}-{name}.snap", std::process::id()));
    p
}

fn quarantine_of(dpath: &Path) -> PathBuf {
    let mut name = dpath.file_name().expect("delta file name").to_os_string();
    name.push(".quarantine");
    dpath.with_file_name(name)
}

fn policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 10,
        read_timeout: Duration::from_secs(10),
        deadline: Some(Duration::from_secs(30)),
        jitter_seed: seed,
        ..RetryPolicy::default()
    }
}

/// The full soak. Three phases against ONE server and ONE armed plan —
/// panics under sequential traffic, delta corruption under the watcher,
/// socket faults under retrying traffic — then the books are audited.
#[test]
fn chaos_soak_contains_panics_quarantines_deltas_absorbs_socket_faults() {
    // Base snapshot: one polygon at `in_a`; a later delta adds `in_b`.
    let in_a = Coord::new(-74.05, 40.70);
    let in_b = Coord::new(-73.95, 40.70);
    let polys = vec![square(in_a.x, in_a.y, 0.02)];
    let idx = ActIndex::build(&polys, 15.0).unwrap();
    let path = temp_path("soak");
    let mut bytes = Vec::new();
    idx.save_snapshot(&mut bytes).unwrap();
    std::fs::write(&path, &bytes).unwrap();
    let base_sum = header_checksum(&bytes).unwrap();

    // The schedule. Sites are independent hit counters, so the phases
    // below can rely on *when* their faults land:
    //  * WorkerPanic on the 3rd, 28th, 53rd batch — all inside phase 1's
    //    60 sequential frames (one worker, one frame per batch);
    //  * WatchStat twice early in the watcher's polling — transient,
    //    recovered by backoff;
    //  * ConnWrite (mid-reply reset) and ConnStall spread across the
    //    writer's reply stream — absorbed by the resilient client
    //    whenever they land.
    let plan = FaultPlan::new(SEED)
        .stall(Duration::from_millis(3))
        .with(FaultSpec {
            site: Site::WorkerPanic,
            first: 3,
            every: 25,
            count: 3,
        })
        .with(FaultSpec {
            site: Site::WatchStat,
            first: 4,
            every: 3,
            count: 2,
        })
        .with(FaultSpec {
            site: Site::ConnWrite,
            first: 80,
            every: 120,
            count: 3,
        })
        .with(FaultSpec {
            site: Site::ConnStall,
            first: 100,
            every: 150,
            count: 2,
        });
    let faults = plan.arm();

    let server = Server::spawn(
        &path,
        ServeConfig {
            workers: 1,
            watch: Some(Duration::from_millis(10)),
            faults: Some(Arc::clone(&faults)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let frame = [in_a, in_b];

    // ---- Phase 1: worker panics under sequential traffic. -----------
    // 60 frames, one at a time, through the resilient client: the three
    // INTERNAL replies cost a retry each, never a wrong answer.
    let mut client = ResilientClient::new(addr, policy(SEED)).unwrap();
    for k in 0..60 {
        let reply = client
            .probe(&frame, false)
            .unwrap_or_else(|e| panic!("phase 1 frame {k}: {e}"));
        assert!(
            !reply.refs[0].is_empty() && reply.refs[1].is_empty(),
            "phase 1 frame {k}: wrong answer after fault recovery"
        );
    }
    assert_eq!(
        faults.fires(Site::WorkerPanic),
        3,
        "all three scheduled panics must have fired within 60 batches"
    );
    assert_eq!(
        server.stats().panics_contained,
        3,
        "every injected panic must be contained, none may take the worker down"
    );
    assert!(
        client.retries() >= 3,
        "each poisoned batch must have cost the client a retry"
    );

    // Exactly-one-typed-reply, checked on the wire: a raw client sends
    // one frame and reads exactly one reply for it (the resilient
    // client above hides this; here it is asserted bare).
    let mut raw = Client::connect(addr).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let reply = raw.probe(&frame, false).expect("raw frame must answer");
    assert!(!reply.refs[0].is_empty() && reply.refs[1].is_empty());
    drop(raw);

    // ---- Phase 2: delta corruption under the watcher. ---------------
    // Junk bytes at the expected sequence: quarantined, epoch holds.
    let d1 = delta_path(&path, 1);
    let tmp = temp_path("soak-d1-junk");
    std::fs::write(&tmp, b"ACTDLT01 this is not a delta").unwrap();
    std::fs::rename(&tmp, &d1).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !quarantine_of(&d1).exists() {
        assert!(
            Instant::now() < deadline,
            "junk delta was not quarantined in 10 s"
        );
        // Serving must never be interrupted while the watcher copes.
        let reply = client
            .probe(&frame, false)
            .expect("probe during junk delta");
        assert_eq!(reply.epoch, 1, "junk delta must not move the epoch");
        std::thread::sleep(Duration::from_millis(5));
    }
    std::fs::remove_file(quarantine_of(&d1)).unwrap();

    // A well-formed delta chained to the WRONG base: also quarantined.
    let tmp = temp_path("soak-d1-wrongchain");
    save_delta_file(
        &[DeltaOp::Remove { id: 0 }],
        DeltaLink::for_base(base_sum ^ 0xDEAD_BEEF),
        &tmp,
    )
    .unwrap();
    std::fs::rename(&tmp, &d1).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !quarantine_of(&d1).exists() {
        assert!(
            Instant::now() < deadline,
            "wrong-chain delta was not quarantined in 10 s"
        );
        let reply = client
            .probe(&frame, false)
            .expect("probe during wrong-chain delta");
        assert_eq!(reply.epoch, 1, "wrong-chain delta must not move the epoch");
        std::thread::sleep(Duration::from_millis(5));
    }
    std::fs::remove_file(quarantine_of(&d1)).unwrap();

    // The watcher resumes on the next good file at the same sequence.
    let tmp = temp_path("soak-d1-good");
    save_delta_file(
        &[DeltaOp::Insert {
            id: 1,
            polygon: square(in_b.x, in_b.y, 0.02),
        }],
        DeltaLink::for_base(base_sum),
        &tmp,
    )
    .unwrap();
    std::fs::rename(&tmp, &d1).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let reply = loop {
        assert!(
            Instant::now() < deadline,
            "good delta was not applied after two quarantines"
        );
        let reply = client
            .probe(&frame, false)
            .expect("probe across delta apply");
        if reply.epoch == 2 {
            break reply;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(
        !reply.refs[0].is_empty() && !reply.refs[1].is_empty(),
        "the good delta's insert must be serving"
    );
    let stats = server.stats();
    assert_eq!(
        stats.quarantines, 2,
        "both corrupt deltas must be quarantined"
    );
    assert_eq!(
        faults.fires(Site::WatchStat),
        2,
        "both scheduled transient stat errors must have fired"
    );
    assert_eq!(
        stats.watch_errors, 2,
        "transient watcher errors are counted, not silently treated as no-change"
    );

    // ---- Phase 3: socket resets and stalls under retrying traffic. --
    // Enough frames that the writer's hit counter passes every
    // scheduled ConnWrite/ConnStall firing no matter how many replies
    // the polling loops above consumed.
    for k in 0..500 {
        let reply = client
            .probe(&frame, false)
            .unwrap_or_else(|e| panic!("phase 3 frame {k}: {e}"));
        assert!(
            !reply.refs[0].is_empty() && !reply.refs[1].is_empty(),
            "phase 3 frame {k}: wrong answer after socket fault"
        );
        if faults.fires(Site::ConnWrite) >= 3 && faults.fires(Site::ConnStall) >= 2 {
            break;
        }
    }
    assert_eq!(
        faults.fires(Site::ConnWrite),
        3,
        "all resets must have fired"
    );
    assert_eq!(
        faults.fires(Site::ConnStall),
        2,
        "all stalls must have fired"
    );
    assert!(
        faults.fires(Site::ConnWrite) + faults.fires(Site::ConnStall) >= 5,
        "the soak must include at least five socket faults"
    );
    assert!(
        client.connects() >= 4,
        "each mid-reply reset must have cost the client a reconnect \
         (got {} connects)",
        client.connects()
    );

    // ---- The audit. -------------------------------------------------
    let stats = server.shutdown();
    assert_eq!(
        stats.accepted,
        stats.answered + stats.shed,
        "golden invariant: every accepted frame answered or shed"
    );
    assert_eq!(stats.shed, 0, "this soak never oversubscribes the queue");
    assert_eq!(stats.panics_contained, 3);
    assert_eq!(
        faults.total_fires(),
        3 + 2 + 3 + 2,
        "the whole schedule must have fired, nothing more"
    );

    let _ = std::fs::remove_file(&d1);
    std::fs::remove_file(&path).unwrap();
}

/// Determinism: the same plan against the same sequential traffic lands
/// INTERNAL on the same frames, run after run. (Single worker, one
/// frame per batch — batch k is frame k, so the schedule is exact.)
#[test]
fn panic_schedule_is_deterministic_per_frame() {
    let polys = vec![square(-74.0, 40.7, 0.02)];
    let idx = ActIndex::build(&polys, 15.0).unwrap();
    let path = temp_path("det");
    let mut bytes = Vec::new();
    idx.save_snapshot(&mut bytes).unwrap();
    std::fs::write(&path, &bytes).unwrap();

    let run = |seed: u64| -> Vec<usize> {
        let plan = FaultPlan::new(seed).with(FaultSpec {
            site: Site::WorkerPanic,
            first: 2,
            every: 5,
            count: 3,
        });
        let faults = plan.arm();
        let server = Server::spawn(
            &path,
            ServeConfig {
                workers: 1,
                watch: None,
                faults: Some(Arc::clone(&faults)),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut c = Client::connect(server.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let frame = [Coord::new(-74.0, 40.7)];
        let mut internal_at = Vec::new();
        for k in 0..20 {
            match c.probe(&frame, false) {
                Ok(reply) => assert!(!reply.refs[0].is_empty(), "frame {k}"),
                Err(act_serve::ClientError::Server { status, .. })
                    if status == act_serve::protocol::STATUS_INTERNAL =>
                {
                    internal_at.push(k);
                }
                Err(e) => panic!("frame {k}: unexpected {e}"),
            }
        }
        server.shutdown();
        internal_at
    };

    let a = run(1);
    let b = run(2);
    assert_eq!(a, vec![1, 6, 11], "panics must land on batches 2, 7, 12");
    assert_eq!(a, b, "the seed jitters stall durations, never fault timing");
    std::fs::remove_file(&path).unwrap();
}
