//! Deterministic protocol fuzzing against a live act-serve: a seeded
//! RNG generates ≥500 malformed frames — truncations, oversized length
//! prefixes, garbage opcodes, bad flags/reserved bytes, point-count
//! mismatches, non-finite coordinates, mid-frame disconnects — and fires
//! each at the server on its own connection. The contract under attack:
//!
//! * the server never panics and never wedges (every read here carries a
//!   deadline, so a wedge fails the test instead of hanging it);
//! * every malformed frame is answered with a **typed** `BAD_REQUEST`
//!   (then close) or met with a clean close — never garbage, never
//!   silence on an intact connection;
//! * a concurrent well-formed connection keeps getting byte-correct
//!   answers the whole time, and the server still serves after the last
//!   attack.

use act_core::ActIndex;
use act_serve::{protocol as proto, Client, ServeConfig, Server};
use geom::Coord;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// splitmix64: tiny, seeded, deterministic — the same generator the
/// vendored proptest uses, reimplemented here so the fuzz corpus is
/// fixed by the seed below and nothing else.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn bytes(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next() as u8).collect()
    }
}

const FUZZ_CASES: usize = 520;
const SEED: u64 = 0x0AC7_5EED;

fn snap_file(name: &str) -> (std::path::PathBuf, ActIndex) {
    let ds = datagen::blocks_scaled(3, 2, 11);
    let idx = ActIndex::build(&ds.polygons, 60.0).unwrap();
    let mut bytes = Vec::new();
    idx.save_snapshot(&mut bytes).unwrap();
    let mut p = std::env::temp_dir();
    p.push(format!("act-fuzz-{}-{name}.snap", std::process::id()));
    std::fs::write(&p, bytes).unwrap();
    (p, idx)
}

/// A fresh attack connection with a read deadline (a wedged server fails
/// fast instead of hanging the suite).
fn attack_conn(addr: std::net::SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

/// True for the error kinds a vanished TCP peer legitimately produces
/// on the next read (used only by `expect_clean_close`, where the client
/// side tears down mid-frame).
fn is_close(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
    )
}

/// Asserts the server answered exactly one BAD_REQUEST frame and then
/// closed the connection cleanly. The server drains any unread request
/// bytes before closing, so the close is a FIN and the reject frame is
/// always delivered intact — even for frames it rejected without reading
/// fully (e.g. an oversized length prefix). An RST here is a bug.
fn expect_bad_request_then_close(mut s: TcpStream, what: &str) {
    let body = match proto::read_frame(&mut s, 1 << 20) {
        Ok(Some(body)) => body,
        Ok(None) => panic!("{what}: server closed without a typed reject"),
        Err(e) => panic!("{what}: reading the reject failed: {e}"),
    };
    let (h, _) = proto::decode_response(&body).unwrap_or_else(|e| panic!("{what}: {e}"));
    assert_eq!(
        h.status,
        proto::STATUS_BAD_REQUEST,
        "{what}: expected BAD_REQUEST, got {}",
        proto::status_name(h.status)
    );
    let mut rest = Vec::new();
    match s.read_to_end(&mut rest) {
        Ok(n) => assert_eq!(n, 0, "{what}: server must close after a bad frame"),
        Err(e) => panic!("{what}: post-reject read failed (RST instead of FIN?): {e}"),
    }
}

/// Asserts the server closed the connection without sending anything
/// (the reaction to a frame that never structurally completed).
fn expect_clean_close(mut s: TcpStream, what: &str) {
    s.shutdown(std::net::Shutdown::Write).ok();
    let mut rest = Vec::new();
    match s.read_to_end(&mut rest) {
        Ok(n) => assert_eq!(n, 0, "{what}: expected a clean close, got {n} bytes"),
        Err(e) if is_close(e.kind()) => {}
        Err(e) => panic!("{what}: close-side read failed: {e}"),
    }
}

/// One well-formed probe on a fresh connection, verified against the
/// offline index — the "is the server still sane" pulse.
fn assert_still_serving(addr: std::net::SocketAddr, idx: &ActIndex, grid: &[Coord]) {
    let mut c = Client::connect(addr).expect("post-attack connect");
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let reply = c.probe(grid, false).expect("post-attack probe");
    for (pt, got) in grid.iter().zip(&reply.refs) {
        assert_eq!(*got, idx.lookup_refs(*pt), "post-attack divergence at {pt}");
    }
}

#[test]
fn seeded_malformed_frames_never_panic_never_wedge_never_disturb() {
    let (path, idx) = snap_file("fuzz");
    let server = Server::spawn(
        &path,
        ServeConfig {
            watch: None,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let ds = datagen::blocks_scaled(3, 2, 11);
    let (lo, hi) = (ds.bbox.min, ds.bbox.max);
    let grid: Vec<Coord> = (0..48)
        .map(|k| {
            Coord::new(
                lo.x + (hi.x - lo.x) * (k % 8) as f64 / 7.0,
                lo.y + (hi.y - lo.y) * (k / 8) as f64 / 5.0,
            )
        })
        .collect();

    // The concurrent well-formed connection: probes continuously while
    // the fuzzer attacks, verifying every answer. A panic in here
    // propagates through the join below.
    let stop = AtomicBool::new(false);
    let sentinel_rounds = std::thread::scope(|scope| {
        // Stop the sentinel even if a fuzz-case assertion unwinds:
        // without this, the scope's implicit join waits on a sentinel
        // that never got the stop signal and the panic masquerades as a
        // hang.
        struct StopOnDrop<'a>(&'a AtomicBool);
        impl Drop for StopOnDrop<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::Release);
            }
        }
        let _stop_guard = StopOnDrop(&stop);
        let sentinel = {
            let (stop, grid, idx) = (&stop, &grid, &idx);
            scope.spawn(move || {
                let mut c = Client::connect(addr).expect("sentinel connect");
                c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                let mut rounds = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let reply = c.probe(grid, false).expect("sentinel probe");
                    for (pt, got) in grid.iter().zip(&reply.refs) {
                        assert_eq!(*got, idx.lookup_refs(*pt), "sentinel divergence at {pt}");
                    }
                    rounds += 1;
                    // Throttle: the point is continuous coverage, not
                    // load — an unthrottled spin starves the fuzzer on a
                    // single-core machine and turns a 2 s suite into
                    // minutes.
                    std::thread::sleep(Duration::from_millis(2));
                }
                rounds
            })
        };

        let mut rng = Rng(SEED);
        for case in 0..FUZZ_CASES {
            let what = format!("case {case}");
            match rng.below(9) {
                // Garbage body under a correct length prefix, op forced
                // invalid so the expectation is deterministic.
                0 => {
                    let n = rng.below(64) as usize + 1;
                    let mut body = rng.bytes(n);
                    body[0] = 5 + (rng.next() as u8 % 249); // op ∉ {1,2,3,4}
                    let mut s = attack_conn(addr);
                    let mut f = (body.len() as u32).to_le_bytes().to_vec();
                    f.extend_from_slice(&body);
                    s.write_all(&f).unwrap();
                    if body.len() >= proto::REQ_HEADER_LEN {
                        expect_bad_request_then_close(s, &format!("{what}: garbage op"));
                    } else {
                        // Shorter than a header is also a typed reject.
                        expect_bad_request_then_close(s, &format!("{what}: short body"));
                    }
                }
                // Truncated frame: the length prefix promises more than
                // is ever sent; the connection just ends mid-frame.
                1 => {
                    let promised = rng.below(2048) as usize + 8;
                    let sent = rng.below(promised as u64) as usize;
                    let mut s = attack_conn(addr);
                    let mut f = (promised as u32).to_le_bytes().to_vec();
                    f.extend_from_slice(&rng.bytes(sent));
                    s.write_all(&f).unwrap();
                    expect_clean_close(s, &format!("{what}: truncated frame"));
                }
                // Oversized length prefix: rejected before any
                // allocation, typed, then close.
                2 => {
                    let over = proto::MAX_REQ_BODY as u64
                        + 1
                        + rng.below(u32::MAX as u64 - proto::MAX_REQ_BODY as u64);
                    let mut s = attack_conn(addr);
                    let mut f = (over as u32).to_le_bytes().to_vec();
                    f.extend_from_slice(&rng.bytes(16));
                    s.write_all(&f).unwrap();
                    expect_bad_request_then_close(s, &format!("{what}: oversized length"));
                }
                // Unknown opcode in an otherwise perfect header.
                3 => {
                    let mut f = proto::encode_ping_request();
                    f[4] = 5 + (rng.next() as u8 % 249); // op ∉ {1,2,3,4}
                    let mut s = attack_conn(addr);
                    s.write_all(&f).unwrap();
                    expect_bad_request_then_close(s, &format!("{what}: unknown op"));
                }
                // Point count disagreeing with the body length.
                4 => {
                    let k = rng.below(16) as usize + 1;
                    let coords: Vec<Coord> = (0..k).map(|i| Coord::new(i as f64, 0.0)).collect();
                    let mut f = proto::encode_probe_request(&coords, false);
                    // Lie about n (offset 8..12 in the frame).
                    let lie = (k as u32).wrapping_add(1 + rng.below(100) as u32);
                    f[8..12].copy_from_slice(&lie.to_le_bytes());
                    let mut s = attack_conn(addr);
                    s.write_all(&f).unwrap();
                    expect_bad_request_then_close(s, &format!("{what}: count mismatch"));
                }
                // Non-finite coordinates.
                5 => {
                    let bad = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][rng.below(3) as usize];
                    let mut coords = vec![Coord::new(0.0, 0.0); rng.below(8) as usize + 1];
                    let at = rng.below(coords.len() as u64) as usize;
                    coords[at] = Coord::new(bad, 0.0);
                    let mut s = attack_conn(addr);
                    s.write_all(&proto::encode_probe_request(&coords, false))
                        .unwrap();
                    expect_bad_request_then_close(s, &format!("{what}: non-finite coord"));
                }
                // Reserved bytes / unknown flag bits set.
                6 => {
                    let mut f = proto::encode_probe_request(&[Coord::new(0.0, 0.0)], false);
                    if rng.below(2) == 0 {
                        f[6 + rng.below(2) as usize] = 1 + rng.next() as u8 % 255;
                    } else {
                        f[5] |= 2 << rng.below(7); // any flag beyond EXACT
                    }
                    let mut s = attack_conn(addr);
                    s.write_all(&f).unwrap();
                    expect_bad_request_then_close(s, &format!("{what}: reserved/flags"));
                }
                // Mid-frame disconnect: a valid frame cut anywhere, then
                // the socket is dropped entirely.
                7 => {
                    let coords: Vec<Coord> = (0..rng.below(32) + 1)
                        .map(|i| Coord::new(i as f64 * 0.001, 0.0))
                        .collect();
                    let f = proto::encode_probe_request(&coords, false);
                    let cut = rng.below(f.len() as u64 - 1) as usize + 1;
                    let mut s = attack_conn(addr);
                    s.write_all(&f[..cut]).unwrap();
                    drop(s); // no FIN-then-read: just vanish
                }
                // A valid frame answered correctly, THEN garbage on the
                // same connection: the good answer must arrive first.
                _ => {
                    let mut s = attack_conn(addr);
                    let probe: Vec<Coord> =
                        grid[..rng.below(grid.len() as u64) as usize + 1].to_vec();
                    s.write_all(&proto::encode_probe_request(&probe, false))
                        .unwrap();
                    let body = proto::read_frame(&mut s, 1 << 20)
                        .expect("valid-frame read")
                        .expect("valid frame must be answered");
                    let (h, payload) = proto::decode_response(&body).unwrap();
                    assert_eq!(
                        h.status,
                        proto::STATUS_OK,
                        "{what}: valid frame pre-garbage"
                    );
                    let refs = proto::decode_probe_payload(h.n, payload).unwrap();
                    for (pt, got) in probe.iter().zip(&refs) {
                        assert_eq!(*got, idx.lookup_refs(*pt), "{what}: at {pt}");
                    }
                    let mut junk = proto::encode_ping_request();
                    junk[4] = 0; // op 0 is invalid
                    s.write_all(&junk).unwrap();
                    expect_bad_request_then_close(s, &format!("{what}: garbage after valid"));
                }
            }
            // A periodic pulse through a fresh, fully well-formed
            // connection (cheap; catches a wedge early with a case id).
            if case % 64 == 0 {
                assert_still_serving(addr, &idx, &grid);
            }
        }
        stop.store(true, Ordering::Release);
        sentinel.join().expect("sentinel must never fail")
    });
    assert!(
        sentinel_rounds > 0,
        "the well-formed connection must have made progress during the attack"
    );

    // Post-attack: still serving, counters coherent, nothing shed (the
    // attack never fills the default queue) and plenty rejected.
    assert_still_serving(addr, &idx, &grid);
    let stats = server.stats();
    assert!(
        stats.bad_frames >= (FUZZ_CASES / 3) as u64,
        "most categories must have produced typed rejects (got {})",
        stats.bad_frames
    );
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.accepted, stats.answered + stats.shed);
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// Mid-reply socket resets: clients pipeline several fat probe frames
/// (large replies), let the server start writing, then vanish with
/// reply bytes still undelivered — the close-with-unread-data turns
/// into an RST against the server's writer. The server must shrug off
/// every reset (EPIPE/ECONNRESET on its write path), keep its books
/// (`accepted = answered + shed` — answers to vanished peers still
/// count as answered), and keep serving everyone else.
#[test]
fn mid_reply_resets_never_wedge_and_books_stay_balanced() {
    let (path, idx) = snap_file("resets");
    let server = Server::spawn(
        &path,
        ServeConfig {
            watch: None,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let ds = datagen::blocks_scaled(3, 2, 11);
    let (lo, hi) = (ds.bbox.min, ds.bbox.max);
    let grid: Vec<Coord> = (0..48)
        .map(|k| {
            Coord::new(
                lo.x + (hi.x - lo.x) * (k % 8) as f64 / 7.0,
                lo.y + (hi.y - lo.y) * (k / 8) as f64 / 5.0,
            )
        })
        .collect();
    // A fat frame: 2000 points → a multi-KB reply the kernel cannot
    // hand over in one piece once the receive window is ignored.
    let fat: Vec<Coord> = (0..2000)
        .map(|k| {
            Coord::new(
                lo.x + (hi.x - lo.x) * (k % 50) as f64 / 49.0,
                lo.y + (hi.y - lo.y) * (k / 50) as f64 / 39.0,
            )
        })
        .collect();
    let fat_frame = proto::encode_probe_request(&fat, false);

    let mut rng = Rng(SEED ^ 0x5E7);
    for round in 0..40 {
        let mut s = attack_conn(addr);
        // Pipeline 1..4 fat frames, never read a byte of the replies.
        for _ in 0..rng.below(4) + 1 {
            s.write_all(&fat_frame).unwrap();
        }
        // Give the server a beat to start (or finish) writing replies
        // into our receive buffer, then vanish: closing with unread
        // data pending makes the OS send RST, not FIN.
        std::thread::sleep(Duration::from_millis(rng.below(3)));
        drop(s);
        if round % 8 == 0 {
            assert_still_serving(addr, &idx, &grid);
        }
    }

    assert_still_serving(addr, &idx, &grid);
    let stats = server.shutdown();
    assert_eq!(
        stats.accepted,
        stats.answered + stats.shed,
        "replies to vanished peers must still be accounted answered"
    );
    assert_eq!(stats.shed, 0);
    std::fs::remove_file(&path).unwrap();
}

/// A non-atomic delta writer caught between polls: the file at the
/// delta path keeps growing while the watcher looks at it. The
/// stability gate (same signature across two consecutive polls) must
/// hold the watcher off the whole time — no premature apply, no
/// quarantine of a file still being written, epoch pinned — and the
/// moment the writer finishes and the file goes quiet, the delta
/// applies. A *stalled* writer (half a file, then silence) is the
/// opposite case: that file IS stable, fails to parse, and must be
/// quarantined so the slot frees up for a good rewrite.
#[test]
fn half_written_delta_between_polls_applies_only_once_complete() {
    use act_core::{header_checksum, save_delta_file, DeltaLink, DeltaOp};
    use act_serve::delta_path;

    let (path, idx) = snap_file("torn");
    let base_sum = header_checksum(&std::fs::read(&path).unwrap()).unwrap();
    let server = Server::spawn(
        &path,
        ServeConfig {
            // Long interval relative to the writer's 3 ms append cadence:
            // two consecutive polls can never see the growing file quiet.
            watch: Some(Duration::from_millis(200)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let ds = datagen::blocks_scaled(3, 2, 11);
    let inside = Coord::new(
        (ds.bbox.min.x + ds.bbox.max.x) / 2.0,
        (ds.bbox.min.y + ds.bbox.max.y) / 2.0,
    );
    let frame = [inside];
    let want = idx.lookup_refs(inside);

    // The delta: remove every polygon the probe point matches (so the
    // apply is observable), serialized to bytes we can tear at will.
    let mut tmp = std::env::temp_dir();
    tmp.push(format!("act-fuzz-{}-torn-delta.tmp", std::process::id()));
    let ops: Vec<DeltaOp> = want.iter().map(|&(id, _)| DeltaOp::Remove { id }).collect();
    assert!(!ops.is_empty(), "probe point must start inside a polygon");
    save_delta_file(&ops, DeltaLink::for_base(base_sum), &tmp).unwrap();
    let delta_bytes = std::fs::read(&tmp).unwrap();
    std::fs::remove_file(&tmp).unwrap();
    let dpath = delta_path(&path, 1);
    let qpath = {
        let mut name = dpath.file_name().unwrap().to_os_string();
        name.push(".quarantine");
        dpath.with_file_name(name)
    };

    // Slow-writer phase: the file grows a sliver every 20 ms for
    // ~800 ms — spanning four 200 ms polls — straight at the watched
    // path (no write-then-rename; this test IS the misbehaving writer
    // the rename discipline exists to avoid). Growth changes the file
    // length, so no two consecutive polls ever see the same signature.
    {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&dpath).unwrap();
        let mut client = Client::connect(addr).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let sliver = delta_bytes.len().div_ceil(40).max(1);
        for chunk in delta_bytes.chunks(sliver) {
            f.write_all(chunk).unwrap();
            f.flush().unwrap();
            let reply = client
                .probe(&frame, false)
                .expect("probe during torn write");
            assert_eq!(
                reply.epoch, 1,
                "a growing delta file must never be applied mid-write"
            );
            assert_eq!(reply.refs[0], want, "answers must be pinned mid-write");
            assert!(
                !qpath.exists(),
                "a growing delta file must not be quarantined"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // Writer finished; the file goes quiet and the next two polls see
    // it stable → applied.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut client = Client::connect(addr).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    loop {
        assert!(
            std::time::Instant::now() < deadline,
            "completed delta was not applied"
        );
        let reply = client.probe(&frame, false).expect("probe across apply");
        if reply.epoch == 2 {
            assert!(
                reply.refs[0].is_empty(),
                "the delta removed these polygons; epoch 2 must reflect that"
            );
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // Stalled-writer phase at the next sequence: half a file, then
    // silence. Stable + unparseable → quarantined; serving holds.
    let d2 = delta_path(&path, 2);
    let q2 = {
        let mut name = d2.file_name().unwrap().to_os_string();
        name.push(".quarantine");
        d2.with_file_name(name)
    };
    std::fs::write(&d2, &delta_bytes[..delta_bytes.len() / 2]).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !q2.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "stalled half-written delta was not quarantined"
        );
        let reply = client.probe(&frame, false).expect("probe during stall");
        assert_eq!(
            reply.epoch, 2,
            "a stalled torn delta must not move the epoch"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let stats = server.shutdown();
    assert_eq!(
        stats.quarantines, 1,
        "exactly the stalled file is quarantined"
    );
    assert_eq!(stats.accepted, stats.answered + stats.shed);
    std::fs::remove_file(&q2).unwrap();
    std::fs::remove_file(&path).unwrap();
}
