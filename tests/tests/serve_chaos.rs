//! Chaos soak: concurrent clients hammer probes across repeated
//! snapshot hot-swaps on a deliberately tiny, deliberately slow server
//! (small lane queue + pinned per-batch delay, so shedding really
//! happens) while one client stalls its reader mid-burst. The contract:
//!
//! * every frame sent gets **exactly one** reply;
//! * every non-shed reply matches an offline probe of the snapshot its
//!   echoed epoch names — hot-swapping under overload never corrupts an
//!   answer;
//! * a shed frame is only ever answered `LOADSHED` — never dropped,
//!   never answered with anything else;
//! * the final counters reconcile: `accepted = answered + shed`;
//! * and the graceful drain answers everything accepted before
//!   `shutdown()`, nothing after.
//!
//! Time-budgeted: the whole file runs in well under 5 s.

use act_core::{header_checksum, save_delta_file, ActIndex, DeltaLink, DeltaOp};
use act_serve::{
    delta_path, protocol as proto, CacheConfig, Client, ClientError, ServeConfig, Server,
};
use geom::{Coord, Polygon, Ring};
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn square(cx: f64, cy: f64, half: f64) -> Polygon {
    Polygon::new(
        Ring::new(vec![
            Coord::new(cx - half, cy - half),
            Coord::new(cx + half, cy - half),
            Coord::new(cx + half, cy + half),
            Coord::new(cx - half, cy + half),
        ]),
        vec![],
    )
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("act-chaos-{}-{name}.snap", std::process::id()));
    p
}

fn save_snapshot_to(path: &std::path::Path, idx: &ActIndex) {
    let mut bytes = Vec::new();
    idx.save_snapshot(&mut bytes).unwrap();
    std::fs::write(path, bytes).unwrap();
}

/// Points spanning both squares and the void between them, so answers
/// differ between the two snapshots at many probes.
fn chaos_points(n: usize, salt: u64) -> Vec<Coord> {
    (0..n)
        .map(|k| {
            let t = ((k as u64).wrapping_mul(2654435761).wrapping_add(salt) % 1000) as f64 / 1000.0;
            Coord::new(-74.08 + 0.16 * t, 40.70 + 0.01 * (t - 0.5))
        })
        .collect()
}

/// The index the echoed epoch was served from: the test swaps
/// A → B → A → B, so odd epochs are A, even epochs are B.
fn index_for_epoch<'a>(epoch: u32, a: &'a ActIndex, b: &'a ActIndex) -> &'a ActIndex {
    if epoch % 2 == 1 {
        a
    } else {
        b
    }
}

#[test]
fn hot_swaps_under_shedding_with_a_stalled_reader() {
    let polys_a = vec![square(-74.05, 40.70, 0.02)];
    let polys_b = vec![square(-73.95, 40.70, 0.02)];
    let idx_a = ActIndex::build(&polys_a, 15.0).unwrap();
    let idx_b = ActIndex::build(&polys_b, 15.0).unwrap();
    let path = temp_path("soak");
    save_snapshot_to(&path, &idx_a);
    let sibling_b = temp_path("soak-b");
    let sibling_a = temp_path("soak-a");

    // Tiny and slow on purpose: depth 512 lanes, one worker, 0.5 ms per
    // batch (capacity ≈ 512 k lanes/s) — the stalled client's burst
    // must overflow the queue.
    let server = Server::spawn(
        &path,
        ServeConfig {
            workers: 1,
            batch_lanes: 256,
            queue_depth_lanes: 512,
            max_inflight_frames: 32,
            batch_delay: Some(Duration::from_micros(500)),
            watch: Some(Duration::from_millis(10)),
            drain_grace: Duration::from_secs(5),
            // The hot-cell cache rides the whole soak: its epoch keying
            // must keep every verified answer exact through the swaps.
            cache: Some(CacheConfig::default()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let stop = AtomicBool::new(false);
    let client_frames = AtomicU64::new(0);
    let client_sheds = AtomicU64::new(0);
    std::thread::scope(|scope| {
        struct StopOnDrop<'a>(&'a AtomicBool);
        impl Drop for StopOnDrop<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::Release);
            }
        }
        let _stop_guard = StopOnDrop(&stop);

        // Three well-behaved clients: continuous verified traffic
        // across every swap. Each frame gets exactly one reply (the
        // blocking client errors loudly on anything else).
        let mut well_behaved = Vec::new();
        for t in 0..3u64 {
            let (stop, frames, sheds) = (&stop, &client_frames, &client_sheds);
            let (idx_a, idx_b) = (&idx_a, &idx_b);
            well_behaved.push(scope.spawn(move || {
                let mut c = Client::connect(addr).expect("chaos client connect");
                c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                let mut round = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let pts = chaos_points(32, t * 7919 + round);
                    round += 1;
                    frames.fetch_add(1, Ordering::Relaxed);
                    match c.probe(&pts, false) {
                        Ok(reply) => {
                            let idx = index_for_epoch(reply.epoch, idx_a, idx_b);
                            for (pt, got) in pts.iter().zip(&reply.refs) {
                                assert_eq!(
                                    *got,
                                    idx.lookup_refs(*pt),
                                    "epoch {} answer diverged at {pt}",
                                    reply.epoch
                                );
                            }
                        }
                        // A shed is answered LOADSHED and nothing else;
                        // the connection stays usable.
                        Err(ClientError::Server {
                            status,
                            retry_after_ms,
                        }) => {
                            assert_eq!(
                                status,
                                proto::STATUS_LOADSHED,
                                "only LOADSHED may reject a well-formed probe"
                            );
                            assert!(
                                retry_after_ms.is_some(),
                                "a shed under protocol v2 must hint when to retry"
                            );
                            sheds.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("chaos client failed: {e}"),
                    }
                }
            }));
        }

        // The stalled reader: burst 8 × 128-point frames in one write,
        // then go silent while the swaps churn, then collect. Its
        // replies must be exactly 8, in order, each OK (and correct for
        // its epoch) or LOADSHED.
        let stalled = {
            let (idx_a, idx_b) = (&idx_a, &idx_b);
            scope.spawn(move || {
                let mut s = std::net::TcpStream::connect(addr).expect("stalled connect");
                s.set_nodelay(true).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                let frames: Vec<Vec<Coord>> =
                    (0..8).map(|k| chaos_points(128, 40_000 + k)).collect();
                let mut burst = Vec::new();
                for f in &frames {
                    burst.extend_from_slice(&proto::encode_probe_request(f, false));
                }
                s.write_all(&burst).expect("stalled burst write");
                // The deliberate stall: sleep through the hot-swaps
                // with replies backing up.
                std::thread::sleep(Duration::from_millis(600));
                let mut sheds = 0u64;
                for (k, f) in frames.iter().enumerate() {
                    let body = proto::read_frame(&mut s, 1 << 22)
                        .expect("stalled read")
                        .unwrap_or_else(|| panic!("reply {k} missing: frame dropped"));
                    let (h, payload) = proto::decode_response(&body).unwrap();
                    assert_eq!(h.op, proto::OP_PROBE);
                    match h.status {
                        proto::STATUS_OK => {
                            let refs = proto::decode_probe_payload(h.n, payload).unwrap();
                            let idx = index_for_epoch(h.epoch, idx_a, idx_b);
                            for (pt, got) in f.iter().zip(&refs) {
                                assert_eq!(*got, idx.lookup_refs(*pt), "stalled frame {k} at {pt}");
                            }
                        }
                        proto::STATUS_LOADSHED => {
                            assert_eq!(h.n, 0, "LOADSHED carries no entries");
                            sheds += 1;
                        }
                        other => panic!(
                            "stalled frame {k} answered {} — only OK or LOADSHED is legal",
                            proto::status_name(other)
                        ),
                    }
                }
                // Exactly 8 replies and not a byte more in flight.
                sheds
            })
        };

        // Drive three hot-swaps while all of the above is in the air.
        let deadline = Instant::now() + Duration::from_secs(4);
        for (target_epoch, idx) in [(2u32, &idx_b), (3, &idx_a), (4, &idx_b)] {
            let sibling = if target_epoch % 2 == 0 {
                &sibling_b
            } else {
                &sibling_a
            };
            save_snapshot_to(sibling, idx);
            std::fs::rename(sibling, &path).unwrap();
            while server.epoch() < target_epoch {
                assert!(
                    Instant::now() < deadline,
                    "watcher did not reach epoch {target_epoch} in time"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        assert_eq!(server.epoch(), 4, "three swaps must have landed");

        // Let traffic ride the final epoch briefly, then stop.
        std::thread::sleep(Duration::from_millis(100));
        stop.store(true, Ordering::Release);
        for h in well_behaved {
            h.join().expect("well-behaved chaos client");
        }
        let stalled_sheds = stalled.join().expect("stalled reader");
        // The burst (1024 lanes) overflows the 512-lane queue no matter
        // how the worker interleaves: some of it must have shed.
        assert!(
            stalled_sheds > 0,
            "the stalled burst must overflow the queue"
        );
        client_sheds.fetch_add(stalled_sheds, Ordering::Relaxed);
    });

    // Every reply is in; the books must balance.
    let stats = server.stats();
    assert_eq!(
        stats.accepted,
        stats.answered + stats.shed,
        "accepted = answered + shed must reconcile after the soak"
    );
    assert_eq!(
        stats.shed,
        client_sheds.load(Ordering::Relaxed),
        "server-side sheds must equal client-observed LOADSHED replies"
    );
    assert!(
        stats.queue_high_water_lanes <= 512,
        "queue high-water {} exceeded the configured depth",
        stats.queue_high_water_lanes
    );
    assert_eq!(stats.bad_frames, 0);
    assert_eq!(stats.epoch, 4);
    // The well-behaved clients sent at least a few hundred frames and
    // every single one was answered (counted at the server): frames
    // observed client-side ≤ accepted (the stalled 8 ride on top).
    let sent = client_frames.load(Ordering::Relaxed);
    assert!(sent > 50, "chaos traffic too thin ({sent} frames)");
    assert_eq!(stats.accepted, sent + 8, "exactly one admission per frame");

    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// The drain half of the lifecycle, on its own small server: frames
/// accepted before `shutdown()` all get real answers; nothing sent after
/// is ever answered.
#[test]
fn shutdown_drains_accepted_frames_and_nothing_more() {
    let polys = vec![square(-74.0, 40.7, 0.02)];
    let idx = ActIndex::build(&polys, 15.0).unwrap();
    let path = temp_path("drain");
    save_snapshot_to(&path, &idx);

    // Slow worker so the queue is demonstrably non-empty at shutdown.
    let server = Server::spawn(
        &path,
        ServeConfig {
            workers: 1,
            batch_lanes: 64,
            batch_delay: Some(Duration::from_millis(2)),
            max_inflight_frames: 16,
            watch: None,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.set_nodelay(true).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let frames: Vec<Vec<Coord>> = (0..8).map(|k| chaos_points(64, 90_000 + k)).collect();
    let mut burst = Vec::new();
    for f in &frames {
        burst.extend_from_slice(&proto::encode_probe_request(f, false));
    }
    s.write_all(&burst).unwrap();

    // Wait until every frame is *accepted* (admitted, not yet all
    // answered — the slow worker guarantees a backlog), then shut down.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.stats().accepted < frames.len() as u64 {
        assert!(Instant::now() < deadline, "frames were never accepted");
        std::thread::sleep(Duration::from_millis(1));
    }
    server.shutdown();

    // Everything accepted pre-shutdown is answered, in order, for real.
    for (k, f) in frames.iter().enumerate() {
        let body = proto::read_frame(&mut s, 1 << 22)
            .expect("post-drain read")
            .unwrap_or_else(|| panic!("drain dropped frame {k}"));
        let (h, payload) = proto::decode_response(&body).unwrap();
        assert_eq!(
            (h.op, h.status),
            (proto::OP_PROBE, proto::STATUS_OK),
            "drained frame {k} must get its real answer"
        );
        let refs = proto::decode_probe_payload(h.n, payload).unwrap();
        for (pt, got) in f.iter().zip(&refs) {
            assert_eq!(*got, idx.lookup_refs(*pt), "drained frame {k} at {pt}");
        }
    }
    // …and nothing more: the stream ends. A frame sent now is never
    // answered (the listener is gone; the write may succeed into a dead
    // socket, but no reply can ever arrive).
    let _ = s.write_all(&proto::encode_probe_request(&frames[0], false));
    let mut rest = Vec::new();
    match s.read_to_end(&mut rest) {
        Ok(n) => assert_eq!(n, 0, "no answers after shutdown"),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::BrokenPipe
            ),
            "unexpected post-shutdown error: {e}"
        ),
    }
    std::fs::remove_file(&path).unwrap();
}

/// The cache-invalidation contract, asserted literally: a deliberately
/// **warm** hot-cell cache (the same hot set probed repeatedly) rides a
/// full-snapshot swap and then a broadcast-delta apply, and every OK
/// reply still equals an offline probe of the index its echoed epoch
/// names — with cache hits observed at every epoch, so the exactness is
/// proven *of cached answers*, not of a cache that never engaged. A
/// single stale entry surviving a flip would fail the oracle check on
/// the very next warm pass.
#[test]
fn warm_cache_stays_exact_across_full_and_delta_epoch_flips() {
    // Three versions: base (epoch 1), a full swap adding a second
    // square (epoch 2), a delta insert overlapping the hot set's
    // centerline (epoch 3) — each flip changes many hot answers.
    let polys1 = vec![square(-74.05, 40.70, 0.02)];
    let idx1 = ActIndex::build(&polys1, 15.0).unwrap();
    let mut polys2 = polys1.clone();
    polys2.push(square(-73.95, 40.70, 0.02));
    let idx2 = ActIndex::build(&polys2, 15.0).unwrap();
    let delta_poly = square(-74.00, 40.70, 0.015);
    let mut polys3 = polys2.clone();
    polys3.push(delta_poly.clone());
    let idx3 = ActIndex::build(&polys3, 15.0).unwrap();

    let path = temp_path("warm-cache");
    save_snapshot_to(&path, &idx1);
    let server = Server::spawn(
        &path,
        ServeConfig {
            workers: 1,
            watch: Some(Duration::from_millis(10)),
            cache: Some(CacheConfig::default()),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // One fixed hot set for the whole test: pass ≥ 2 within an epoch
    // answers from cache, so each post-flip pass would surface any
    // entry the epoch bump failed to invalidate.
    let pts = chaos_points(64, 99);
    let oracles: [&ActIndex; 3] = [&idx1, &idx2, &idx3];
    let warm_passes = |client: &mut Client, epoch: u32| {
        let before = server.stats().cache_hits;
        for pass in 0..3 {
            let reply = client.probe(&pts, false).unwrap();
            assert_eq!(reply.epoch, epoch, "pass {pass} echoes the live epoch");
            let idx = oracles[(epoch - 1) as usize];
            for (pt, got) in pts.iter().zip(&reply.refs) {
                assert_eq!(
                    *got,
                    idx.lookup_refs(*pt),
                    "epoch {epoch} pass {pass} diverged from the oracle at {pt}"
                );
            }
        }
        assert!(
            server.stats().cache_hits > before,
            "epoch {epoch}: the warm passes must actually hit the cache"
        );
    };
    let wait_epoch = |at_least: u32| {
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.epoch() < at_least {
            assert!(
                Instant::now() < deadline,
                "watcher never reached epoch {at_least}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    };

    // Epoch 1: fill, then answer warm.
    warm_passes(&mut client, 1);

    // Full-snapshot swap against the warm cache.
    let sibling = temp_path("warm-cache-next");
    save_snapshot_to(&sibling, &idx2);
    std::fs::rename(&sibling, &path).unwrap();
    wait_epoch(2);
    warm_passes(&mut client, 2);

    // Broadcast-delta apply against the (re-)warmed cache.
    let base = header_checksum(&std::fs::read(&path).unwrap()).unwrap();
    let ops = [DeltaOp::Insert {
        id: polys2.len() as u32,
        polygon: delta_poly,
    }];
    save_delta_file(&ops, DeltaLink::for_base(base), &delta_path(&path, 1)).unwrap();
    wait_epoch(3);
    warm_passes(&mut client, 3);

    let stats = server.stats();
    assert_eq!(stats.epoch, 3);
    assert!(stats.cache_hits > 0 && stats.cache_misses > 0);
    assert_eq!(stats.accepted, stats.answered + stats.shed);
    server.shutdown();
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(delta_path(&path, 1));
}
