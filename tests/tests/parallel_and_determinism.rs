//! Parallel-driver equivalence and whole-pipeline determinism.

use act_core::{join_parallel_cells, ActIndex};
use datagen::PointGen;

#[test]
fn parallel_join_equals_sequential_on_datasets() {
    let ds = datagen::neighborhoods(42);
    let index = ActIndex::build(&ds.polygons, 15.0).unwrap();
    let pts = PointGen::nyc_taxi_like(ds.bbox, 7).take_vec(100_000);
    let cells: Vec<_> = pts.iter().map(|&p| act_core::coord_to_cell(p)).collect();

    let mut seq = vec![0u64; ds.polygons.len()];
    let seq_stats = act_core::join_approx_cells(&index, &cells, &mut seq);

    for threads in [1usize, 2, 3, 4, 7, 16, 32] {
        let (par, par_stats) = join_parallel_cells(&index, &cells, ds.polygons.len(), threads);
        assert_eq!(par, seq, "counts differ at {threads} threads");
        assert_eq!(par_stats, seq_stats, "stats differ at {threads} threads");
    }
}

#[test]
fn parallel_join_more_threads_than_points() {
    let ds = datagen::blocks_scaled(4, 3, 1);
    let index = ActIndex::build(&ds.polygons, 60.0).unwrap();
    let pts = PointGen::nyc_taxi_like(ds.bbox, 7).take_vec(5);
    let cells: Vec<_> = pts.iter().map(|&p| act_core::coord_to_cell(p)).collect();
    let (counts, stats) = join_parallel_cells(&index, &cells, ds.polygons.len(), 16);
    assert_eq!(stats.points, 5);
    assert_eq!(
        counts.iter().sum::<u64>(),
        stats.true_hits + stats.candidate_hits
    );
}

#[test]
fn full_pipeline_is_deterministic() {
    // Same seed ⇒ identical datasets, identical index structure (stats),
    // identical join counts.
    let build = || {
        let ds = datagen::neighborhoods(99);
        let index = ActIndex::build(&ds.polygons, 15.0).unwrap();
        let pts = PointGen::nyc_taxi_like(ds.bbox, 5).take_vec(20_000);
        let mut counts = vec![0u64; ds.polygons.len()];
        act_core::join_approx_coords(&index, &pts, &mut counts);
        (
            index.stats().indexed_cells,
            index.stats().act_bytes,
            index.stats().lookup_table_bytes,
            counts,
        )
    };
    let a = build();
    let b = build();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let cells = |seed| {
        let ds = datagen::neighborhoods(seed);
        ActIndex::build(&ds.polygons, 60.0)
            .unwrap()
            .stats()
            .indexed_cells
    };
    assert_ne!(cells(1), cells(2));
}
