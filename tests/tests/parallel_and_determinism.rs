//! Parallel-driver equivalence and whole-pipeline determinism — for both
//! hot paths: the parallel index build (must be byte-identical to serial)
//! and the batched/multithreaded probe drivers (must count identically to
//! the scalar sequential join).

use act_core::{join_approx_cells_batch, join_parallel_cells, ActIndex};
use datagen::PointGen;
use jobs::JobPool;

#[test]
fn parallel_join_equals_sequential_on_datasets() {
    let ds = datagen::neighborhoods(42);
    let index = ActIndex::build(&ds.polygons, 15.0).unwrap();
    let pts = PointGen::nyc_taxi_like(ds.bbox, 7).take_vec(100_000);
    let cells: Vec<_> = pts.iter().map(|&p| act_core::coord_to_cell(p)).collect();

    let mut seq = vec![0u64; ds.polygons.len()];
    let seq_stats = act_core::join_approx_cells(&index, &cells, &mut seq);

    for threads in [1usize, 2, 3, 4, 7, 16, 32] {
        let (par, par_stats) = join_parallel_cells(&index, &cells, ds.polygons.len(), threads);
        assert_eq!(par, seq, "counts differ at {threads} threads");
        assert_eq!(par_stats, seq_stats, "stats differ at {threads} threads");
    }
}

#[test]
fn parallel_join_more_threads_than_points() {
    let ds = datagen::blocks_scaled(4, 3, 1);
    let index = ActIndex::build(&ds.polygons, 60.0).unwrap();
    let pts = PointGen::nyc_taxi_like(ds.bbox, 7).take_vec(5);
    let cells: Vec<_> = pts.iter().map(|&p| act_core::coord_to_cell(p)).collect();
    let (counts, stats) = join_parallel_cells(&index, &cells, ds.polygons.len(), 16);
    assert_eq!(stats.points, 5);
    assert_eq!(
        counts.iter().sum::<u64>(),
        stats.true_hits + stats.candidate_hits
    );
}

/// The tentpole determinism contract: whatever the pool width, the
/// parallel build's node arena is byte-identical to the serial build's and
/// every structural BuildStats counter matches (wall-time fields may of
/// course differ).
#[test]
fn parallel_build_byte_identical_on_dataset() {
    let ds = datagen::neighborhoods(42);
    let serial = ActIndex::build(&ds.polygons, 15.0).unwrap();
    for threads in [1usize, 2, 4, 7] {
        let pool = JobPool::new(threads);
        let par = ActIndex::build_parallel(&ds.polygons, 15.0, &pool).unwrap();
        assert_eq!(
            par.act().slots(),
            serial.act().slots(),
            "node arena differs at {threads} threads"
        );
        assert_eq!(par.act().roots(), serial.act().roots());
        let (s, p) = (serial.stats(), par.stats());
        assert_eq!(p.precision_m, s.precision_m);
        assert_eq!(p.terminal_level, s.terminal_level);
        assert_eq!(p.covering_cells, s.covering_cells);
        assert_eq!(p.indexed_cells, s.indexed_cells);
        assert_eq!(p.denormalized_slots, s.denormalized_slots);
        assert_eq!(p.pushdown_splits, s.pushdown_splits);
        assert_eq!(p.act_bytes, s.act_bytes);
        assert_eq!(p.lookup_table_bytes, s.lookup_table_bytes);
        // The two builds must also answer queries identically.
        let pts = PointGen::nyc_taxi_like(ds.bbox, 3).take_vec(5_000);
        for &pt in &pts {
            assert_eq!(par.probe_coord(pt), serial.probe_coord(pt));
        }
    }
}

#[test]
fn batched_join_equals_scalar_on_dataset() {
    let ds = datagen::neighborhoods(42);
    let index = ActIndex::build(&ds.polygons, 15.0).unwrap();
    let pts = PointGen::nyc_taxi_like(ds.bbox, 7).take_vec(50_000);
    let cells: Vec<_> = pts.iter().map(|&p| act_core::coord_to_cell(p)).collect();

    let mut scalar = vec![0u64; ds.polygons.len()];
    let scalar_stats = act_core::join_approx_cells(&index, &cells, &mut scalar);
    for batch in [1usize, 16, 64, 256, 4096] {
        let mut counts = vec![0u64; ds.polygons.len()];
        let stats = join_approx_cells_batch(&index, &cells, &mut counts, batch);
        assert_eq!(counts, scalar, "counts differ at batch={batch}");
        assert_eq!(stats, scalar_stats, "stats differ at batch={batch}");
    }
}

#[test]
fn full_pipeline_is_deterministic() {
    // Same seed ⇒ identical datasets, identical index structure (stats),
    // identical join counts.
    let build = || {
        let ds = datagen::neighborhoods(99);
        let index = ActIndex::build(&ds.polygons, 15.0).unwrap();
        let pts = PointGen::nyc_taxi_like(ds.bbox, 5).take_vec(20_000);
        let mut counts = vec![0u64; ds.polygons.len()];
        act_core::join_approx_coords(&index, &pts, &mut counts);
        (
            index.stats().indexed_cells,
            index.stats().act_bytes,
            index.stats().lookup_table_bytes,
            counts,
        )
    };
    let a = build();
    let b = build();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let cells = |seed| {
        let ds = datagen::neighborhoods(seed);
        ActIndex::build(&ds.polygons, 60.0)
            .unwrap()
            .stats()
            .indexed_cells
    };
    assert_ne!(cells(1), cells(2));
}
