//! Full-scale (paper-sized) runs, compiled out unless the `full-scale`
//! feature is enabled — run explicitly:
//!
//! ```text
//! cargo test --release -p act-tests --features full-scale
//! ```
//!
//! Runtime budget: ~10 s wall in release on one core (census serial +
//! parallel builds dominate), a few minutes in the dev profile. CI runs
//! these only via the manual-dispatch `full-scale` workflow.
#![cfg(feature = "full-scale")]

use act_core::ActIndex;
use datagen::PointGen;

#[test]
fn census_full_60m_builds_and_probes() {
    let ds = datagen::census_blocks(42);
    assert_eq!(ds.polygons.len(), 39_184);
    let index = ActIndex::build(&ds.polygons, 60.0).unwrap();
    assert!(index.stats().indexed_cells > 1_000_000);

    let pts = PointGen::nyc_taxi_like(ds.bbox, 7).take_vec(200_000);
    let mut counts = vec![0u64; ds.polygons.len()];
    let stats = act_core::join_approx_coords(&index, &pts, &mut counts);
    assert!(stats.misses < 2_000, "misses {}", stats.misses);
    // The precision guarantee on a sample.
    for &p in pts.iter().take(2_000) {
        for (id, interior) in index.lookup_refs(p) {
            let d = ds.polygons[id as usize].distance_meters(p);
            if interior {
                assert_eq!(d, 0.0);
            } else {
                assert!(d <= 60.0 * 1.0001, "candidate at {d} m");
            }
        }
    }
}

// Paper-sized determinism check: the 4-thread build of the full census
// dataset must be byte-identical to the serial one.
#[test]
fn census_parallel_build_matches_serial() {
    let ds = datagen::census_blocks(42);
    let serial = ActIndex::build(&ds.polygons, 60.0).unwrap();
    let pool = jobs::JobPool::new(4);
    let par = ActIndex::build_parallel(&ds.polygons, 60.0, &pool).unwrap();
    assert_eq!(par.act().slots(), serial.act().slots());
    assert_eq!(par.act().roots(), serial.act().roots());
    assert_eq!(par.stats().indexed_cells, serial.stats().indexed_cells);
    assert_eq!(par.stats().pushdown_splits, serial.stats().pushdown_splits);
}

// Boroughs at 4 m: finest feasible precision on the complex tier.
#[test]
fn boroughs_full_4m_guarantee() {
    let ds = datagen::boroughs(42);
    let index = ActIndex::build(&ds.polygons, 4.0).unwrap();
    let pts = PointGen::nyc_taxi_like(ds.bbox, 9).take_vec(50_000);
    for &p in &pts {
        for (id, interior) in index.lookup_refs(p) {
            let d = ds.polygons[id as usize].distance_meters(p);
            if interior {
                assert_eq!(d, 0.0);
            } else {
                assert!(d <= 4.0 * 1.0001, "candidate at {d} m");
            }
        }
    }
}
