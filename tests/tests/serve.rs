//! End-to-end serving tests: the golden fixture through the mmap path,
//! the act-serve TCP round trip against the in-process joins, and a
//! zero-dropped-requests snapshot hot-swap.

use act_core::{ActIndex, MappedSnapshot, Probe, Refiner, SnapshotBuf};
use act_serve::{Client, ServeConfig, Server};
use datagen::PointGen;
use geom::{Coord, Polygon, Ring};
use std::time::{Duration, Instant};

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/snapshot_golden_v1.snap")
}

fn square(cx: f64, cy: f64, half: f64) -> Polygon {
    Polygon::new(
        Ring::new(vec![
            Coord::new(cx - half, cy - half),
            Coord::new(cx + half, cy - half),
            Coord::new(cx + half, cy + half),
            Coord::new(cx - half, cy + half),
        ]),
        vec![],
    )
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("act-serve-it-{}-{name}.snap", std::process::id()));
    p
}

fn save_snapshot_to(path: &std::path::Path, idx: &ActIndex) {
    let mut bytes = Vec::new();
    idx.save_snapshot(&mut bytes).unwrap();
    std::fs::write(path, bytes).unwrap();
}

/// A probe grid over the golden fixture's dataset (the seeded 3×2
/// lattice near NYC), dense enough to hit interiors, boundaries, and
/// misses.
fn fixture_probe_grid() -> Vec<Coord> {
    let ds = datagen::blocks_scaled(3, 2, 11);
    let (lo, hi) = (ds.bbox.min, ds.bbox.max);
    let mut pts = Vec::new();
    for i in 0..60 {
        for j in 0..40 {
            pts.push(Coord::new(
                lo.x - 0.01 + (hi.x - lo.x + 0.02) * i as f64 / 59.0,
                lo.y - 0.01 + (hi.y - lo.y + 0.02) * j as f64 / 39.0,
            ));
        }
    }
    pts
}

#[test]
fn golden_fixture_mmap_view_equals_heap_load() {
    let path = fixture_path();
    let mapped = MappedSnapshot::open(&path).expect("fixture must map");
    assert_eq!(
        cfg!(unix),
        mapped.is_mmap(),
        "unix targets must really mmap"
    );
    let heap = ActIndex::load_snapshot(&mut std::fs::read(&path).unwrap().as_slice())
        .expect("fixture must heap-load");

    // The mapped bytes are the file's bytes.
    assert_eq!(mapped.bytes(), std::fs::read(&path).unwrap().as_slice());

    // Scalar + batch probe equality across the grid.
    let pts = fixture_probe_grid();
    for &c in &pts {
        assert_eq!(mapped.probe_coord(c), heap.probe_coord(c), "at {c}");
        assert_eq!(mapped.lookup_refs(c), heap.lookup_refs(c), "at {c}");
    }
    let cells: Vec<_> = pts.iter().map(|&c| act_core::coord_to_cell(c)).collect();
    let mut got = vec![Probe::Miss; cells.len()];
    let mut want = vec![Probe::Miss; cells.len()];
    mapped.probe_batch(&cells, &mut got);
    heap.probe_batch(&cells, &mut want);
    assert_eq!(got, want);

    // And the mapped snapshot deep-copies back to the identical index.
    assert!(mapped.to_owned_index().identical_to(&heap));
}

#[test]
fn golden_fixture_served_via_deliberately_unaligned_buffer() {
    let bytes = std::fs::read(fixture_path()).unwrap();
    // Place the fixture at an odd offset inside a larger buffer so the
    // slice is guaranteed misaligned, whatever the allocator did.
    let mut padded = vec![0u8; bytes.len() + 8];
    let base = padded.as_ptr() as usize;
    let off = if base.is_multiple_of(8) {
        1
    } else {
        8 - base % 8 + 1
    };
    padded[off..off + bytes.len()].copy_from_slice(&bytes);
    let shifted = &padded[off..off + bytes.len()];

    // The strict zero-copy view refuses; the fallback loader serves it.
    assert!(act_core::ActIndexView::from_bytes(shifted).is_err());
    let snap = MappedSnapshot::from_unaligned_bytes(shifted).expect("fallback must copy + load");
    assert!(!snap.is_mmap());

    let aligned = SnapshotBuf::from_bytes(&bytes).unwrap();
    let view = aligned.view().unwrap();
    for &c in &fixture_probe_grid() {
        assert_eq!(snap.probe_coord(c), view.probe_coord(c), "at {c}");
    }
}

#[test]
fn server_roundtrip_matches_join_exact_counts() {
    let ds = datagen::blocks_scaled(4, 3, 7);
    let precision = 60.0;
    let idx = ActIndex::build(&ds.polygons, precision).unwrap();
    let path = temp_path("roundtrip");
    save_snapshot_to(&path, &idx);

    let server = Server::spawn(
        &path,
        ServeConfig {
            refiner: Some(Refiner::new(&ds.polygons)),
            watch: None,
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let points = PointGen::nyc_taxi_like(ds.bbox, 3).take_vec(20_000);
    let refiner = Refiner::new(&ds.polygons);
    let mut exact_want = vec![0u64; ds.polygons.len()];
    act_core::join_exact(&idx, &refiner, &points, &mut exact_want);
    let mut approx_want = vec![0u64; ds.polygons.len()];
    act_core::join_approx_coords(&idx, &points, &mut approx_want);

    let mut client = Client::connect(server.addr()).unwrap();
    let mut exact_got = vec![0u64; ds.polygons.len()];
    let mut approx_got = vec![0u64; ds.polygons.len()];
    for chunk in points.chunks(1024) {
        let reply = client.probe(chunk, true).unwrap();
        assert_eq!(reply.refs.len(), chunk.len());
        for refs in &reply.refs {
            for &(id, hit) in refs {
                assert!(hit, "exact mode only reports memberships");
                exact_got[id as usize] += 1;
            }
        }
        let reply = client.probe(chunk, false).unwrap();
        for refs in &reply.refs {
            for &(id, _) in refs {
                approx_got[id as usize] += 1;
            }
        }
    }
    assert_eq!(exact_got, exact_want, "served exact counts ≡ join_exact");
    assert_eq!(
        approx_got, approx_want,
        "served approx counts ≡ join_approx_coords"
    );
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// The rolling-restart story: save snapshot A, serve it, drop snapshot B
/// over the path, and require (a) the watcher swaps within its poll
/// budget, (b) **zero** requests fail across the swap, (c) pre-swap
/// answers match A and post-swap answers match B.
#[test]
fn hot_swap_drops_no_requests_and_changes_answers() {
    let polys_a = vec![square(-74.05, 40.70, 0.02)];
    let polys_b = vec![square(-73.95, 40.70, 0.02)];
    let idx_a = ActIndex::build(&polys_a, 15.0).unwrap();
    let idx_b = ActIndex::build(&polys_b, 15.0).unwrap();
    let path = temp_path("hotswap");
    save_snapshot_to(&path, &idx_a);

    let server = Server::spawn(
        &path,
        ServeConfig {
            watch: Some(Duration::from_millis(15)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // One probe set that distinguishes the epochs: in A only, in B only.
    let in_a = Coord::new(-74.05, 40.70);
    let in_b = Coord::new(-73.95, 40.70);
    let frame = [in_a, in_b];
    let want_a = (idx_a.lookup_refs(in_a), idx_a.lookup_refs(in_b));
    let want_b = (idx_b.lookup_refs(in_a), idx_b.lookup_refs(in_b));
    assert_ne!(want_a, want_b, "the swap must be observable");

    // Continuous traffic; swap the file mid-stream (sibling + rename,
    // the atomic replacement the watcher documents).
    let reply = client.probe(&frame, false).expect("pre-swap probe");
    assert_eq!(reply.epoch, 1);
    assert_eq!((reply.refs[0].clone(), reply.refs[1].clone()), want_a);

    let sibling = temp_path("hotswap-sibling");
    save_snapshot_to(&sibling, &idx_b);
    std::fs::rename(&sibling, &path).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    let mut requests = 0u64;
    let epoch_two = loop {
        assert!(
            Instant::now() < deadline,
            "watcher did not swap within 10 s ({requests} requests served)"
        );
        // Every request across the swap must succeed — a dropped or
        // failed request here is exactly the outage hot-swap exists to
        // prevent.
        let reply = client.probe(&frame, false).expect("probe across the swap");
        requests += 1;
        match reply.epoch {
            1 => assert_eq!((reply.refs[0].clone(), reply.refs[1].clone()), want_a),
            2 => break reply,
            e => panic!("unexpected epoch {e}"),
        }
    };
    assert_eq!(
        (epoch_two.refs[0].clone(), epoch_two.refs[1].clone()),
        want_b,
        "post-swap answers must come from snapshot B"
    );
    assert_eq!(server.epoch(), 2);
    // A fresh connection sees the new epoch too.
    let mut fresh = Client::connect(server.addr()).unwrap();
    assert_eq!(fresh.ping().unwrap().epoch, 2);

    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// The live-churn story: serve a base snapshot, drop ACTDLT01 delta
/// files beside it, and require (a) each delta is applied within the
/// poll budget *without remapping the base*, (b) **zero** requests fail
/// across every epoch flip, (c) answers change exactly as the deltas
/// dictate, and (d) the STATS counters attribute the updates to delta
/// applies.
#[test]
fn delta_hot_swap_drops_no_requests_and_changes_answers() {
    use act_core::{header_checksum, save_delta_file, DeltaLink, DeltaOp};
    use act_serve::delta_path;

    let polys_a = vec![square(-74.05, 40.70, 0.02)];
    let idx_a = ActIndex::build(&polys_a, 15.0).unwrap();
    let path = temp_path("deltaswap");
    save_snapshot_to(&path, &idx_a);
    let base_sum = header_checksum(&std::fs::read(&path).unwrap()).unwrap();

    let server = Server::spawn(
        &path,
        ServeConfig {
            watch: Some(Duration::from_millis(15)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let in_a = Coord::new(-74.05, 40.70);
    let in_b = Coord::new(-73.95, 40.70);
    let frame = [in_a, in_b];
    let reply = client.probe(&frame, false).expect("pre-delta probe");
    assert_eq!(reply.epoch, 1);
    assert!(!reply.refs[0].is_empty() && reply.refs[1].is_empty());

    // Delta 1: a new polygon appears at in_b. Write-then-rename so the
    // watcher never sees a half-written delta.
    let added = square(-73.95, 40.70, 0.02);
    let tmp = temp_path("deltaswap-d1-tmp");
    let (link, _) = save_delta_file(
        &[DeltaOp::Insert {
            id: 1,
            polygon: added,
        }],
        DeltaLink::for_base(base_sum),
        &tmp,
    )
    .unwrap();
    std::fs::rename(&tmp, delta_path(&path, 1)).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    let mut requests = 0u64;
    let epoch_two = loop {
        assert!(
            Instant::now() < deadline,
            "watcher did not apply delta 1 within 10 s ({requests} requests served)"
        );
        // Every request across the flip must succeed: delta application
        // publishes a new epoch without taking the server down.
        let reply = client
            .probe(&frame, false)
            .expect("probe across delta apply");
        requests += 1;
        match reply.epoch {
            1 => assert!(reply.refs[1].is_empty()),
            2 => break reply,
            e => panic!("unexpected epoch {e}"),
        }
    };
    assert!(
        !epoch_two.refs[0].is_empty() && !epoch_two.refs[1].is_empty(),
        "post-delta answers must include the inserted polygon"
    );

    // Delta 2: the original polygon goes away.
    let tmp = temp_path("deltaswap-d2-tmp");
    save_delta_file(&[DeltaOp::Remove { id: 0 }], link, &tmp).unwrap();
    std::fs::rename(&tmp, delta_path(&path, 2)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    let epoch_three = loop {
        assert!(Instant::now() < deadline, "watcher did not apply delta 2");
        let reply = client
            .probe(&frame, false)
            .expect("probe across delta apply");
        match reply.epoch {
            2 => {}
            3 => break reply,
            e => panic!("unexpected epoch {e}"),
        }
    };
    assert!(
        epoch_three.refs[0].is_empty() && !epoch_three.refs[1].is_empty(),
        "post-removal answers must drop polygon 0"
    );

    // The counters attribute both flips to delta applies, and a fresh
    // connection lands on the delta'd epoch.
    let mut fresh = Client::connect(server.addr()).unwrap();
    let counters = fresh.stats().unwrap().counters;
    assert_eq!(
        counters.delta_applies, 2,
        "both updates must be delta applies"
    );
    assert_eq!(counters.swaps, 2, "no full reload happened");
    assert_eq!(fresh.ping().unwrap().epoch, 3);

    server.shutdown();
    for seq in 1..=2 {
        let _ = std::fs::remove_file(delta_path(&path, seq));
    }
    std::fs::remove_file(&path).unwrap();
}
