//! Golden-snapshot regression: a committed fixture (built from a seeded
//! `datagen` lattice) pins snapshot format version 1. Today's loader must
//! read it, and today's writer must reproduce it **byte for byte** —
//! any layout change breaks this test until the format version is bumped
//! and the fixture re-blessed (see the `act_core::snapshot` module docs).
//!
//! Re-bless after an intentional format change:
//!
//! ```sh
//! ACT_BLESS_SNAPSHOT=1 cargo test -p act-tests --test snapshot_golden
//! ```
//!
//! The fixture's trie/roots/table bytes are also cross-checked against a
//! fresh build of the same seeded dataset, so the fixture can never
//! drift away from what the pipeline actually produces. (The fresh-build
//! comparison assumes the platform's f64 math matches the blessing
//! machine's — true for the tier-1 linux-x86_64 CI; the byte-for-byte
//! writer check is platform-independent.)

use act_core::snapshot::SnapshotBuf;
use act_core::ActIndex;
use datagen::PointGen;

/// The seeded dataset the fixture was built from. Changing any of these
/// constants requires re-blessing the fixture.
const GRID: (usize, usize) = (3, 2);
const SEED: u64 = 11;
// 4 km keeps the fixture tiny (11 trie nodes ≈ 23 kB) while still
// exercising a multi-node arena and a non-empty lookup table.
const PRECISION_M: f64 = 4000.0;

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/snapshot_golden_v1.snap")
}

fn build_fixture_index() -> (ActIndex, datagen::Dataset) {
    let ds = datagen::blocks_scaled(GRID.0, GRID.1, SEED);
    let idx = ActIndex::build(&ds.polygons, PRECISION_M).unwrap();
    (idx, ds)
}

#[test]
fn golden_snapshot_round_trips_byte_for_byte() {
    let path = fixture_path();
    let (fresh, ds) = build_fixture_index();

    if std::env::var("ACT_BLESS_SNAPSHOT").is_ok() {
        let mut bytes = Vec::new();
        fresh.save_snapshot(&mut bytes).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        panic!(
            "blessed {} ({} bytes) — rerun without ACT_BLESS_SNAPSHOT",
            path.display(),
            bytes.len()
        );
    }

    let fixture = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); bless it with \
             ACT_BLESS_SNAPSHOT=1 cargo test -p act-tests --test snapshot_golden",
            path.display()
        )
    });

    // 1. Today's loader reads yesterday's bytes (owned + zero-copy).
    let loaded = ActIndex::load_snapshot(&mut fixture.as_slice())
        .expect("fixture must load with the current loader");
    let buf = SnapshotBuf::from_bytes(&fixture).unwrap();
    let view = buf.view().expect("fixture must open as a zero-copy view");

    // 2. Today's writer reproduces the fixture byte for byte.
    let mut rewritten = Vec::new();
    loaded.save_snapshot(&mut rewritten).unwrap();
    assert!(
        rewritten == fixture,
        "writer no longer reproduces the v1 fixture byte-for-byte; \
         if the format change is intentional, bump FORMAT_VERSION and re-bless"
    );

    // 3. The fixture is what the pipeline produces today: structural
    //    equality with a fresh build (wall-time stats excluded).
    assert_eq!(loaded.act().slots(), fresh.act().slots());
    assert_eq!(loaded.act().roots(), fresh.act().roots());
    assert_eq!(loaded.stats().indexed_cells, fresh.stats().indexed_cells);
    assert_eq!(loaded.stats().covering_cells, fresh.stats().covering_cells);
    assert_eq!(loaded.stats().precision_m, fresh.stats().precision_m);
    assert_eq!(loaded.stats().terminal_level, fresh.stats().terminal_level);
    assert_eq!(
        loaded.stats().lookup_table_bytes,
        fresh.stats().lookup_table_bytes
    );
    assert_eq!(loaded.stats().act_bytes, fresh.stats().act_bytes);

    // 4. Probes through fixture, view, and fresh index all agree.
    let pts = PointGen::nyc_taxi_like(ds.bbox, 3).take_vec(2_000);
    for &p in &pts {
        let want = fresh.lookup_refs(p);
        assert_eq!(loaded.lookup_refs(p), want, "fixture disagrees at {p}");
        assert_eq!(view.lookup_refs(p), want, "view disagrees at {p}");
    }
}

/// A delta lineage rooted at the golden v1 fixture: save a chain of
/// ACTDLT01 deltas against the fixture's checksum, apply them in order,
/// and verify the result equals the same edits replayed on a fresh load.
/// The fixture file itself is read-only here — the lineage rides beside
/// it in a temp dir — so v1 bytes stay pinned while the delta format
/// proves it can extend them.
#[test]
fn golden_fixture_anchors_a_delta_lineage() {
    use act_core::{apply_delta_file, header_checksum, save_delta_file, DeltaLink, DeltaOp};
    use geom::{Coord, Polygon, Ring};

    let fixture = std::fs::read(fixture_path()).expect("golden fixture present");
    let base_sum = header_checksum(&fixture).expect("fixture has a whole header");
    let (_, ds) = build_fixture_index();

    let square = |cx: f64, cy: f64, h: f64| {
        Polygon::new(
            Ring::new(vec![
                Coord::new(cx - h, cy - h),
                Coord::new(cx + h, cy - h),
                Coord::new(cx + h, cy + h),
                Coord::new(cx - h, cy + h),
            ]),
            vec![],
        )
    };
    let c = Coord::new(
        (ds.bbox.min.x + ds.bbox.max.x) / 2.0,
        (ds.bbox.min.y + ds.bbox.max.y) / 2.0,
    );
    let added = square(c.x, c.y, 0.002);
    let new_id = ds.polygons.len() as u32;

    let dir = std::env::temp_dir().join(format!("act-golden-delta-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let d1 = dir.join("v1.snap.d1");
    let d2 = dir.join("v1.snap.d2");

    // Save the chain: insert a polygon, then remove polygon 0.
    let link0 = DeltaLink::for_base(base_sum);
    let (link1, _) = save_delta_file(
        &[DeltaOp::Insert {
            id: new_id,
            polygon: added.clone(),
        }],
        link0,
        &d1,
    )
    .unwrap();
    save_delta_file(&[DeltaOp::Remove { id: 0 }], link1, &d2).unwrap();

    // Apply to a fixture load, in lineage order.
    let mut live = ActIndex::load_snapshot(&mut fixture.as_slice()).unwrap();
    let link = apply_delta_file(&mut live, &d1, link0).unwrap();
    apply_delta_file(&mut live, &d2, link).unwrap();

    // Out-of-order and replayed applies must be rejected without effect.
    let mut fresh_load = ActIndex::load_snapshot(&mut fixture.as_slice()).unwrap();
    assert!(
        apply_delta_file(&mut fresh_load, &d2, link0).is_err(),
        "skipping delta 1 must fail the lineage check"
    );
    assert!(
        apply_delta_file(&mut live, &d1, link).is_err(),
        "replaying delta 1 after delta 2 must fail the lineage check"
    );

    // The applied result equals the same edits made directly.
    let mut want = ActIndex::load_snapshot(&mut fixture.as_slice()).unwrap();
    want.insert_polygon(new_id, &added).unwrap();
    assert!(want.remove_polygon(0));
    let pts = PointGen::nyc_taxi_like(ds.bbox, 7).take_vec(2_000);
    for &p in &pts {
        assert_eq!(
            live.lookup_refs(p),
            want.lookup_refs(p),
            "delta-applied fixture diverged at {p}"
        );
    }
    assert!(
        !live.lookup_refs(c).is_empty(),
        "inserted polygon must probe"
    );

    // The fixture on disk is untouched by the whole exercise.
    assert_eq!(std::fs::read(fixture_path()).unwrap(), fixture);
    std::fs::remove_dir_all(&dir).ok();
}
