//! Golden-snapshot regression: a committed fixture (built from a seeded
//! `datagen` lattice) pins snapshot format version 1. Today's loader must
//! read it, and today's writer must reproduce it **byte for byte** —
//! any layout change breaks this test until the format version is bumped
//! and the fixture re-blessed (see the `act_core::snapshot` module docs).
//!
//! Re-bless after an intentional format change:
//!
//! ```sh
//! ACT_BLESS_SNAPSHOT=1 cargo test -p act-tests --test snapshot_golden
//! ```
//!
//! The fixture's trie/roots/table bytes are also cross-checked against a
//! fresh build of the same seeded dataset, so the fixture can never
//! drift away from what the pipeline actually produces. (The fresh-build
//! comparison assumes the platform's f64 math matches the blessing
//! machine's — true for the tier-1 linux-x86_64 CI; the byte-for-byte
//! writer check is platform-independent.)

use act_core::snapshot::SnapshotBuf;
use act_core::ActIndex;
use datagen::PointGen;

/// The seeded dataset the fixture was built from. Changing any of these
/// constants requires re-blessing the fixture.
const GRID: (usize, usize) = (3, 2);
const SEED: u64 = 11;
// 4 km keeps the fixture tiny (11 trie nodes ≈ 23 kB) while still
// exercising a multi-node arena and a non-empty lookup table.
const PRECISION_M: f64 = 4000.0;

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/snapshot_golden_v1.snap")
}

fn build_fixture_index() -> (ActIndex, datagen::Dataset) {
    let ds = datagen::blocks_scaled(GRID.0, GRID.1, SEED);
    let idx = ActIndex::build(&ds.polygons, PRECISION_M).unwrap();
    (idx, ds)
}

#[test]
fn golden_snapshot_round_trips_byte_for_byte() {
    let path = fixture_path();
    let (fresh, ds) = build_fixture_index();

    if std::env::var("ACT_BLESS_SNAPSHOT").is_ok() {
        let mut bytes = Vec::new();
        fresh.save_snapshot(&mut bytes).unwrap();
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        panic!(
            "blessed {} ({} bytes) — rerun without ACT_BLESS_SNAPSHOT",
            path.display(),
            bytes.len()
        );
    }

    let fixture = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); bless it with \
             ACT_BLESS_SNAPSHOT=1 cargo test -p act-tests --test snapshot_golden",
            path.display()
        )
    });

    // 1. Today's loader reads yesterday's bytes (owned + zero-copy).
    let loaded = ActIndex::load_snapshot(&mut fixture.as_slice())
        .expect("fixture must load with the current loader");
    let buf = SnapshotBuf::from_bytes(&fixture).unwrap();
    let view = buf.view().expect("fixture must open as a zero-copy view");

    // 2. Today's writer reproduces the fixture byte for byte.
    let mut rewritten = Vec::new();
    loaded.save_snapshot(&mut rewritten).unwrap();
    assert!(
        rewritten == fixture,
        "writer no longer reproduces the v1 fixture byte-for-byte; \
         if the format change is intentional, bump FORMAT_VERSION and re-bless"
    );

    // 3. The fixture is what the pipeline produces today: structural
    //    equality with a fresh build (wall-time stats excluded).
    assert_eq!(loaded.act().slots(), fresh.act().slots());
    assert_eq!(loaded.act().roots(), fresh.act().roots());
    assert_eq!(loaded.stats().indexed_cells, fresh.stats().indexed_cells);
    assert_eq!(loaded.stats().covering_cells, fresh.stats().covering_cells);
    assert_eq!(loaded.stats().precision_m, fresh.stats().precision_m);
    assert_eq!(loaded.stats().terminal_level, fresh.stats().terminal_level);
    assert_eq!(
        loaded.stats().lookup_table_bytes,
        fresh.stats().lookup_table_bytes
    );
    assert_eq!(loaded.stats().act_bytes, fresh.stats().act_bytes);

    // 4. Probes through fixture, view, and fresh index all agree.
    let pts = PointGen::nyc_taxi_like(ds.bbox, 3).take_vec(2_000);
    for &p in &pts {
        let want = fresh.lookup_refs(p);
        assert_eq!(loaded.lookup_refs(p), want, "fixture disagrees at {p}");
        assert_eq!(view.lookup_refs(p), want, "view disagrees at {p}");
    }
}
