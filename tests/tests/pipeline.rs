//! End-to-end pipeline tests: datasets → index → join, validated against
//! exact geometry.

use act_core::{ActIndex, Refiner};
use datagen::PointGen;

/// Builds, joins, and cross-checks one dataset tier at one precision.
fn check_tier(ds: &datagen::Dataset, precision: f64, points: usize) {
    let index =
        ActIndex::build(&ds.polygons, precision).unwrap_or_else(|e| panic!("{}: {e}", ds.name));
    let st = index.stats();
    assert!(st.indexed_cells > 0);
    assert_eq!(st.precision_m, precision);

    let gen = PointGen::nyc_taxi_like(ds.bbox, 7);
    let pts = gen.take_vec(points);

    // Approximate join.
    let mut approx = vec![0u64; ds.polygons.len()];
    let astats = act_core::join_approx_coords(&index, &pts, &mut approx);
    assert_eq!(astats.points, points as u64);

    // The datasets tile the bbox: essentially every point matches. A tiny
    // miss rate can occur hard against the bbox border (boundary cells of
    // the outermost polygons end exactly at the border).
    let miss_rate = astats.misses as f64 / points as f64;
    assert!(miss_rate < 0.01, "{}: miss rate {miss_rate}", ds.name);

    // Exact join ≡ brute force (on a sample — brute force over 39k
    // polygons is slow).
    let refiner = Refiner::new(&ds.polygons);
    let sample = &pts[..points.min(3_000)];
    let mut exact = vec![0u64; ds.polygons.len()];
    act_core::join_exact(&index, &refiner, sample, &mut exact);
    let mut brute = vec![0u64; ds.polygons.len()];
    for &p in sample {
        for (i, poly) in ds.polygons.iter().enumerate() {
            // Bbox prefilter keeps this fast.
            if poly.bbox().contains(p) && refiner.contains(i as u32, p) {
                brute[i] += 1;
            }
        }
    }
    assert_eq!(
        exact, brute,
        "{}: exact join must equal brute force",
        ds.name
    );

    // Approximate counts dominate exact counts per polygon (approx adds
    // only false positives, never loses true positives).
    let mut exact_full = vec![0u64; ds.polygons.len()];
    act_core::join_exact(&index, &refiner, &pts, &mut exact_full);
    for (i, (&a, &e)) in approx.iter().zip(&exact_full).enumerate() {
        assert!(a >= e, "{}: polygon {i} approx {a} < exact {e}", ds.name);
    }
}

#[test]
fn boroughs_tier() {
    let ds = datagen::boroughs(42);
    check_tier(&ds, 60.0, 30_000);
}

#[test]
fn neighborhoods_tier() {
    let ds = datagen::neighborhoods(42);
    check_tier(&ds, 15.0, 30_000);
}

#[test]
fn census_like_tier() {
    // A scaled census slice keeps CI fast; the full 39,184-polygon build
    // runs in the benchmark harness.
    let ds = datagen::blocks_scaled(40, 25, 42);
    check_tier(&ds, 15.0, 30_000);
}

#[test]
fn holed_polygons_tier() {
    let ds = datagen::holed(6, 6, 3);
    check_tier(&ds, 15.0, 20_000);
}

#[test]
fn fine_precision_tier() {
    let ds = datagen::blocks_scaled(10, 8, 5);
    check_tier(&ds, 4.0, 20_000);
}

#[test]
fn multi_precision_index_sizes_are_monotone_in_cells() {
    let ds = datagen::neighborhoods(42);
    let coarse = ActIndex::build(&ds.polygons, 60.0).unwrap();
    let fine = ActIndex::build(&ds.polygons, 15.0).unwrap();
    assert!(fine.stats().indexed_cells > coarse.stats().indexed_cells);
    // Table-I artifact: 60 m (level 18) and 15 m (level 20) share trie
    // depth 5, so the node count — and hence ACT bytes — coincide.
    assert_eq!(coarse.stats().act_bytes, fine.stats().act_bytes);
}

#[test]
fn counts_are_plausibly_distributed() {
    // Sanity: the skewed point stream concentrates counts in hotspot
    // polygons; the max polygon gets far more than the mean.
    let ds = datagen::neighborhoods(42);
    let index = ActIndex::build(&ds.polygons, 60.0).unwrap();
    let pts = PointGen::nyc_taxi_like(ds.bbox, 7).take_vec(50_000);
    let mut counts = vec![0u64; ds.polygons.len()];
    act_core::join_approx_coords(&index, &pts, &mut counts);
    let total: u64 = counts.iter().sum();
    let max = *counts.iter().max().unwrap();
    let mean = total / counts.len() as u64;
    assert!(max > 5 * mean, "max {max} vs mean {mean}");
}
