//! The headline claim, end to end: the approximate join never reports a
//! pair farther than ε apart and never misses a containing polygon —
//! across dataset tiers, precisions, and the adaptive/budgeted variants.

use act_core::{build_with_budget, ActIndex, AdaptiveIndex, AdaptiveParams};
use datagen::PointGen;

fn assert_guarantee(ds: &datagen::Dataset, index: &ActIndex, eps: f64, n_probes: usize, seed: u64) {
    let gen = PointGen::nyc_taxi_like(ds.bbox, seed);
    let mut matches = 0u64;
    for p in gen.iter_range(0, n_probes as u64) {
        let refs = index.lookup_refs(p);
        // No false negatives: a containing polygon is always reported.
        // (Only check polygons whose bbox contains p, for speed.)
        for (i, poly) in ds.polygons.iter().enumerate() {
            if poly.bbox().contains(p) && poly.contains(p) {
                assert!(
                    refs.iter().any(|&(id, _)| id as usize == i),
                    "{}: false negative for polygon {i} at {p}",
                    ds.name
                );
            }
        }
        // Bounded false positives.
        for (id, interior) in refs {
            matches += 1;
            let d = ds.polygons[id as usize].distance_meters(p);
            if interior {
                assert_eq!(d, 0.0, "{}: non-exact true hit at {p}", ds.name);
            } else {
                assert!(
                    d <= eps * 1.0001,
                    "{}: candidate at {d} m exceeds ε = {eps} at {p}",
                    ds.name
                );
            }
        }
    }
    assert!(matches > 0, "{}: no matches at all?", ds.name);
}

#[test]
fn guarantee_boroughs_60m() {
    let ds = datagen::boroughs(42);
    let index = ActIndex::build(&ds.polygons, 60.0).unwrap();
    assert_guarantee(&ds, &index, 60.0, 2_000, 1);
}

#[test]
fn guarantee_neighborhoods_15m() {
    let ds = datagen::neighborhoods(42);
    let index = ActIndex::build(&ds.polygons, 15.0).unwrap();
    assert_guarantee(&ds, &index, 15.0, 2_000, 2);
}

#[test]
fn guarantee_blocks_4m() {
    let ds = datagen::blocks_scaled(20, 15, 42);
    let index = ActIndex::build(&ds.polygons, 4.0).unwrap();
    assert_guarantee(&ds, &index, 4.0, 2_000, 3);
}

#[test]
fn guarantee_with_holes() {
    let ds = datagen::holed(5, 5, 7);
    let index = ActIndex::build(&ds.polygons, 15.0).unwrap();
    assert_guarantee(&ds, &index, 15.0, 2_000, 4);
}

#[test]
fn budgeted_build_guarantees_achieved_precision() {
    let ds = datagen::blocks_scaled(10, 8, 9);
    // Deliberately too small for 4 m.
    let b = build_with_budget(&ds.polygons, 4.0, 3 << 20).unwrap();
    assert!(b.index.memory_bytes() <= 3 << 20);
    // Whatever precision was achieved is still guaranteed.
    assert_guarantee(&ds, &b.index, b.achieved_precision_m, 2_000, 5);
    if !b.guaranteed {
        assert!(b.achieved_precision_m > 4.0);
    }
}

#[test]
fn adaptive_index_keeps_the_target_guarantee_in_refined_regions() {
    let ds = datagen::blocks_scaled(8, 6, 11);
    let params = AdaptiveParams {
        target_precision_m: 4.0,
        base_precision_m: 60.0,
        budget_bytes: 512 << 20,
        max_refined_cells: 2_000,
    };
    let mut adaptive = AdaptiveIndex::build(&ds.polygons, params).unwrap();
    // Sample = the actual workload.
    let gen = PointGen::nyc_taxi_like(ds.bbox, 13);
    let sample: Vec<_> = gen
        .iter_range(0, 20_000)
        .map(act_core::coord_to_cell)
        .collect();
    let report = adaptive.adapt(&sample);
    assert!(report.candidate_rate_after <= report.candidate_rate_before);

    // The base guarantee (60 m) holds everywhere even after adaptation.
    assert_guarantee(&ds, adaptive.index(), 60.0, 2_000, 14);
}

#[test]
fn epsilon_is_tight_in_practice() {
    // Some candidate should actually sit between ~ε/4 and ε from the
    // polygon — the bound is used, not vacuous.
    let ds = datagen::neighborhoods(42);
    let eps = 60.0;
    let index = ActIndex::build(&ds.polygons, eps).unwrap();
    let gen = PointGen::nyc_taxi_like(ds.bbox, 21);
    let mut worst: f64 = 0.0;
    for p in gen.iter_range(0, 50_000) {
        for (id, interior) in index.lookup_refs(p) {
            if !interior {
                let poly = &ds.polygons[id as usize];
                if !poly.contains(p) {
                    worst = worst.max(poly.distance_meters(p));
                }
            }
        }
    }
    assert!(worst > eps / 4.0, "worst observed fringe only {worst} m");
    assert!(worst <= eps * 1.0001);
}
