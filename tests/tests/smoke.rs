//! Workspace smoke test: the README / `act_core` lib.rs quickstart path,
//! end to end. Guards the documented example against drift — if this test
//! and the doctest ever disagree, the docs are stale.

use act_core::ActIndex;
use geom::{Coord, Polygon, Ring};

/// The quickstart polygon: one ~4 km square around Midtown Manhattan.
fn midtown() -> Polygon {
    Polygon::new(
        Ring::new(vec![
            Coord::new(-74.00, 40.74),
            Coord::new(-73.96, 40.74),
            Coord::new(-73.96, 40.78),
            Coord::new(-74.00, 40.78),
        ]),
        vec![],
    )
}

#[test]
fn quickstart_true_hit_vs_candidate_hit() {
    let precision = 15.0;
    let index = ActIndex::build(&[midtown()], precision).unwrap();

    // Deep-interior probe (Times Square): must be a *true hit* — reported
    // from a cell entirely inside the polygon, no geometry check needed.
    let refs = index.lookup_refs(Coord::new(-73.9855, 40.7580));
    assert_eq!(refs, vec![(0, true)], "quickstart doc example drifted");

    // March a transect across the eastern edge (x = -73.96), from 40 m
    // inside to 40 m outside in ~2 m steps, checking the precision
    // contract at every probe:
    //   * contained points always match (no false negatives),
    //   * every match lies within ε of the polygon,
    //   * points farther than ε never match.
    let poly = midtown();
    let meter_lng = 1.0 / (111_320.0 * (40.76f64).to_radians().cos());
    let mut candidate_hits = 0;
    for step in -20..=20 {
        let p = Coord::new(-73.96 + 2.0 * step as f64 * meter_lng, 40.76);
        let refs = index.lookup_refs(p);
        let dist = poly.distance_meters(p);
        if poly.contains(p) {
            assert!(!refs.is_empty(), "false negative {dist} m inside");
        }
        for &(id, interior) in &refs {
            assert_eq!(id, 0);
            assert!(dist <= 15.0 * 1.0001, "match at {dist} m exceeds ε");
            if !interior {
                candidate_hits += 1;
            }
        }
        if dist > 15.0 * 1.0001 {
            assert!(refs.is_empty(), "match {dist} m away violates ε");
        }
    }
    // The transect crosses the boundary, so some probes must have landed
    // in boundary cells — the candidate-hit path is genuinely exercised.
    assert!(candidate_hits > 0, "no candidate hit along the transect");

    // Probe far outside (Brooklyn, ~8 km away): no match at all.
    assert!(index.lookup_refs(Coord::new(-73.95, 40.65)).is_empty());
}

#[test]
fn quickstart_index_is_well_formed() {
    let index = ActIndex::build(&[midtown()], 15.0).unwrap();
    let stats = index.stats();
    assert_eq!(stats.precision_m, 15.0);
    assert!(index.memory_bytes() > 0);
}
