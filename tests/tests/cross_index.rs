//! Cross-index agreement: every index structure in the workspace must
//! produce the same *exact* join result when combined with refinement, and
//! the filters must relate by containment (ACT hits ⊆ R-tree candidates
//! modulo the ε fringe, grid true hits ⊆ polygon, …).

use act_core::snapshot::SnapshotBuf;
use act_core::supercover::build_super_covering;
use act_core::{cover_polygon, ActIndex, CoveringParams, Refiner, SortedCellIndex};
use datagen::PointGen;
use geom::Coord;
use grid::UniformGrid;

fn refine(refs: Vec<(u32, bool)>, refiner: &Refiner, p: Coord) -> Vec<u32> {
    let mut out: Vec<u32> = refs
        .into_iter()
        .filter(|&(id, interior)| interior || refiner.contains(id, p))
        .map(|(id, _)| id)
        .collect();
    out.sort_unstable();
    out
}

fn exact_via_act(index: &ActIndex, refiner: &Refiner, p: Coord, out: &mut Vec<u32>) {
    *out = refine(index.lookup_refs(p), refiner, p);
}

#[test]
fn all_indexes_agree_on_exact_results() {
    let ds = datagen::blocks_scaled(12, 10, 9);
    let _n = ds.polygons.len();
    let refiner = Refiner::new(&ds.polygons);

    // ACT.
    let act = ActIndex::build(&ds.polygons, 15.0).unwrap();

    // ACT through a snapshot round trip, in both load modes: the
    // persisted index must agree with every baseline exactly like the
    // freshly built one.
    let mut snap = Vec::new();
    act.save_snapshot(&mut snap).unwrap();
    let act_loaded = ActIndex::load_snapshot(&mut snap.as_slice()).unwrap();
    let snap_buf = SnapshotBuf::from_bytes(&snap).unwrap();
    let act_view = snap_buf.view().unwrap();

    // Sorted-array index over the same covering.
    let params = CoveringParams::new(15.0);
    let coverings: Vec<_> = ds
        .polygons
        .iter()
        .map(|p| cover_polygon(p, &params).unwrap())
        .collect();
    let sorted = SortedCellIndex::build(&build_super_covering(&coverings));

    // Flat grid.
    let flat = UniformGrid::build(&ds.polygons, ds.bbox, 512, 512);

    // R-tree over MBRs.
    let mut tree = rtree::RTree::new(8);
    for (i, p) in ds.polygons.iter().enumerate() {
        tree.insert(*p.bbox(), i as u32);
    }

    let pts = PointGen::nyc_taxi_like(ds.bbox, 3).take_vec(5_000);
    for &p in &pts {
        // Ground truth by refined R-tree (classical filter-and-refine).
        let mut truth: Vec<u32> = tree
            .query_point(p)
            .into_iter()
            .filter(|&id| refiner.contains(id, p))
            .collect();
        truth.sort_unstable();

        // ACT exact.
        let mut via_act = Vec::new();
        exact_via_act(&act, &refiner, p, &mut via_act);
        assert_eq!(via_act, truth, "ACT+refine disagrees at {p}");

        // Snapshot-loaded ACT (owned) exact.
        let mut via_loaded = Vec::new();
        exact_via_act(&act_loaded, &refiner, p, &mut via_loaded);
        assert_eq!(via_loaded, truth, "snapshot-loaded ACT disagrees at {p}");

        // Snapshot-loaded ACT (zero-copy view) exact.
        let via_view = refine(act_view.lookup_refs(p), &refiner, p);
        assert_eq!(via_view, truth, "snapshot view disagrees at {p}");

        // Sorted index exact.
        let mut via_sorted: Vec<u32> =
            act_core::resolve_probe(sorted.lookup(act_core::coord_to_cell(p)), sorted.table())
                .filter(|&(id, interior)| interior || refiner.contains(id, p))
                .map(|(id, _)| id)
                .collect();
        via_sorted.sort_unstable();
        assert_eq!(via_sorted, truth, "sorted+refine disagrees at {p}");

        // Grid exact.
        let mut via_grid: Vec<u32> = flat
            .query(p)
            .into_iter()
            .filter(|&(id, interior)| interior || refiner.contains(id, p))
            .map(|(id, _)| id)
            .collect();
        via_grid.sort_unstable();
        assert_eq!(via_grid, truth, "grid+refine disagrees at {p}");
    }
}

#[test]
fn act_filter_is_no_looser_than_epsilon() {
    // Every ACT match (even candidates) is within ε; R-tree candidates can
    // be arbitrarily far inside the MBR. Quantify both on one workload.
    let ds = datagen::neighborhoods(5);
    let act = ActIndex::build(&ds.polygons, 15.0).unwrap();
    let mut tree = rtree::RTree::new(8);
    for (i, p) in ds.polygons.iter().enumerate() {
        tree.insert(*p.bbox(), i as u32);
    }
    let pts = PointGen::nyc_taxi_like(ds.bbox, 11).take_vec(2_000);
    let mut act_worst: f64 = 0.0;
    let mut rtree_worst: f64 = 0.0;
    for &p in &pts {
        for (id, _) in act.lookup_refs(p) {
            act_worst = act_worst.max(ds.polygons[id as usize].distance_meters(p));
        }
        for id in tree.query_point(p) {
            rtree_worst = rtree_worst.max(ds.polygons[id as usize].distance_meters(p));
        }
    }
    assert!(act_worst <= 15.0, "ACT fringe {act_worst} m exceeds ε");
    assert!(
        rtree_worst > 100.0,
        "expected MBR candidates far from their polygons, worst {rtree_worst} m"
    );
}

#[test]
fn true_hit_rate_improves_with_interior_cells() {
    // The ACT filter classifies the vast majority of matches as true hits
    // (paper's claim: "covering the majority of the interior area").
    let ds = datagen::neighborhoods(5);
    let act = ActIndex::build(&ds.polygons, 15.0).unwrap();
    let pts = PointGen::nyc_taxi_like(ds.bbox, 11).take_vec(20_000);
    let mut cells = Vec::with_capacity(pts.len());
    for &p in &pts {
        cells.push(act_core::coord_to_cell(p));
    }
    let mut counts = vec![0u64; ds.polygons.len()];
    let stats = act_core::join_approx_cells(&act, &cells, &mut counts);
    let hit_total = stats.true_hits + stats.candidate_hits;
    assert!(
        stats.true_hits as f64 > 0.95 * hit_total as f64,
        "true hits {} of {hit_total}",
        stats.true_hits
    );
}

/// A deterministic edit script mutates a live ACT index — inserts,
/// upserts, removals, compactions — while grid and R-tree oracles are
/// rebuilt from the evolving polygon set at every checkpoint. The claim
/// under test is the dynamic-geofence contract end to end: incremental
/// mutation ≡ fresh rebuild ≡ oracle.
#[test]
fn edit_scripts_agree_with_grid_and_rtree_oracles() {
    use act_core::covering::cover_uv_polygon;
    use act_core::supercover::build_from_pairs;
    use act_core::uvpoly::UvPolygon;
    use act_core::PolygonRef;
    use geom::{Polygon, Ring};
    use std::collections::BTreeMap;

    // splitmix64, fixed seed: the script is part of the test.
    let mut state = 0x00DD_5EED_u64;
    let mut rng = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    let precision = 15.0;
    let ds = datagen::blocks_scaled(6, 5, 7);
    let mut act = ActIndex::build(&ds.polygons, precision).unwrap();
    let mut live: BTreeMap<u32, Polygon> = ds
        .polygons
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, p)| (i as u32, p))
        .collect();
    let mut next_id = ds.polygons.len() as u32;

    let (lo, hi) = (ds.bbox.min, ds.bbox.max);
    let synth_square = |rng: &mut dyn FnMut() -> u64| {
        let fx = (rng() % 1_000) as f64 / 1_000.0;
        let fy = (rng() % 1_000) as f64 / 1_000.0;
        let cx = lo.x + (hi.x - lo.x) * fx;
        let cy = lo.y + (hi.y - lo.y) * fy;
        let h = 0.0004 + (rng() % 100) as f64 * 2e-5; // 40–250 m across
        Polygon::new(
            Ring::new(vec![
                Coord::new(cx - h, cy - h),
                Coord::new(cx + h, cy - h),
                Coord::new(cx + h, cy + h),
                Coord::new(cx - h, cy + h),
            ]),
            vec![],
        )
    };

    // Fresh rebuild of the live set under its *real* (sparse) ids.
    let rebuild = |live: &BTreeMap<u32, Polygon>| -> ActIndex {
        let params = act_core::CoveringParams::new(precision);
        let mut pairs = Vec::new();
        for (&id, poly) in live {
            let uv = UvPolygon::from_polygon(poly).unwrap();
            for &(cell, interior) in &cover_uv_polygon(&uv, &params).cells {
                pairs.push((cell, PolygonRef { id, interior }));
            }
        }
        ActIndex::from_supercover(build_from_pairs(pairs), params)
    };

    let exact_ids = |live: &BTreeMap<u32, Polygon>, p: Coord| -> Vec<u32> {
        let mut ids: Vec<u32> = live
            .iter()
            .filter(|(_, poly)| poly.contains(p))
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    };
    // Filter refs → exact ids via direct point-in-polygon refinement.
    let refine = |live: &BTreeMap<u32, Polygon>, refs: Vec<(u32, bool)>, p: Coord| -> Vec<u32> {
        let mut ids: Vec<u32> = refs
            .into_iter()
            .filter(|&(id, interior)| interior || live[&id].contains(p))
            .map(|(id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    };

    for step in 0..40u32 {
        match rng() % 6 {
            0 | 1 => {
                let poly = synth_square(&mut rng);
                act.insert_polygon(next_id, &poly).unwrap();
                live.insert(next_id, poly);
                next_id += 1;
            }
            2 => {
                // Upsert: replace an existing polygon's shape in place.
                if let Some(&id) = live.keys().nth(rng() as usize % live.len()) {
                    let poly = synth_square(&mut rng);
                    act.insert_polygon(id, &poly).unwrap();
                    live.insert(id, poly);
                }
            }
            3 | 4 => {
                if let Some(&id) = live.keys().nth(rng() as usize % live.len()) {
                    assert!(act.remove_polygon(id), "live id {id} must be present");
                    live.remove(&id);
                }
            }
            _ => act.compact(),
        }

        // Checkpoint every 8 steps (and at the end): the live index must
        // agree with a fresh rebuild and with both oracles everywhere.
        if step % 8 != 7 && step != 39 {
            continue;
        }
        let rebuilt = rebuild(&live);
        let dense: Vec<Polygon> = live.values().cloned().collect();
        let dense_ids: Vec<u32> = live.keys().copied().collect();
        let flat = UniformGrid::build(&dense, ds.bbox, 256, 256);
        let mut tree = rtree::RTree::new(8);
        for (&id, poly) in &live {
            tree.insert(*poly.bbox(), id);
        }

        // Probe mesh + each live polygon's center (hits matter most).
        let mut pts = PointGen::nyc_taxi_like(ds.bbox, step as u64).take_vec(500);
        for poly in live.values() {
            let b = poly.bbox();
            pts.push(Coord::new(
                (b.min.x + b.max.x) / 2.0,
                (b.min.y + b.max.y) / 2.0,
            ));
        }
        for &p in &pts {
            let truth = exact_ids(&live, p);
            let via_live = refine(&live, act.lookup_refs(p), p);
            assert_eq!(via_live, truth, "step {step}: live ACT diverged at {p}");
            let via_rebuilt = refine(&live, rebuilt.lookup_refs(p), p);
            assert_eq!(via_rebuilt, truth, "step {step}: rebuild diverged at {p}");
            let mut via_grid: Vec<u32> = flat
                .query(p)
                .into_iter()
                .filter(|&(j, interior)| interior || dense[j as usize].contains(p))
                .map(|(j, _)| dense_ids[j as usize])
                .collect();
            via_grid.sort_unstable();
            assert_eq!(via_grid, truth, "step {step}: grid oracle diverged at {p}");
            let mut via_tree: Vec<u32> = tree
                .query_point(p)
                .into_iter()
                .filter(|&id| live[&id].contains(p))
                .collect();
            via_tree.sort_unstable();
            assert_eq!(
                via_tree, truth,
                "step {step}: R-tree oracle diverged at {p}"
            );
        }
    }
}
