//! Cross-index agreement: every index structure in the workspace must
//! produce the same *exact* join result when combined with refinement, and
//! the filters must relate by containment (ACT hits ⊆ R-tree candidates
//! modulo the ε fringe, grid true hits ⊆ polygon, …).

use act_core::snapshot::SnapshotBuf;
use act_core::supercover::build_super_covering;
use act_core::{cover_polygon, ActIndex, CoveringParams, Refiner, SortedCellIndex};
use datagen::PointGen;
use geom::Coord;
use grid::UniformGrid;

fn refine(refs: Vec<(u32, bool)>, refiner: &Refiner, p: Coord) -> Vec<u32> {
    let mut out: Vec<u32> = refs
        .into_iter()
        .filter(|&(id, interior)| interior || refiner.contains(id, p))
        .map(|(id, _)| id)
        .collect();
    out.sort_unstable();
    out
}

fn exact_via_act(index: &ActIndex, refiner: &Refiner, p: Coord, out: &mut Vec<u32>) {
    *out = refine(index.lookup_refs(p), refiner, p);
}

#[test]
fn all_indexes_agree_on_exact_results() {
    let ds = datagen::blocks_scaled(12, 10, 9);
    let _n = ds.polygons.len();
    let refiner = Refiner::new(&ds.polygons);

    // ACT.
    let act = ActIndex::build(&ds.polygons, 15.0).unwrap();

    // ACT through a snapshot round trip, in both load modes: the
    // persisted index must agree with every baseline exactly like the
    // freshly built one.
    let mut snap = Vec::new();
    act.save_snapshot(&mut snap).unwrap();
    let act_loaded = ActIndex::load_snapshot(&mut snap.as_slice()).unwrap();
    let snap_buf = SnapshotBuf::from_bytes(&snap).unwrap();
    let act_view = snap_buf.view().unwrap();

    // Sorted-array index over the same covering.
    let params = CoveringParams::new(15.0);
    let coverings: Vec<_> = ds
        .polygons
        .iter()
        .map(|p| cover_polygon(p, &params).unwrap())
        .collect();
    let sorted = SortedCellIndex::build(&build_super_covering(&coverings));

    // Flat grid.
    let flat = UniformGrid::build(&ds.polygons, ds.bbox, 512, 512);

    // R-tree over MBRs.
    let mut tree = rtree::RTree::new(8);
    for (i, p) in ds.polygons.iter().enumerate() {
        tree.insert(*p.bbox(), i as u32);
    }

    let pts = PointGen::nyc_taxi_like(ds.bbox, 3).take_vec(5_000);
    for &p in &pts {
        // Ground truth by refined R-tree (classical filter-and-refine).
        let mut truth: Vec<u32> = tree
            .query_point(p)
            .into_iter()
            .filter(|&id| refiner.contains(id, p))
            .collect();
        truth.sort_unstable();

        // ACT exact.
        let mut via_act = Vec::new();
        exact_via_act(&act, &refiner, p, &mut via_act);
        assert_eq!(via_act, truth, "ACT+refine disagrees at {p}");

        // Snapshot-loaded ACT (owned) exact.
        let mut via_loaded = Vec::new();
        exact_via_act(&act_loaded, &refiner, p, &mut via_loaded);
        assert_eq!(via_loaded, truth, "snapshot-loaded ACT disagrees at {p}");

        // Snapshot-loaded ACT (zero-copy view) exact.
        let via_view = refine(act_view.lookup_refs(p), &refiner, p);
        assert_eq!(via_view, truth, "snapshot view disagrees at {p}");

        // Sorted index exact.
        let mut via_sorted: Vec<u32> =
            act_core::resolve_probe(sorted.lookup(act_core::coord_to_cell(p)), sorted.table())
                .filter(|&(id, interior)| interior || refiner.contains(id, p))
                .map(|(id, _)| id)
                .collect();
        via_sorted.sort_unstable();
        assert_eq!(via_sorted, truth, "sorted+refine disagrees at {p}");

        // Grid exact.
        let mut via_grid: Vec<u32> = flat
            .query(p)
            .into_iter()
            .filter(|&(id, interior)| interior || refiner.contains(id, p))
            .map(|(id, _)| id)
            .collect();
        via_grid.sort_unstable();
        assert_eq!(via_grid, truth, "grid+refine disagrees at {p}");
    }
}

#[test]
fn act_filter_is_no_looser_than_epsilon() {
    // Every ACT match (even candidates) is within ε; R-tree candidates can
    // be arbitrarily far inside the MBR. Quantify both on one workload.
    let ds = datagen::neighborhoods(5);
    let act = ActIndex::build(&ds.polygons, 15.0).unwrap();
    let mut tree = rtree::RTree::new(8);
    for (i, p) in ds.polygons.iter().enumerate() {
        tree.insert(*p.bbox(), i as u32);
    }
    let pts = PointGen::nyc_taxi_like(ds.bbox, 11).take_vec(2_000);
    let mut act_worst: f64 = 0.0;
    let mut rtree_worst: f64 = 0.0;
    for &p in &pts {
        for (id, _) in act.lookup_refs(p) {
            act_worst = act_worst.max(ds.polygons[id as usize].distance_meters(p));
        }
        for id in tree.query_point(p) {
            rtree_worst = rtree_worst.max(ds.polygons[id as usize].distance_meters(p));
        }
    }
    assert!(act_worst <= 15.0, "ACT fringe {act_worst} m exceeds ε");
    assert!(
        rtree_worst > 100.0,
        "expected MBR candidates far from their polygons, worst {rtree_worst} m"
    );
}

#[test]
fn true_hit_rate_improves_with_interior_cells() {
    // The ACT filter classifies the vast majority of matches as true hits
    // (paper's claim: "covering the majority of the interior area").
    let ds = datagen::neighborhoods(5);
    let act = ActIndex::build(&ds.polygons, 15.0).unwrap();
    let pts = PointGen::nyc_taxi_like(ds.bbox, 11).take_vec(20_000);
    let mut cells = Vec::with_capacity(pts.len());
    for &p in &pts {
        cells.push(act_core::coord_to_cell(p));
    }
    let mut counts = vec![0u64; ds.polygons.len()];
    let stats = act_core::join_approx_cells(&act, &cells, &mut counts);
    let hit_total = stats.true_hits + stats.candidate_hits;
    assert!(
        stats.true_hits as f64 > 0.95 * hit_total as f64,
        "true hits {} of {hit_total}",
        stats.true_hits
    );
}
