//! STR (Sort-Tile-Recursive) bulk loading (Leutenegger et al., ICDE 1997).
//!
//! Packs rectangles into fully-filled leaves by sorting on x, slicing into
//! √(n/M) vertical strips, sorting each strip on y, and chunking; inner
//! levels are built the same way over the child rectangles. Produces a
//! tree with near-perfect space utilization — the strongest reasonable
//! configuration of the paper's baseline.

use crate::node::{bound_of, Node, RTree, NO_PARENT};
use crate::split::Entry;
use geom::Rect;

/// Bulk loads a tree with `max_entries` per node from `(rect, id)` pairs.
pub fn bulk_load_str(items: &[(Rect, u32)], max_entries: usize) -> RTree {
    assert!(max_entries >= 4);
    if items.is_empty() {
        return RTree::new(max_entries);
    }

    let mut nodes: Vec<Node> = Vec::new();

    // Build the leaf level.
    let leaf_entries: Vec<Entry> = items
        .iter()
        .map(|&(rect, id)| Entry {
            rect,
            payload: id as usize,
        })
        .collect();
    let mut level: Vec<usize> = pack_level(&mut nodes, leaf_entries, max_entries, true);
    let mut height = 1;

    // Build inner levels until one root remains.
    while level.len() > 1 {
        let inner_entries: Vec<Entry> = level
            .iter()
            .map(|&idx| Entry {
                rect: nodes[idx].rect,
                payload: idx,
            })
            .collect();
        level = pack_level(&mut nodes, inner_entries, max_entries, false);
        height += 1;
    }

    let root = level[0];
    RTree::with_parts(nodes, root, max_entries, items.len(), height)
}

/// Packs one level of entries into nodes, returning the node indices.
fn pack_level(
    nodes: &mut Vec<Node>,
    mut entries: Vec<Entry>,
    max_entries: usize,
    is_leaf: bool,
) -> Vec<usize> {
    let n = entries.len();
    let node_count = n.div_ceil(max_entries);
    // Number of vertical slices: ceil(sqrt(number of nodes)).
    let slices = (node_count as f64).sqrt().ceil() as usize;
    let per_slice = n.div_ceil(slices);

    entries.sort_by(|a, b| center_x(&a.rect).partial_cmp(&center_x(&b.rect)).unwrap());

    let mut out = Vec::with_capacity(node_count);
    for slice in entries.chunks_mut(per_slice.max(1)) {
        slice.sort_by(|a, b| center_y(&a.rect).partial_cmp(&center_y(&b.rect)).unwrap());
        for chunk in slice.chunks(max_entries) {
            let idx = nodes.len();
            nodes.push(Node {
                rect: bound_of(chunk),
                entries: chunk.to_vec(),
                is_leaf,
                parent: NO_PARENT,
            });
            if !is_leaf {
                for e in chunk {
                    nodes[e.payload].parent = idx;
                }
            }
            out.push(idx);
        }
    }
    out
}

#[inline]
fn center_x(r: &Rect) -> f64 {
    0.5 * (r.min.x + r.max.x)
}

#[inline]
fn center_y(r: &Rect) -> f64 {
    0.5 * (r.min.y + r.max.y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Coord;

    fn random_rects(n: usize, seed: u64) -> Vec<(Rect, u32)> {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        (0..n)
            .map(|i| {
                let x = next() * 100.0;
                let y = next() * 100.0;
                (
                    Rect::new(
                        Coord::new(x, y),
                        Coord::new(x + next() * 3.0, y + next() * 3.0),
                    ),
                    i as u32,
                )
            })
            .collect()
    }

    #[test]
    fn empty_and_single() {
        let t = bulk_load_str(&[], 8);
        assert!(t.is_empty());
        let one = random_rects(1, 3);
        let t = bulk_load_str(&one, 8);
        assert_eq!(t.len(), 1);
        assert_eq!(t.query_point(one[0].0.center()), vec![0]);
    }

    #[test]
    fn str_equals_brute_force() {
        let items = random_rects(777, 21);
        let t = bulk_load_str(&items, 8);
        assert_eq!(t.len(), 777);
        let mut state = 5u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..300 {
            let p = Coord::new(next() * 100.0, next() * 100.0);
            let mut got = t.query_point(p);
            got.sort_unstable();
            let expected: Vec<u32> = items
                .iter()
                .filter(|(r, _)| r.contains(p))
                .map(|&(_, id)| id)
                .collect();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn str_and_insertion_agree() {
        let items = random_rects(300, 9);
        let str_tree = bulk_load_str(&items, 8);
        let mut ins_tree = RTree::new(8);
        for &(r, id) in &items {
            ins_tree.insert(r, id);
        }
        let mut state = 17u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..200 {
            let p = Coord::new(next() * 100.0, next() * 100.0);
            let mut a = str_tree.query_point(p);
            let mut b = ins_tree.query_point(p);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn str_packs_tightly() {
        // With n a multiple of M, all leaves should be full: node count near
        // the information-theoretic minimum.
        let items = random_rects(512, 11);
        let t = bulk_load_str(&items, 8);
        // 64 leaves + ~9 inner + root ≈ 74; allow slack for slicing edges.
        assert!(
            t.nodes.len() <= 90,
            "STR should pack tightly, got {} nodes",
            t.nodes.len()
        );
    }
}
