//! # rtree — an R*-tree over polygon MBRs (the paper's baseline)
//!
//! The paper compares ACT against the boost::geometry R-tree with the
//! `rstar` splitting strategy and a maximum of 8 entries per node,
//! "measuring its lookup performance without refining candidates". This
//! crate reimplements that baseline from scratch:
//!
//! * insertion-based construction with the R\* ChooseSubtree and split
//!   (margin-driven axis choice, overlap-driven index choice; forced
//!   reinsertion is omitted — it affects construction quality marginally
//!   and the paper's workload is query-bound),
//! * an STR (Sort-Tile-Recursive) bulk loader as an alternative,
//! * point queries returning candidate ids (MBR containment only), and
//!   rectangle queries for completeness.
//!
//! ```
//! use geom::{Coord, Rect};
//! use rtree::RTree;
//!
//! let mut t = RTree::new(8);
//! t.insert(Rect::new(Coord::new(0.0, 0.0), Coord::new(1.0, 1.0)), 0);
//! t.insert(Rect::new(Coord::new(2.0, 2.0), Coord::new(3.0, 3.0)), 1);
//! assert_eq!(t.query_point(Coord::new(0.5, 0.5)), vec![0]);
//! ```

#![forbid(unsafe_code)]

mod node;
mod split;
mod str_load;

pub use node::RTree;
pub use str_load::bulk_load_str;
