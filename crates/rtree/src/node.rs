//! R-tree structure, insertion, and queries.

use crate::split::{choose_split, Entry};
use geom::{Coord, Rect};

/// An arena-allocated node.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    /// Bounding rect of the node's entries (kept in the parent too; this
    /// copy simplifies root handling).
    pub rect: Rect,
    /// Children: boxes + payload (leaf: external id; inner: child node index).
    pub entries: Vec<Entry>,
    /// True if entries carry external ids.
    pub is_leaf: bool,
    /// Parent node index (`NO_PARENT` for the root).
    pub parent: usize,
}

/// Sentinel parent index for the root node.
pub(crate) const NO_PARENT: usize = usize::MAX;

/// An in-memory R-tree with R\*-style insertion.
#[derive(Debug)]
pub struct RTree {
    pub(crate) nodes: Vec<Node>,
    root: usize,
    max_entries: usize,
    min_entries: usize,
    len: usize,
    height: usize,
}

impl RTree {
    /// Creates an empty tree. `max_entries` must be ≥ 4; the minimum fill
    /// is 40% (the R\* recommendation). The paper uses `max_entries = 8`.
    pub fn new(max_entries: usize) -> RTree {
        assert!(max_entries >= 4, "max_entries must be >= 4");
        let root = Node {
            rect: Rect::EMPTY,
            entries: Vec::new(),
            is_leaf: true,
            parent: NO_PARENT,
        };
        RTree {
            nodes: vec![root],
            root: 0,
            max_entries,
            min_entries: (max_entries * 2).div_ceil(5).max(2),
            len: 0,
            height: 1,
        }
    }

    pub(crate) fn with_parts(
        nodes: Vec<Node>,
        root: usize,
        max_entries: usize,
        len: usize,
        height: usize,
    ) -> RTree {
        RTree {
            nodes,
            root,
            max_entries,
            min_entries: (max_entries * 2).div_ceil(5).max(2),
            len,
            height,
        }
    }

    /// Number of indexed rectangles.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing has been inserted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = root is a leaf).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Approximate heap memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + self
                .nodes
                .iter()
                .map(|n| n.entries.capacity() * std::mem::size_of::<Entry>())
                .sum::<usize>()
    }

    /// Inserts a rectangle with an external id.
    pub fn insert(&mut self, rect: Rect, id: u32) {
        let leaf = self.choose_leaf(rect);
        self.nodes[leaf].entries.push(Entry {
            rect,
            payload: id as usize,
        });
        self.nodes[leaf].rect.merge(&rect);
        self.len += 1;
        if self.nodes[leaf].entries.len() > self.max_entries {
            self.split_upwards(leaf);
        } else {
            self.fix_rects_from(leaf, rect);
        }
    }

    /// R\* ChooseSubtree: descend minimizing overlap enlargement at the
    /// level above the leaves, and area enlargement elsewhere (ties broken
    /// by area).
    fn choose_leaf(&self, rect: Rect) -> usize {
        let mut node = self.root;
        loop {
            if self.nodes[node].is_leaf {
                return node;
            }
            let children_are_leaves = self.nodes[node]
                .entries
                .first()
                .map(|e| self.nodes[e.payload].is_leaf)
                .unwrap_or(true);
            let entries = &self.nodes[node].entries;
            let mut best = 0usize;
            let mut best_key = (f64::MAX, f64::MAX, f64::MAX);
            for (i, e) in entries.iter().enumerate() {
                let enlarged = e.rect.merged(&rect);
                let area_enl = enlarged.area() - e.rect.area();
                let key = if children_are_leaves {
                    // Overlap enlargement against siblings.
                    let mut overlap_before = 0.0;
                    let mut overlap_after = 0.0;
                    for (j, s) in entries.iter().enumerate() {
                        if i == j {
                            continue;
                        }
                        overlap_before += e.rect.intersection_area(&s.rect);
                        overlap_after += enlarged.intersection_area(&s.rect);
                    }
                    (overlap_after - overlap_before, area_enl, e.rect.area())
                } else {
                    (area_enl, e.rect.area(), 0.0)
                };
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            node = entries[best].payload;
        }
    }

    /// Splits `node` and propagates upward (splitting parents as needed).
    fn split_upwards(&mut self, mut node: usize) {
        loop {
            let (left_entries, right_entries) = {
                let n = &mut self.nodes[node];
                choose_split(std::mem::take(&mut n.entries), self.min_entries)
            };
            let is_leaf = self.nodes[node].is_leaf;
            let left_rect = bound_of(&left_entries);
            let right_rect = bound_of(&right_entries);

            // Reuse `node` for the left half; allocate the right half.
            self.nodes[node].entries = left_entries;
            self.nodes[node].rect = left_rect;
            let right = self.nodes.len();
            let parent_of_node = self.nodes[node].parent;
            self.nodes.push(Node {
                rect: right_rect,
                entries: right_entries,
                is_leaf,
                parent: parent_of_node,
            });
            // Children moved to the right node must learn their new parent.
            if !is_leaf {
                let kids: Vec<usize> = self.nodes[right]
                    .entries
                    .iter()
                    .map(|e| e.payload)
                    .collect();
                for k in kids {
                    self.nodes[k].parent = right;
                }
            }

            match self.parent_of(node) {
                None => {
                    // Root split: grow the tree.
                    let new_root = self.nodes.len();
                    self.nodes.push(Node {
                        rect: left_rect.merged(&right_rect),
                        entries: vec![
                            Entry {
                                rect: left_rect,
                                payload: node,
                            },
                            Entry {
                                rect: right_rect,
                                payload: right,
                            },
                        ],
                        is_leaf: false,
                        parent: NO_PARENT,
                    });
                    self.root = new_root;
                    self.nodes[node].parent = new_root;
                    self.nodes[right].parent = new_root;
                    self.height += 1;
                    return;
                }
                Some(parent) => {
                    // Update the parent's entry for `node`, add one for `right`.
                    let p = &mut self.nodes[parent];
                    for e in p.entries.iter_mut() {
                        if e.payload == node {
                            e.rect = left_rect;
                            break;
                        }
                    }
                    p.entries.push(Entry {
                        rect: right_rect,
                        payload: right,
                    });
                    p.rect = p.rect.merged(&right_rect);
                    if p.entries.len() > self.max_entries {
                        node = parent;
                        continue;
                    }
                    self.recompute_path_rects(parent);
                    return;
                }
            }
        }
    }

    #[inline]
    fn parent_of(&self, node: usize) -> Option<usize> {
        let p = self.nodes[node].parent;
        (p != NO_PARENT).then_some(p)
    }

    fn fix_rects_from(&mut self, node: usize, rect: Rect) {
        // Bubble the enlargement up to the root.
        let mut cur = node;
        loop {
            self.nodes[cur].rect.merge(&rect);
            match self.parent_of(cur) {
                Some(p) => {
                    for e in self.nodes[p].entries.iter_mut() {
                        if e.payload == cur {
                            e.rect.merge(&rect);
                            break;
                        }
                    }
                    cur = p;
                }
                None => break,
            }
        }
    }

    fn recompute_path_rects(&mut self, mut node: usize) {
        loop {
            let r = bound_of(&self.nodes[node].entries);
            self.nodes[node].rect = r;
            match self.parent_of(node) {
                Some(p) => {
                    for e in self.nodes[p].entries.iter_mut() {
                        if e.payload == node {
                            e.rect = r;
                            break;
                        }
                    }
                    node = p;
                }
                None => break,
            }
        }
    }

    /// Returns the ids of all rectangles containing `p` (the paper's
    /// baseline query: candidates are **not** refined).
    pub fn query_point(&self, p: Coord) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_point_into(p, &mut out);
        out
    }

    /// Allocation-free variant: appends matches to `out`.
    #[inline]
    pub fn query_point_into(&self, p: Coord, out: &mut Vec<u32>) {
        if self.len == 0 {
            return;
        }
        self.query_rec(self.root, p, out);
    }

    fn query_rec(&self, node: usize, p: Coord, out: &mut Vec<u32>) {
        let n = &self.nodes[node];
        if n.is_leaf {
            for e in &n.entries {
                if e.rect.contains(p) {
                    out.push(e.payload as u32);
                }
            }
        } else {
            for e in &n.entries {
                if e.rect.contains(p) {
                    self.query_rec(e.payload, p, out);
                }
            }
        }
    }

    /// Returns the ids of all rectangles intersecting `q`.
    pub fn query_rect(&self, q: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        if self.len > 0 {
            self.query_rect_rec(self.root, q, &mut out);
        }
        out
    }

    fn query_rect_rec(&self, node: usize, q: &Rect, out: &mut Vec<u32>) {
        let n = &self.nodes[node];
        for e in &n.entries {
            if e.rect.intersects(q) {
                if n.is_leaf {
                    out.push(e.payload as u32);
                } else {
                    self.query_rect_rec(e.payload, q, out);
                }
            }
        }
    }

    /// Validates structural invariants (test support): entry counts, rect
    /// containment, uniform leaf depth. Returns the number of ids found.
    pub fn check_invariants(&self) -> usize {
        let mut ids = 0;
        let depth = self.check_rec(self.root, true, &mut ids);
        assert_eq!(depth, self.height, "height bookkeeping");
        ids
    }

    fn check_rec(&self, node: usize, is_root: bool, ids: &mut usize) -> usize {
        let n = &self.nodes[node];
        if !is_root && self.len > 0 {
            assert!(
                n.entries.len() <= self.max_entries,
                "node overflow: {}",
                n.entries.len()
            );
            assert!(
                n.entries.len() >= self.min_entries,
                "node underflow: {}",
                n.entries.len()
            );
        }
        for e in &n.entries {
            assert!(
                n.rect.contains_rect(&e.rect),
                "node rect must contain entry rects"
            );
        }
        if n.is_leaf {
            *ids += n.entries.len();
            1
        } else {
            let mut depth = None;
            for e in &n.entries {
                assert_eq!(
                    self.nodes[e.payload].rect, e.rect,
                    "parent entry rect must equal child rect"
                );
                let d = self.check_rec(e.payload, false, ids);
                match depth {
                    None => depth = Some(d),
                    Some(prev) => assert_eq!(prev, d, "leaves at uniform depth"),
                }
            }
            depth.unwrap_or(0) + 1
        }
    }
}

pub(crate) fn bound_of(entries: &[Entry]) -> Rect {
    let mut r = Rect::EMPTY;
    for e in entries {
        r.merge(&e.rect);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Coord::new(x0, y0), Coord::new(x1, y1))
    }

    /// Deterministic pseudo-random rects.
    fn random_rects(n: usize, seed: u64) -> Vec<Rect> {
        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        (0..n)
            .map(|_| {
                let x = next() * 100.0;
                let y = next() * 100.0;
                let w = next() * 5.0;
                let h = next() * 5.0;
                rect(x, y, x + w, y + h)
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = RTree::new(8);
        assert!(t.is_empty());
        assert!(t.query_point(Coord::new(0.0, 0.0)).is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn single_and_overlapping() {
        let mut t = RTree::new(8);
        t.insert(rect(0.0, 0.0, 2.0, 2.0), 0);
        t.insert(rect(1.0, 1.0, 3.0, 3.0), 1);
        let mut hits = t.query_point(Coord::new(1.5, 1.5));
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
        assert_eq!(t.query_point(Coord::new(0.5, 0.5)), vec![0]);
        assert_eq!(t.query_point(Coord::new(2.5, 2.5)), vec![1]);
        assert!(t.query_point(Coord::new(5.0, 5.0)).is_empty());
    }

    #[test]
    fn splits_maintain_invariants() {
        let mut t = RTree::new(8);
        for (i, r) in random_rects(500, 42).into_iter().enumerate() {
            t.insert(r, i as u32);
        }
        assert_eq!(t.len(), 500);
        assert_eq!(t.check_invariants(), 500);
        assert!(t.height() >= 3, "500 entries at max 8 must stack levels");
    }

    #[test]
    fn equals_brute_force_point_queries() {
        let rects = random_rects(300, 7);
        let mut t = RTree::new(8);
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i as u32);
        }
        let mut state = 99u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..500 {
            let p = Coord::new(next() * 110.0 - 5.0, next() * 110.0 - 5.0);
            let mut got = t.query_point(p);
            got.sort_unstable();
            let expected: Vec<u32> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.contains(p))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, expected, "at {p}");
        }
    }

    #[test]
    fn equals_brute_force_rect_queries() {
        let rects = random_rects(200, 13);
        let mut t = RTree::new(8);
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i as u32);
        }
        let queries = random_rects(50, 31);
        for q in queries {
            let mut got = t.query_rect(&q);
            got.sort_unstable();
            let expected: Vec<u32> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.intersects(&q))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn duplicate_rects_are_kept() {
        let mut t = RTree::new(8);
        let r = rect(0.0, 0.0, 1.0, 1.0);
        for i in 0..20 {
            t.insert(r, i);
        }
        assert_eq!(t.len(), 20);
        assert_eq!(t.query_point(Coord::new(0.5, 0.5)).len(), 20);
        t.check_invariants();
    }

    #[test]
    fn memory_accounting_positive() {
        let mut t = RTree::new(8);
        for (i, r) in random_rects(100, 5).into_iter().enumerate() {
            t.insert(r, i as u32);
        }
        assert!(t.memory_bytes() > 100 * std::mem::size_of::<Entry>());
    }
}
