//! The R\* node split: margin-driven axis selection, overlap-driven
//! distribution selection (Beckmann et al., SIGMOD 1990).

#[cfg(test)]
use crate::node::bound_of;
use geom::Rect;

/// One node entry: a rectangle plus a payload (external id in leaves,
/// child node index in inner nodes).
#[derive(Debug, Clone, Copy)]
pub struct Entry {
    pub rect: Rect,
    pub payload: usize,
}

/// Splits an overflowing entry list into two groups per the R\* algorithm.
///
/// For each axis, entries are sorted by lower then by upper coordinate; all
/// distributions with at least `min_entries` on each side are considered.
/// The axis with the smallest *margin sum* wins; within it, the
/// distribution with the smallest overlap (ties: smallest total area).
pub fn choose_split(entries: Vec<Entry>, min_entries: usize) -> (Vec<Entry>, Vec<Entry>) {
    debug_assert!(entries.len() >= 2 * min_entries);

    let mut best: Option<(f64, f64, Vec<Entry>, usize)> = None; // (overlap, area, sorted, split_at)
    let mut best_margin = f64::MAX;

    for axis in 0..2 {
        for by_upper in [false, true] {
            let mut sorted = entries.clone();
            sorted.sort_by(|a, b| {
                let ka = sort_key(&a.rect, axis, by_upper);
                let kb = sort_key(&b.rect, axis, by_upper);
                ka.partial_cmp(&kb).unwrap()
            });

            // Prefix/suffix bounding rects for O(n) margin evaluation.
            let n = sorted.len();
            let mut prefix = vec![Rect::EMPTY; n];
            let mut acc = Rect::EMPTY;
            for (i, e) in sorted.iter().enumerate() {
                acc.merge(&e.rect);
                prefix[i] = acc;
            }
            let mut suffix = vec![Rect::EMPTY; n];
            let mut acc = Rect::EMPTY;
            for i in (0..n).rev() {
                acc.merge(&sorted[i].rect);
                suffix[i] = acc;
            }

            // Margin sum over all legal distributions for this sort.
            let mut margin_sum = 0.0;
            for k in min_entries..=(n - min_entries) {
                margin_sum += prefix[k - 1].margin() + suffix[k].margin();
            }

            if margin_sum < best_margin {
                best_margin = margin_sum;
                // Pick the best distribution within this sort.
                let mut best_k = min_entries;
                let mut best_key = (f64::MAX, f64::MAX);
                for k in min_entries..=(n - min_entries) {
                    let l = prefix[k - 1];
                    let r = suffix[k];
                    let key = (l.intersection_area(&r), l.area() + r.area());
                    if key < best_key {
                        best_key = key;
                        best_k = k;
                    }
                }
                best = Some((best_key.0, best_key.1, sorted, best_k));
            }
        }
    }

    let (_, _, sorted, k) = best.expect("at least one axis considered");
    let right = sorted[k..].to_vec();
    let left = sorted[..k].to_vec();
    debug_assert_eq!(left.len() + right.len(), entries.len());
    (left, right)
}

#[inline]
fn sort_key(r: &Rect, axis: usize, by_upper: bool) -> f64 {
    match (axis, by_upper) {
        (0, false) => r.min.x,
        (0, true) => r.max.x,
        (1, false) => r.min.y,
        _ => r.max.y,
    }
}

/// Bounding rect helper for split tests.
#[cfg(test)]
pub(crate) fn bound_entries(entries: &[Entry]) -> Rect {
    bound_of(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Coord;

    fn e(x0: f64, y0: f64, x1: f64, y1: f64, id: usize) -> Entry {
        Entry {
            rect: Rect::new(Coord::new(x0, y0), Coord::new(x1, y1)),
            payload: id,
        }
    }

    #[test]
    fn split_separates_clusters() {
        // Two clear clusters on the x axis must be split apart.
        let mut entries = Vec::new();
        for i in 0..5 {
            entries.push(e(i as f64 * 0.1, 0.0, i as f64 * 0.1 + 0.05, 1.0, i));
        }
        for i in 0..5 {
            entries.push(e(
                100.0 + i as f64 * 0.1,
                0.0,
                100.0 + i as f64 * 0.1 + 0.05,
                1.0,
                5 + i,
            ));
        }
        let (l, r) = choose_split(entries, 3);
        let l_ids: Vec<usize> = l.iter().map(|x| x.payload).collect();
        let r_ids: Vec<usize> = r.iter().map(|x| x.payload).collect();
        let (low, high) = if l_ids.contains(&0) {
            (l_ids, r_ids)
        } else {
            (r_ids, l_ids)
        };
        assert!(low.iter().all(|&i| i < 5), "low cluster split: {low:?}");
        assert!(high.iter().all(|&i| i >= 5), "high cluster split: {high:?}");
    }

    #[test]
    fn split_respects_min_entries() {
        let entries: Vec<Entry> = (0..9)
            .map(|i| e(i as f64, 0.0, i as f64 + 0.5, 1.0, i))
            .collect();
        let (l, r) = choose_split(entries, 3);
        assert!(l.len() >= 3 && r.len() >= 3);
        assert_eq!(l.len() + r.len(), 9);
    }

    #[test]
    fn split_minimizes_overlap() {
        // A vertical stack: splitting on y gives zero overlap.
        let entries: Vec<Entry> = (0..8)
            .map(|i| e(0.0, i as f64 * 2.0, 10.0, i as f64 * 2.0 + 1.0, i))
            .collect();
        let (l, r) = choose_split(entries, 3);
        let lb = bound_entries(&l);
        let rb = bound_entries(&r);
        assert_eq!(lb.intersection_area(&rb), 0.0);
    }
}
