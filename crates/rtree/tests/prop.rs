//! Property-based tests: the R-tree answers exactly like a linear scan and
//! maintains its structural invariants under arbitrary insertion orders.

use geom::{Coord, Rect};
use proptest::prelude::*;
use rtree::{bulk_load_str, RTree};

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-50.0f64..50.0, -50.0f64..50.0, 0.0f64..10.0, 0.0f64..10.0)
        .prop_map(|(x, y, w, h)| Rect::new(Coord::new(x, y), Coord::new(x + w, y + h)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn point_queries_equal_linear_scan(
        rects in proptest::collection::vec(arb_rect(), 0..120),
        probes in proptest::collection::vec((-55.0f64..55.0, -55.0f64..55.0), 20),
    ) {
        let mut tree = RTree::new(8);
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i as u32);
        }
        prop_assert_eq!(tree.len(), rects.len());
        if !rects.is_empty() {
            tree.check_invariants();
        }
        for (px, py) in probes {
            let p = Coord::new(px, py);
            let mut got = tree.query_point(p);
            got.sort_unstable();
            let expected: Vec<u32> = rects
                .iter()
                .enumerate()
                .filter(|(_, r)| r.contains(p))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn rect_queries_equal_linear_scan(
        rects in proptest::collection::vec(arb_rect(), 1..80),
        query in arb_rect(),
    ) {
        let mut tree = RTree::new(8);
        for (i, r) in rects.iter().enumerate() {
            tree.insert(*r, i as u32);
        }
        let mut got = tree.query_rect(&query);
        got.sort_unstable();
        let expected: Vec<u32> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&query))
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn str_and_insertion_answer_identically(
        rects in proptest::collection::vec(arb_rect(), 1..100),
        probes in proptest::collection::vec((-55.0f64..55.0, -55.0f64..55.0), 15),
    ) {
        let items: Vec<(Rect, u32)> = rects.iter().enumerate().map(|(i, r)| (*r, i as u32)).collect();
        let str_tree = bulk_load_str(&items, 8);
        let mut ins_tree = RTree::new(8);
        for &(r, id) in &items {
            ins_tree.insert(r, id);
        }
        for (px, py) in probes {
            let p = Coord::new(px, py);
            let mut a = str_tree.query_point(p);
            let mut b = ins_tree.query_point(p);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn insertion_order_does_not_change_answers(
        rects in proptest::collection::vec(arb_rect(), 2..60),
        probes in proptest::collection::vec((-55.0f64..55.0, -55.0f64..55.0), 10),
    ) {
        let mut fwd = RTree::new(8);
        for (i, r) in rects.iter().enumerate() {
            fwd.insert(*r, i as u32);
        }
        let mut rev = RTree::new(8);
        for (i, r) in rects.iter().enumerate().rev() {
            rev.insert(*r, i as u32);
        }
        for (px, py) in probes {
            let p = Coord::new(px, py);
            let mut a = fwd.query_point(p);
            let mut b = rev.query_point(p);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}
