//! Property-based tests for the hierarchical-grid substrate.

use proptest::prelude::*;
use s2cell::{metrics, Cell, CellId, CellUnion, LatLng};

fn arb_latlng() -> impl Strategy<Value = LatLng> {
    // Stay a hair off the poles where longitude degenerates.
    (-89.9f64..89.9, -179.99f64..179.99).prop_map(|(lat, lng)| LatLng::from_degrees(lat, lng))
}

fn arb_level() -> impl Strategy<Value = u8> {
    0u8..=30
}

proptest! {
    // Explicit case count: keeps this suite deterministic-duration in CI
    // (the whole workspace test run must stay under ~60 s).
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn latlng_cell_roundtrip_within_leaf_diag(ll in arb_latlng()) {
        let cell = CellId::from_latlng(ll);
        prop_assert!(cell.is_valid());
        prop_assert!(cell.is_leaf());
        let back = cell.to_latlng();
        // The center of the containing leaf is within one leaf diagonal.
        prop_assert!(ll.distance_meters(&back) <= metrics::max_diag_meters(30));
    }

    #[test]
    fn face_ij_roundtrip(face in 0u8..6, i in 0u32..(1 << 30), j in 0u32..(1 << 30)) {
        let cell = CellId::from_face_ij(face, i, j);
        prop_assert!(cell.is_valid());
        let (f2, i2, j2, _) = cell.to_face_ij_orientation();
        prop_assert_eq!((f2, i2, j2), (face, i, j));
    }

    #[test]
    fn parent_algebra(ll in arb_latlng(), level in arb_level()) {
        let leaf = CellId::from_latlng(ll);
        let cell = leaf.parent(level);
        prop_assert_eq!(cell.level(), level);
        prop_assert!(cell.contains(leaf));
        // Parent of parent == parent at the coarser level.
        if level >= 1 {
            prop_assert_eq!(cell.parent(level - 1), leaf.parent(level - 1));
            prop_assert_eq!(cell.immediate_parent(), cell.parent(level - 1));
        }
        // range_min/max are leaves and contained.
        prop_assert!(cell.range_min().is_leaf());
        prop_assert!(cell.range_max().is_leaf());
        prop_assert!(cell.contains(cell.range_min()));
        prop_assert!(cell.contains(cell.range_max()));
    }

    #[test]
    fn children_partition(ll in arb_latlng(), level in 0u8..30) {
        let cell = CellId::from_latlng(ll).parent(level);
        let kids = cell.children();
        let mut covered = 0u128;
        for (a, k) in kids.iter().enumerate() {
            prop_assert_eq!(k.level(), level + 1);
            prop_assert!(cell.contains(*k));
            covered += (k.range_max().0 - k.range_min().0) as u128 + 2;
            for kb in kids.iter().skip(a + 1) {
                prop_assert!(!k.intersects(*kb));
            }
        }
        prop_assert_eq!(covered, (cell.range_max().0 - cell.range_min().0) as u128 + 2);
    }

    #[test]
    fn containment_iff_range(ll1 in arb_latlng(), ll2 in arb_latlng(), l1 in arb_level(), l2 in arb_level()) {
        let a = CellId::from_latlng(ll1).parent(l1);
        let b = CellId::from_latlng(ll2).parent(l2);
        // Laminar family: intersecting cells must nest.
        if a.intersects(b) {
            prop_assert!(a.contains(b) || b.contains(a));
        } else {
            prop_assert!(!a.contains(b) && !b.contains(a));
        }
    }

    #[test]
    fn key_bytes_are_prefixes(ll in arb_latlng(), level in 4u8..=28) {
        let leaf = CellId::from_latlng(ll);
        let anc = leaf.parent(level);
        for d in 0..(level as u32 / 4) {
            prop_assert_eq!(anc.key_byte(d), leaf.key_byte(d), "byte {}", d);
        }
    }

    #[test]
    fn next_prev_inverse(ll in arb_latlng(), level in 1u8..=30) {
        let cell = CellId::from_latlng(ll).parent(level);
        prop_assert_eq!(cell.next().prev(), cell);
        if cell.next().is_valid() {
            prop_assert_eq!(cell.next().level(), level);
            prop_assert!(!cell.intersects(cell.next()));
        }
    }

    #[test]
    fn token_roundtrip(ll in arb_latlng(), level in arb_level()) {
        let cell = CellId::from_latlng(ll).parent(level);
        prop_assert_eq!(CellId::from_token(&cell.token()), Some(cell));
    }

    #[test]
    fn cell_geometry_bounds_center(ll in arb_latlng(), level in 0u8..=28) {
        let cell = Cell::from_cellid(CellId::from_latlng(ll).parent(level));
        let diag = cell.diag_meters();
        prop_assert!(diag <= metrics::max_diag_meters(level) * (1.0 + 1e-9));
        // The generating point is inside the cell, so it is within one
        // diagonal of the center.
        let center = cell.center().to_latlng();
        prop_assert!(ll.distance_meters(&center) <= diag * 0.5 + 1e-9 * diag + 0.02);
    }

    #[test]
    fn union_contains_matches_members(ll in arb_latlng(), levels in proptest::collection::vec(4u8..20, 1..8)) {
        // Build a union from ancestors of nearby points.
        let cells: Vec<CellId> = levels
            .iter()
            .enumerate()
            .map(|(k, &lvl)| {
                let p = LatLng::from_degrees(
                    ll.lat_degrees() + k as f64 * 0.01,
                    ll.lng_degrees() + k as f64 * 0.013,
                );
                CellId::from_latlng(p).parent(lvl)
            })
            .collect();
        let union = CellUnion::from_cells(cells.clone());
        // Membership must agree with the raw member list for probes at
        // member corners and centers.
        for c in &cells {
            prop_assert!(union.contains(*c), "member {:?} lost", c);
            prop_assert!(union.contains(c.range_min()));
            prop_assert!(union.contains(c.range_max()));
        }
        // A far-away leaf is not contained.
        let far = CellId::from_latlng(LatLng::from_degrees(-ll.lat_degrees().clamp(-80.0, 80.0) + 5.0, ll.lng_degrees()));
        if !cells.iter().any(|c| c.contains(far)) {
            prop_assert!(!union.contains(far));
        }
    }

    #[test]
    fn hilbert_locality(lat in -60.0f64..60.0, lng in -170.0f64..170.0, d in 1e-7f64..1e-5) {
        // Points within distance d (degrees) share an ancestor whose size
        // is commensurate with d — Hilbert locality (loose bound: two
        // points d apart share a level-L ancestor for some L with cell
        // size >= d; they may straddle a cell boundary at finer levels).
        let a = CellId::from_latlng(LatLng::from_degrees(lat, lng));
        let b = CellId::from_latlng(LatLng::from_degrees(lat + d, lng));
        let mut level = 30u8;
        while level > 0 && a.parent(level) != b.parent(level) {
            level -= 1;
        }
        // Shared ancestor's diagonal must be at least the point distance.
        let dist_m = LatLng::from_degrees(lat, lng)
            .distance_meters(&LatLng::from_degrees(lat + d, lng));
        prop_assert!(
            metrics::max_diag_meters(level) >= dist_m,
            "shared level {} too fine for {} m", level, dist_m
        );
    }
}
