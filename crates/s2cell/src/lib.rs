//! # s2cell — a from-scratch S2-style hierarchical grid
//!
//! This crate reimplements the cell-id subsystem of Google's S2 geometry
//! library in pure Rust. It is the hierarchical-grid substrate required by
//! the ACT (Adaptive Cell Trie) approximate geospatial join of
//! Kipf et al., *Approximate Geospatial Joins with Precision Guarantees*
//! (ICDE 2018).
//!
//! The grid decomposes the unit sphere into six cube faces; each face is a
//! quadtree of 30 levels. Every quadtree node (a *cell*) is identified by a
//! 64-bit [`CellId`] that encodes the face (3 bits) and the Hilbert-curve
//! path from the face root to the node (2 bits per level, followed by a
//! sentinel `1` bit). Crucially for ACT, the id of a child cell shares a
//! bit-prefix with its parent, so cells can be stored in a radix tree and
//! looked up with prefix matching alone.
//!
//! The mapping from geodetic coordinates to cells goes through the chain
//!
//! ```text
//! (lat, lng) -> unit vector (x, y, z) -> cube face + (u, v)
//!            -> quadratic (s, t) -> discrete (i, j) -> Hilbert position
//! ```
//!
//! implemented in [`coords`], with the same quadratic projection and the
//! same Hilbert-curve orientation rules as the original S2, so cell sizes
//! and the precision-to-level mapping (e.g. level 24 ⇒ sub-meter cells)
//! match the numbers reported in the paper.
//!
//! ## Quick example
//!
//! ```
//! use s2cell::{CellId, LatLng, metrics};
//!
//! // Times Square, NYC.
//! let p = LatLng::from_degrees(40.7580, -73.9855);
//! let leaf = CellId::from_latlng(p);
//! assert!(leaf.is_leaf());
//!
//! // Walk up to a ~60 m cell (level 18) and check containment.
//! let level = metrics::level_for_max_diag_meters(60.0);
//! assert_eq!(level, 18);
//! let coarse = leaf.parent(level);
//! assert!(coarse.contains(leaf));
//! ```

#![forbid(unsafe_code)]

pub mod cell;
pub mod cellid;
pub mod cellunion;
pub mod coords;
pub mod latlng;
pub mod metrics;
pub mod point;

pub use cell::Cell;
pub use cellid::CellId;
pub use cellunion::CellUnion;
pub use latlng::LatLng;
pub use point::Point;

/// Number of quadtree levels below the face root (leaf cells are level 30).
pub const MAX_LEVEL: u8 = 30;

/// Number of discrete (i, j) coordinates along one face axis: `2^MAX_LEVEL`.
pub const MAX_SIZE: u32 = 1 << MAX_LEVEL;

/// Number of bits used for the Hilbert position (including the sentinel bit).
pub const POS_BITS: u32 = 2 * MAX_LEVEL as u32 + 1;

/// Number of cube faces.
pub const NUM_FACES: u8 = 6;
