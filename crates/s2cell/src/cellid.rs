//! 64-bit hierarchical cell identifiers.
//!
//! A [`CellId`] uniquely identifies one node of the 6-face quadtree
//! hierarchy. The bit layout (matching S2) is:
//!
//! ```text
//!  63      61 60                                            0
//! +----------+----------------------------------------------+
//! |  face(3) |  Hilbert position (2 bits/level) | 1 | 0...0 |
//! +----------+----------------------------------------------+
//! ```
//!
//! A cell at level `L` uses `2·L` position bits followed by a sentinel `1`
//! bit and zero padding. Two properties make this encoding ideal for a radix
//! tree (the property ACT relies on):
//!
//! 1. The position bits of a child extend those of its parent — ids are
//!    *prefix codes* for quadtree paths.
//! 2. All descendants of a cell form a contiguous id range
//!    `[range_min, range_max]`.

use crate::coords::{
    self, st_to_ij, xyz_to_face_uv, INVERT_MASK, LOOKUP_BITS, LOOKUP_IJ, LOOKUP_POS, SWAP_MASK,
};
use crate::latlng::LatLng;
use crate::point::Point;
use crate::{MAX_LEVEL, NUM_FACES, POS_BITS};
use std::fmt;

/// A 64-bit hierarchical cell identifier (see module docs for the layout).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub u64);

impl CellId {
    /// The invalid/none cell id.
    pub const NONE: CellId = CellId(0);

    /// Returns the level-0 cell covering an entire cube face (0..6).
    #[inline]
    pub fn from_face(face: u8) -> CellId {
        debug_assert!(face < NUM_FACES);
        CellId(((face as u64) << (POS_BITS)) + Self::lsb_for_level(0))
    }

    /// Builds the **leaf** cell id for discrete face coordinates (i, j).
    ///
    /// This is the hot path of the whole system: it maps 4 bits of `i` and
    /// 4 bits of `j` to 8 Hilbert-position bits per step via lookup tables.
    pub fn from_face_ij(face: u8, i: u32, j: u32) -> CellId {
        debug_assert!(face < NUM_FACES);
        let mut n: u64 = (face as u64) << (POS_BITS - 1);
        // Alternate faces have opposite Hilbert curve orientations; this is
        // required for the curve to be continuous across face boundaries.
        let mut bits: u64 = (face & SWAP_MASK) as u64;
        let mask: u64 = (1 << LOOKUP_BITS) - 1;
        let mut k: i32 = 7;
        while k >= 0 {
            let shift = (k as u32) * LOOKUP_BITS;
            bits += (((i >> shift) as u64) & mask) << (LOOKUP_BITS + 2);
            bits += (((j >> shift) as u64) & mask) << 2;
            bits = LOOKUP_POS[bits as usize] as u64;
            n |= (bits >> 2) << (k as u32 * 2 * LOOKUP_BITS);
            bits &= (SWAP_MASK | INVERT_MASK) as u64;
            k -= 1;
        }
        CellId(n * 2 + 1)
    }

    /// Builds the leaf cell containing the given unit vector.
    #[inline]
    pub fn from_point(p: &Point) -> CellId {
        let (face, u, v) = xyz_to_face_uv(p);
        let i = st_to_ij(coords::uv_to_st(u));
        let j = st_to_ij(coords::uv_to_st(v));
        Self::from_face_ij(face, i, j)
    }

    /// Builds the leaf cell containing the given lat/lng.
    #[inline]
    pub fn from_latlng(ll: LatLng) -> CellId {
        Self::from_point(&ll.to_point())
    }

    /// Decodes this id into (face, i, j) leaf coordinates and the Hilbert
    /// orientation at the cell's level. For non-leaf cells the returned
    /// (i, j) identify a leaf cell near the center of this cell.
    pub fn to_face_ij_orientation(&self) -> (u8, u32, u32, u8) {
        let face = self.face();
        let mut bits: u64 = (face & SWAP_MASK) as u64;
        let mut i: u32 = 0;
        let mut j: u32 = 0;
        let mut k: i32 = 7;
        while k >= 0 {
            let nbits: u32 = if k == 7 {
                MAX_LEVEL as u32 - 7 * LOOKUP_BITS
            } else {
                LOOKUP_BITS
            };
            bits += ((self.0 >> (k as u32 * 2 * LOOKUP_BITS + 1)) & ((1 << (2 * nbits)) - 1)) << 2;
            bits = LOOKUP_IJ[bits as usize] as u64;
            i += ((bits >> (LOOKUP_BITS + 2)) as u32) << (k as u32 * LOOKUP_BITS);
            j += (((bits >> 2) as u32) & ((1 << LOOKUP_BITS) - 1)) << (k as u32 * LOOKUP_BITS);
            bits &= (SWAP_MASK | INVERT_MASK) as u64;
            k -= 1;
        }
        (face, i, j, bits as u8)
    }

    /// The cube face (0..6) of this cell.
    #[inline]
    pub fn face(&self) -> u8 {
        (self.0 >> POS_BITS) as u8
    }

    /// The lowest set bit: `1 << (2 · (30 − level))`.
    #[inline]
    pub fn lsb(&self) -> u64 {
        self.0 & self.0.wrapping_neg()
    }

    /// The lsb value a cell at `level` would have.
    #[inline]
    pub fn lsb_for_level(level: u8) -> u64 {
        1u64 << (2 * (MAX_LEVEL - level))
    }

    /// The subdivision level of this cell (0 = face cell, 30 = leaf).
    #[inline]
    pub fn level(&self) -> u8 {
        debug_assert!(self.is_valid());
        MAX_LEVEL - (self.0.trailing_zeros() as u8 >> 1)
    }

    /// True if this is a leaf (level 30) cell.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.0 & 1 == 1
    }

    /// True if this is a face (level 0) cell.
    #[inline]
    pub fn is_face(&self) -> bool {
        self.0 & (Self::lsb_for_level(0) - 1) == 0 && self.0 != 0
    }

    /// True if this encodes a structurally valid cell id.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.face() < NUM_FACES && (self.lsb() & 0x1555_5555_5555_5555) != 0
    }

    /// The ancestor of this cell at the given (coarser or equal) level.
    #[inline]
    pub fn parent(&self, level: u8) -> CellId {
        debug_assert!(level <= self.level());
        let new_lsb = Self::lsb_for_level(level);
        CellId((self.0 & new_lsb.wrapping_neg()) | new_lsb)
    }

    /// The immediate parent (one level up).
    #[inline]
    pub fn immediate_parent(&self) -> CellId {
        debug_assert!(!self.is_face());
        let new_lsb = self.lsb() << 2;
        CellId((self.0 & new_lsb.wrapping_neg()) | new_lsb)
    }

    /// The `k`-th child (0..4) of this cell, in Hilbert order.
    #[inline]
    pub fn child(&self, k: u8) -> CellId {
        debug_assert!(!self.is_leaf() && k < 4);
        let new_lsb = self.lsb() >> 2;
        CellId(
            self.0
                .wrapping_add((2 * k as u64).wrapping_sub(3).wrapping_mul(new_lsb)),
        )
    }

    /// All four children in Hilbert order.
    #[inline]
    pub fn children(&self) -> [CellId; 4] {
        [self.child(0), self.child(1), self.child(2), self.child(3)]
    }

    /// The index (0..4) of the child of `level`-1 ancestor on the path to
    /// this cell; i.e. which quadrant this cell's level-`level` ancestor
    /// occupies within its parent.
    #[inline]
    pub fn child_position(&self, level: u8) -> u8 {
        debug_assert!(level >= 1 && level <= self.level());
        ((self.0 >> (2 * (MAX_LEVEL - level) + 1)) & 3) as u8
    }

    /// Smallest leaf id contained in this cell.
    #[inline]
    pub fn range_min(&self) -> CellId {
        CellId(self.0 - (self.lsb() - 1))
    }

    /// Largest leaf id contained in this cell.
    #[inline]
    pub fn range_max(&self) -> CellId {
        CellId(self.0 + (self.lsb() - 1))
    }

    /// True if `other` is this cell or a descendant of it.
    #[inline]
    pub fn contains(&self, other: CellId) -> bool {
        other.0 >= self.range_min().0 && other.0 <= self.range_max().0
    }

    /// True if the two cells overlap (one contains the other).
    #[inline]
    pub fn intersects(&self, other: CellId) -> bool {
        other.range_min().0 <= self.range_max().0 && other.range_max().0 >= self.range_min().0
    }

    /// The next cell at this level along the Hilbert curve (may wrap past
    /// the last face; callers should check [`CellId::is_valid`]).
    #[inline]
    pub fn next(&self) -> CellId {
        CellId(self.0.wrapping_add(self.lsb() << 1))
    }

    /// The previous cell at this level along the Hilbert curve.
    #[inline]
    pub fn prev(&self) -> CellId {
        CellId(self.0.wrapping_sub(self.lsb() << 1))
    }

    /// The center of this cell.
    pub fn to_point(&self) -> Point {
        let (face, si, ti) = self.center_st();
        coords::face_uv_to_xyz(face, coords::st_to_uv(si), coords::st_to_uv(ti)).normalized()
    }

    /// The center of this cell in lat/lng.
    #[inline]
    pub fn to_latlng(&self) -> LatLng {
        self.to_point().to_latlng()
    }

    /// The (face, s, t) coordinates of this cell's center.
    pub fn center_st(&self) -> (u8, f64, f64) {
        let (face, i, j, _) = self.to_face_ij_orientation();
        let size = coords::size_ij(self.level());
        let i_lo = i & !(size - 1);
        let j_lo = j & !(size - 1);
        let half = size as f64 * 0.5;
        let s = (i_lo as f64 + half) / crate::MAX_SIZE as f64;
        let t = (j_lo as f64 + half) / crate::MAX_SIZE as f64;
        (face, s, t)
    }

    /// Extracts the `d`-th byte (0-based, most significant first) of the
    /// position-bit string. This is the radix-tree key chunk used by ACT:
    /// byte `d` discriminates quadtree levels `4d+1 ..= 4d+4`.
    #[inline]
    pub fn key_byte(&self, d: u32) -> u8 {
        debug_assert!(d < 8);
        ((self.0 << 3) >> (56 - 8 * d)) as u8
    }

    /// A compact hex token for debugging (trailing zeros stripped), e.g.
    /// `"89c25a34"`.
    pub fn token(&self) -> String {
        if self.0 == 0 {
            return "X".to_string();
        }
        let hex = format!("{:016x}", self.0);
        hex.trim_end_matches('0').to_string()
    }

    /// Parses a token produced by [`CellId::token`].
    pub fn from_token(tok: &str) -> Option<CellId> {
        if tok.is_empty() || tok.len() > 16 || tok == "X" {
            return None;
        }
        let mut padded = tok.to_string();
        while padded.len() < 16 {
            padded.push('0');
        }
        u64::from_str_radix(&padded, 16).ok().map(CellId)
    }
}

impl fmt::Debug for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_valid() {
            return write!(f, "CellId(invalid: {:#x})", self.0);
        }
        write!(f, "CellId({}/", self.face())?;
        for l in 1..=self.level() {
            write!(f, "{}", self.child_position(l))?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.token())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn face_cells() {
        for face in 0..6u8 {
            let c = CellId::from_face(face);
            assert!(c.is_valid());
            assert!(c.is_face());
            assert_eq!(c.face(), face);
            assert_eq!(c.level(), 0);
            assert!(!c.is_leaf());
        }
    }

    #[test]
    fn leaf_roundtrip_face_ij() {
        for &(face, i, j) in &[
            (0u8, 0u32, 0u32),
            (1, 12345, 67890),
            (4, 0x3fff_ffff, 0x3fff_ffff),
            (5, 0x2000_0000, 0x1fff_ffff),
            (3, 1, 0x3fff_fffe),
        ] {
            let c = CellId::from_face_ij(face, i, j);
            assert!(c.is_leaf(), "({face},{i},{j})");
            assert!(c.is_valid());
            let (f2, i2, j2, _) = c.to_face_ij_orientation();
            assert_eq!((f2, i2, j2), (face, i, j));
        }
    }

    #[test]
    fn parent_child_algebra() {
        let leaf = CellId::from_latlng(LatLng::from_degrees(40.7580, -73.9855));
        assert_eq!(leaf.level(), 30);
        for level in (0..30u8).rev() {
            let p = leaf.parent(level);
            assert_eq!(p.level(), level);
            assert!(p.contains(leaf));
            assert!(!leaf.contains(p));
            // The parent is reachable from its own parent via `child`.
            if level < 30 {
                let q = leaf.parent(level + 1);
                assert_eq!(q.immediate_parent(), p);
                let pos = leaf.child_position(level + 1);
                assert_eq!(p.child(pos), q);
            }
        }
    }

    #[test]
    fn children_partition_parent() {
        let cell = CellId::from_latlng(LatLng::from_degrees(40.7, -74.0)).parent(10);
        let kids = cell.children();
        // Children are disjoint, contained in parent, and cover its range.
        for (a, k) in kids.iter().enumerate() {
            assert_eq!(k.level(), 11);
            assert!(cell.contains(*k));
            assert_eq!(k.immediate_parent(), cell);
            for kb in kids.iter().skip(a + 1) {
                assert!(!k.intersects(*kb));
            }
        }
        assert_eq!(kids[0].range_min(), cell.range_min());
        assert_eq!(kids[3].range_max(), cell.range_max());
        // Consecutive children are adjacent in id space.
        for w in kids.windows(2) {
            assert_eq!(w[0].range_max().0 + 2, w[1].range_min().0);
        }
    }

    #[test]
    fn containment_is_range_containment() {
        let a = CellId::from_latlng(LatLng::from_degrees(40.7, -74.0)).parent(8);
        let b = a.child(2).child(1);
        assert!(a.contains(b));
        assert!(a.intersects(b));
        assert!(b.intersects(a));
        let sibling = a.next();
        assert!(!a.intersects(sibling));
        assert!(!a.contains(sibling));
    }

    #[test]
    fn next_prev() {
        let c = CellId::from_face(2).child(1).child(3);
        assert_eq!(c.next().prev(), c);
        assert_eq!(c.next().level(), c.level());
        assert!(c.next().0 > c.0);
    }

    #[test]
    fn center_is_contained() {
        // The center of a cell must map back into the same cell.
        let mut cell = CellId::from_latlng(LatLng::from_degrees(40.7580, -73.9855)).parent(0);
        for _ in 0..30 {
            let center = cell.to_latlng();
            let leaf = CellId::from_latlng(center);
            assert!(
                cell.contains(leaf),
                "center of {cell:?} maps to {leaf:?} outside the cell"
            );
            cell = cell.child(2);
        }
    }

    #[test]
    fn latlng_cell_roundtrip_precision() {
        // A leaf cell is ~1 cm; its center must be within 1 cm of the input.
        let ll = LatLng::from_degrees(40.7580, -73.9855);
        let c = CellId::from_latlng(ll);
        let back = c.to_latlng();
        assert!(ll.distance_meters(&back) < 0.01);
    }

    #[test]
    fn key_bytes_are_prefix_stable() {
        // Key bytes of an ancestor are a prefix of the descendant's bytes
        // for all full byte positions of the ancestor's level.
        let leaf = CellId::from_latlng(LatLng::from_degrees(40.7, -74.0));
        let anc = leaf.parent(16); // 32 position bits = 4 full key bytes
        for d in 0..4 {
            assert_eq!(anc.key_byte(d), leaf.key_byte(d), "byte {d}");
        }
    }

    #[test]
    fn key_byte_extracts_position_bits() {
        // For a level-4 cell, key byte 0 holds exactly the 8 position bits.
        let cell = CellId::from_face(4).child(1).child(2).child(3).child(0);
        let expected = (1 << 6) | (2 << 4) | (3 << 2); // 01_10_11_00
        assert_eq!(cell.key_byte(0), expected);
    }

    #[test]
    fn tokens_roundtrip() {
        for cell in [
            CellId::from_face(0),
            CellId::from_face(5),
            CellId::from_latlng(LatLng::from_degrees(40.7, -74.0)),
            CellId::from_latlng(LatLng::from_degrees(-33.9, 151.2)).parent(12),
        ] {
            let tok = cell.token();
            assert_eq!(CellId::from_token(&tok), Some(cell), "token {tok}");
        }
        assert_eq!(CellId::from_token("X"), None);
        assert_eq!(CellId::from_token(""), None);
    }

    #[test]
    fn invalid_ids() {
        assert!(!CellId(0).is_valid());
        assert!(!CellId(u64::MAX).is_valid()); // face 7
        assert!(CellId::from_face(0).is_valid());
    }

    #[test]
    fn hilbert_locality_smoke() {
        // Nearby points should share a long cell-id prefix.
        let a = CellId::from_latlng(LatLng::from_degrees(40.758000, -73.985500));
        let b = CellId::from_latlng(LatLng::from_degrees(40.758001, -73.985501));
        // Within ~20 cm, they must share at least a level-20 ancestor.
        assert_eq!(a.parent(20), b.parent(20));
    }
}
