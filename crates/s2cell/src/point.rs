//! Points on the unit sphere (3-vectors).

use crate::latlng::LatLng;

/// A point in ℝ³, usually (but not necessarily) of unit length, representing
/// a direction from the center of the Earth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Point {
    /// Creates a new point; does not normalize.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point { x, y, z }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns this vector scaled to unit length.
    ///
    /// Returns the zero vector unchanged (callers are expected to avoid it).
    #[inline]
    pub fn normalized(&self) -> Point {
        let n = self.norm();
        if n == 0.0 {
            *self
        } else {
            Point {
                x: self.x / n,
                y: self.y / n,
                z: self.z / n,
            }
        }
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, o: &Point) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(&self, o: &Point) -> Point {
        Point {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Angle between two vectors in radians, stable for small angles.
    pub fn angle(&self, o: &Point) -> f64 {
        self.cross(o).norm().atan2(self.dot(o))
    }

    /// Converts to geodetic latitude/longitude.
    #[inline]
    pub fn to_latlng(&self) -> LatLng {
        LatLng {
            lat: self.z.atan2((self.x * self.x + self.y * self.y).sqrt()),
            lng: self.y.atan2(self.x),
        }
    }
}

impl std::ops::Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, o: Point) -> Point {
        Point::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl std::ops::Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, o: Point) -> Point {
        Point::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl std::ops::Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, s: f64) -> Point {
        Point::new(self.x * s, self.y * s, self.z * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_and_normalize() {
        let p = Point::new(3.0, 4.0, 0.0);
        assert_eq!(p.norm(), 5.0);
        let n = p.normalized();
        assert!((n.norm() - 1.0).abs() < 1e-15);
        assert_eq!(Point::new(0.0, 0.0, 0.0).normalized().norm(), 0.0);
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = Point::new(1.0, 2.0, 3.0);
        let b = Point::new(-2.0, 0.5, 1.0);
        let c = a.cross(&b);
        assert!(c.dot(&a).abs() < 1e-12);
        assert!(c.dot(&b).abs() < 1e-12);
    }

    #[test]
    fn angle_basics() {
        let x = Point::new(1.0, 0.0, 0.0);
        let y = Point::new(0.0, 1.0, 0.0);
        assert!((x.angle(&y) - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        assert_eq!(x.angle(&x), 0.0);
    }

    #[test]
    fn latlng_point_roundtrip() {
        for &(lat, lng) in &[
            (40.7580, -73.9855),
            (0.0, 0.0),
            (-33.9, 151.2),
            (89.9, 10.0),
            (-89.9, -170.0),
        ] {
            let ll = LatLng::from_degrees(lat, lng);
            let back = ll.to_point().to_latlng();
            assert!((back.lat - ll.lat).abs() < 1e-12, "lat for ({lat},{lng})");
            assert!((back.lng - ll.lng).abs() < 1e-12, "lng for ({lat},{lng})");
        }
    }
}
