//! Cell unions: normalized sets of cells representing a region.
//!
//! A [`CellUnion`] is a sorted set of disjoint cells. *Normalization*
//! additionally replaces any complete group of four sibling cells by their
//! parent, recursively — the canonical minimal representation of a region
//! as cells. The covering pipeline uses this to compact interior coverings
//! (four interior siblings collapse into one coarser interior cell, which
//! is both smaller to store and faster to hit in upper trie nodes).

use crate::cellid::CellId;

/// A sorted, disjoint, normalized set of cells.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CellUnion {
    cells: Vec<CellId>,
}

impl CellUnion {
    /// Builds a union from arbitrary cells: sorts, removes cells contained
    /// in other cells, and merges complete sibling groups into parents.
    pub fn from_cells(mut cells: Vec<CellId>) -> CellUnion {
        if cells.is_empty() {
            return CellUnion::default();
        }
        cells.sort_unstable();
        // Drop descendants of earlier cells (after sorting by id, a
        // descendant always falls in some ancestor's [range_min, range_max],
        // and ancestors sort inside their own range).
        let mut disjoint: Vec<CellId> = Vec::with_capacity(cells.len());
        for c in cells {
            match disjoint.last() {
                Some(last) if last.contains(c) => continue,
                Some(last) if c.contains(*last) => {
                    // Replace descendants of c already emitted.
                    while let Some(&tail) = disjoint.last() {
                        if c.contains(tail) {
                            disjoint.pop();
                        } else {
                            break;
                        }
                    }
                    disjoint.push(c);
                }
                _ => disjoint.push(c),
            }
        }

        // Merge complete sibling groups bottom-up. One pass with a stack:
        // whenever the top four stack entries are the four children of one
        // parent, collapse them.
        let mut stack: Vec<CellId> = Vec::with_capacity(disjoint.len());
        for c in disjoint {
            stack.push(c);
            while stack.len() >= 4 {
                let n = stack.len();
                let last = stack[n - 1];
                if last.is_face() {
                    break;
                }
                let parent = last.immediate_parent();
                if stack[n - 4..]
                    .iter()
                    .zip(parent.children())
                    .all(|(a, b)| *a == b)
                {
                    stack.truncate(n - 4);
                    stack.push(parent);
                } else {
                    break;
                }
            }
        }

        CellUnion { cells: stack }
    }

    /// The normalized cells, sorted by id.
    #[inline]
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the union is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// True if the union contains `target` (i.e. some cell is `target` or
    /// an ancestor of it). Binary search: O(log n).
    pub fn contains(&self, target: CellId) -> bool {
        // The candidate is the last cell with range_min <= target.
        let idx = self.cells.partition_point(|c| c.range_min().0 <= target.0);
        idx > 0 && self.cells[idx - 1].range_max().0 >= target.0
    }

    /// Sum of the (exact leaf-count) sizes, as a fraction of the sphere.
    pub fn leaf_fraction(&self) -> f64 {
        let total: f64 = self
            .cells
            .iter()
            .map(|c| ((c.range_max().0 - c.range_min().0) / 2 + 1) as f64)
            .sum();
        // 6 faces × 4^30 leaves per face.
        total / (6.0 * (4.0f64).powi(30))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latlng::LatLng;

    fn leaf() -> CellId {
        CellId::from_latlng(LatLng::from_degrees(40.7580, -73.9855))
    }

    #[test]
    fn empty_union() {
        let u = CellUnion::from_cells(vec![]);
        assert!(u.is_empty());
        assert!(!u.contains(leaf()));
    }

    #[test]
    fn dedup_and_containment_pruning() {
        let c = leaf().parent(10);
        let u = CellUnion::from_cells(vec![c, c, c.child(2), c.child(0).child(1)]);
        assert_eq!(u.cells(), &[c]);
        assert!(u.contains(leaf()));
        assert!(u.contains(c));
        assert!(!u.contains(c.next()));
    }

    #[test]
    fn ancestor_added_after_descendants() {
        let c = leaf().parent(10);
        let u = CellUnion::from_cells(vec![c.child(0), c.child(2).child(1), c]);
        assert_eq!(u.cells(), &[c]);
    }

    #[test]
    fn four_siblings_collapse_to_parent() {
        let p = leaf().parent(12);
        let kids = p.children().to_vec();
        let u = CellUnion::from_cells(kids);
        assert_eq!(u.cells(), &[p]);
        // Recursive collapse: all 16 grandchildren → grandparent... built
        // from two levels down.
        let mut grandkids = Vec::new();
        for k in p.children() {
            grandkids.extend(k.children());
        }
        let u = CellUnion::from_cells(grandkids);
        assert_eq!(u.cells(), &[p]);
    }

    #[test]
    fn incomplete_siblings_do_not_collapse() {
        let p = leaf().parent(12);
        let u = CellUnion::from_cells(vec![p.child(0), p.child(1), p.child(3)]);
        assert_eq!(u.len(), 3);
        assert!(u.contains(p.child(0).range_min()));
        assert!(!u.contains(p.child(2).range_min()));
    }

    #[test]
    fn mixed_faces_and_levels() {
        let a = CellId::from_face(0).child(1);
        let b = CellId::from_face(3);
        let c = leaf().parent(20);
        let u = CellUnion::from_cells(vec![c, b, a]);
        assert_eq!(u.len(), 3);
        assert!(u.contains(a.child(2).range_min()));
        assert!(u.contains(b.range_max()));
        assert!(u.contains(leaf()));
    }

    #[test]
    fn leaf_fraction_of_face() {
        let u = CellUnion::from_cells(vec![CellId::from_face(2)]);
        assert!((u.leaf_fraction() - 1.0 / 6.0).abs() < 1e-12);
        // All six faces = whole sphere; also exercises the collapse guard
        // at face level.
        let u = CellUnion::from_cells((0..6).map(CellId::from_face).collect());
        assert!((u.leaf_fraction() - 1.0).abs() < 1e-12);
    }
}
