//! Geodetic latitude/longitude coordinates.

use crate::point::Point;
use std::fmt;

/// A point on the sphere expressed as geodetic latitude and longitude,
/// stored in **radians**.
///
/// Latitude is in `[-π/2, π/2]`, longitude in `[-π, π]` for normalized
/// values. Constructors do not normalize; use [`LatLng::normalized`] when the
/// input may be out of range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatLng {
    /// Latitude in radians.
    pub lat: f64,
    /// Longitude in radians.
    pub lng: f64,
}

impl LatLng {
    /// Creates a `LatLng` from radians without normalization.
    #[inline]
    pub const fn from_radians(lat: f64, lng: f64) -> Self {
        LatLng { lat, lng }
    }

    /// Creates a `LatLng` from degrees without normalization.
    #[inline]
    pub fn from_degrees(lat_deg: f64, lng_deg: f64) -> Self {
        LatLng {
            lat: lat_deg.to_radians(),
            lng: lng_deg.to_radians(),
        }
    }

    /// Latitude in degrees.
    #[inline]
    pub fn lat_degrees(&self) -> f64 {
        self.lat.to_degrees()
    }

    /// Longitude in degrees.
    #[inline]
    pub fn lng_degrees(&self) -> f64 {
        self.lng.to_degrees()
    }

    /// Returns `true` if latitude and longitude are within the canonical
    /// ranges `[-π/2, π/2]` and `[-π, π]`.
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.lat.abs() <= std::f64::consts::FRAC_PI_2 && self.lng.abs() <= std::f64::consts::PI
    }

    /// Clamps latitude to `[-π/2, π/2]` and wraps longitude into `[-π, π]`.
    pub fn normalized(&self) -> Self {
        let lat = self
            .lat
            .clamp(-std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2);
        let mut lng = self.lng;
        if !(-std::f64::consts::PI..=std::f64::consts::PI).contains(&lng) {
            lng = lng.rem_euclid(2.0 * std::f64::consts::PI);
            if lng > std::f64::consts::PI {
                lng -= 2.0 * std::f64::consts::PI;
            }
        }
        LatLng { lat, lng }
    }

    /// Converts to a unit vector on the sphere.
    #[inline]
    pub fn to_point(&self) -> Point {
        let (sin_lat, cos_lat) = self.lat.sin_cos();
        let (sin_lng, cos_lng) = self.lng.sin_cos();
        Point {
            x: cos_lat * cos_lng,
            y: cos_lat * sin_lng,
            z: sin_lat,
        }
    }

    /// Great-circle distance to `other` in radians (haversine formula,
    /// numerically stable for small distances).
    pub fn distance_radians(&self, other: &LatLng) -> f64 {
        let dlat = other.lat - self.lat;
        let dlng = other.lng - self.lng;
        let a = (dlat / 2.0).sin().powi(2)
            + self.lat.cos() * other.lat.cos() * (dlng / 2.0).sin().powi(2);
        2.0 * a.sqrt().asin()
    }

    /// Great-circle distance to `other` in meters on a mean-radius Earth.
    #[inline]
    pub fn distance_meters(&self, other: &LatLng) -> f64 {
        self.distance_radians(other) * crate::metrics::EARTH_RADIUS_METERS
    }
}

impl fmt::Display for LatLng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.7}, {:.7}]",
            self.lat.to_degrees(),
            self.lng.to_degrees()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_roundtrip() {
        let ll = LatLng::from_degrees(40.7580, -73.9855);
        assert!((ll.lat_degrees() - 40.7580).abs() < 1e-12);
        assert!((ll.lng_degrees() - -73.9855).abs() < 1e-12);
    }

    #[test]
    fn validity() {
        assert!(LatLng::from_degrees(90.0, 180.0).is_valid());
        assert!(LatLng::from_degrees(-90.0, -180.0).is_valid());
        assert!(!LatLng::from_degrees(90.1, 0.0).is_valid());
        assert!(!LatLng::from_degrees(0.0, 180.1).is_valid());
    }

    #[test]
    fn normalization_wraps_longitude() {
        let ll = LatLng::from_degrees(0.0, 190.0).normalized();
        assert!((ll.lng_degrees() - -170.0).abs() < 1e-9);
        let ll = LatLng::from_degrees(0.0, -190.0).normalized();
        assert!((ll.lng_degrees() - 170.0).abs() < 1e-9);
        let ll = LatLng::from_degrees(95.0, 0.0).normalized();
        assert!((ll.lat_degrees() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn to_point_poles_and_equator() {
        let north = LatLng::from_degrees(90.0, 0.0).to_point();
        assert!((north.z - 1.0).abs() < 1e-15);
        let equator = LatLng::from_degrees(0.0, 0.0).to_point();
        assert!((equator.x - 1.0).abs() < 1e-15);
        let east = LatLng::from_degrees(0.0, 90.0).to_point();
        assert!((east.y - 1.0).abs() < 1e-15);
    }

    #[test]
    fn distance_known_values() {
        // One degree of latitude is about 111.2 km.
        let a = LatLng::from_degrees(40.0, -74.0);
        let b = LatLng::from_degrees(41.0, -74.0);
        let d = a.distance_meters(&b);
        assert!((d - 111_195.0).abs() < 100.0, "got {d}");
        // Distance to self is zero.
        assert_eq!(a.distance_meters(&a), 0.0);
        // Symmetry.
        assert_eq!(a.distance_meters(&b), b.distance_meters(&a));
    }

    #[test]
    fn distance_small_scale_accuracy() {
        // ~10 m apart in Manhattan; haversine must not lose precision.
        let a = LatLng::from_degrees(40.758000, -73.985500);
        let b = LatLng::from_degrees(40.758090, -73.985500);
        let d = a.distance_meters(&b);
        assert!((d - 10.0).abs() < 0.05, "got {d}");
    }
}
