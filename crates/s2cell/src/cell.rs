//! Cell geometry: the spherical quadrilateral denoted by a [`CellId`].

use crate::cellid::CellId;
use crate::coords::{self, size_ij};
use crate::latlng::LatLng;
use crate::point::Point;
use crate::MAX_SIZE;

/// The geometric extent of a cell: its face and its (u, v) rectangle.
///
/// Vertices are returned in counter-clockwise order (as seen from outside
/// the sphere) starting from the (u_lo, v_lo) corner.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// The id this geometry was derived from.
    pub id: CellId,
    /// Cube face.
    pub face: u8,
    /// Subdivision level.
    pub level: u8,
    /// Inclusive (u, v) bounds on the face: `[u_lo, u_hi] × [v_lo, v_hi]`.
    pub u_lo: f64,
    pub u_hi: f64,
    pub v_lo: f64,
    pub v_hi: f64,
}

impl Cell {
    /// Computes the geometry of `id`.
    pub fn from_cellid(id: CellId) -> Cell {
        debug_assert!(id.is_valid());
        let level = id.level();
        let (face, i, j, _) = id.to_face_ij_orientation();
        let size = size_ij(level);
        let i_lo = i & !(size - 1);
        let j_lo = j & !(size - 1);
        let s_lo = i_lo as f64 / MAX_SIZE as f64;
        let s_hi = (i_lo + size) as f64 / MAX_SIZE as f64;
        let t_lo = j_lo as f64 / MAX_SIZE as f64;
        let t_hi = (j_lo + size) as f64 / MAX_SIZE as f64;
        Cell {
            id,
            face,
            level,
            u_lo: coords::st_to_uv(s_lo),
            u_hi: coords::st_to_uv(s_hi),
            v_lo: coords::st_to_uv(t_lo),
            v_hi: coords::st_to_uv(t_hi),
        }
    }

    /// The four corner directions in CCW order:
    /// (u_lo,v_lo), (u_hi,v_lo), (u_hi,v_hi), (u_lo,v_hi).
    pub fn vertices(&self) -> [Point; 4] {
        [
            coords::face_uv_to_xyz(self.face, self.u_lo, self.v_lo).normalized(),
            coords::face_uv_to_xyz(self.face, self.u_hi, self.v_lo).normalized(),
            coords::face_uv_to_xyz(self.face, self.u_hi, self.v_hi).normalized(),
            coords::face_uv_to_xyz(self.face, self.u_lo, self.v_hi).normalized(),
        ]
    }

    /// The four corners as lat/lng, same order as [`Cell::vertices`].
    pub fn vertices_latlng(&self) -> [LatLng; 4] {
        let vs = self.vertices();
        [
            vs[0].to_latlng(),
            vs[1].to_latlng(),
            vs[2].to_latlng(),
            vs[3].to_latlng(),
        ]
    }

    /// Center of the cell (the midpoint in (s, t) space, matching
    /// [`CellId::to_point`] — note this is *not* the (u, v) midpoint because
    /// the quadratic transform is nonlinear).
    pub fn center(&self) -> Point {
        self.id.to_point()
    }

    /// The maximum distance (in radians) from the center to any point of the
    /// cell — half the diagonal, computed exactly from the corners.
    pub fn circumradius_radians(&self) -> f64 {
        let c = self.center();
        self.vertices()
            .iter()
            .map(|v| c.angle(v))
            .fold(0.0, f64::max)
    }

    /// Longest diagonal of this particular cell in meters.
    pub fn diag_meters(&self) -> f64 {
        let v = self.vertices();
        let d1 = v[0].angle(&v[2]);
        let d2 = v[1].angle(&v[3]);
        d1.max(d2) * crate::metrics::EARTH_RADIUS_METERS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    fn nyc_cell(level: u8) -> Cell {
        let id = CellId::from_latlng(LatLng::from_degrees(40.7580, -73.9855)).parent(level);
        Cell::from_cellid(id)
    }

    #[test]
    fn vertices_bound_the_center() {
        for level in [0u8, 4, 10, 17, 21, 28, 30] {
            let cell = nyc_cell(level);
            let center = cell.center();
            let r = cell.circumradius_radians();
            for v in cell.vertices() {
                assert!(center.angle(&v) <= r + 1e-15);
            }
        }
    }

    #[test]
    fn center_matches_cellid_center() {
        for level in [3u8, 9, 17, 24] {
            let cell = nyc_cell(level);
            let a = cell.center();
            let b = cell.id.to_point();
            assert!(a.angle(&b) < 1e-12, "level {level}");
        }
    }

    #[test]
    fn diag_within_metric_bound() {
        // Every concrete cell diagonal must be ≤ the metric's max and ≥ min.
        for level in [4u8, 10, 14, 17, 19, 21, 24] {
            let cell = nyc_cell(level);
            let diag = cell.diag_meters();
            let max = metrics::max_diag_meters(level);
            let min =
                metrics::MIN_DIAG_DERIV / (1u64 << level) as f64 * metrics::EARTH_RADIUS_METERS;
            assert!(
                diag <= max * (1.0 + 1e-9),
                "level {level}: diag {diag} > max {max}"
            );
            assert!(
                diag >= min * (1.0 - 1e-9),
                "level {level}: diag {diag} < min {min}"
            );
        }
    }

    #[test]
    fn max_diag_metric_bounds_sampled_cells_globally() {
        // The precision guarantee requires max_diag_meters(level) to bound
        // the diagonal of *every* cell at that level. Sample cells across
        // the whole sphere (all faces, centers, edges, corners) and check.
        for level in [2u8, 5, 9, 13, 18, 22] {
            for lat_i in -9..=9 {
                for lng_i in -18..18 {
                    let ll = LatLng::from_degrees(lat_i as f64 * 9.9, lng_i as f64 * 10.0 + 0.123);
                    let cell = Cell::from_cellid(CellId::from_latlng(ll).parent(level));
                    let diag = cell.diag_meters();
                    let bound = metrics::max_diag_meters(level);
                    assert!(
                        diag <= bound,
                        "level {level} at {ll}: diag {diag} > bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn children_tile_parent_uv() {
        let parent = nyc_cell(10);
        let kids: Vec<Cell> = parent
            .id
            .children()
            .iter()
            .map(|c| Cell::from_cellid(*c))
            .collect();
        // Union of children's uv-rects equals the parent's rect: total area
        // matches and each child rect is inside the parent rect.
        let area = |c: &Cell| (c.u_hi - c.u_lo) * (c.v_hi - c.v_lo);
        let kid_area: f64 = kids.iter().map(area).sum();
        assert!((kid_area - area(&parent)).abs() < 1e-15 * area(&parent).max(1.0));
        for k in &kids {
            assert!(k.u_lo >= parent.u_lo - 1e-15 && k.u_hi <= parent.u_hi + 1e-15);
            assert!(k.v_lo >= parent.v_lo - 1e-15 && k.v_hi <= parent.v_hi + 1e-15);
        }
    }

    #[test]
    fn vertex_corners_contain_query_point() {
        // The lat/lng quad of a small NYC cell must contain the point it was
        // built from (planar check is fine at this scale).
        let ll = LatLng::from_degrees(40.7580, -73.9855);
        let cell = Cell::from_cellid(CellId::from_latlng(ll).parent(16));
        let quad = cell.vertices_latlng();
        let (lats, lngs): (Vec<f64>, Vec<f64>) = quad.iter().map(|p| (p.lat, p.lng)).unzip();
        let lat_min = lats.iter().cloned().fold(f64::MAX, f64::min);
        let lat_max = lats.iter().cloned().fold(f64::MIN, f64::max);
        let lng_min = lngs.iter().cloned().fold(f64::MAX, f64::min);
        let lng_max = lngs.iter().cloned().fold(f64::MIN, f64::max);
        assert!(ll.lat >= lat_min && ll.lat <= lat_max);
        assert!(ll.lng >= lng_min && ll.lng <= lng_max);
    }
}
