//! The S2 coordinate-transform chain and Hilbert-curve lookup tables.
//!
//! The chain from a direction on the sphere to a discrete cell coordinate:
//!
//! ```text
//! (x, y, z)  --face projection-->  (face, u, v)   u, v ∈ [-1, 1]
//! (u, v)     --quadratic-->        (s, t)         s, t ∈ [0, 1]
//! (s, t)     --discretize-->       (i, j)         i, j ∈ [0, 2^30)
//! (i, j)     --Hilbert curve-->    64-bit position (see `cellid`)
//! ```
//!
//! The quadratic (s, t) ↔ (u, v) transform is the same one S2 uses by
//! default: it roughly equalizes cell areas across a face (the raw gnomonic
//! projection would make corner cells ~5× smaller than center cells).

use crate::point::Point;
use crate::{MAX_LEVEL, MAX_SIZE};

// ---------------------------------------------------------------------------
// Face projection
// ---------------------------------------------------------------------------

/// Returns the cube face (0..6) whose axis has the largest absolute
/// component in `p`. Faces 0, 1, 2 are the +x, +y, +z faces; 3, 4, 5 are
/// -x, -y, -z.
#[inline]
pub fn face(p: &Point) -> u8 {
    let (ax, ay, az) = (p.x.abs(), p.y.abs(), p.z.abs());
    let axis = if ax > ay {
        if ax > az {
            0
        } else {
            2
        }
    } else if ay > az {
        1
    } else {
        2
    };
    let comp = match axis {
        0 => p.x,
        1 => p.y,
        _ => p.z,
    };
    if comp < 0.0 {
        axis + 3
    } else {
        axis
    }
}

/// Projects `p` onto the given `face`, returning (u, v) coordinates.
///
/// The result is only meaningful if `p` actually lies in the half-space of
/// that face (the face axis component must be nonzero).
#[inline]
pub fn valid_face_xyz_to_uv(face: u8, p: &Point) -> (f64, f64) {
    debug_assert!(face < 6);
    match face {
        0 => (p.y / p.x, p.z / p.x),
        1 => (-p.x / p.y, p.z / p.y),
        2 => (-p.x / p.z, -p.y / p.z),
        3 => (p.z / p.x, p.y / p.x),
        4 => (p.z / p.y, -p.x / p.y),
        _ => (-p.y / p.z, -p.x / p.z),
    }
}

/// Projects `p` onto its containing face; returns (face, u, v).
#[inline]
pub fn xyz_to_face_uv(p: &Point) -> (u8, f64, f64) {
    let f = face(p);
    let (u, v) = valid_face_xyz_to_uv(f, p);
    (f, u, v)
}

/// Inverse of [`xyz_to_face_uv`]: returns the (non-normalized) direction
/// vector for face-local coordinates (u, v).
#[inline]
pub fn face_uv_to_xyz(face: u8, u: f64, v: f64) -> Point {
    debug_assert!(face < 6);
    match face {
        0 => Point::new(1.0, u, v),
        1 => Point::new(-u, 1.0, v),
        2 => Point::new(-u, -v, 1.0),
        3 => Point::new(-1.0, -v, -u),
        4 => Point::new(v, -1.0, -u),
        _ => Point::new(v, u, -1.0),
    }
}

// ---------------------------------------------------------------------------
// Quadratic (s,t) <-> (u,v)
// ---------------------------------------------------------------------------

/// Converts an s- or t-value in [0, 1] to the corresponding u- or v-value in
/// [-1, 1] using the quadratic transform.
#[inline]
pub fn st_to_uv(s: f64) -> f64 {
    if s >= 0.5 {
        (1.0 / 3.0) * (4.0 * s * s - 1.0)
    } else {
        (1.0 / 3.0) * (1.0 - 4.0 * (1.0 - s) * (1.0 - s))
    }
}

/// Inverse of [`st_to_uv`].
#[inline]
pub fn uv_to_st(u: f64) -> f64 {
    if u >= 0.0 {
        0.5 * (1.0 + 3.0 * u).sqrt()
    } else {
        1.0 - 0.5 * (1.0 - 3.0 * u).sqrt()
    }
}

// ---------------------------------------------------------------------------
// (s,t) <-> (i,j)
// ---------------------------------------------------------------------------

/// Converts an s- or t-value to the discrete leaf-cell coordinate in
/// `[0, 2^30)`, clamping out-of-range inputs.
#[inline]
pub fn st_to_ij(s: f64) -> u32 {
    let v = (MAX_SIZE as f64 * s).floor();
    v.clamp(0.0, (MAX_SIZE - 1) as f64) as u32
}

/// Returns the s-value of the *center* of the leaf cell with coordinate `i`.
#[inline]
pub fn ij_to_st(i: u32) -> f64 {
    debug_assert!(i < MAX_SIZE);
    (i as f64 + 0.5) / MAX_SIZE as f64
}

/// Returns the s-value of the *lower edge* of the leaf cell with
/// coordinate `i` (also accepts `i == MAX_SIZE` for the upper face edge).
#[inline]
pub fn ij_to_st_min(i: u32) -> f64 {
    debug_assert!(i <= MAX_SIZE);
    i as f64 / MAX_SIZE as f64
}

// ---------------------------------------------------------------------------
// Hilbert curve tables
// ---------------------------------------------------------------------------

/// Orientation modifier: swap the i and j axes.
pub const SWAP_MASK: u8 = 0x01;
/// Orientation modifier: invert the i and j axes.
pub const INVERT_MASK: u8 = 0x02;

/// `POS_TO_IJ[orientation][position]` gives the 2-bit (i, j) sub-cell index
/// (i in the high bit, j in the low bit) traversed at `position` along the
/// Hilbert curve under the given orientation.
pub const POS_TO_IJ: [[u8; 4]; 4] = [
    [0, 1, 3, 2], // canonical order
    [0, 2, 3, 1], // axes swapped
    [3, 2, 0, 1], // axes inverted
    [3, 1, 0, 2], // swapped & inverted
];

/// `IJ_TO_POS[orientation][ij]` is the inverse of [`POS_TO_IJ`].
pub const IJ_TO_POS: [[u8; 4]; 4] = [[0, 1, 3, 2], [0, 3, 1, 2], [2, 3, 1, 0], [2, 1, 3, 0]];

/// `POS_TO_ORIENTATION[position]` is the orientation modifier XOR-ed into the
/// current orientation when descending into the sub-cell at `position`.
pub const POS_TO_ORIENTATION: [u8; 4] = [SWAP_MASK, 0, 0, INVERT_MASK | SWAP_MASK];

/// Number of (i, j) bits processed per lookup-table step.
pub const LOOKUP_BITS: u32 = 4;

/// `LOOKUP_POS[(ij << 2) | orientation]` = `(pos << 2) | new_orientation`,
/// where `ij` packs 4 i-bits and 4 j-bits (`iiii_jjjj`) and `pos` is the
/// corresponding 8-bit Hilbert position.
pub static LOOKUP_POS: [u16; 1 << (2 * LOOKUP_BITS + 2)] = build_lookup_tables().0;

/// `LOOKUP_IJ[(pos << 2) | orientation]` = `(ij << 2) | new_orientation`
/// (inverse of [`LOOKUP_POS`]).
pub static LOOKUP_IJ: [u16; 1 << (2 * LOOKUP_BITS + 2)] = build_lookup_tables().1;

const fn build_lookup_tables() -> ([u16; 1024], [u16; 1024]) {
    let mut lookup_pos = [0u16; 1024];
    let mut lookup_ij = [0u16; 1024];
    let mut orig: usize = 0;
    while orig < 4 {
        let mut pos: usize = 0;
        while pos < 256 {
            // Walk 4 quadtree levels from orientation `orig` following the
            // Hilbert position `pos`, accumulating i and j bits.
            let mut i: usize = 0;
            let mut j: usize = 0;
            let mut o: usize = orig;
            let mut k: i32 = 3;
            while k >= 0 {
                let subpos = (pos >> (2 * k as usize)) & 3;
                let ij = POS_TO_IJ[o][subpos] as usize;
                i = (i << 1) | (ij >> 1);
                j = (j << 1) | (ij & 1);
                o ^= POS_TO_ORIENTATION[subpos] as usize;
                k -= 1;
            }
            let ij_packed = (i << 4) | j;
            lookup_pos[(ij_packed << 2) | orig] = ((pos << 2) | o) as u16;
            lookup_ij[(pos << 2) | orig] = ((ij_packed << 2) | o) as u16;
            pos += 1;
        }
        orig += 1;
    }
    (lookup_pos, lookup_ij)
}

/// Size of a cell at `level` in (i, j) leaf-coordinate units: `2^(30-level)`.
#[inline]
pub fn size_ij(level: u8) -> u32 {
    debug_assert!(level <= MAX_LEVEL);
    1u32 << (MAX_LEVEL - level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latlng::LatLng;

    #[test]
    fn face_of_axis_vectors() {
        assert_eq!(face(&Point::new(1.0, 0.0, 0.0)), 0);
        assert_eq!(face(&Point::new(0.0, 1.0, 0.0)), 1);
        assert_eq!(face(&Point::new(0.0, 0.0, 1.0)), 2);
        assert_eq!(face(&Point::new(-1.0, 0.0, 0.0)), 3);
        assert_eq!(face(&Point::new(0.0, -1.0, 0.0)), 4);
        assert_eq!(face(&Point::new(0.0, 0.0, -1.0)), 5);
    }

    #[test]
    fn nyc_is_on_face_4() {
        // NYC's dominant component is -y, so it must project to face 4.
        let p = LatLng::from_degrees(40.7, -74.0).to_point();
        assert_eq!(face(&p), 4);
    }

    #[test]
    fn face_uv_roundtrip() {
        for f in 0..6u8 {
            // Stay off the exact corners/edges (|u| = |v| = 1), where the
            // owning face is ambiguous.
            for &(u, v) in &[(0.0, 0.0), (0.5, -0.3), (-0.99, 0.99), (0.999, 0.999)] {
                let p = face_uv_to_xyz(f, u, v);
                assert_eq!(face(&p), f, "face {f} uv ({u},{v})");
                let (u2, v2) = valid_face_xyz_to_uv(f, &p);
                assert!((u - u2).abs() < 1e-14);
                assert!((v - v2).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn st_uv_roundtrip_and_monotone() {
        let mut last = -2.0;
        for k in 0..=1000 {
            let s = k as f64 / 1000.0;
            let u = st_to_uv(s);
            assert!((-1.0 - 1e-15..=1.0 + 1e-15).contains(&u));
            assert!(u > last, "st_to_uv must be strictly increasing");
            last = u;
            let s2 = uv_to_st(u);
            assert!((s - s2).abs() < 1e-14, "s={s}");
        }
        // Fixed points of the transform.
        assert_eq!(st_to_uv(0.5), 0.0);
        assert_eq!(st_to_uv(0.0), -1.0);
        assert_eq!(st_to_uv(1.0), 1.0);
    }

    #[test]
    fn ij_to_st_min_edges() {
        assert_eq!(ij_to_st_min(0), 0.0);
        assert_eq!(ij_to_st_min(MAX_SIZE), 1.0);
        // min < center < next min.
        for &i in &[0u32, 7, MAX_SIZE / 3, MAX_SIZE - 1] {
            assert!(ij_to_st_min(i) < ij_to_st(i));
            assert!(ij_to_st(i) < ij_to_st_min(i + 1));
        }
    }

    #[test]
    fn st_ij_discretization() {
        assert_eq!(st_to_ij(0.0), 0);
        assert_eq!(st_to_ij(1.0), MAX_SIZE - 1); // clamped
        assert_eq!(st_to_ij(-0.1), 0); // clamped
                                       // Center of cell i maps back to i.
        for &i in &[0u32, 1, 12345, MAX_SIZE / 2, MAX_SIZE - 1] {
            assert_eq!(st_to_ij(ij_to_st(i)), i);
        }
    }

    #[test]
    fn lookup_tables_are_inverse() {
        for orientation in 0..4usize {
            for ij in 0..256usize {
                let r = LOOKUP_POS[(ij << 2) | orientation] as usize;
                let pos = r >> 2;
                let back = LOOKUP_IJ[(pos << 2) | orientation] as usize;
                assert_eq!(back >> 2, ij);
                assert_eq!(back & 3, r & 3, "orientations must agree");
            }
        }
    }

    #[test]
    fn lookup_tables_match_bitwise_walk() {
        // Spot-check against the 2-bit-per-level reference walk.
        for orientation in 0..4usize {
            for pos in [0usize, 1, 37, 128, 255] {
                let r = LOOKUP_IJ[(pos << 2) | orientation] as usize;
                let (mut i, mut j, mut o) = (0usize, 0usize, orientation);
                for k in (0..4).rev() {
                    let subpos = (pos >> (2 * k)) & 3;
                    let ij = POS_TO_IJ[o][subpos] as usize;
                    i = (i << 1) | (ij >> 1);
                    j = (j << 1) | (ij & 1);
                    o ^= POS_TO_ORIENTATION[subpos] as usize;
                }
                assert_eq!(r >> 2, (i << 4) | j);
                assert_eq!(r & 3, o);
            }
        }
    }

    #[test]
    fn pos_to_ij_tables_consistent() {
        for o in 0..4usize {
            for (pos, &ij) in POS_TO_IJ[o].iter().enumerate() {
                assert_eq!(IJ_TO_POS[o][ij as usize] as usize, pos);
            }
        }
    }

    #[test]
    fn hilbert_curve_is_continuous() {
        // Successive positions at the 4-level granularity must be adjacent
        // (Manhattan distance 1) in (i, j) space — the defining property of
        // the Hilbert curve.
        for orientation in 0..4usize {
            let mut prev: Option<(i32, i32)> = None;
            for pos in 0..256usize {
                let r = LOOKUP_IJ[(pos << 2) | orientation] as usize;
                let ij = r >> 2;
                let (i, j) = ((ij >> 4) as i32, (ij & 15) as i32);
                if let Some((pi, pj)) = prev {
                    assert_eq!(
                        (i - pi).abs() + (j - pj).abs(),
                        1,
                        "discontinuity at pos {pos} orientation {orientation}"
                    );
                }
                prev = Some((i, j));
            }
        }
    }
}
