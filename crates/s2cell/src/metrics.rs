//! Per-level cell-size metrics and the precision ↔ level mapping.
//!
//! The ACT paper's precision guarantee hinges on one fact: if a query point
//! falls into a *covering* (boundary) cell of a polygon, its distance to the
//! polygon is at most the cell diagonal. Refining boundary cells until the
//! diagonal is below a user-chosen ε therefore bounds the error of every
//! false positive by ε.
//!
//! We use the standard S2 metric constants for the quadratic projection.
//! They are *derivatives*: the metric value at level `L` is
//! `deriv · 2^-L` (in radians on the unit sphere for length metrics).

/// Mean Earth radius in meters (IUGG).
pub const EARTH_RADIUS_METERS: f64 = 6_371_008.8;

/// Maximum cell diagonal metric derivative (quadratic projection):
/// `max_diag(level) = MAX_DIAG_DERIV · 2^-level` radians. This is a true
/// upper bound on the diagonal of *any* cell at a level (verified
/// empirically in this crate's tests), which is what the precision
/// guarantee of the ACT join rests on.
pub const MAX_DIAG_DERIV: f64 = 2.438_654_594_434_021;

/// Minimum cell diagonal metric derivative (quadratic projection): `8√2/9`.
pub const MIN_DIAG_DERIV: f64 = 1.257_078_722_109_418;

/// Average cell diagonal metric derivative (quadratic projection).
pub const AVG_DIAG_DERIV: f64 = 2.060_422_738_998_471;

/// Maximum cell edge length derivative (quadratic projection).
pub const MAX_EDGE_DERIV: f64 = 1.704_897_179_199_218;

/// Average cell edge length derivative (quadratic projection).
pub const AVG_EDGE_DERIV: f64 = 1.459_213_746_386_106;

/// Minimum cell edge length derivative (quadratic projection): `2√2/3`.
pub const MIN_EDGE_DERIV: f64 = 0.942_809_041_582_063;

/// Average cell area derivative: `avg_area(level) = 4π/6 · 4^-level` sr
/// (exact — the six faces partition the sphere).
pub const AVG_AREA_DERIV: f64 = 4.0 * std::f64::consts::PI / 6.0;

/// Maximum diagonal of a cell at `level`, in radians on the unit sphere.
#[inline]
pub fn max_diag_radians(level: u8) -> f64 {
    MAX_DIAG_DERIV / (1u64 << level) as f64
}

/// Maximum diagonal of a cell at `level`, in meters on the Earth.
///
/// This is the worst-case distance between any two points of any cell at
/// that level, i.e. the paper's false-positive distance bound.
#[inline]
pub fn max_diag_meters(level: u8) -> f64 {
    max_diag_radians(level) * EARTH_RADIUS_METERS
}

/// Average edge length of a cell at `level`, in meters.
#[inline]
pub fn avg_edge_meters(level: u8) -> f64 {
    AVG_EDGE_DERIV / (1u64 << level) as f64 * EARTH_RADIUS_METERS
}

/// Average area of a cell at `level`, in square meters.
#[inline]
pub fn avg_area_sq_meters(level: u8) -> f64 {
    AVG_AREA_DERIV / (1u64 << (2 * level)) as f64 * EARTH_RADIUS_METERS * EARTH_RADIUS_METERS
}

/// The smallest level whose maximum cell diagonal is ≤ `meters`.
///
/// Covering cells at this level (or deeper) satisfy a precision bound of
/// `meters`. Returns 30 (the leaf level) if even leaves are too big — which
/// cannot happen for `meters` ≥ ~2 cm.
pub fn level_for_max_diag_meters(meters: f64) -> u8 {
    assert!(meters > 0.0, "precision must be positive");
    for level in 0..=30u8 {
        if max_diag_meters(level) <= meters {
            return level;
        }
    }
    30
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_level_table() {
        // The precision→level mapping the paper relies on:
        // 60 m ⇒ 18, 15 m ⇒ 20, 4 m ⇒ 22, and level 24 ⇒ < 1 m
        // ("kmax = 48 allows for indexing cells up to level 24 which limits
        //  the error of false positives to less than 1 m").
        assert_eq!(level_for_max_diag_meters(60.0), 18);
        assert_eq!(level_for_max_diag_meters(15.0), 20);
        assert_eq!(level_for_max_diag_meters(4.0), 22);
        assert!(max_diag_meters(24) < 1.0);
        // "up to a few centimeters": level 30 leaves are ~1.5 cm.
        assert!(max_diag_meters(30) < 0.02);
    }

    #[test]
    fn metrics_monotone() {
        for level in 1..=30u8 {
            assert!(max_diag_meters(level) < max_diag_meters(level - 1));
            assert_eq!(max_diag_meters(level) * 2.0, max_diag_meters(level - 1));
        }
    }

    #[test]
    fn level_for_diag_is_tight() {
        for &m in &[0.5, 1.0, 4.0, 15.0, 60.0, 1000.0, 1e7] {
            let l = level_for_max_diag_meters(m);
            assert!(max_diag_meters(l) <= m);
            if l > 0 {
                assert!(max_diag_meters(l - 1) > m);
            }
        }
    }

    #[test]
    fn avg_area_level0_is_face() {
        // A level-0 cell is one cube face: 1/6 of the sphere.
        let sphere = 4.0 * std::f64::consts::PI * EARTH_RADIUS_METERS * EARTH_RADIUS_METERS;
        assert!((avg_area_sq_meters(0) - sphere / 6.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "precision must be positive")]
    fn zero_precision_panics() {
        level_for_max_diag_meters(0.0);
    }
}
