//! Sampled structured traces: a seeded 1-in-N sampler and a bounded
//! ring of events, dumped as JSON lines.
//!
//! High-rate events (per-frame admissions) go through [`Sampler`] so
//! tracing costs one relaxed counter increment on the unsampled path;
//! rare lifecycle events (shed, swap, quarantine, breaker transitions)
//! are recorded unconditionally. The ring is bounded: once full, the
//! oldest event is evicted — a trace is a window, not a log.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Deterministic 1-in-N sampling: the k-th call to
/// [`Sampler::should_sample`] fires iff `(k + seed) % n == 0`, so the
/// same seed and the same call sequence reproduce the same sampled set
/// (the same spirit as the fault plan's seeded schedules). `n = 0`
/// disables sampling entirely; `n = 1` samples everything.
#[derive(Debug)]
pub struct Sampler {
    every: u64,
    seed: u64,
    calls: AtomicU64,
}

impl Sampler {
    /// A sampler firing once per `every` calls, phase-shifted by `seed`.
    pub fn new(every: u64, seed: u64) -> Sampler {
        Sampler {
            every,
            seed,
            calls: AtomicU64::new(0),
        }
    }

    /// True when this call is the 1-in-N winner.
    #[inline]
    pub fn should_sample(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        let k = self.calls.fetch_add(1, Ordering::Relaxed);
        k.wrapping_add(self.seed).is_multiple_of(self.every)
    }

    /// The configured period (0 = disabled).
    pub fn every(&self) -> u64 {
        self.every
    }
}

/// One structured trace event: a monotonic sequence number, microseconds
/// since the ring was created, a static kind, and up to a handful of
/// numeric fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic per-ring sequence number (gap-free across evictions —
    /// a reader can tell how much the ring dropped).
    pub seq: u64,
    /// Microseconds since the ring was created.
    pub micros: u64,
    /// Event kind (`"admission"`, `"shed"`, `"swap"`, …).
    pub kind: &'static str,
    /// Numeric detail fields, rendered as JSON keys.
    pub fields: Vec<(&'static str, u64)>,
}

impl TraceEvent {
    /// Renders the event as one JSON object (no trailing newline).
    /// Keys are static identifiers, values are integers — no escaping
    /// is ever needed, so the rendering cannot produce invalid JSON.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"us\":{},\"kind\":\"{}\"",
            self.seq, self.micros, self.kind
        );
        for (k, v) in &self.fields {
            out.push_str(&format!(",\"{k}\":{v}"));
        }
        out.push('}');
        out
    }
}

/// The bounded trace ring plus its admission sampler.
#[derive(Debug)]
pub struct TraceRing {
    sampler: Sampler,
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<TraceEvent>>,
    started: Instant,
}

impl TraceRing {
    /// A ring holding the newest `capacity` events, with 1-in-`every`
    /// sampling (seeded by `seed`) for [`TraceRing::sampled`] events.
    pub fn new(capacity: usize, every: u64, seed: u64) -> TraceRing {
        TraceRing {
            sampler: Sampler::new(every, seed),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            started: Instant::now(),
        }
    }

    /// Records a high-rate event if the sampler selects it; returns
    /// whether it was recorded. The unsampled path is one relaxed
    /// counter increment — no lock, no allocation.
    pub fn sampled(&self, kind: &'static str, fields: &[(&'static str, u64)]) -> bool {
        if !self.sampler.should_sample() {
            return false;
        }
        self.push(kind, fields);
        true
    }

    /// Records a lifecycle event unconditionally.
    pub fn always(&self, kind: &'static str, fields: &[(&'static str, u64)]) {
        self.push(kind, fields);
    }

    fn push(&self, kind: &'static str, fields: &[(&'static str, u64)]) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let micros = self.started.elapsed().as_micros() as u64;
        let event = TraceEvent {
            seq,
            micros,
            kind,
            fields: fields.to_vec(),
        };
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Total events ever recorded (including ones the ring evicted).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// The current window, oldest first (non-destructive).
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        ring.iter().cloned().collect()
    }

    /// The current window as JSON lines — one event per line, oldest
    /// first, trailing newline after the last line (empty string when
    /// the ring is empty). This is the DUMP-op payload and the SIGINT
    /// drain format.
    pub fn dump_json_lines(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_deterministic_one_in_n() {
        let a = Sampler::new(4, 7);
        let picks: Vec<bool> = (0..16).map(|_| a.should_sample()).collect();
        let b = Sampler::new(4, 7);
        let again: Vec<bool> = (0..16).map(|_| b.should_sample()).collect();
        assert_eq!(picks, again, "same seed, same schedule");
        assert_eq!(picks.iter().filter(|&&p| p).count(), 4, "1-in-4 of 16");
        // A different seed shifts the phase but keeps the rate.
        let c = Sampler::new(4, 8);
        let shifted: Vec<bool> = (0..16).map(|_| c.should_sample()).collect();
        assert_ne!(picks, shifted);
        assert_eq!(shifted.iter().filter(|&&p| p).count(), 4);
        // 0 disables, 1 samples everything.
        let off = Sampler::new(0, 0);
        assert!((0..8).all(|_| !off.should_sample()));
        let all = Sampler::new(1, 3);
        assert!((0..8).all(|_| all.should_sample()));
    }

    #[test]
    fn ring_bounds_and_json_lines() {
        let ring = TraceRing::new(3, 1, 0);
        for i in 0..5u64 {
            ring.always("swap", &[("epoch", i)]);
        }
        let events = ring.events();
        assert_eq!(events.len(), 3, "capacity bounds the window");
        assert_eq!(ring.recorded(), 5, "evictions still count");
        // Oldest first, gap-free seq shows what was dropped.
        assert_eq!(events[0].seq, 2);
        assert_eq!(events[2].seq, 4);
        let dump = ring.dump_json_lines();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"seq\":2,"));
        assert!(lines[0].contains("\"kind\":\"swap\""));
        assert!(lines[0].ends_with(",\"epoch\":2}"));
    }

    #[test]
    fn sampled_respects_the_sampler() {
        let ring = TraceRing::new(16, 4, 0);
        let hits = (0..16)
            .filter(|_| ring.sampled("admission", &[("lanes", 9)]))
            .count();
        assert_eq!(hits, 4);
        assert_eq!(ring.events().len(), 4);
    }
}
