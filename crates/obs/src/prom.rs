//! A hand-rolled Prometheus text renderer (exposition format 0.0.4).

use crate::hist::{bucket_lower_bound, HistogramSnapshot};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Accumulates metric families into Prometheus text format. `# HELP` /
/// `# TYPE` headers are emitted once per family, however many labeled
/// series are added to it — add the merged series and the per-shard
/// breakdown to the same family and the output stays well-formed.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
    seen: HashSet<String>,
}

impl PromText {
    /// An empty page.
    pub fn new() -> PromText {
        PromText::default()
    }

    fn header(&mut self, name: &str, kind: &str, help: &str) {
        if self.seen.insert(name.to_string()) {
            let _ = writeln!(self.out, "# HELP {name} {help}");
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
    }

    fn labelset(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
        let mut parts: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect();
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{v}\""));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }

    /// Adds one `counter` sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.header(name, "counter", help);
        let ls = Self::labelset(labels, None);
        let _ = writeln!(self.out, "{name}{ls} {value}");
    }

    /// Adds one `gauge` sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.header(name, "gauge", help);
        let ls = Self::labelset(labels, None);
        let _ = writeln!(self.out, "{name}{ls} {value}");
    }

    /// Adds one `histogram` series: cumulative `_bucket{le=…}` samples
    /// (bucket upper edges times `scale` — pass `1e-9` to expose
    /// nanosecond recordings in seconds), `_sum`, and `_count`.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
        scale: f64,
    ) {
        self.header(name, "histogram", help);
        let mut cum = 0u64;
        for (i, &c) in snap.buckets.iter().enumerate() {
            cum += c;
            if c == 0 {
                continue; // cumulative value unchanged; skip the line
            }
            let le = bucket_lower_bound(i + 1) as f64 * scale;
            let ls = Self::labelset(labels, Some(("le", &format!("{le}"))));
            let _ = writeln!(self.out, "{name}_bucket{ls} {cum}");
        }
        let ls = Self::labelset(labels, Some(("le", "+Inf")));
        let _ = writeln!(self.out, "{name}_bucket{ls} {cum}");
        let ls = Self::labelset(labels, None);
        let _ = writeln!(self.out, "{name}_sum{ls} {}", snap.sum as f64 * scale);
        let _ = writeln!(self.out, "{name}_count{ls} {cum}");
    }

    /// The rendered page.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn families_render_once_with_all_series() {
        let mut p = PromText::new();
        p.counter("act_probes_total", "Probe points answered.", &[], 42);
        p.counter(
            "act_probes_total",
            "Probe points answered.",
            &[("shard", "0")],
            40,
        );
        let text = p.finish();
        assert_eq!(text.matches("# TYPE act_probes_total counter").count(), 1);
        assert!(text.contains("act_probes_total 42"));
        assert!(text.contains("act_probes_total{shard=\"0\"} 40"));
    }

    #[test]
    fn histogram_series_is_cumulative_and_scaled() {
        let h = Histogram::new();
        h.record(1_000); // 1 µs in ns
        h.record(1_000);
        h.record(1_000_000); // 1 ms
        let mut p = PromText::new();
        p.histogram("act_stage_seconds", "Stage time.", &[], &h.snapshot(), 1e-9);
        let text = p.finish();
        assert!(text.contains("# TYPE act_stage_seconds histogram"));
        assert!(text.contains("le=\"+Inf\"} 3"));
        assert!(text.contains("act_stage_seconds_count 3"));
        // Sum: 1_002_000 ns = 0.001002 s.
        assert!(text.contains("act_stage_seconds_sum 0.001002"));
        // Cumulative counts never decrease along the series.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-cumulative line: {line}");
            last = v;
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let mut p = PromText::new();
        p.gauge("g", "h", &[("addr", "a\"b\\c")], 1.0);
        assert!(p.finish().contains("addr=\"a\\\"b\\\\c\""));
    }
}
