//! A minimal `std::net` HTTP listener serving `GET /metrics`.
//!
//! One accept thread, one request per connection, `Connection: close` —
//! exactly what a Prometheus scraper (or `curl`) needs and nothing
//! more. The render closure runs per scrape, so the page is always
//! current; a slow or hostile client is bounded by short socket
//! timeouts and cannot wedge the listener.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The scrape endpoint path.
const METRICS_PATH: &str = "/metrics";

/// A running `/metrics` listener. Dropping the handle (or calling
/// [`MetricsServer::shutdown`]) stops the accept thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (`"127.0.0.1:0"` picks an ephemeral port) and
    /// serves `render()`'s output on every `GET /metrics`.
    ///
    /// # Errors
    /// Propagates the bind failure.
    pub fn spawn(
        addr: &str,
        render: Arc<dyn Fn() -> String + Send + Sync>,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("act-metrics".to_string())
            .spawn(move || {
                while !flag.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => serve_one(stream, &render),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(25));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(25)),
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolve the ephemeral port here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and joins it.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Answers one scrape: read the request head (bounded), dispatch on the
/// path, write one response, close.
fn serve_one(mut stream: TcpStream, render: &Arc<dyn Fn() -> String + Send + Sync>) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 256];
    // Read until the end of the request head or the 4 KiB bound; the
    // request line is all we dispatch on.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 4096 {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(k) => head.extend_from_slice(&buf[..k]),
            Err(_) => break,
        }
    }
    let line = head.split(|&b| b == b'\r').next().unwrap_or(&[]);
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            String::from("method not allowed\n"),
        )
    } else if path == METRICS_PATH || path.starts_with("/metrics?") {
        ("200 OK", render())
    } else {
        ("404 Not Found", String::from("try /metrics\n"))
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

/// A `curl`-equivalent scrape of `http://{addr}/metrics`, for tests and
/// the CI smoke: one GET, returns the response body.
///
/// # Errors
/// Connection/read failures and non-200 statuses.
pub fn scrape(addr: SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(
        format!("GET /metrics HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let Some((head, body)) = response.split_once("\r\n\r\n") else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "no header/body split in scrape response",
        ));
    };
    if !head.starts_with("HTTP/1.0 200") && !head.starts_with("HTTP/1.1 200") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("scrape status: {}", head.lines().next().unwrap_or("")),
        ));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_and_404s_elsewhere() {
        let server = MetricsServer::spawn("127.0.0.1:0", Arc::new(|| "act_up 1\n".to_string()))
            .expect("bind metrics listener");
        let addr = server.addr();
        let body = scrape(addr).expect("scrape");
        assert_eq!(body, "act_up 1\n");

        // Non-/metrics path: 404.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /nope HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 404"), "{resp}");

        // Non-GET: 405.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 405"), "{resp}");

        server.shutdown();
    }

    #[test]
    fn render_runs_per_scrape() {
        use std::sync::atomic::AtomicU64;
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let server = MetricsServer::spawn("127.0.0.1:0", {
            Arc::new(move || format!("scrapes {}\n", h.fetch_add(1, Ordering::Relaxed) + 1))
        })
        .expect("bind");
        assert_eq!(scrape(server.addr()).unwrap(), "scrapes 1\n");
        assert_eq!(scrape(server.addr()).unwrap(), "scrapes 2\n");
        server.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
