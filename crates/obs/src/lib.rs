//! # act-obs — observability primitives for the ACT serving stack
//!
//! No crate registry is available in this build environment, so the
//! usual suspects (`hdrhistogram`, `prometheus`, `tracing`) are
//! hand-rolled here at the scale this repo actually needs:
//!
//! * [`Histogram`] — a **lock-free, mergeable, log-bucketed** value
//!   histogram: a fixed array of relaxed `AtomicU64` buckets, so the
//!   hot path is one `fetch_add` per recorded value and readers never
//!   block writers. [`HistogramSnapshot`] is the plain-data capture
//!   with p50/p90/p99/p999 extraction and a `merge()` mirroring the
//!   serve protocol's `CounterBlock::merge` — per-shard histograms sum
//!   bucket-wise into a fleet view with no loss beyond bucket width.
//! * [`StageClock`] — a monotonic lap timer for attributing one
//!   request's wall time to pipeline stages.
//! * [`TraceRing`] + [`Sampler`] — a bounded ring of structured trace
//!   events with seeded 1-in-N admission sampling, dumped as JSON
//!   lines (the serve DUMP op and the SIGINT drain both read it).
//! * [`PromText`] + [`MetricsServer`] — a Prometheus text-format
//!   (exposition format 0.0.4) renderer and a minimal `std::net` HTTP
//!   listener serving `GET /metrics`.
//!
//! Everything is `std`-only and `#![forbid(unsafe_code)]`.

#![forbid(unsafe_code)]

mod clock;
mod hist;
mod http;
mod prom;
mod trace;

pub use clock::StageClock;
pub use hist::{bucket_lower_bound, bucket_of, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use http::{scrape, MetricsServer};
pub use prom::PromText;
pub use trace::{Sampler, TraceEvent, TraceRing};
