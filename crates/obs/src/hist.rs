//! The lock-free log-bucketed histogram and its plain-data snapshot.
//!
//! ## Bucketing
//!
//! Values are `u64` (the serving pipeline records **nanoseconds** for
//! latency stages and raw counts for size/depth histograms). Buckets
//! are logarithmic with 8 sub-buckets per octave (HDR-style): values
//! below 8 get exact unit buckets, and every larger bucket spans
//! `2^(k-3)` for values with the top bit at position `k` — so the
//! relative width of any bucket is at most 12.5% of its lower bound.
//! The whole `u64` range maps into [`NUM_BUCKETS`] buckets; nothing is
//! ever clamped or dropped.
//!
//! ## Quantiles are conservative
//!
//! [`HistogramSnapshot::quantile`] returns the **lower bound** of the
//! bucket containing the requested rank. A reported p99 therefore
//! never exceeds the true p99 (it may undershoot by up to one bucket
//! width, ≤ 12.5%). This direction is deliberate: the serving bench
//! asserts `server-side p99 ≤ client-side p99`, and a conservative
//! server-side quantile keeps that comparison meaningful instead of
//! letting bucket rounding manufacture violations.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per octave.
const SUB_BITS: u32 = 3;
const SUBS: u64 = 1 << SUB_BITS;

/// Total bucket count covering the full `u64` value range.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUBS as usize;

/// The bucket index holding `value`.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value < SUBS {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros(); // >= SUB_BITS
        let sub = (value >> (exp - SUB_BITS)) & (SUBS - 1);
        (((exp - SUB_BITS + 1) as u64 * SUBS) + sub) as usize
    }
}

/// The smallest value that maps to `bucket` (inverse of [`bucket_of`]).
#[inline]
pub fn bucket_lower_bound(bucket: usize) -> u64 {
    let b = bucket as u64;
    if b < SUBS {
        b
    } else {
        let g = b / SUBS; // octave group, >= 1
        let sub = b % SUBS;
        (SUBS + sub) << (g - 1)
    }
}

/// A lock-free histogram: fixed `AtomicU64` buckets plus a running sum.
/// Recording is one relaxed `fetch_add` per bucket and one for the sum;
/// concurrent readers take a consistent-enough [`HistogramSnapshot`]
/// (bucket-level atomicity — the same guarantee a `CounterBlock` read
/// gives — which is exact once writers quiesce).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Box::new([0u64; NUM_BUCKETS].map(AtomicU64::new)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value (relaxed; never blocks, never allocates).
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Captures the current contents as plain data, with trailing empty
    /// buckets trimmed (the wire and the renderer never pay for the
    /// range that was never hit).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A plain-data capture of a [`Histogram`]: mergeable, serializable,
/// and the unit the serve protocol ships in a v3 STATS histogram
/// section. `buckets[i]` counts values in bucket `i` (see
/// [`bucket_lower_bound`]); trailing zero buckets are trimmed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Sum of all recorded values (for means).
    pub sum: u64,
    /// Per-bucket counts, trailing zeros trimmed
    /// (`len() <= NUM_BUCKETS`).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded value (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.count() as f64
    }

    /// The value at quantile `q` in `[0, 1]`: the **lower bound** of
    /// the bucket containing rank `ceil(q * count)` (conservative — see
    /// the module docs). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower_bound(i);
            }
        }
        bucket_lower_bound(self.buckets.len().saturating_sub(1))
    }

    /// Folds `other` into `self` bucket-wise — the histogram analogue
    /// of `CounterBlock::merge`. Merging per-shard snapshots yields
    /// exactly the histogram a single process recording the union
    /// would have produced (bucket counts and sums are both additive).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (into, &b) in self.buckets.iter_mut().zip(&other.buckets) {
            *into += b;
        }
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_monotonic_and_inverse() {
        // Every bucket's lower bound maps back to that bucket, and the
        // bounds strictly increase.
        for b in 0..NUM_BUCKETS {
            let lo = bucket_lower_bound(b);
            assert_eq!(bucket_of(lo), b, "bucket {b} lower bound {lo}");
            if b > 0 {
                assert!(lo > bucket_lower_bound(b - 1));
            }
        }
        // Values just below a boundary stay in the previous bucket.
        for b in 1..NUM_BUCKETS {
            let lo = bucket_lower_bound(b);
            assert_eq!(bucket_of(lo - 1), b - 1);
        }
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_of(0), 0);
    }

    #[test]
    fn bucket_width_is_within_12_5_percent() {
        for b in SUBS as usize..NUM_BUCKETS - 1 {
            let lo = bucket_lower_bound(b) as f64;
            let hi = bucket_lower_bound(b + 1) as f64;
            assert!(hi - lo <= lo / 8.0 + 1.0, "bucket {b}: [{lo}, {hi})");
        }
    }

    #[test]
    fn record_count_sum_quantiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum, 500_500);
        assert!((s.mean() - 500.5).abs() < 1e-9);
        // Conservative: never above the true quantile, within one
        // bucket width (12.5%) below it.
        for (q, truth) in [(0.5, 500u64), (0.9, 900), (0.99, 990), (0.999, 999)] {
            let got = s.quantile(q);
            assert!(got <= truth, "q{q}: {got} > {truth}");
            assert!(
                got as f64 >= truth as f64 * 0.875 - 1.0,
                "q{q}: {got} too low"
            );
        }
    }

    #[test]
    fn empty_histogram_is_sane() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), 0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        let union = Histogram::new();
        for v in [1u64, 5, 100, 10_000] {
            a.record(v);
            union.record(v);
        }
        for v in [2u64, 100, 1_000_000] {
            b.record(v);
            union.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, union.snapshot());
        // Merge into the shorter side works too.
        let mut short = b.snapshot();
        short.merge(&a.snapshot());
        assert_eq!(short, union.snapshot());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 7 + i % 97);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }
}
