//! A monotonic lap timer for per-stage pipeline attribution.

use std::time::Instant;

/// Attributes one request's wall time to consecutive stages: each
/// [`StageClock::lap`] returns the nanoseconds since the previous lap
/// (or since construction) and advances the lap point, so summing every
/// lap plus [`StageClock::total`]'s remainder never double-counts.
/// Backed by [`Instant`], so it is monotonic even across wall-clock
/// steps.
#[derive(Debug, Clone, Copy)]
pub struct StageClock {
    start: Instant,
    last: Instant,
}

impl StageClock {
    /// Starts the clock now.
    pub fn start() -> StageClock {
        let now = Instant::now();
        StageClock {
            start: now,
            last: now,
        }
    }

    /// Resumes a clock whose admission point was captured earlier (the
    /// serving pipeline stamps a frame at reader admission and laps it
    /// stages later, on other threads).
    pub fn resume(start: Instant) -> StageClock {
        StageClock { start, last: start }
    }

    /// Nanoseconds since the previous lap; advances the lap point.
    pub fn lap(&mut self) -> u64 {
        let now = Instant::now();
        let ns = now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
        ns
    }

    /// Nanoseconds since the clock started (does not advance laps).
    pub fn total(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn laps_partition_total() {
        let mut c = StageClock::start();
        std::thread::sleep(Duration::from_millis(2));
        let a = c.lap();
        std::thread::sleep(Duration::from_millis(2));
        let b = c.lap();
        assert!(a >= 1_000_000, "first lap {a} ns");
        assert!(b >= 1_000_000, "second lap {b} ns");
        assert!(c.total() >= a + b);
    }

    #[test]
    fn resume_attributes_from_the_given_instant() {
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_millis(2));
        let mut c = StageClock::resume(t0);
        let first = c.lap();
        assert!(first >= 1_000_000, "lap since resume point {first} ns");
    }
}
