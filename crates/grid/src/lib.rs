//! # grid — a non-hierarchical uniform grid baseline
//!
//! The paper contrasts ACT's *hierarchical* grid with systems that use flat
//! grids for true-hit filtering (Spark Magellan is the named example). This
//! crate implements that design point: one fixed-resolution grid over the
//! dataset bounding box; each grid cell stores the polygons it intersects,
//! flagged *interior* (the cell lies entirely inside the polygon — a true
//! hit) or *boundary* (a candidate).
//!
//! The flat grid's weakness — which the ablation benchmark demonstrates —
//! is that one resolution must serve both huge-interior polygons (wasting
//! millions of identical interior entries) and fine boundaries (forcing
//! coarse, imprecise candidate cells). ACT's adaptive cell levels solve
//! both at once.
//!
//! ```
//! use geom::{Coord, Polygon, Rect, Ring};
//! use grid::UniformGrid;
//!
//! let square = Polygon::new(
//!     Ring::new(vec![
//!         Coord::new(0.0, 0.0),
//!         Coord::new(1.0, 0.0),
//!         Coord::new(1.0, 1.0),
//!         Coord::new(0.0, 1.0),
//!     ]),
//!     vec![],
//! );
//! let bbox = Rect::new(Coord::new(0.0, 0.0), Coord::new(4.0, 4.0));
//! let grid = UniformGrid::build(&[square], bbox, 64, 64);
//! let refs = grid.query(Coord::new(0.5, 0.5));
//! assert_eq!(refs, &[(0, true)]); // true hit
//! ```

#![forbid(unsafe_code)]

use geom::{CellRelation, Coord, Polygon, Rect};

/// A fixed-resolution grid index with true-hit filtering.
#[derive(Debug)]
pub struct UniformGrid {
    bbox: Rect,
    nx: usize,
    ny: usize,
    inv_dx: f64,
    inv_dy: f64,
    /// CSR layout: cell `k`'s references are
    /// `refs[offsets[k] .. offsets[k+1]]`, encoded as `(id << 1) | interior`.
    offsets: Vec<u32>,
    refs: Vec<u32>,
}

impl UniformGrid {
    /// Builds an `nx × ny` grid over `bbox` for `polygons`.
    pub fn build(polygons: &[Polygon], bbox: Rect, nx: usize, ny: usize) -> UniformGrid {
        assert!(nx >= 1 && ny >= 1);
        let dx = (bbox.max.x - bbox.min.x) / nx as f64;
        let dy = (bbox.max.y - bbox.min.y) / ny as f64;
        let mut cells: Vec<Vec<u32>> = vec![Vec::new(); nx * ny];

        for (id, poly) in polygons.iter().enumerate() {
            let pb = poly.bbox();
            // Only cells overlapping the polygon's bbox can intersect it.
            let i0 = (((pb.min.x - bbox.min.x) / dx).floor() as isize).clamp(0, nx as isize - 1);
            let i1 = (((pb.max.x - bbox.min.x) / dx).floor() as isize).clamp(0, nx as isize - 1);
            let j0 = (((pb.min.y - bbox.min.y) / dy).floor() as isize).clamp(0, ny as isize - 1);
            let j1 = (((pb.max.y - bbox.min.y) / dy).floor() as isize).clamp(0, ny as isize - 1);
            for j in j0..=j1 {
                for i in i0..=i1 {
                    let x0 = bbox.min.x + i as f64 * dx;
                    let y0 = bbox.min.y + j as f64 * dy;
                    let quad = [
                        Coord::new(x0, y0),
                        Coord::new(x0 + dx, y0),
                        Coord::new(x0 + dx, y0 + dy),
                        Coord::new(x0, y0 + dy),
                    ];
                    match poly.relate_quad(&quad) {
                        CellRelation::Outside => {}
                        CellRelation::Inside => {
                            cells[j as usize * nx + i as usize].push(((id as u32) << 1) | 1);
                        }
                        CellRelation::Boundary => {
                            cells[j as usize * nx + i as usize].push((id as u32) << 1);
                        }
                    }
                }
            }
        }

        // Flatten into CSR.
        let mut offsets = Vec::with_capacity(nx * ny + 1);
        let mut refs = Vec::new();
        offsets.push(0u32);
        for cell in &cells {
            refs.extend_from_slice(cell);
            offsets.push(refs.len() as u32);
        }

        UniformGrid {
            bbox,
            nx,
            ny,
            inv_dx: 1.0 / dx,
            inv_dy: 1.0 / dy,
            offsets,
            refs,
        }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Heap memory in bytes (CSR arrays).
    pub fn memory_bytes(&self) -> usize {
        (self.offsets.len() + self.refs.len()) * std::mem::size_of::<u32>()
    }

    /// Total stored references.
    pub fn num_refs(&self) -> usize {
        self.refs.len()
    }

    /// The raw encoded references of the cell containing `p` (empty slice
    /// if `p` is outside the bbox). Encoding: `(id << 1) | interior`.
    #[inline]
    pub fn query_raw(&self, p: Coord) -> &[u32] {
        if !self.bbox.contains(p) {
            return &[];
        }
        let i = (((p.x - self.bbox.min.x) * self.inv_dx) as usize).min(self.nx - 1);
        let j = (((p.y - self.bbox.min.y) * self.inv_dy) as usize).min(self.ny - 1);
        let k = j * self.nx + i;
        &self.refs[self.offsets[k] as usize..self.offsets[k + 1] as usize]
    }

    /// Decoded query: `(polygon id, is_true_hit)` pairs.
    pub fn query(&self, p: Coord) -> Vec<(u32, bool)> {
        self.query_raw(p)
            .iter()
            .map(|&r| (r >> 1, r & 1 == 1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Ring;

    fn square(x0: f64, y0: f64, x1: f64, y1: f64) -> Polygon {
        Polygon::new(
            Ring::new(vec![
                Coord::new(x0, y0),
                Coord::new(x1, y0),
                Coord::new(x1, y1),
                Coord::new(x0, y1),
            ]),
            vec![],
        )
    }

    fn world() -> Rect {
        Rect::new(Coord::new(0.0, 0.0), Coord::new(10.0, 10.0))
    }

    #[test]
    fn true_hits_and_candidates() {
        let polys = vec![square(1.0, 1.0, 5.0, 5.0)];
        let g = UniformGrid::build(&polys, world(), 100, 100);
        // Deep inside: true hit.
        assert_eq!(g.query(Coord::new(3.0, 3.0)), vec![(0, true)]);
        // Near the edge (within one cell of it): candidate.
        let near_edge = g.query(Coord::new(1.01, 3.0));
        assert_eq!(near_edge.len(), 1);
        assert!(!near_edge[0].1, "boundary cell must be a candidate");
        // Outside.
        assert!(g.query(Coord::new(8.0, 8.0)).is_empty());
        // Outside the bbox entirely.
        assert!(g.query(Coord::new(-1.0, 3.0)).is_empty());
    }

    #[test]
    fn no_false_negatives() {
        let polys = vec![square(1.0, 1.0, 5.0, 5.0), square(4.0, 4.0, 8.0, 9.0)];
        let g = UniformGrid::build(&polys, world(), 64, 64);
        let mut state = 11u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..1000 {
            let p = Coord::new(next() * 10.0, next() * 10.0);
            let hits: Vec<u32> = g.query(p).iter().map(|&(id, _)| id).collect();
            for (id, poly) in polys.iter().enumerate() {
                if poly.contains(p) {
                    assert!(
                        hits.contains(&(id as u32)),
                        "false negative for {p} polygon {id}"
                    );
                }
            }
        }
    }

    #[test]
    fn true_hits_are_truly_inside() {
        let polys = vec![square(1.0, 1.0, 5.0, 5.0)];
        let g = UniformGrid::build(&polys, world(), 64, 64);
        let mut state = 23u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..1000 {
            let p = Coord::new(next() * 10.0, next() * 10.0);
            for (id, interior) in g.query(p) {
                if interior {
                    assert!(
                        polys[id as usize].contains(p),
                        "true hit at {p} is not inside polygon {id}"
                    );
                }
            }
        }
    }

    #[test]
    fn finer_grid_fewer_candidates() {
        let polys = vec![square(1.0, 1.0, 9.0, 9.0)];
        let coarse = UniformGrid::build(&polys, world(), 8, 8);
        let fine = UniformGrid::build(&polys, world(), 256, 256);
        // Sample: fraction of probes answered as candidates shrinks with
        // resolution.
        let count_cands = |g: &UniformGrid| {
            let mut cands = 0;
            for i in 0..100 {
                for j in 0..100 {
                    let p = Coord::new(0.05 + i as f64 * 0.1, 0.05 + j as f64 * 0.1);
                    cands += g.query(p).iter().filter(|&&(_, t)| !t).count();
                }
            }
            cands
        };
        assert!(count_cands(&fine) < count_cands(&coarse));
        // ... at the cost of more memory.
        assert!(fine.memory_bytes() > coarse.memory_bytes());
    }

    #[test]
    fn memory_and_ref_accounting() {
        let polys = vec![square(1.0, 1.0, 5.0, 5.0)];
        let g = UniformGrid::build(&polys, world(), 32, 32);
        assert!(g.num_refs() > 0);
        assert_eq!(g.dims(), (32, 32));
        assert!(g.memory_bytes() >= (32 * 32 + 1) * 4);
    }
}
