//! Property-based tests for the ACT core: trie ≡ model, super-covering
//! semantics preservation, the precision guarantee, index agreement, and
//! live-mutation (insert/remove/compact) ≡ fresh rebuild.

use act_core::covering::cover_uv_polygon;
use act_core::snapshot::SnapshotBuf;
use act_core::supercover::build_from_pairs;
use act_core::uvpoly::UvPolygon;
use act_core::{
    ActIndex, CoveringParams, LookupTableBuilder, PolygonRef, Probe, RefSet, SortedCellIndex,
};
use geom::{Coord, Polygon, Ring};
use proptest::prelude::*;
use s2cell::{CellId, LatLng};
use std::collections::BTreeMap;

fn arb_nyc_latlng() -> impl Strategy<Value = LatLng> {
    (40.5f64..40.9, -74.2f64..-73.8).prop_map(|(lat, lng)| LatLng::from_degrees(lat, lng))
}

/// Random (cell, ref) pairs around NYC; cells may duplicate and nest —
/// exactly what the super covering must resolve.
fn arb_pairs() -> impl Strategy<Value = Vec<(CellId, PolygonRef)>> {
    proptest::collection::vec(
        (arb_nyc_latlng(), 6u8..=24, 0u32..6, proptest::bool::ANY),
        1..24,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(ll, level, id, interior)| {
                (
                    CellId::from_latlng(ll).parent(level),
                    PolygonRef { id, interior },
                )
            })
            .collect()
    })
}

/// The reference semantics of a covering pair set at a leaf: the merged
/// refs of *all* input cells containing the leaf, true-hit winning on
/// duplicates.
fn model_refs_at(pairs: &[(CellId, PolygonRef)], leaf: CellId) -> Vec<PolygonRef> {
    let mut out: Vec<PolygonRef> = Vec::new();
    for &(cell, r) in pairs {
        if cell.contains(leaf) {
            match out.iter_mut().find(|x| x.id == r.id) {
                Some(x) => x.interior |= r.interior,
                None => out.push(r),
            }
        }
    }
    out.sort_by_key(|r| r.id);
    out
}

fn resolve(index_probe: Probe, table: &act_core::LookupTable) -> Vec<PolygonRef> {
    let mut v: Vec<PolygonRef> = act_core::resolve_probe(index_probe, table)
        .map(|(id, interior)| PolygonRef { id, interior })
        .collect();
    v.sort_by_key(|r| r.id);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The flagship property: for ANY set of (possibly nested, possibly
    /// duplicated) covering pairs, the super covering + trie answer every
    /// leaf query exactly like the naive "check all cells" model.
    #[test]
    fn supercover_and_trie_preserve_semantics(pairs in arb_pairs(), probes in proptest::collection::vec(arb_nyc_latlng(), 16)) {
        let sc = build_from_pairs(pairs.clone());

        // Structural invariant: cells are unique and non-nested.
        let mut sorted: Vec<CellId> = sc.cells.iter().map(|(c, _)| *c).collect();
        sorted.sort_by_key(|c| c.range_min().0);
        for w in sorted.windows(2) {
            prop_assert!(w[0].range_max().0 < w[1].range_min().0,
                "cells overlap: {:?} {:?}", w[0], w[1]);
        }

        // Build the trie.
        let mut act = act_core::Act::new();
        let mut tb = LookupTableBuilder::new();
        for (cell, refs) in &sc.cells {
            act.insert(*cell, refs, &mut tb);
        }
        let table = tb.build();

        // Semantic equivalence at probe leaves + at every input cell's
        // own center leaf (guaranteed interesting points).
        let mut leaves: Vec<CellId> = probes.iter().map(|&ll| CellId::from_latlng(ll)).collect();
        for (cell, _) in &pairs {
            leaves.push(cell.range_min());
            leaves.push(cell.range_max());
        }
        for leaf in leaves {
            let expected = model_refs_at(&pairs, leaf);
            let got = resolve(act.lookup(leaf), &table);
            prop_assert_eq!(got, expected, "at leaf {:?}", leaf);
        }
    }

    /// Batched probing is exactly the scalar probe, lane by lane, for any
    /// trie shape and any query mix (hits, misses, empty faces, partial
    /// final blocks).
    #[test]
    fn lookup_batch_equals_scalar_lookup(pairs in arb_pairs(), probes in proptest::collection::vec(arb_nyc_latlng(), 1..96)) {
        let sc = build_from_pairs(pairs.clone());
        let mut act = act_core::Act::new();
        let mut tb = LookupTableBuilder::new();
        for (cell, refs) in &sc.cells {
            act.insert(*cell, refs, &mut tb);
        }
        let mut leaves: Vec<CellId> = probes.iter().map(|&ll| CellId::from_latlng(ll)).collect();
        for (cell, _) in &pairs {
            leaves.push(cell.range_min());
            leaves.push(cell.range_max());
        }
        let mut out = vec![Probe::Miss; leaves.len()];
        act.lookup_batch(&leaves, &mut out);
        for (leaf, got) in leaves.iter().zip(&out) {
            prop_assert_eq!(*got, act.lookup(*leaf), "at leaf {:?}", leaf);
        }
    }

    /// The sorted-array index answers identically to the trie.
    #[test]
    fn sorted_index_equals_trie(pairs in arb_pairs(), probes in proptest::collection::vec(arb_nyc_latlng(), 16)) {
        let sc = build_from_pairs(pairs.clone());
        let sorted = SortedCellIndex::build(&sc);
        let mut act = act_core::Act::new();
        let mut tb = LookupTableBuilder::new();
        for (cell, refs) in &sc.cells {
            act.insert(*cell, refs, &mut tb);
        }
        let table = tb.build();
        for ll in probes {
            let leaf = CellId::from_latlng(ll);
            let a = resolve(act.lookup(leaf), &table);
            let s = resolve(sorted.lookup(leaf), sorted.table());
            prop_assert_eq!(a, s);
        }
    }

    /// RefSet::merge is order-insensitive (set semantics with
    /// true-hit-wins).
    #[test]
    fn refset_merge_order_insensitive(refs in proptest::collection::vec((0u32..8, proptest::bool::ANY), 1..10)) {
        let make = |order: &[(u32, bool)]| {
            let mut it = order.iter();
            let &(id, interior) = it.next().unwrap();
            let mut s = RefSet::single(PolygonRef { id, interior });
            for &(id, interior) in it {
                s.merge(PolygonRef { id, interior });
            }
            let mut v: Vec<PolygonRef> = s.iter().collect();
            v.sort_by_key(|r| r.id);
            v
        };
        let forward = make(&refs);
        let mut rev = refs.clone();
        rev.reverse();
        prop_assert_eq!(forward, make(&rev));
    }
}

/// Random overlapping axis-aligned squares around NYC — a quick-to-cover
/// polygon set for snapshot round-trip properties.
fn arb_squares() -> impl Strategy<Value = Vec<Polygon>> {
    proptest::collection::vec((-74.15f64..-73.85, 40.55f64..40.85, 0.003f64..0.02), 1..5).prop_map(
        |specs| {
            specs
                .into_iter()
                .map(|(cx, cy, half)| {
                    Polygon::new(
                        Ring::new(vec![
                            Coord::new(cx - half, cy - half),
                            Coord::new(cx + half, cy - half),
                            Coord::new(cx + half, cy + half),
                            Coord::new(cx - half, cy + half),
                        ]),
                        vec![],
                    )
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// save → load → probe ≡ in-memory probe, in both load modes (owned
    /// [`ActIndex::load_snapshot`] and zero-copy
    /// [`act_core::ActIndexView`]), and the loaded index's batched walk
    /// ≡ its scalar walk, for random polygon sets and probe points.
    #[test]
    fn snapshot_roundtrip_preserves_probes(
        polys in arb_squares(),
        probes in proptest::collection::vec((-74.2f64..-73.8, 40.5f64..40.9), 1..48),
    ) {
        let built = ActIndex::build(&polys, 60.0).unwrap();
        let mut bytes = Vec::new();
        built.save_snapshot(&mut bytes).unwrap();

        let owned = ActIndex::load_snapshot(&mut bytes.as_slice()).unwrap();
        let buf = SnapshotBuf::from_bytes(&bytes).unwrap();
        let view = buf.view().unwrap();

        let coords: Vec<Coord> = probes.iter().map(|&(x, y)| Coord::new(x, y)).collect();
        let cells: Vec<CellId> = coords.iter().map(|&c| act_core::coord_to_cell(c)).collect();
        for (&c, &cell) in coords.iter().zip(&cells) {
            let want = built.probe_cell(cell);
            prop_assert_eq!(owned.probe_cell(cell), want, "owned probe at {}", c);
            prop_assert_eq!(view.probe_cell(cell), want, "view probe at {}", c);
            prop_assert_eq!(owned.lookup_refs(c), built.lookup_refs(c), "owned refs at {}", c);
            prop_assert_eq!(view.lookup_refs(c), built.lookup_refs(c), "view refs at {}", c);
        }
        // lookup_batch ≡ scalar on both loaded forms.
        let mut owned_out = vec![Probe::Miss; cells.len()];
        let mut view_out = vec![Probe::Miss; cells.len()];
        owned.probe_batch(&cells, &mut owned_out);
        view.probe_batch(&cells, &mut view_out);
        for (i, &cell) in cells.iter().enumerate() {
            prop_assert_eq!(owned_out[i], built.probe_cell(cell));
            prop_assert_eq!(view_out[i], built.probe_cell(cell));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end precision guarantee on random convex polygons: no false
    /// negatives, and every reported match is within ε.
    #[test]
    fn precision_guarantee_holds(
        angles in proptest::collection::vec(0.0f64..std::f64::consts::TAU, 8..14),
        cx in -74.1f64..-73.9,
        cy in 40.6f64..40.8,
        r_km in 0.3f64..2.0,
        precision in prop_oneof![Just(60.0f64), Just(15.0), Just(4.0)],
        probes in proptest::collection::vec((-0.05f64..0.05, -0.05f64..0.05), 40),
    ) {
        let mut sorted = angles.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup_by(|a, b| (*a - *b).abs() < 1e-3);
        prop_assume!(sorted.len() >= 3);
        let r_deg = r_km / 111.0;
        let verts: Vec<Coord> = sorted
            .iter()
            .map(|&th| Coord::new(cx + r_deg * th.cos(), cy + 0.75 * r_deg * th.sin()))
            .collect();
        let poly = Polygon::new(Ring::new(verts), vec![]);
        let index = ActIndex::build(std::slice::from_ref(&poly), precision).unwrap();

        for (dx, dy) in probes {
            let p = Coord::new(cx + dx, cy + dy);
            let matched = !index.lookup_refs(p).is_empty();
            let dist = poly.distance_meters(p);
            if poly.contains(p) {
                prop_assert!(matched, "false negative at {} (dist {})", p, dist);
            }
            if matched {
                prop_assert!(
                    dist <= precision * 1.0001,
                    "match at distance {} exceeds ε = {}", dist, precision
                );
            }
            // Contrapositive: far points never match.
            if dist > precision * 1.0001 {
                prop_assert!(!matched);
            }
        }
    }

    /// True hits are always geometrically exact.
    #[test]
    fn true_hits_are_exact(
        cx in -74.1f64..-73.9,
        cy in 40.6f64..40.8,
        half in 0.002f64..0.03,
        probes in proptest::collection::vec((-0.05f64..0.05, -0.05f64..0.05), 30),
    ) {
        let poly = Polygon::new(
            Ring::new(vec![
                Coord::new(cx - half, cy - half),
                Coord::new(cx + half, cy - half),
                Coord::new(cx + half, cy + half),
                Coord::new(cx - half, cy + half),
            ]),
            vec![],
        );
        let index = ActIndex::build(std::slice::from_ref(&poly), 15.0).unwrap();
        for (dx, dy) in probes {
            let p = Coord::new(cx + dx, cy + dy);
            for (_, interior) in index.lookup_refs(p) {
                if interior {
                    prop_assert!(poly.contains(p), "true hit outside polygon at {}", p);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Live mutation: incremental insert/remove/compact ≡ fresh rebuild
// ---------------------------------------------------------------------

fn square(cx: f64, cy: f64, half: f64) -> Polygon {
    Polygon::new(
        Ring::new(vec![
            Coord::new(cx - half, cy - half),
            Coord::new(cx + half, cy - half),
            Coord::new(cx + half, cy + half),
            Coord::new(cx - half, cy + half),
        ]),
        vec![],
    )
}

/// Fresh-rebuild reference: covers every live polygon under its real id
/// (ids are sparse after edits, so this goes through `build_from_pairs`
/// rather than `ActIndex::build`'s dense slice-index ids).
fn rebuild(live: &BTreeMap<u32, Polygon>, precision_m: f64) -> ActIndex {
    let params = CoveringParams::new(precision_m);
    let mut pairs: Vec<(CellId, PolygonRef)> = Vec::new();
    for (&id, poly) in live {
        let uv = UvPolygon::from_polygon(poly).unwrap();
        for &(cell, interior) in &cover_uv_polygon(&uv, &params).cells {
            pairs.push((cell, PolygonRef { id, interior }));
        }
    }
    ActIndex::from_supercover(build_from_pairs(pairs), params)
}

/// One step of a random edit script over a small id space (so removes,
/// upserts, and remove-then-reinsert all actually happen).
#[derive(Debug, Clone)]
enum EditOp {
    Insert {
        id: u32,
        cx: f64,
        cy: f64,
        half: f64,
    },
    Remove {
        id: u32,
    },
    Compact,
}

fn arb_insert_op() -> impl Strategy<Value = EditOp> {
    (0u32..6, -74.15f64..-73.85, 40.55f64..40.85, 0.003f64..0.02)
        .prop_map(|(id, cx, cy, half)| EditOp::Insert { id, cx, cy, half })
}

fn arb_edit_script() -> impl Strategy<Value = Vec<EditOp>> {
    proptest::collection::vec(
        // The vendored prop_oneof! has no arm weights; repeating the
        // insert arm skews the mix toward inserts (~4:2:1).
        prop_oneof![
            arb_insert_op(),
            arb_insert_op(),
            arb_insert_op(),
            arb_insert_op(),
            (0u32..6).prop_map(|id| EditOp::Remove { id }),
            (0u32..6).prop_map(|id| EditOp::Remove { id }),
            Just(EditOp::Compact),
        ],
        1..12,
    )
}

/// Points that must agree: the random probes plus every edited polygon's
/// center and corners (guaranteed hits, boundaries, and stale locations
/// of removed polygons).
fn mutation_probe_points(script: &[EditOp], probes: &[(f64, f64)]) -> Vec<Coord> {
    let mut pts: Vec<Coord> = probes.iter().map(|&(x, y)| Coord::new(x, y)).collect();
    for op in script {
        if let EditOp::Insert { cx, cy, half, .. } = *op {
            pts.push(Coord::new(cx, cy));
            pts.push(Coord::new(cx - half, cy - half));
            pts.push(Coord::new(cx + half, cy + half));
            pts.push(Coord::new(cx + half * 1.01, cy));
        }
    }
    pts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The mutation flagship: after ANY random edit script (upserts,
    /// removes of present and absent ids, interleaved explicit compacts)
    /// applied to a built index, every probe answers exactly like an index
    /// rebuilt from scratch over the surviving polygon set.
    #[test]
    fn incremental_edits_equal_fresh_rebuild(
        initial in arb_squares(),
        script in arb_edit_script(),
        probes in proptest::collection::vec((-74.2f64..-73.8, 40.5f64..40.9), 24),
    ) {
        let precision = 60.0;
        let mut live: BTreeMap<u32, Polygon> = initial
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p.clone()))
            .collect();
        let mut idx = rebuild(&live, precision);
        for op in &script {
            match *op {
                EditOp::Insert { id, cx, cy, half } => {
                    let p = square(cx, cy, half);
                    idx.insert_polygon(id, &p).unwrap();
                    live.insert(id, p);
                }
                EditOp::Remove { id } => {
                    let changed = idx.remove_polygon(id);
                    prop_assert_eq!(changed, live.remove(&id).is_some(),
                        "remove({}) change-report disagrees with model", id);
                }
                EditOp::Compact => idx.compact(),
            }
        }
        let fresh = rebuild(&live, precision);
        for c in mutation_probe_points(&script, &probes) {
            let mut got = idx.lookup_refs(c);
            let mut want = fresh.lookup_refs(c);
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want, "probe at {} diverged from fresh rebuild", c);
        }
        // Compaction is probe-invariant from any mutated state.
        idx.compact();
        for c in mutation_probe_points(&script, &probes) {
            let mut got = idx.lookup_refs(c);
            let mut want = fresh.lookup_refs(c);
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want, "post-compact probe at {} diverged", c);
        }
    }

    /// Removing a polygon and re-inserting the identical geometry restores
    /// probe behavior exactly; removing everything empties the index; and
    /// an index grown entirely from an empty build matches a fresh build.
    #[test]
    fn remove_reinsert_and_empty_index(
        polys in arb_squares(),
        probes in proptest::collection::vec((-74.2f64..-73.8, 40.5f64..40.9), 24),
    ) {
        let precision = 60.0;
        let built = ActIndex::build(&polys, precision).unwrap();
        let pts: Vec<Coord> = probes
            .iter()
            .map(|&(x, y)| Coord::new(x, y))
            .chain(polys.iter().map(|p| {
                let b = p.outer().vertices()[0];
                Coord::new(b.x + 0.001, b.y + 0.001)
            }))
            .collect();

        // Remove then re-insert the same shape under the same id.
        let mut idx = built.clone();
        let victim = (polys.len() - 1) as u32;
        prop_assert!(idx.remove_polygon(victim));
        prop_assert!(!idx.remove_polygon(victim), "double remove must be a no-op");
        idx.insert_polygon(victim, &polys[victim as usize]).unwrap();
        for &c in &pts {
            let mut got = idx.lookup_refs(c);
            let mut want = built.lookup_refs(c);
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want, "remove+reinsert at {} diverged", c);
        }

        // Remove everything: the index must answer like an empty one.
        let mut idx = built.clone();
        for id in 0..polys.len() as u32 {
            prop_assert!(idx.remove_polygon(id));
        }
        for &c in &pts {
            prop_assert!(idx.lookup_refs(c).is_empty(), "ghost refs at {}", c);
        }
        idx.compact();
        prop_assert_eq!(idx.stats().indexed_cells, 0);

        // Grow from empty: insert-by-insert ≡ batch build.
        let mut grown = ActIndex::build(&[], precision).unwrap();
        for (i, p) in polys.iter().enumerate() {
            grown.insert_polygon(i as u32, p).unwrap();
        }
        for &c in &pts {
            let mut got = grown.lookup_refs(c);
            let mut want = built.lookup_refs(c);
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want, "grown-from-empty at {} diverged", c);
        }
    }
}
