//! Census-scale removal timing, run by hand (ignored by default):
//!
//! ```sh
//! cargo test --release -p act-core --test removal_timing -- --ignored --nocapture
//! ```
//!
//! Builds the census lattice, primes mutation state, and times
//! `remove_polygon` on a spread of present ids. With the per-id cell
//! inventory this walks only the cells each id touches; the pre-PR-8
//! implementation scanned the whole ref arena per removal.

use act_core::ActIndex;
use std::time::Instant;

#[test]
#[ignore = "timing harness, run with --ignored --nocapture"]
fn census_scale_removal_timing() {
    let ds = datagen::census_blocks(42);
    let polys = &ds.polygons;
    let pool = jobs::JobPool::with_available_parallelism();
    let t = Instant::now();
    let mut index = ActIndex::build_parallel(polys, 15.0, &pool).expect("build census");
    println!(
        "built census index: {} polygons in {:.2} s",
        polys.len(),
        t.elapsed().as_secs_f64()
    );

    // Pay the one-time mutation priming (live-id set + cell inventory)
    // outside the measured region; steady-state removal is what the
    // delta watcher feels per `Remove` op.
    let t = Instant::now();
    index.prime_mutations();
    println!("prime_mutations: {:.1} ms", t.elapsed().as_secs_f64() * 1e3);

    let step = (polys.len() / 64).max(1);
    let ids: Vec<u32> = (0..polys.len() as u32).step_by(step).take(64).collect();
    let t = Instant::now();
    for &id in &ids {
        assert!(index.remove_polygon(id), "id {id} should be present");
    }
    let per = t.elapsed().as_secs_f64() * 1e6 / ids.len() as f64;
    println!("removal: {} ids, {per:.1} us/removal", ids.len());
}
