//! Adversarial snapshot-loader tests: every class of malformed input —
//! truncation, flipped magic, wrong version, corrupted section
//! offsets/lengths, bit-flipped payloads — must come back as a typed
//! [`SnapshotError`], never a panic or out-of-bounds access, through BOTH
//! load paths (owned [`ActIndex::load_snapshot`] and the zero-copy
//! [`ActIndexView`]).

use act_core::snapshot::{rewrite_checksum, ActIndexView, SnapshotBuf, SnapshotError};
use act_core::ActIndex;
use geom::{Coord, Polygon, Ring};

fn square(cx: f64, cy: f64, half: f64) -> Polygon {
    Polygon::new(
        Ring::new(vec![
            Coord::new(cx - half, cy - half),
            Coord::new(cx + half, cy - half),
            Coord::new(cx + half, cy + half),
            Coord::new(cx - half, cy + half),
        ]),
        vec![],
    )
}

/// A valid snapshot image to mutate (four mutually overlapping squares:
/// the trie has several nodes and the triple-overlap region forces a
/// non-empty lookup table).
fn valid_snapshot() -> Vec<u8> {
    let polys = vec![
        square(-74.00, 40.70, 0.03),
        square(-73.99, 40.70, 0.03),
        square(-74.01, 40.70, 0.03),
        square(-74.00, 40.71, 0.03),
    ];
    let idx = ActIndex::build(&polys, 15.0).unwrap();
    let mut bytes = Vec::new();
    idx.save_snapshot(&mut bytes).unwrap();
    bytes
}

/// Reads section `i`'s `(offset, length)` from a snapshot's header table.
fn section(bytes: &[u8], i: usize) -> (usize, usize) {
    let at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap()) as usize;
    (at(32 + 16 * i), at(40 + 16 * i))
}

/// Overwrites the first trie entry matching `pred` with `evil` and fixes
/// the checksum — forges a structurally plausible, checksum-valid file
/// whose arena would steer probes out of bounds without the loader's
/// entry-level validation.
fn forge_trie_entry(b: &mut [u8], pred: fn(u64) -> bool, evil: u64) {
    let (off, len) = section(b, 0);
    for i in (off..off + len).step_by(8) {
        let e = u64::from_le_bytes(b[i..i + 8].try_into().unwrap());
        if pred(e) {
            b[i..i + 8].copy_from_slice(&evil.to_le_bytes());
            rewrite_checksum(b);
            return;
        }
    }
    panic!("no matching trie entry in the fixture");
}

struct Case {
    name: &'static str,
    mutate: fn(&mut Vec<u8>),
    check: fn(&SnapshotError) -> bool,
}

const CASES: &[Case] = &[
    Case {
        name: "empty file",
        mutate: |b| b.clear(),
        check: |e| matches!(e, SnapshotError::Truncated { .. }),
    },
    Case {
        name: "truncated inside the header",
        mutate: |b| b.truncate(48),
        check: |e| matches!(e, SnapshotError::Truncated { .. }),
    },
    Case {
        name: "truncated by one word",
        mutate: |b| {
            let n = b.len();
            b.truncate(n - 8);
        },
        check: |e| matches!(e, SnapshotError::LengthMismatch { .. }),
    },
    Case {
        name: "truncated mid-word",
        mutate: |b| {
            let n = b.len();
            b.truncate(n - 3);
        },
        check: |e| matches!(e, SnapshotError::Truncated { .. }),
    },
    Case {
        name: "trailing garbage appended",
        mutate: |b| b.extend_from_slice(&[0u8; 8]),
        check: |e| matches!(e, SnapshotError::LengthMismatch { .. }),
    },
    Case {
        name: "flipped magic byte",
        mutate: |b| b[0] ^= 0x01,
        check: |e| matches!(e, SnapshotError::BadMagic),
    },
    Case {
        name: "wrong format version",
        mutate: |b| b[8] = 0x7F,
        check: |e| matches!(e, SnapshotError::UnsupportedVersion { found: 0x7F }),
    },
    Case {
        name: "nonzero reserved flags",
        mutate: |b| b[12] = 1,
        check: |e| matches!(e, SnapshotError::BadHeader(_)),
    },
    Case {
        name: "trie offset pointing far out of bounds",
        mutate: |b| b[32..40].copy_from_slice(&u64::MAX.to_le_bytes()),
        check: |e| {
            matches!(
                e,
                SnapshotError::BadSection {
                    section: "trie",
                    ..
                }
            )
        },
    },
    Case {
        name: "trie offset unaligned",
        mutate: |b| {
            let (off, _) = section(b, 0);
            b[32..40].copy_from_slice(&(off as u64 + 1).to_le_bytes());
        },
        check: |e| {
            matches!(
                e,
                SnapshotError::BadSection {
                    section: "trie",
                    ..
                }
            )
        },
    },
    Case {
        name: "trie length not a node multiple",
        mutate: |b| {
            let (_, len) = section(b, 0);
            b[40..48].copy_from_slice(&(len as u64 + 8).to_le_bytes());
        },
        check: |e| matches!(e, SnapshotError::BadSection { .. }),
    },
    Case {
        name: "table length inflated past the file",
        mutate: |b| b[72..80].copy_from_slice(&(1u64 << 40).to_le_bytes()),
        check: |e| {
            matches!(
                e,
                SnapshotError::BadSection {
                    section: "table",
                    ..
                }
            )
        },
    },
    Case {
        name: "section offsets swapped",
        mutate: |b| {
            let (trie_off, _) = section(b, 0);
            let (roots_off, _) = section(b, 1);
            b[32..40].copy_from_slice(&(roots_off as u64).to_le_bytes());
            b[48..56].copy_from_slice(&(trie_off as u64).to_le_bytes());
        },
        check: |e| matches!(e, SnapshotError::BadSection { .. }),
    },
    Case {
        name: "bit flip in the trie payload",
        mutate: |b| {
            let (off, len) = section(b, 0);
            b[off + len / 2] ^= 0x10;
        },
        check: |e| matches!(e, SnapshotError::ChecksumMismatch { .. }),
    },
    Case {
        name: "bit flip in the roots",
        mutate: |b| {
            let (off, _) = section(b, 1);
            b[off] ^= 0x01;
        },
        check: |e| matches!(e, SnapshotError::ChecksumMismatch { .. }),
    },
    Case {
        name: "bit flip in the lookup table",
        mutate: |b| {
            let (off, len) = section(b, 2);
            assert!(len > 0, "fixture index must have a lookup table");
            b[off] ^= 0x80;
        },
        check: |e| matches!(e, SnapshotError::ChecksumMismatch { .. }),
    },
    // The cases below recompute the checksum after corrupting, proving
    // the deeper validation layers behind it hold on their own.
    Case {
        name: "root index out of arena range (checksum fixed up)",
        mutate: |b| {
            let (off, _) = section(b, 1);
            b[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            rewrite_checksum(b);
        },
        check: |e| matches!(e, SnapshotError::Inconsistent(_)),
    },
    Case {
        name: "meta act_bytes disagrees with trie section (checksum fixed up)",
        mutate: |b| {
            let (off, _) = section(b, 3);
            b[off + 64..off + 72].copy_from_slice(&1u64.to_le_bytes());
            rewrite_checksum(b);
        },
        check: |e| matches!(e, SnapshotError::Inconsistent(_)),
    },
    Case {
        name: "nonzero reserved meta words (checksum fixed up)",
        mutate: |b| {
            let (off, _) = section(b, 3);
            b[off + 120] = 1;
            rewrite_checksum(b);
        },
        check: |e| matches!(e, SnapshotError::Inconsistent(_)),
    },
    Case {
        // Tag 00 with a huge node index: an unvalidated probe descending
        // through it would index far past the arena.
        name: "trie child pointer out of arena range (checksum fixed up)",
        mutate: |b| forge_trie_entry(b, |e| e & 3 == 0 && e >> 2 != 0, u64::MAX << 2),
        check: |e| matches!(e, SnapshotError::Inconsistent(_)),
    },
    Case {
        // Tag 11 with an offset past the lookup table: an unvalidated
        // Probe::Table resolution would index past the table.
        name: "lookup-table offset out of range (checksum fixed up)",
        mutate: |b| forge_trie_entry(b, |e| e & 3 == 3, (0x7FFF_FFF0u64 << 2) | 3),
        check: |e| matches!(e, SnapshotError::Inconsistent(_)),
    },
];

#[test]
fn corrupted_snapshots_yield_typed_errors_never_panics() {
    let pristine = valid_snapshot();
    // Sanity: the pristine image loads through both paths.
    assert!(ActIndex::load_snapshot(&mut pristine.as_slice()).is_ok());
    assert!(SnapshotBuf::from_bytes(&pristine).unwrap().view().is_ok());

    for case in CASES {
        let mut bytes = pristine.clone();
        (case.mutate)(&mut bytes);

        // Owned load path.
        match ActIndex::load_snapshot(&mut bytes.as_slice()) {
            Ok(_) => panic!("case '{}': owned load accepted corrupt input", case.name),
            Err(e) => assert!(
                (case.check)(&e),
                "case '{}': owned load returned unexpected error {e:?}",
                case.name
            ),
        }

        // Zero-copy view path (via the aligned buffer; buffer
        // construction itself may already reject, e.g. mid-word
        // truncation).
        let view_err = match SnapshotBuf::from_bytes(&bytes) {
            Err(e) => e,
            Ok(buf) => match buf.view() {
                Ok(_) => panic!("case '{}': view accepted corrupt input", case.name),
                Err(e) => e,
            },
        };
        assert!(
            (case.check)(&view_err),
            "case '{}': view returned unexpected error {view_err:?}",
            case.name
        );
    }
}

#[test]
fn random_garbage_never_panics() {
    // Deterministic pseudo-random buffers of assorted sizes: the loader
    // must reject them all without panicking.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for len in [0usize, 1, 7, 8, 95, 96, 104, 4096] {
        let mut bytes = vec![0u8; len];
        for b in bytes.iter_mut() {
            *b = next() as u8;
        }
        assert!(ActIndex::load_snapshot(&mut bytes.as_slice()).is_err());
        if let Ok(buf) = SnapshotBuf::from_bytes(&bytes) {
            assert!(buf.view().is_err());
        }
    }
}

#[test]
fn version_zero_and_future_versions_are_rejected() {
    let pristine = valid_snapshot();
    for version in [0u32, 2, 3, u32::MAX] {
        let mut bytes = pristine.clone();
        bytes[8..12].copy_from_slice(&version.to_le_bytes());
        match ActIndex::load_snapshot(&mut bytes.as_slice()) {
            Err(SnapshotError::UnsupportedVersion { found }) => assert_eq!(found, version),
            other => panic!("version {version}: expected UnsupportedVersion, got {other:?}"),
        }
    }
}

#[test]
fn misaligned_view_buffer_is_rejected() {
    let bytes = valid_snapshot();
    let mut padded = vec![0u8; bytes.len() + 16];
    let base = padded.as_ptr() as usize;
    let shift = (8 - base % 8) % 8 + 1; // guaranteed ≡ 1 (mod 8)
    padded[shift..shift + bytes.len()].copy_from_slice(&bytes);
    assert!(matches!(
        ActIndexView::from_bytes(&padded[shift..shift + bytes.len()]),
        Err(SnapshotError::Misaligned)
    ));
}
