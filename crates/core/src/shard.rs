//! Horizontal index sharding: split one snapshot into N per-shard
//! snapshots a worker fleet can serve behind a scatter-gather router.
//!
//! ## The cut
//!
//! The shard key of a cell is its **prefix at the split level** `L`:
//! the top `3 + 2·L` bits of the cell id (3 cube-face bits plus two
//! position bits per level) — the same face-major ordering
//! [`crate::supercover::build_super_covering_sharded`] cuts the build
//! along, extended below the face so small deployments still spread
//! load. A cell at level ≥ `L` has exactly one such prefix (its
//! level-`L` ancestor's), so `shard = prefix mod N` assigns it — and
//! every probe leaf that can reach it — to exactly one shard. A cell
//! *coarser* than `L` spans a contiguous prefix range; it is
//! **replicated** into every shard that range touches, so whichever
//! shard a probing leaf routes to holds a copy.
//!
//! That invariant is the whole correctness story: for any probe leaf,
//! the shard chosen by [`shard_of_cell`] contains every indexed cell
//! whose territory includes that leaf. Routed probe answers are
//! therefore identical to single-process answers (the router's oracle
//! tests assert this literally), and the only cross-shard artifact is
//! coarse-cell replication — a few duplicate referencing cells, never a
//! missing one. The router still dedups per-point refs defensively.
//!
//! ## Shard snapshots
//!
//! Each shard is a full, self-validating `ACTSNP01` snapshot built by
//! re-inserting the shard's cell set into a fresh trie — so a worker
//! mmaps and serves it with zero new code paths, per-shard hot-swap and
//! delta lineages included.

use crate::index::ActIndex;
use crate::refs::RefSet;
use crate::snapshot::SnapshotError;
use crate::supercover::SuperCovering;
use s2cell::CellId;
use std::path::{Path, PathBuf};

/// Default split level for the shard cut: prefixes carry the face plus
/// eight position bits (3072 distinct prefixes), fine enough that a
/// modulo assignment spreads real-world face-local datasets across a
/// small fleet, coarse enough that almost no indexed cell is coarser
/// than it (replication stays rare).
pub const DEFAULT_SPLIT_LEVEL: u8 = 4;

/// Number of position bits below the face in a cell id.
const POS_BITS: u32 = 61;

/// The shard-key prefix of `cell` at `split_level`: face bits plus
/// `2·split_level` position bits.
#[inline]
fn prefix_at(cell: CellId, split_level: u8) -> u64 {
    cell.0 >> (POS_BITS - 2 * u32::from(split_level))
}

/// The shard that owns `cell`'s territory, for cells at or below (finer
/// than) the split level — in particular every probe leaf. The sharder
/// and the router must agree on this function; it is the single routing
/// authority.
///
/// # Panics
/// Panics if `num_shards` is zero.
#[inline]
pub fn shard_of_cell(cell: CellId, split_level: u8, num_shards: usize) -> usize {
    assert!(num_shards > 0, "a fleet has at least one shard");
    (prefix_at(cell, split_level) % num_shards as u64) as usize
}

/// Every shard whose prefix range `cell`'s territory overlaps. For a
/// cell at level ≥ `split_level` this is the single owning shard; a
/// coarser cell spans a contiguous prefix range and lands in each shard
/// that range touches (replication). Returned ascending, deduplicated.
///
/// # Panics
/// Panics if `num_shards` is zero.
pub fn shards_for_cell(cell: CellId, split_level: u8, num_shards: usize) -> Vec<usize> {
    assert!(num_shards > 0, "a fleet has at least one shard");
    if cell.level() >= split_level {
        return vec![shard_of_cell(cell, split_level, num_shards)];
    }
    let lo = prefix_at(cell.range_min(), split_level);
    let hi = prefix_at(cell.range_max(), split_level);
    if hi - lo + 1 >= num_shards as u64 {
        return (0..num_shards).collect();
    }
    let mut shards: Vec<usize> = (lo..=hi)
        .map(|p| (p % num_shards as u64) as usize)
        .collect();
    shards.sort_unstable();
    shards.dedup();
    shards
}

/// Splits `index` into `num_shards` self-contained per-shard indexes
/// along the [`shard_of_cell`] cut. Every live `(cell, refs)` pair goes
/// to its owning shard (or, coarser than the split level, to every
/// overlapped shard); each shard re-inserts its set into a fresh trie,
/// so the result is a normal [`ActIndex`] with accurate size stats —
/// snapshot-saveable, mutable, serveable. Shards with no cells are
/// valid empty indexes (every probe misses).
///
/// # Panics
/// Panics if `num_shards` is zero.
pub fn split_index(index: &ActIndex, split_level: u8, num_shards: usize) -> Vec<ActIndex> {
    assert!(num_shards > 0, "a fleet has at least one shard");
    // `extract_all` needs `&mut` (it shares the zeroing walk) but does
    // not mutate with `zero = false`; clone the arena rather than
    // demand a `&mut` index from an offline tool.
    let mut act = index.act().clone();
    let cells = act.extract_all(index.table().words());
    let mut per_shard: Vec<Vec<(CellId, RefSet)>> = (0..num_shards).map(|_| Vec::new()).collect();
    for (cell, refs) in cells {
        for s in shards_for_cell(cell, split_level, num_shards) {
            per_shard[s].push((cell, refs.clone()));
        }
    }
    let params = crate::covering::CoveringParams::new(index.stats().precision_m);
    per_shard
        .into_iter()
        .map(|cells| {
            ActIndex::from_supercover(
                SuperCovering {
                    cells,
                    pushdown_splits: 0,
                },
                params,
            )
        })
        .collect()
}

/// The conventional file name of shard `k` of `n`: `shard-<k>-of-<n>.snap`.
/// Workers watch these paths individually, so per-shard hot-swap (full
/// snapshots and `.d<seq>` delta siblings alike) needs no router
/// involvement.
pub fn shard_file_name(k: usize, n: usize) -> String {
    format!("shard-{k}-of-{n}.snap")
}

/// The conventional shard snapshot paths under `dir`.
pub fn shard_paths(dir: &Path, num_shards: usize) -> Vec<PathBuf> {
    (0..num_shards)
        .map(|k| dir.join(shard_file_name(k, num_shards)))
        .collect()
}

/// [`split_index`] + save: writes `shard-<k>-of-<n>.snap` under `dir`
/// (created if missing) via sibling-write + atomic rename, returning
/// the shard paths in shard order.
///
/// # Errors
/// Propagates I/O and serialization errors; a failed shard leaves no
/// partial file at its final path.
pub fn write_shard_files(
    index: &ActIndex,
    dir: &Path,
    split_level: u8,
    num_shards: usize,
) -> Result<Vec<PathBuf>, SnapshotError> {
    std::fs::create_dir_all(dir)?;
    let shards = split_index(index, split_level, num_shards);
    let paths = shard_paths(dir, num_shards);
    for (shard, path) in shards.iter().zip(&paths) {
        let mut bytes = Vec::new();
        shard.save_snapshot(&mut bytes)?;
        let tmp = path.with_extension("snap.tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::coord_to_cell;
    use geom::{Coord, Polygon, Ring};

    fn square(cx: f64, cy: f64, half: f64) -> Polygon {
        Polygon::new(
            Ring::new(vec![
                Coord::new(cx - half, cy - half),
                Coord::new(cx + half, cy - half),
                Coord::new(cx + half, cy + half),
                Coord::new(cx - half, cy + half),
            ]),
            vec![],
        )
    }

    /// A spread of polygons across two faces plus a pole-area shape, so
    /// splits exercise face boundaries and varied prefixes.
    fn test_polys() -> Vec<Polygon> {
        let mut polys = Vec::new();
        for k in 0..12 {
            polys.push(square(-74.0 + 0.05 * k as f64, 40.7, 0.02));
        }
        for k in 0..6 {
            polys.push(square(0.5 * k as f64, 0.2, 0.1));
        }
        polys.push(square(10.0, 88.5, 0.5)); // near-pole, another face
        polys
    }

    #[test]
    fn leaf_routes_into_owning_cells_shard_set() {
        let polys = test_polys();
        let idx = ActIndex::build(&polys, 15.0).unwrap();
        let mut act = idx.act().clone();
        for (cell, _) in act.extract_all(idx.table().words()) {
            for n in [1usize, 2, 4, 7] {
                let shards = shards_for_cell(cell, DEFAULT_SPLIT_LEVEL, n);
                assert!(!shards.is_empty());
                // Any leaf under the cell must route into the set.
                for leaf in [cell.range_min(), cell.range_max()] {
                    let s = shard_of_cell(leaf, DEFAULT_SPLIT_LEVEL, n);
                    assert!(
                        shards.contains(&s),
                        "leaf of {cell:?} routed to shard {s}, owners {shards:?} (n={n})"
                    );
                }
            }
        }
    }

    #[test]
    fn coarse_cells_replicate_contiguously() {
        let face = CellId::from_face(1);
        // A level-2 cell is coarser than split level 4: 16 prefixes.
        let coarse = face.child(0).child(0);
        let shards = shards_for_cell(coarse, 4, 64);
        assert_eq!(shards.len(), 16);
        // With few shards, the span wraps to all of them.
        assert_eq!(shards_for_cell(coarse, 4, 4), vec![0, 1, 2, 3]);
        // At the split level and below: exactly one shard.
        let at = coarse.child(1).child(2);
        assert_eq!(at.level(), 4);
        assert_eq!(shards_for_cell(at, 4, 64).len(), 1);
    }

    #[test]
    fn split_union_answers_like_the_whole() {
        let polys = test_polys();
        let idx = ActIndex::build(&polys, 15.0).unwrap();
        for n in [1usize, 2, 4] {
            let shards = split_index(&idx, DEFAULT_SPLIT_LEVEL, n);
            assert_eq!(shards.len(), n);
            // Probe a grid around the data: the owning shard must answer
            // exactly like the unsharded index; the probe must never
            // *miss* refs the whole index reports.
            for gx in 0..40 {
                for gy in 0..8 {
                    let c = Coord::new(-74.2 + 0.06 * gx as f64, 40.55 + 0.05 * gy as f64);
                    let want = idx.lookup_refs(c);
                    let s = shard_of_cell(coord_to_cell(c), DEFAULT_SPLIT_LEVEL, n);
                    let got = shards[s].lookup_refs(c);
                    assert_eq!(got, want, "point {c:?} via shard {s} of {n}");
                }
            }
        }
    }

    #[test]
    fn shard_snapshots_round_trip() {
        let polys = test_polys();
        let idx = ActIndex::build(&polys, 15.0).unwrap();
        let dir = std::env::temp_dir().join(format!("act-shard-test-{}", std::process::id()));
        let paths = write_shard_files(&idx, &dir, DEFAULT_SPLIT_LEVEL, 3).unwrap();
        assert_eq!(paths.len(), 3);
        for (k, p) in paths.iter().enumerate() {
            assert_eq!(
                p.file_name().unwrap().to_str().unwrap(),
                shard_file_name(k, 3)
            );
            // Validates magic, checksum, and stats-vs-section lengths.
            let snap = crate::MappedSnapshot::open(p).unwrap();
            let c = Coord::new(-74.0, 40.7);
            let want = idx.lookup_refs(c);
            if shard_of_cell(coord_to_cell(c), DEFAULT_SPLIT_LEVEL, 3) == k {
                assert_eq!(snap.lookup_refs(c), want);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
