//! The lookup table: deduplicated polygon-reference sets for cells that
//! reference three or more polygons.
//!
//! The paper (§II, "Lookup table"): *"The lookup table is encoded as a
//! single 32 bit unsigned integer array. The offsets stored in the tree are
//! simply offsets into that array. Each encoded entry contains the number of
//! true hits followed by the true hits, the number of candidate hits, and
//! the candidate hits."* Cells often share reference sets, so only unique
//! sets are materialized.

use crate::refs::RefSet;
use std::collections::HashMap;

/// A deduplicating, flat `u32`-array lookup table.
#[derive(Debug, Default)]
pub struct LookupTableBuilder {
    data: Vec<u32>,
    dedup: HashMap<Vec<u32>, u32>,
}

impl LookupTableBuilder {
    /// Creates an empty builder.
    pub fn new() -> LookupTableBuilder {
        LookupTableBuilder::default()
    }

    /// Reopens a built table for appending (the live-mutation path):
    /// existing entries keep their offsets — trie entries pointing at them
    /// stay valid — and the dedup map is rebuilt by walking the encoded
    /// entries so re-interned sets resolve to the words already present.
    pub fn from_table(table: LookupTable) -> LookupTableBuilder {
        let data = table.data;
        let mut dedup = HashMap::new();
        let mut off = 0usize;
        while off < data.len() {
            let n_true = data[off] as usize;
            let n_cand = data[off + 1 + n_true] as usize;
            let len = 2 + n_true + n_cand;
            dedup
                .entry(data[off..off + len].to_vec())
                .or_insert(off as u32);
            off += len;
        }
        LookupTableBuilder { data, dedup }
    }

    /// The raw word array so far (offsets returned by
    /// [`LookupTableBuilder::intern`] index into it).
    #[inline]
    pub(crate) fn words(&self) -> &[u32] {
        &self.data
    }

    /// Interns a reference set, returning its offset in the array.
    /// Identical sets return identical offsets.
    pub fn intern(&mut self, refs: &RefSet) -> u32 {
        let encoded = Self::encode(refs);
        if let Some(&off) = self.dedup.get(&encoded) {
            return off;
        }
        let off = self.data.len() as u32;
        assert!(
            off < (1 << 31),
            "lookup table exceeds 2^31 entries; cannot be addressed by 31-bit offsets"
        );
        self.data.extend_from_slice(&encoded);
        self.dedup.insert(encoded, off);
        off
    }

    /// `[n_true, true ids ..., n_cand, cand ids ...]`
    fn encode(refs: &RefSet) -> Vec<u32> {
        let trues: Vec<u32> = refs.true_hits().collect();
        let cands: Vec<u32> = refs.candidates().collect();
        let mut out = Vec::with_capacity(trues.len() + cands.len() + 2);
        out.push(trues.len() as u32);
        out.extend_from_slice(&trues);
        out.push(cands.len() as u32);
        out.extend_from_slice(&cands);
        out
    }

    /// Finalizes into the immutable query-time table.
    pub fn build(self) -> LookupTable {
        LookupTable { data: self.data }
    }
}

/// The immutable query-time lookup table.
#[derive(Debug, Default, Clone)]
pub struct LookupTable {
    data: Vec<u32>,
}

/// Decodes the entry at `offset` of a raw word array into
/// (true hits, candidate hits). Shared by the owned [`LookupTable`] and the
/// borrowed snapshot views in [`crate::snapshot`].
#[inline]
pub(crate) fn decode_at(data: &[u32], offset: u32) -> (&[u32], &[u32]) {
    let off = offset as usize;
    let n_true = data[off] as usize;
    let trues = &data[off + 1..off + 1 + n_true];
    let n_cand = data[off + 1 + n_true] as usize;
    let cands = &data[off + 2 + n_true..off + 2 + n_true + n_cand];
    (trues, cands)
}

impl LookupTable {
    /// Reassembles a table from its raw word array (snapshot load path).
    pub(crate) fn from_words(data: Vec<u32>) -> LookupTable {
        LookupTable { data }
    }

    /// The raw word array (snapshot save path and shared decoding).
    #[inline]
    pub(crate) fn words(&self) -> &[u32] {
        &self.data
    }

    /// Decodes the entry at `offset` into (true hits, candidate hits).
    ///
    /// Returned slices alias the table — zero-copy on the hot path.
    #[inline]
    pub fn decode(&self, offset: u32) -> (&[u32], &[u32]) {
        decode_at(&self.data, offset)
    }

    /// Memory used by the array, in bytes.
    #[inline]
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u32>()
    }

    /// Number of `u32` words.
    #[inline]
    pub fn len_words(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refs::PolygonRef;

    fn set(ids: &[(u32, bool)]) -> RefSet {
        RefSet::Many(
            ids.iter()
                .map(|&(id, interior)| PolygonRef { id, interior })
                .collect(),
        )
    }

    #[test]
    fn encode_layout_matches_paper() {
        let mut b = LookupTableBuilder::new();
        let off = b.intern(&set(&[(5, true), (3, false), (1, false)]));
        let t = b.build();
        // [n_true=1, 5, n_cand=2, 3, 1]
        assert_eq!(off, 0);
        let (trues, cands) = t.decode(off);
        assert_eq!(trues, &[5]);
        assert_eq!(cands, &[3, 1]);
        assert_eq!(t.len_words(), 5);
    }

    #[test]
    fn dedup_identical_sets() {
        let mut b = LookupTableBuilder::new();
        let a = b.intern(&set(&[(1, true), (2, false), (3, false)]));
        let c = b.intern(&set(&[(4, true), (5, true), (6, false)]));
        let d = b.intern(&set(&[(1, true), (2, false), (3, false)]));
        assert_eq!(a, d, "identical sets must share an entry");
        assert_ne!(a, c);
        let t = b.build();
        assert_eq!(t.len_words(), 5 + 5);
    }

    #[test]
    fn empty_candidate_or_true_sections() {
        let mut b = LookupTableBuilder::new();
        let all_true = b.intern(&set(&[(1, true), (2, true), (3, true)]));
        let all_cand = b.intern(&set(&[(7, false), (8, false), (9, false)]));
        let t = b.build();
        let (tr, ca) = t.decode(all_true);
        assert_eq!((tr.len(), ca.len()), (3, 0));
        let (tr, ca) = t.decode(all_cand);
        assert_eq!((tr.len(), ca.len()), (0, 3));
    }

    #[test]
    fn intern_decode_roundtrip() {
        // Every RefSet variant survives intern → decode with its true-hit /
        // candidate partition intact, and offsets stay independently
        // decodable regardless of interleaving.
        let sets = [
            set(&[(0, true)]),
            set(&[(1, false), (2, true)]),
            set(&[(3, true), (4, false), (5, true), (6, false)]),
            set(&[(crate::refs::MAX_POLYGON_ID, true), (7, false), (8, false)]),
        ];
        let mut b = LookupTableBuilder::new();
        let offsets: Vec<u32> = sets.iter().map(|s| b.intern(s)).collect();
        let t = b.build();
        for (s, &off) in sets.iter().zip(&offsets) {
            let (trues, cands) = t.decode(off);
            assert_eq!(trues, s.true_hits().collect::<Vec<_>>().as_slice());
            assert_eq!(cands, s.candidates().collect::<Vec<_>>().as_slice());
        }
    }

    #[test]
    fn memory_accounting() {
        let mut b = LookupTableBuilder::new();
        b.intern(&set(&[(1, true), (2, false), (3, false)]));
        let t = b.build();
        assert_eq!(t.memory_bytes(), 5 * 4);
    }
}
