//! Versioned, checksummed on-disk snapshots of a built [`ActIndex`].
//!
//! The paper treats the ACT as a main-memory structure rebuilt from the
//! polygon set on every process start. For production serving, restart
//! cost and fleet-wide index distribution matter as much as build speed:
//! the build is byte-deterministic (serial ≡ parallel, see
//! [`ActIndex::build_parallel`]), so the node arena is a stable artifact
//! worth persisting once and loading many times. Loading a snapshot is
//! I/O-bound — the arena and lookup table are stored exactly as probed,
//! so there is nothing to parse, only sections to validate and view.
//!
//! ## Format (version 1)
//!
//! A snapshot is a sequence of little-endian `u64` words. All offsets are
//! in bytes from the start of the file; every section starts 8-byte
//! aligned, immediately after the (zero-padded) previous one.
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------
//!      0     8  magic            b"ACTSNP01"
//!      8     4  format version   u32 (currently 1)
//!     12     4  flags            u32 (reserved, must be 0)
//!     16     8  total_len        u64, file length in bytes
//!     24     8  checksum         u64, FNV-1a-64 over every word of the
//!                                file except this one
//!     32    64  section table    4 × { offset u64, length u64 }:
//!                                  [0] TRIE  — node arena (u64 slots;
//!                                      length a multiple of 2048 = one
//!                                      256-slot node)
//!                                  [1] ROOTS — 6 × u32 per-face root
//!                                      node indices (24 bytes)
//!                                  [2] TABLE — lookup-table words
//!                                      (u32s; length a multiple of 4)
//!                                  [3] META  — 16 × u64 build metadata
//!     96     …  the sections, in table order
//! ```
//!
//! META words: `[0]` inserted cells, `[1]` denormalized slots, then the
//! [`BuildStats`] fields in declaration order (`f64`s as IEEE-754 bits:
//! precision, terminal level, covering cells, indexed cells, denormalized
//! slots, push-down splits, ACT bytes, lookup-table bytes, three build
//! wall-times), then three reserved words that must be zero.
//!
//! ## Validation
//!
//! Loaders validate *structure before use*: magic, version, flags, total
//! length, section-table alignment/contiguity/bounds, per-section shape,
//! the whole-file checksum, root-index bounds, cross-section consistency
//! (`act_bytes`/`lookup_table_bytes` vs actual section sizes), and an
//! entry-level pass over the arena (every child pointer within the
//! arena, every lookup-table offset decodable within the table — the
//! checksum alone would not stop a *constructed* file from steering
//! probes out of bounds). Every failure is a typed [`SnapshotError`];
//! malformed input never panics or indexes out of bounds, at load or at
//! probe time.
//!
//! ## Load modes
//!
//! * **Owned** — [`ActIndex::load_snapshot`] copies the sections into a
//!   regular [`ActIndex`].
//! * **Zero-copy** — [`ActIndexView::from_bytes`] borrows an 8-byte
//!   aligned caller buffer (an mmap-style slice, or a [`SnapshotBuf`])
//!   and probes directly through the same [`crate::trie`] walk the owned
//!   index uses; only the 24-byte roots array and the fixed-size metadata
//!   are copied out. Zero-copy views require a little-endian target (all
//!   tier-1 targets are); big-endian hosts get a typed
//!   [`SnapshotError::UnsupportedEndian`].
//! * **Memory-mapped** — [`MappedSnapshot::open`] `mmap`s the file (via
//!   the `mmapio` shim) and probes straight off the page cache; it
//!   validates once at open and hands out the same [`ActIndexView`]s
//!   cheaply thereafter. Files or buffers that cannot be mapped or are
//!   misaligned fall back to an owned aligned heap copy instead of
//!   erroring — mapping is an optimization, never a correctness risk.
//!
//! ## Bumping the format version
//!
//! Any change to the layout above — new sections, reordered fields,
//! different meta words — must (1) increment [`FORMAT_VERSION`], (2)
//! teach the loader to either read or reject the old version explicitly,
//! and (3) re-bless the golden fixture
//! (`ACT_BLESS_SNAPSHOT=1 cargo test -p act-tests --test snapshot_golden`)
//! in the same commit, updating this doc. The golden regression test
//! pins today's bytes; a version bump is the only sanctioned way to
//! change them.

use crate::index::{ActIndex, BuildStats};
use crate::lookup::LookupTable;
use crate::trie::{resolve_probe_words, Act, Probe, RawTrie, FANOUT};
use geom::Coord;
use s2cell::CellId;
use std::fmt;
use std::io::{Read, Write};

/// The 8-byte magic prefix of every snapshot.
pub const MAGIC: [u8; 8] = *b"ACTSNP01";
/// The current snapshot format version (see the module docs before
/// changing).
pub const FORMAT_VERSION: u32 = 1;

/// Header: magic + version/flags + total_len + checksum + section table.
const HEADER_LEN: usize = 96;
const HEADER_WORDS: usize = HEADER_LEN / 8;
/// Bytes per trie node (256 tagged 8-byte slots).
const NODE_BYTES: usize = FANOUT * 8;
/// Exact byte length of the ROOTS section (6 × u32).
const ROOTS_LEN: usize = 24;
/// META section: 16 u64 words.
const META_WORDS: usize = 16;
const META_LEN: usize = META_WORDS * 8;

const SECTION_NAMES: [&str; 4] = ["trie", "roots", "table", "meta"];

/// A typed snapshot failure. Loaders return these for every class of
/// malformed input — truncation, bad magic, version/flag mismatches,
/// corrupted section tables, checksum failures, and cross-field
/// inconsistencies — instead of panicking.
#[derive(Debug)]
pub enum SnapshotError {
    /// An I/O error from the underlying reader or writer.
    Io(std::io::Error),
    /// The buffer is shorter than a header or not a whole number of
    /// words.
    Truncated {
        /// Bytes actually available.
        have: usize,
    },
    /// The first 8 bytes are not [`MAGIC`].
    BadMagic,
    /// The header names a format version this build cannot read.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// A reserved header field violates the format (the string names it).
    BadHeader(&'static str),
    /// A section-table entry is structurally invalid.
    BadSection {
        /// Which section ("trie", "roots", "table", "meta").
        section: &'static str,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// The header's total length disagrees with the bytes provided.
    LengthMismatch {
        /// Length claimed by the header.
        expected: u64,
        /// Length of the buffer.
        actual: u64,
    },
    /// The whole-file checksum does not match (payload corruption).
    ChecksumMismatch {
        /// Checksum stored in the header.
        expected: u64,
        /// Checksum computed over the bytes.
        found: u64,
    },
    /// Sections parsed but their contents disagree (the string says how).
    Inconsistent(&'static str),
    /// A zero-copy view was requested over a buffer that is not 8-byte
    /// aligned.
    Misaligned,
    /// Zero-copy views (and the loaders built on them) require a
    /// little-endian target.
    UnsupportedEndian,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::Truncated { have } => {
                write!(f, "snapshot truncated: {have} bytes is not a padded header")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot: bad magic"),
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot version {found} (this build reads {FORMAT_VERSION})"
            ),
            SnapshotError::BadHeader(what) => write!(f, "bad snapshot header: {what}"),
            SnapshotError::BadSection { section, reason } => {
                write!(f, "bad snapshot section '{section}': {reason}")
            }
            SnapshotError::LengthMismatch { expected, actual } => write!(
                f,
                "snapshot length mismatch: header says {expected} bytes, got {actual}"
            ),
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: header {expected:#018x}, computed {found:#018x}"
            ),
            SnapshotError::Inconsistent(what) => {
                write!(f, "inconsistent snapshot contents: {what}")
            }
            SnapshotError::Misaligned => {
                write!(
                    f,
                    "zero-copy snapshot view requires an 8-byte aligned buffer"
                )
            }
            SnapshotError::UnsupportedEndian => {
                write!(f, "snapshot views require a little-endian target")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Checksum + word packing
// ---------------------------------------------------------------------

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a folded one 64-bit word at a time. A word-granular variant (the
/// format pads everything to whole words) keeps checksum validation far
/// from the critical path of a census-scale load.
pub(crate) fn fnv1a_words(mut h: u64, words: &[u64]) -> u64 {
    for &w in words {
        h ^= w;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[inline]
fn align8(n: usize) -> usize {
    (n + 7) & !7
}

/// [`fnv1a_words`] over the u64 words that a little-endian u32 array
/// occupies on disk (odd tail zero-padded) — hashes the sub-word
/// ROOTS/TABLE sections without materializing a packed copy.
fn fnv1a_u32_words(mut h: u64, values: &[u32]) -> u64 {
    for pair in values.chunks(2) {
        h ^= pair[0] as u64 | ((pair.get(1).copied().unwrap_or(0) as u64) << 32);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Streams words to `w` as little-endian bytes through a small stack
/// buffer (portable across endianness; compiles to a copy on LE).
fn write_words(w: &mut impl Write, words: &[u64]) -> std::io::Result<()> {
    const CHUNK: usize = 1024;
    let mut buf = [0u8; CHUNK * 8];
    for chunk in words.chunks(CHUNK) {
        for (i, &x) in chunk.iter().enumerate() {
            buf[i * 8..i * 8 + 8].copy_from_slice(&x.to_le_bytes());
        }
        w.write_all(&buf[..chunk.len() * 8])?;
    }
    Ok(())
}

/// Streams u32 words to `w` as little-endian bytes, zero-padding an odd
/// count to the 8-byte boundary the format requires.
fn write_u32_words(w: &mut impl Write, values: &[u32]) -> std::io::Result<()> {
    const CHUNK: usize = 2048;
    let mut buf = [0u8; CHUNK * 4];
    for chunk in values.chunks(CHUNK) {
        for (i, &x) in chunk.iter().enumerate() {
            buf[i * 4..i * 4 + 4].copy_from_slice(&x.to_le_bytes());
        }
        w.write_all(&buf[..chunk.len() * 4])?;
    }
    if !values.len().is_multiple_of(2) {
        w.write_all(&[0u8; 4])?;
    }
    Ok(())
}

/// Reinterprets an 8-byte aligned byte slice as u64 words.
/// Callers must have checked alignment, length divisibility, and that the
/// target is little-endian (so word values equal the encoded LE values).
/// The `unsafe` lives behind [`mmapio::cast`]'s checked API, keeping this
/// crate `forbid(unsafe_code)`.
fn bytes_as_words(bytes: &[u8]) -> &[u64] {
    mmapio::cast::bytes_as_u64s(bytes)
}

/// Reinterprets a 4-byte aligned byte slice as u32 words (same contract
/// as [`bytes_as_words`]; section offsets are 8-aligned, hence 4-aligned).
fn bytes_as_u32s(bytes: &[u8]) -> &[u32] {
    mmapio::cast::bytes_as_u32s(bytes)
}

/// Views a u64 slice as raw bytes (always valid).
fn words_as_bytes(words: &[u64]) -> &[u8] {
    mmapio::cast::u64s_as_bytes(words)
}

/// Mutable byte view of a u64 buffer — lets [`SnapshotBuf::read_from`]
/// stream file bytes straight into aligned storage.
fn words_as_bytes_mut(words: &mut [u64]) -> &mut [u8] {
    mmapio::cast::u64s_as_bytes_mut(words)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Serializes `index` into `w` in the version-1 format, returning the
/// number of bytes written. See [`ActIndex::save_snapshot`].
pub fn save(index: &ActIndex, w: &mut impl Write) -> Result<u64, SnapshotError> {
    let act = index.act();
    let slots = act.slots();
    let table = index.table().words();
    let stats = index.stats();

    let trie_off = HEADER_LEN;
    let trie_len = slots.len() * 8;
    let roots_off = trie_off + trie_len;
    let table_off = roots_off + align8(ROOTS_LEN);
    let table_len = table.len() * 4;
    let meta_off = table_off + align8(table_len);
    let total_len = meta_off + META_LEN;

    let meta_words: [u64; META_WORDS] = [
        act.inserted_cells(),
        act.denormalized_slots(),
        stats.precision_m.to_bits(),
        stats.terminal_level as u64,
        stats.covering_cells,
        stats.indexed_cells,
        stats.denormalized_slots,
        stats.pushdown_splits,
        stats.act_bytes as u64,
        stats.lookup_table_bytes as u64,
        stats.build_coverings_secs.to_bits(),
        stats.build_supercover_secs.to_bits(),
        stats.build_insert_secs.to_bits(),
        0,
        0,
        0,
    ];

    let mut header = [0u64; HEADER_WORDS];
    header[0] = u64::from_le_bytes(MAGIC);
    header[1] = FORMAT_VERSION as u64; // flags in the high half stay 0
    header[2] = total_len as u64;
    for (i, (off, len)) in [
        (trie_off, trie_len),
        (roots_off, ROOTS_LEN),
        (table_off, table_len),
        (meta_off, META_LEN),
    ]
    .into_iter()
    .enumerate()
    {
        header[4 + 2 * i] = off as u64;
        header[5 + 2 * i] = len as u64;
    }
    let mut h = fnv1a_words(FNV_OFFSET, &header[0..3]);
    h = fnv1a_words(h, &header[4..HEADER_WORDS]);
    h = fnv1a_words(h, slots);
    h = fnv1a_u32_words(h, act.roots());
    h = fnv1a_u32_words(h, table);
    h = fnv1a_words(h, &meta_words);
    header[3] = h;

    write_words(w, &header)?;
    write_words(w, slots)?;
    write_u32_words(w, act.roots())?;
    write_u32_words(w, table)?;
    write_words(w, &meta_words)?;
    Ok(total_len as u64)
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

/// Validated byte layout: `(offset, exact length)` per section.
#[derive(Debug, Clone, Copy)]
struct Layout {
    trie: (usize, usize),
    roots: (usize, usize),
    table: (usize, usize),
    meta: (usize, usize),
}

/// Full structural + checksum validation of a word buffer. Everything a
/// loader trusts downstream is established here.
fn validate(words: &[u64]) -> Result<Layout, SnapshotError> {
    let total = words.len() * 8;
    debug_assert!(total >= HEADER_LEN);
    if words[0] != u64::from_le_bytes(MAGIC) {
        return Err(SnapshotError::BadMagic);
    }
    let version = words[1] as u32;
    let flags = (words[1] >> 32) as u32;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    if flags != 0 {
        return Err(SnapshotError::BadHeader("nonzero reserved flags"));
    }
    if words[2] != total as u64 {
        return Err(SnapshotError::LengthMismatch {
            expected: words[2],
            actual: total as u64,
        });
    }

    // Section table: canonical layout is enforced exactly — 8-aligned,
    // contiguous (modulo word padding), in-bounds, nothing trailing. A
    // corrupted offset or length cannot place a section anywhere the
    // writer would not have.
    let bad = |i: usize, reason: &'static str| SnapshotError::BadSection {
        section: SECTION_NAMES[i],
        reason,
    };
    let mut sec = [(0usize, 0usize); 4];
    let mut cursor = HEADER_LEN;
    for i in 0..4 {
        let off = words[4 + 2 * i];
        let len = words[5 + 2 * i];
        let (off, len) = match (usize::try_from(off), usize::try_from(len)) {
            (Ok(o), Ok(l)) => (o, l),
            _ => return Err(bad(i, "offset or length overflows the address space")),
        };
        if off % 8 != 0 {
            return Err(bad(i, "offset not 8-byte aligned"));
        }
        if off != cursor {
            return Err(bad(i, "offset breaks the canonical contiguous layout"));
        }
        let end = off
            .checked_add(len)
            .ok_or_else(|| bad(i, "offset + length overflows"))?;
        if end > total {
            return Err(bad(i, "section extends past the end of the file"));
        }
        sec[i] = (off, len);
        cursor = align8(end);
    }
    if cursor != total {
        return Err(SnapshotError::BadSection {
            section: "meta",
            reason: "trailing bytes after the final section",
        });
    }
    let [trie, roots, table, meta] = sec;
    if trie.1 == 0 || trie.1 % NODE_BYTES != 0 {
        return Err(bad(0, "length not a positive multiple of the node size"));
    }
    if roots.1 != ROOTS_LEN {
        return Err(bad(1, "length is not exactly 6 u32 roots"));
    }
    if table.1 % 4 != 0 {
        return Err(bad(2, "length not a multiple of 4"));
    }
    if meta.1 != META_LEN {
        return Err(bad(3, "length is not exactly 16 u64 words"));
    }

    // Whole-file checksum (everything but the checksum word itself).
    let mut h = fnv1a_words(FNV_OFFSET, &words[0..3]);
    h = fnv1a_words(h, &words[4..]);
    if h != words[3] {
        return Err(SnapshotError::ChecksumMismatch {
            expected: words[3],
            found: h,
        });
    }
    Ok(Layout {
        trie,
        roots,
        table,
        meta,
    })
}

// ---------------------------------------------------------------------
// Zero-copy view
// ---------------------------------------------------------------------

/// A query-ready, zero-copy view of a snapshot: the node arena and lookup
/// table are borrowed section slices of the caller's buffer; only the
/// 24-byte roots array and the fixed-size build metadata are copied out.
/// Probes go through exactly the same [`crate::trie`] walks as the owned
/// [`ActIndex`].
#[derive(Debug, Clone)]
pub struct ActIndexView<'a> {
    slots: &'a [u64],
    roots: [u32; 6],
    table: &'a [u32],
    stats: BuildStats,
    inserted_cells: u64,
    denormalized_slots: u64,
}

impl<'a> ActIndexView<'a> {
    /// Opens a view over a full snapshot held in `bytes` (an mmap-style
    /// slice or [`SnapshotBuf::bytes`]), validating structure and
    /// checksum before any field is used. The buffer must be 8-byte
    /// aligned and outlive the view.
    ///
    /// # Errors
    /// Any [`SnapshotError`] variant; never panics on malformed input.
    pub fn from_bytes(bytes: &'a [u8]) -> Result<ActIndexView<'a>, SnapshotError> {
        Self::parse(bytes).map(|(_, view)| view)
    }

    /// [`ActIndexView::from_bytes`] plus the validated [`Layout`] — the
    /// shared parse behind the borrowed view and [`MappedSnapshot`]
    /// (which stores the layout so later views skip re-validation).
    fn parse(bytes: &'a [u8]) -> Result<(Layout, ActIndexView<'a>), SnapshotError> {
        if cfg!(target_endian = "big") {
            return Err(SnapshotError::UnsupportedEndian);
        }
        if !(bytes.as_ptr() as usize).is_multiple_of(8) {
            return Err(SnapshotError::Misaligned);
        }
        if bytes.len() < HEADER_LEN || !bytes.len().is_multiple_of(8) {
            return Err(SnapshotError::Truncated { have: bytes.len() });
        }
        let words = bytes_as_words(bytes);
        let lay = validate(words)?;

        let slots = &words[lay.trie.0 / 8..(lay.trie.0 + lay.trie.1) / 8];
        let num_nodes = lay.trie.1 / NODE_BYTES;
        let mut roots = [0u32; 6];
        for (r, c) in roots
            .iter_mut()
            .zip(bytes[lay.roots.0..lay.roots.0 + ROOTS_LEN].chunks_exact(4))
        {
            *r = u32::from_le_bytes(c.try_into().expect("4-byte chunk"));
            if *r as usize >= num_nodes {
                return Err(SnapshotError::Inconsistent(
                    "root node index out of arena range",
                ));
            }
        }
        let table = bytes_as_u32s(&bytes[lay.table.0..lay.table.0 + lay.table.1]);

        // Entry-level validation: after this, no probe of the arena can
        // index out of bounds, however the bytes were produced — the
        // checksum alone is no defense against a *constructed* file.
        RawTrie {
            slots,
            roots: &roots,
        }
        .validate_entries(table)
        .map_err(SnapshotError::Inconsistent)?;

        let m = &words[lay.meta.0 / 8..lay.meta.0 / 8 + META_WORDS];
        if m[13] != 0 || m[14] != 0 || m[15] != 0 {
            return Err(SnapshotError::Inconsistent(
                "reserved meta words must be zero",
            ));
        }
        if m[3] > 30 {
            return Err(SnapshotError::Inconsistent("terminal level out of range"));
        }
        if m[8] as usize != lay.trie.1 {
            return Err(SnapshotError::Inconsistent(
                "stats act_bytes disagrees with the trie section",
            ));
        }
        if m[9] as usize != lay.table.1 {
            return Err(SnapshotError::Inconsistent(
                "stats lookup_table_bytes disagrees with the table section",
            ));
        }
        let stats = BuildStats {
            precision_m: f64::from_bits(m[2]),
            terminal_level: m[3] as u8,
            covering_cells: m[4],
            indexed_cells: m[5],
            denormalized_slots: m[6],
            pushdown_splits: m[7],
            act_bytes: m[8] as usize,
            lookup_table_bytes: m[9] as usize,
            build_coverings_secs: f64::from_bits(m[10]),
            build_supercover_secs: f64::from_bits(m[11]),
            build_insert_secs: f64::from_bits(m[12]),
        };
        Ok((
            lay,
            ActIndexView {
                slots,
                roots,
                table,
                stats,
                inserted_cells: m[0],
                denormalized_slots: m[1],
            },
        ))
    }

    /// A borrowed view over a live [`ActIndex`] (no snapshot bytes
    /// involved): the same query surface as a parsed snapshot view, so
    /// serving code can treat owned (mutated) and mapped indexes
    /// uniformly. No validation — the index is trusted by construction.
    pub(crate) fn from_index(ix: &'a ActIndex) -> ActIndexView<'a> {
        ActIndexView {
            slots: ix.act().slots(),
            roots: *ix.act().roots(),
            table: ix.table().words(),
            stats: ix.stats().clone(),
            inserted_cells: ix.act().inserted_cells(),
            denormalized_slots: ix.act().denormalized_slots(),
        }
    }

    /// Resolves a [`Probe`] returned by this view's batch or scalar
    /// probes into `(polygon id, is_true_hit)` pairs, consulting the
    /// borrowed lookup table when necessary — the view-side counterpart
    /// of [`crate::trie::resolve_probe`].
    #[inline]
    pub fn resolve_refs(&self, probe: Probe) -> impl Iterator<Item = (u32, bool)> + '_ {
        resolve_probe_words(probe, self.table)
    }

    #[inline]
    fn raw(&self) -> RawTrie<'_> {
        RawTrie {
            slots: self.slots,
            roots: &self.roots,
        }
    }

    /// Probes with a precomputed leaf cell id (see
    /// [`ActIndex::probe_cell`]).
    #[inline]
    pub fn probe_cell(&self, leaf: CellId) -> Probe {
        self.raw().lookup(leaf)
    }

    /// Probes a batch of leaf cell ids (see [`ActIndex::probe_batch`]).
    ///
    /// # Panics
    /// Panics if `cells.len() != out.len()`.
    #[inline]
    pub fn probe_batch(&self, cells: &[CellId], out: &mut [Probe]) {
        self.raw().lookup_batch(cells, out);
    }

    /// [`ActIndexView::probe_batch`] plus per-cell termination depths
    /// (see [`crate::Act::lookup_batch_depths`]).
    ///
    /// # Panics
    /// Panics if the three slices' lengths disagree.
    #[inline]
    pub fn probe_batch_depths(&self, cells: &[CellId], out: &mut [Probe], depths: &mut [u8]) {
        self.raw().lookup_batch_depths(cells, out, depths);
    }

    /// Probes with a lat/lng coordinate (see [`ActIndex::probe_coord`]).
    #[inline]
    pub fn probe_coord(&self, c: Coord) -> Probe {
        self.probe_cell(crate::index::coord_to_cell(c))
    }

    /// The `(polygon id, is_true_hit)` pairs for a query point (see
    /// [`ActIndex::lookup_refs`]).
    pub fn lookup_refs(&self, c: Coord) -> Vec<(u32, bool)> {
        resolve_probe_words(self.probe_coord(c), self.table).collect()
    }

    /// Build metrics restored from the snapshot.
    #[inline]
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// Nodes in the borrowed arena (including the sentinel).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.slots.len() / FANOUT
    }

    /// Bytes of index data the view borrows (trie + lookup table).
    #[inline]
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self.slots) + std::mem::size_of_val(self.table)
    }

    /// Deep-copies the borrowed sections into an owned [`ActIndex`].
    pub fn to_owned_index(&self) -> ActIndex {
        ActIndex::from_parts(
            Act::from_raw_parts(
                self.slots.to_vec(),
                self.roots,
                self.inserted_cells,
                self.denormalized_slots,
            ),
            LookupTable::from_words(self.table.to_vec()),
            self.stats.clone(),
        )
    }
}

// ---------------------------------------------------------------------
// Owned loading
// ---------------------------------------------------------------------

/// An owned, 8-byte aligned snapshot buffer — the backing store for
/// zero-copy [`ActIndexView`]s when the caller has no mmap to hand.
#[derive(Debug)]
pub struct SnapshotBuf {
    words: Vec<u64>,
}

impl SnapshotBuf {
    /// Reads a whole snapshot from `r`, streaming directly into aligned
    /// storage. The header is read first so the buffer is sized exactly
    /// from its `total_len` — one allocation, no realloc copies on the
    /// census-scale path. Magic and version are checked *before*
    /// `total_len` is trusted (a non-snapshot stream must not dictate an
    /// allocation), and memory is reserved fallibly and touched only as
    /// bytes actually arrive, so even a forged length cannot force a
    /// huge zeroed allocation. Full validation remains
    /// [`SnapshotBuf::view`]'s job.
    ///
    /// # Errors
    /// I/O errors, [`SnapshotError::Truncated`] /
    /// [`SnapshotError::LengthMismatch`] when the stream ends early or
    /// runs past its header's length, and [`SnapshotError::BadMagic`] /
    /// [`SnapshotError::UnsupportedVersion`] for non-snapshot input.
    pub fn read_from(r: &mut impl Read) -> Result<SnapshotBuf, SnapshotError> {
        /// Reads until `buf` is full or EOF; returns the bytes read.
        fn fill(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, SnapshotError> {
            let mut n = 0;
            while n < buf.len() {
                match r.read(&mut buf[n..]) {
                    Ok(0) => break,
                    Ok(k) => n += k,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e.into()),
                }
            }
            Ok(n)
        }

        let mut words: Vec<u64> = vec![0; HEADER_WORDS];
        let got = fill(r, words_as_bytes_mut(&mut words))?;
        if got < HEADER_LEN {
            return Err(SnapshotError::Truncated { have: got });
        }
        let header = words_as_bytes(&words);
        if header[0..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let total = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        let total = usize::try_from(total)
            .ok()
            .filter(|t| *t >= HEADER_LEN && t.is_multiple_of(8))
            .ok_or(SnapshotError::BadHeader("implausible total length"))?;
        let total_words = total / 8;
        words
            .try_reserve_exact(total_words - HEADER_WORDS)
            .map_err(|_| {
                SnapshotError::Io(std::io::Error::new(
                    std::io::ErrorKind::OutOfMemory,
                    "snapshot header claims more memory than available",
                ))
            })?;
        // Extend in bounded chunks: only bytes that actually arrive get
        // their pages touched, whatever length the header claimed.
        while words.len() < total_words {
            let old = words.len();
            words.resize(old + (total_words - old).min(1 << 16), 0);
            let n = fill(r, &mut words_as_bytes_mut(&mut words)[old * 8..])?;
            if old * 8 + n < words.len() * 8 {
                let have = old * 8 + n;
                return Err(if have.is_multiple_of(8) {
                    SnapshotError::LengthMismatch {
                        expected: total as u64,
                        actual: have as u64,
                    }
                } else {
                    SnapshotError::Truncated { have }
                });
            }
        }
        // The stream must end exactly where the header said it would.
        if fill(r, &mut [0u8; 1])? != 0 {
            return Err(SnapshotError::LengthMismatch {
                expected: total as u64,
                actual: total as u64 + 1,
            });
        }
        Ok(SnapshotBuf { words })
    }

    /// Copies `bytes` into aligned storage (use [`ActIndexView::from_bytes`]
    /// directly when the buffer is already 8-byte aligned).
    ///
    /// # Errors
    /// [`SnapshotError::Truncated`] when `bytes` is shorter than a header
    /// or not a whole number of words.
    pub fn from_bytes(bytes: &[u8]) -> Result<SnapshotBuf, SnapshotError> {
        if bytes.len() < HEADER_LEN || !bytes.len().is_multiple_of(8) {
            return Err(SnapshotError::Truncated { have: bytes.len() });
        }
        let mut words = vec![0u64; bytes.len() / 8];
        words_as_bytes_mut(&mut words).copy_from_slice(bytes);
        Ok(SnapshotBuf { words })
    }

    /// The raw snapshot bytes (8-byte aligned by construction).
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        words_as_bytes(&self.words)
    }

    /// Opens a validated zero-copy view over this buffer.
    ///
    /// # Errors
    /// As [`ActIndexView::from_bytes`].
    pub fn view(&self) -> Result<ActIndexView<'_>, SnapshotError> {
        ActIndexView::from_bytes(self.bytes())
    }
}

/// Reads and validates a snapshot from `r`, reconstructing an owned
/// [`ActIndex`]. See [`ActIndex::load_snapshot`].
pub fn load(r: &mut impl Read) -> Result<ActIndex, SnapshotError> {
    let buf = SnapshotBuf::read_from(r)?;
    Ok(buf.view()?.to_owned_index())
}

// ---------------------------------------------------------------------
// Memory-mapped loading
// ---------------------------------------------------------------------

/// What actually holds a [`MappedSnapshot`]'s bytes.
#[derive(Debug)]
enum Backing {
    /// A live read-only file mapping: probes run straight off the page
    /// cache, and a warm load copies nothing but the roots and metadata.
    Mapped(mmapio::Mmap),
    /// The portable fallback: the whole file read into an owned aligned
    /// buffer (non-unix targets, unmappable/ragged files, unaligned
    /// caller buffers).
    Heap(SnapshotBuf),
}

impl Backing {
    #[inline]
    fn bytes(&self) -> &[u8] {
        match self {
            Backing::Mapped(m) => m.as_bytes(),
            Backing::Heap(b) => b.bytes(),
        }
    }
}

/// A self-contained, query-ready snapshot: the bytes (memory-mapped when
/// the platform allows, an owned aligned copy otherwise) together with
/// their validated layout. Constructing one runs the full
/// [`ActIndexView::from_bytes`] validation exactly once; every
/// [`MappedSnapshot::view`] after that is a few slice borrows — cheap
/// enough to call per batch, which is what the serving layer does.
///
/// Unlike [`ActIndexView`], this type owns its backing and so has no
/// lifetime parameter: it can be put in an `Arc` and shared across
/// worker threads, which is exactly the multi-worker single-mapping
/// serving story from the paper's online-join motivation.
#[derive(Debug)]
pub struct MappedSnapshot {
    backing: Backing,
    layout: Layout,
    roots: [u32; 6],
    stats: BuildStats,
    inserted_cells: u64,
    denormalized_slots: u64,
}

impl MappedSnapshot {
    /// Opens `path` for probing, preferring a real `mmap`.
    ///
    /// Falls back to an owned aligned heap copy when mapping is not an
    /// option — non-unix target, empty file, or a file whose size is not
    /// a whole number of words (a mapping of those could never pass
    /// validation, but the typed error should come from the canonical
    /// loader, not from a misalignment artifact). Validation failures of
    /// well-formed mappings are returned as-is; they would fail
    /// identically from the heap.
    ///
    /// # Errors
    /// Any [`SnapshotError`]; never panics on malformed input.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<MappedSnapshot, SnapshotError> {
        let path = path.as_ref();
        match mmapio::Mmap::map_path(path) {
            Ok(map)
                if (map.as_bytes().as_ptr() as usize).is_multiple_of(8)
                    && map.len() >= HEADER_LEN
                    && map.len().is_multiple_of(8) =>
            {
                Self::from_backing(Backing::Mapped(map))
            }
            // Unsupported target, unmappable file, or a mapping no view
            // could accept (short/ragged): take the owned-read path,
            // which produces the canonical typed error for bad files.
            _ => Self::open_heap(path),
        }
    }

    /// Opens `path` without attempting to map it: the file is read into
    /// an owned, aligned buffer. The explicit form of [`MappedSnapshot::open`]'s
    /// fallback — useful for like-for-like load benchmarking.
    ///
    /// # Errors
    /// Any [`SnapshotError`]; never panics on malformed input.
    pub fn open_heap(path: impl AsRef<std::path::Path>) -> Result<MappedSnapshot, SnapshotError> {
        let mut f = std::fs::File::open(path)?;
        Self::from_backing(Backing::Heap(SnapshotBuf::read_from(&mut f)?))
    }

    /// Builds a query-ready snapshot from caller-held bytes of **any**
    /// alignment: aligned input would also be accepted by
    /// [`ActIndexView::from_bytes`] directly; unaligned input (a slice
    /// into a larger message buffer, say) is copied into aligned
    /// storage instead of erroring with [`SnapshotError::Misaligned`].
    ///
    /// # Errors
    /// Any [`SnapshotError`]; never panics on malformed input.
    pub fn from_unaligned_bytes(bytes: &[u8]) -> Result<MappedSnapshot, SnapshotError> {
        Self::from_backing(Backing::Heap(SnapshotBuf::from_bytes(bytes)?))
    }

    /// Validates `backing` once and captures the layout + copied-out
    /// header fields that make later [`MappedSnapshot::view`] calls
    /// borrow-only.
    fn from_backing(backing: Backing) -> Result<MappedSnapshot, SnapshotError> {
        let (layout, roots, stats, inserted_cells, denormalized_slots) = {
            let (layout, view) = ActIndexView::parse(backing.bytes())?;
            (
                layout,
                view.roots,
                view.stats,
                view.inserted_cells,
                view.denormalized_slots,
            )
        };
        Ok(MappedSnapshot {
            backing,
            layout,
            roots,
            stats,
            inserted_cells,
            denormalized_slots,
        })
    }

    /// A zero-copy view over the backing bytes. Infallible and cheap:
    /// validation already happened in the constructor, so this is slice
    /// arithmetic plus a small stats copy.
    pub fn view(&self) -> ActIndexView<'_> {
        let bytes = self.backing.bytes();
        let words = bytes_as_words(bytes);
        let (trie_off, trie_len) = self.layout.trie;
        let (table_off, table_len) = self.layout.table;
        ActIndexView {
            slots: &words[trie_off / 8..(trie_off + trie_len) / 8],
            roots: self.roots,
            table: bytes_as_u32s(&bytes[table_off..table_off + table_len]),
            stats: self.stats.clone(),
            inserted_cells: self.inserted_cells,
            denormalized_slots: self.denormalized_slots,
        }
    }

    /// True when the backing is a live file mapping (false on the heap
    /// fallback path).
    #[inline]
    pub fn is_mmap(&self) -> bool {
        matches!(self.backing, Backing::Mapped(_))
    }

    /// The raw snapshot bytes (8-byte aligned in either backing).
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        self.backing.bytes()
    }

    /// Build metrics restored from the snapshot.
    #[inline]
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// Probes with a precomputed leaf cell id (see [`ActIndex::probe_cell`]).
    #[inline]
    pub fn probe_cell(&self, leaf: CellId) -> Probe {
        self.view().probe_cell(leaf)
    }

    /// Probes a batch of leaf cell ids (see [`ActIndex::probe_batch`]).
    ///
    /// # Panics
    /// Panics if `cells.len() != out.len()`.
    #[inline]
    pub fn probe_batch(&self, cells: &[CellId], out: &mut [Probe]) {
        self.view().probe_batch(cells, out);
    }

    /// Probes a batch recording per-cell termination depths (see
    /// [`ActIndex::probe_batch_depths`]).
    ///
    /// # Panics
    /// Panics if the three slices' lengths disagree.
    #[inline]
    pub fn probe_batch_depths(&self, cells: &[CellId], out: &mut [Probe], depths: &mut [u8]) {
        self.view().probe_batch_depths(cells, out, depths);
    }

    /// Probes with a lat/lng coordinate (see [`ActIndex::probe_coord`]).
    #[inline]
    pub fn probe_coord(&self, c: Coord) -> Probe {
        self.view().probe_coord(c)
    }

    /// The `(polygon id, is_true_hit)` pairs for a query point.
    pub fn lookup_refs(&self, c: Coord) -> Vec<(u32, bool)> {
        self.view().lookup_refs(c)
    }

    /// Deep-copies the snapshot into an owned [`ActIndex`].
    pub fn to_owned_index(&self) -> ActIndex {
        self.view().to_owned_index()
    }

    /// The snapshot's whole-file checksum from the validated header — the
    /// identity a delta lineage binds to (see [`crate::delta`]).
    #[inline]
    pub fn checksum(&self) -> u64 {
        header_checksum(self.bytes()).expect("validated snapshot has a header")
    }
}

/// The whole-file checksum stored in a snapshot header (word 3), or
/// `None` if `bytes` is too short to hold one. Purely a header read — no
/// validation; pair with a full load before trusting the bytes. Useful
/// for binding freshly written snapshot images into a delta lineage
/// without reparsing them (see [`crate::delta`]).
pub fn header_checksum(bytes: &[u8]) -> Option<u64> {
    bytes
        .get(24..32)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte slice")))
}

/// Recomputes and patches the header checksum of a snapshot image in
/// place. Test-only hook: lets corruption tests mutate payload fields and
/// still reach the deeper validation layers behind the checksum.
#[doc(hidden)]
pub fn rewrite_checksum(bytes: &mut [u8]) {
    assert!(bytes.len() >= HEADER_LEN && bytes.len().is_multiple_of(8));
    let words: Vec<u64> = bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect();
    let mut h = fnv1a_words(FNV_OFFSET, &words[0..3]);
    h = fnv1a_words(h, &words[4..]);
    bytes[24..32].copy_from_slice(&h.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::{Polygon, Ring};

    fn square(cx: f64, cy: f64, half: f64) -> Polygon {
        Polygon::new(
            Ring::new(vec![
                Coord::new(cx - half, cy - half),
                Coord::new(cx + half, cy - half),
                Coord::new(cx + half, cy + half),
                Coord::new(cx - half, cy + half),
            ]),
            vec![],
        )
    }

    fn sample_index() -> ActIndex {
        let polys = vec![
            square(-74.05, 40.70, 0.02),
            square(-73.95, 40.70, 0.02),
            square(-74.00, 40.70, 0.03),
        ];
        ActIndex::build(&polys, 15.0).unwrap()
    }

    fn save_to_vec(idx: &ActIndex) -> Vec<u8> {
        let mut bytes = Vec::new();
        let n = idx.save_snapshot(&mut bytes).unwrap();
        assert_eq!(n as usize, bytes.len());
        bytes
    }

    #[test]
    fn roundtrip_owned_is_byte_identical() {
        let idx = sample_index();
        let bytes = save_to_vec(&idx);
        let loaded = ActIndex::load_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(loaded.act().slots(), idx.act().slots());
        assert_eq!(loaded.act().roots(), idx.act().roots());
        assert_eq!(loaded.act().inserted_cells(), idx.act().inserted_cells());
        assert_eq!(
            loaded.act().denormalized_slots(),
            idx.act().denormalized_slots()
        );
        assert_eq!(loaded.table().words(), idx.table().words());
        let (a, b) = (loaded.stats(), idx.stats());
        assert_eq!(a.precision_m, b.precision_m);
        assert_eq!(a.terminal_level, b.terminal_level);
        assert_eq!(a.covering_cells, b.covering_cells);
        assert_eq!(a.indexed_cells, b.indexed_cells);
        assert_eq!(a.denormalized_slots, b.denormalized_slots);
        assert_eq!(a.pushdown_splits, b.pushdown_splits);
        assert_eq!(a.act_bytes, b.act_bytes);
        assert_eq!(a.lookup_table_bytes, b.lookup_table_bytes);
        assert_eq!(a.build_coverings_secs, b.build_coverings_secs);
        assert_eq!(a.build_supercover_secs, b.build_supercover_secs);
        assert_eq!(a.build_insert_secs, b.build_insert_secs);
        // And saving the loaded index reproduces the bytes exactly.
        assert_eq!(save_to_vec(&loaded), bytes);
    }

    #[test]
    fn view_probes_match_owned() {
        let idx = sample_index();
        let bytes = save_to_vec(&idx);
        let buf = SnapshotBuf::from_bytes(&bytes).unwrap();
        let view = buf.view().unwrap();
        assert_eq!(view.num_nodes(), idx.act().num_nodes());
        assert_eq!(view.memory_bytes(), idx.memory_bytes());
        for k in 0..400 {
            let c = Coord::new(-74.1 + 0.0005 * k as f64, 40.70);
            assert_eq!(view.probe_coord(c), idx.probe_coord(c), "at {c}");
            assert_eq!(view.lookup_refs(c), idx.lookup_refs(c), "at {c}");
        }
        let cells: Vec<CellId> = (0..300)
            .map(|k| crate::index::coord_to_cell(Coord::new(-74.1 + 0.001 * k as f64, 40.70)))
            .collect();
        let mut got = vec![Probe::Miss; cells.len()];
        let mut want = vec![Probe::Miss; cells.len()];
        view.probe_batch(&cells, &mut got);
        idx.probe_batch(&cells, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn empty_index_roundtrips() {
        let idx = ActIndex::build(&[], 15.0).unwrap();
        let bytes = save_to_vec(&idx);
        let loaded = ActIndex::load_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(loaded.act().slots(), idx.act().slots());
        assert_eq!(loaded.probe_coord(Coord::new(-74.0, 40.7)), Probe::Miss);
        let buf = SnapshotBuf::from_bytes(&bytes).unwrap();
        assert_eq!(
            buf.view().unwrap().probe_coord(Coord::new(-74.0, 40.7)),
            Probe::Miss
        );
    }

    #[test]
    fn misaligned_view_is_a_typed_error() {
        let idx = sample_index();
        let bytes = save_to_vec(&idx);
        // Shift by one byte inside a padded copy: guaranteed misaligned.
        let mut padded = vec![0u8; bytes.len() + 8];
        padded[1..1 + bytes.len()].copy_from_slice(&bytes);
        let base = padded.as_ptr() as usize;
        let off = if base.is_multiple_of(8) {
            1
        } else {
            8 - base % 8 + 1
        };
        let shifted = &padded[off..off + bytes.len()];
        assert!(matches!(
            ActIndexView::from_bytes(shifted),
            Err(SnapshotError::Misaligned)
        ));
    }

    fn temp_snap(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("act-snap-test-{}-{name}.snap", std::process::id()));
        std::fs::write(&p, bytes).unwrap();
        p
    }

    #[test]
    fn mapped_snapshot_matches_owned_load() {
        let idx = sample_index();
        let bytes = save_to_vec(&idx);
        let path = temp_snap("mapped", &bytes);
        let mapped = MappedSnapshot::open(&path).unwrap();
        assert_eq!(cfg!(unix), mapped.is_mmap(), "unix targets must map");
        assert_eq!(mapped.bytes(), bytes.as_slice());
        assert_eq!(mapped.stats().act_bytes, idx.stats().act_bytes);
        for k in 0..200 {
            let c = Coord::new(-74.1 + 0.001 * k as f64, 40.70);
            assert_eq!(mapped.probe_coord(c), idx.probe_coord(c), "at {c}");
            assert_eq!(mapped.lookup_refs(c), idx.lookup_refs(c), "at {c}");
        }
        assert!(mapped.to_owned_index().identical_to(&idx));
        // The explicit heap path answers identically and is not a map.
        let heap = MappedSnapshot::open_heap(&path).unwrap();
        assert!(!heap.is_mmap());
        let c = Coord::new(-74.05, 40.70);
        assert_eq!(heap.probe_coord(c), mapped.probe_coord(c));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unaligned_bytes_fall_back_to_heap_copy() {
        let idx = sample_index();
        let bytes = save_to_vec(&idx);
        // Construct a guaranteed-misaligned slice over the same content.
        let mut padded = vec![0u8; bytes.len() + 8];
        let base = padded.as_ptr() as usize;
        let off = if base.is_multiple_of(8) {
            1
        } else {
            8 - base % 8 + 1
        };
        padded[off..off + bytes.len()].copy_from_slice(&bytes);
        let shifted = &padded[off..off + bytes.len()];
        assert!(matches!(
            ActIndexView::from_bytes(shifted),
            Err(SnapshotError::Misaligned)
        ));
        // The mapped-snapshot constructor copies instead of erroring.
        let snap = MappedSnapshot::from_unaligned_bytes(shifted).unwrap();
        assert!(!snap.is_mmap());
        for k in 0..200 {
            let c = Coord::new(-74.1 + 0.001 * k as f64, 40.70);
            assert_eq!(snap.probe_coord(c), idx.probe_coord(c), "at {c}");
        }
    }

    #[test]
    fn mapped_snapshot_rejects_corruption_and_ragged_files() {
        let idx = sample_index();
        let mut bytes = save_to_vec(&idx);
        // Flip a payload byte: the checksum must catch it via either path.
        bytes[HEADER_LEN + 3] ^= 0xFF;
        let path = temp_snap("corrupt", &bytes);
        assert!(matches!(
            MappedSnapshot::open(&path),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        // A ragged-length file cannot be viewed; the heap fallback
        // produces the canonical typed error rather than a panic.
        let mut ragged = save_to_vec(&idx);
        ragged.push(0);
        let path2 = temp_snap("ragged", &ragged);
        assert!(MappedSnapshot::open(&path2).is_err());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&path2).unwrap();
    }

    #[test]
    fn view_resolve_refs_matches_lookup_refs() {
        let idx = sample_index();
        let bytes = save_to_vec(&idx);
        let buf = SnapshotBuf::from_bytes(&bytes).unwrap();
        let view = buf.view().unwrap();
        for k in 0..100 {
            let c = Coord::new(-74.08 + 0.001 * k as f64, 40.70);
            let probe = view.probe_coord(c);
            let via_resolve: Vec<(u32, bool)> = view.resolve_refs(probe).collect();
            assert_eq!(via_resolve, idx.lookup_refs(c), "at {c}");
        }
    }

    #[test]
    fn view_to_owned_equals_direct_load() {
        let idx = sample_index();
        let bytes = save_to_vec(&idx);
        let buf = SnapshotBuf::from_bytes(&bytes).unwrap();
        let owned = buf.view().unwrap().to_owned_index();
        let direct = ActIndex::load_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(owned.act().slots(), direct.act().slots());
        assert_eq!(owned.table().words(), direct.table().words());
    }
}
