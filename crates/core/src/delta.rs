//! Delta snapshots (`ACTDLT01`): a checksummed patch log of polygon
//! insert/remove records against a specific base snapshot.
//!
//! Full `ACTSNP01` snapshots are hundreds of megabytes at census scale;
//! a handful of fence edits should not require shipping one. A delta file
//! carries just the edit script — polygon geometry for inserts, ids for
//! removals — plus enough lineage metadata for a loader to refuse to apply
//! it against the wrong base or out of order:
//!
//! ```text
//! word  contents
//! ────  ────────────────────────────────────────────────────────────
//!  0    magic "ACTDLT01"
//!  1    lo 32: format version (1) · hi 32: flags (must be 0)
//!  2    total file length in bytes
//!  3    FNV-1a-64 over every other word (this word skipped)
//!  4    base_sum   — checksum of the lineage's base snapshot
//!  5    seq        — 1-based position of this delta in the lineage
//!  6    prev_sum   — checksum of delta seq-1, or base_sum when seq == 1
//!  7    op_count
//!  8…   op records, back to back:
//!         op word: lo 32 = opcode (1 insert, 2 remove) · hi 32 = id
//!         insert payload: [num_rings] then per ring [num_points]
//!                         then per point [x.to_bits(), y.to_bits()]
//!         remove payload: none
//! ```
//!
//! Like the base format everything is little-endian 64-bit words, so a
//! loader can stream the file through [`u64::from_le_bytes`] with no
//! alignment tricks. The checksum rule mirrors the base snapshot's: word 3
//! is zeroed during hashing (here: skipped) so the file checksums itself.
//!
//! Lineage is enforced with [`DeltaLink`]: writers thread one through
//! [`save_delta`] calls, readers thread one through [`apply_delta_file`]
//! calls, and each delta's checksum becomes the `prev_sum` the next must
//! name. Applying a delta from a different base, out of order, or twice
//! fails with [`SnapshotError::Inconsistent`] before the index is touched.

use crate::index::ActIndex;
use crate::snapshot::{fnv1a_words, SnapshotError, FNV_OFFSET};
use geom::{Coord, Polygon, Ring};
use std::io::Write;
use std::path::Path;

/// Magic bytes identifying a delta file, as a little-endian word.
pub const DELTA_MAGIC: u64 = u64::from_le_bytes(*b"ACTDLT01");
/// The delta format version this build reads and writes.
pub const DELTA_VERSION: u32 = 1;
/// Header length in words (and the offset of the first op record).
const HEADER_WORDS: usize = 8;

const OP_INSERT: u32 = 1;
const OP_REMOVE: u32 = 2;

/// One edit in a delta's patch log.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Insert (or replace) polygon `id` with the given geometry.
    Insert {
        /// Polygon id being inserted or replaced.
        id: u32,
        /// The polygon's geometry.
        polygon: Polygon,
    },
    /// Remove polygon `id`. Removing an absent id is a no-op on apply.
    Remove {
        /// Polygon id being removed.
        id: u32,
    },
}

/// Lineage cursor: which base a delta chain descends from, the next
/// sequence number, and the checksum the next delta must name as its
/// predecessor. Identical on the write and apply sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaLink {
    /// Checksum of the base snapshot this lineage descends from.
    pub base_sum: u64,
    /// Sequence number the next delta in the chain will carry (1-based).
    pub next_seq: u64,
    /// Checksum of the previous delta, or `base_sum` at the chain head.
    pub prev_sum: u64,
}

impl DeltaLink {
    /// Starts a fresh lineage at the given base snapshot checksum.
    pub fn for_base(base_sum: u64) -> DeltaLink {
        DeltaLink {
            base_sum,
            next_seq: 1,
            prev_sum: base_sum,
        }
    }

    /// Advances the cursor past a delta with the given checksum.
    fn advance(self, delta_sum: u64) -> DeltaLink {
        DeltaLink {
            base_sum: self.base_sum,
            next_seq: self.next_seq + 1,
            prev_sum: delta_sum,
        }
    }
}

/// Encodes `ops` as the next delta in `link`'s lineage and writes it to
/// `w`. Returns the advanced link (for chaining further deltas) and the
/// written delta's checksum.
pub fn save_delta<W: Write>(
    ops: &[DeltaOp],
    link: DeltaLink,
    w: &mut W,
) -> Result<(DeltaLink, u64), SnapshotError> {
    let mut words: Vec<u64> = vec![0; HEADER_WORDS];
    for op in ops {
        match op {
            DeltaOp::Insert { id, polygon } => {
                words.push(u64::from(OP_INSERT) | (u64::from(*id) << 32));
                let rings: Vec<&Ring> = std::iter::once(polygon.outer())
                    .chain(polygon.holes())
                    .collect();
                words.push(rings.len() as u64);
                for ring in rings {
                    let pts = ring.vertices();
                    words.push(pts.len() as u64);
                    for p in pts {
                        words.push(p.x.to_bits());
                        words.push(p.y.to_bits());
                    }
                }
            }
            DeltaOp::Remove { id } => {
                words.push(u64::from(OP_REMOVE) | (u64::from(*id) << 32));
            }
        }
    }
    words[0] = DELTA_MAGIC;
    words[1] = u64::from(DELTA_VERSION);
    words[2] = (words.len() * 8) as u64;
    words[4] = link.base_sum;
    words[5] = link.next_seq;
    words[6] = link.prev_sum;
    words[7] = ops.len() as u64;
    let sum = delta_checksum(&words);
    words[3] = sum;
    for wd in &words {
        w.write_all(&wd.to_le_bytes())?;
    }
    Ok((link.advance(sum), sum))
}

/// Convenience wrapper over [`save_delta`]: writes to a temp file beside
/// `path` and renames it into place, so watchers never see a torn delta.
pub fn save_delta_file(
    ops: &[DeltaOp],
    link: DeltaLink,
    path: &Path,
) -> Result<(DeltaLink, u64), SnapshotError> {
    let tmp = path.with_extension("tmp-delta");
    let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
    let out = save_delta(ops, link, &mut f)?;
    f.into_inner().map_err(|e| e.into_error())?.sync_all()?;
    std::fs::rename(&tmp, path)?;
    Ok(out)
}

/// The checksum rule: FNV-1a over every header and payload word except
/// word 3, which holds the digest itself.
fn delta_checksum(words: &[u64]) -> u64 {
    let h = fnv1a_words(FNV_OFFSET, &words[..3]);
    fnv1a_words(h, &words[4..])
}

/// A fully decoded and validated delta file.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Checksum of the base snapshot this delta's lineage descends from.
    pub base_sum: u64,
    /// This delta's 1-based position in its lineage.
    pub seq: u64,
    /// Checksum of the predecessor (delta `seq-1`, or the base).
    pub prev_sum: u64,
    /// This delta file's own checksum (the next delta's `prev_sum`).
    pub checksum: u64,
    /// The decoded edit script, in application order.
    pub ops: Vec<DeltaOp>,
}

impl Delta {
    /// Decodes and validates a delta from raw bytes. Every structural
    /// property is checked — magic, version, flags, length, checksum, op
    /// bounds — before any geometry is built.
    pub fn from_bytes(bytes: &[u8]) -> Result<Delta, SnapshotError> {
        if bytes.len() < HEADER_WORDS * 8 || !bytes.len().is_multiple_of(8) {
            return Err(SnapshotError::Truncated { have: bytes.len() });
        }
        let words: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect();
        if words[0] != DELTA_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = (words[1] & 0xFFFF_FFFF) as u32;
        if version != DELTA_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        if words[1] >> 32 != 0 {
            return Err(SnapshotError::BadHeader("delta flags must be zero"));
        }
        if words[2] != bytes.len() as u64 {
            return Err(SnapshotError::LengthMismatch {
                expected: words[2],
                actual: bytes.len() as u64,
            });
        }
        let found = delta_checksum(&words);
        if found != words[3] {
            return Err(SnapshotError::ChecksumMismatch {
                expected: words[3],
                found,
            });
        }
        let seq = words[5];
        if seq == 0 {
            return Err(SnapshotError::BadHeader("delta seq must be >= 1"));
        }
        let op_count = words[7];
        let mut ops = Vec::new();
        let mut at = HEADER_WORDS;
        for _ in 0..op_count {
            let op_word = *words
                .get(at)
                .ok_or(SnapshotError::Inconsistent("op record past end of delta"))?;
            at += 1;
            let opcode = (op_word & 0xFFFF_FFFF) as u32;
            let id = (op_word >> 32) as u32;
            match opcode {
                OP_REMOVE => ops.push(DeltaOp::Remove { id }),
                OP_INSERT => {
                    let num_rings = read_count(&words, &mut at, "ring count")?;
                    if num_rings == 0 {
                        return Err(SnapshotError::Inconsistent("insert record with zero rings"));
                    }
                    let mut rings = Vec::with_capacity(num_rings);
                    for _ in 0..num_rings {
                        let num_points = read_count(&words, &mut at, "point count")?;
                        if num_points < 3 {
                            return Err(SnapshotError::Inconsistent(
                                "ring with fewer than 3 points",
                            ));
                        }
                        if words.len() - at < num_points * 2 {
                            return Err(SnapshotError::Inconsistent(
                                "ring points past end of delta",
                            ));
                        }
                        let mut pts = Vec::with_capacity(num_points);
                        for _ in 0..num_points {
                            let x = f64::from_bits(words[at]);
                            let y = f64::from_bits(words[at + 1]);
                            at += 2;
                            if !x.is_finite() || !y.is_finite() {
                                return Err(SnapshotError::Inconsistent(
                                    "non-finite coordinate in insert record",
                                ));
                            }
                            pts.push(Coord::new(x, y));
                        }
                        rings.push(Ring::new(pts));
                    }
                    let mut it = rings.into_iter();
                    let outer = it.next().expect("num_rings >= 1");
                    ops.push(DeltaOp::Insert {
                        id,
                        polygon: Polygon::new(outer, it.collect()),
                    });
                }
                _ => return Err(SnapshotError::Inconsistent("unknown delta opcode")),
            }
        }
        if at != words.len() {
            return Err(SnapshotError::Inconsistent(
                "trailing words after last op record",
            ));
        }
        Ok(Delta {
            base_sum: words[4],
            seq,
            prev_sum: words[6],
            checksum: words[3],
            ops,
        })
    }

    /// Reads and decodes a delta file.
    pub fn load(path: &Path) -> Result<Delta, SnapshotError> {
        Delta::from_bytes(&std::fs::read(path)?)
    }

    /// Checks this delta is the one `link` expects next.
    pub fn verify_link(&self, link: &DeltaLink) -> Result<(), SnapshotError> {
        if self.base_sum != link.base_sum {
            return Err(SnapshotError::Inconsistent(
                "delta names a different base snapshot",
            ));
        }
        if self.seq != link.next_seq {
            return Err(SnapshotError::Inconsistent("delta out of sequence"));
        }
        if self.prev_sum != link.prev_sum {
            return Err(SnapshotError::Inconsistent(
                "delta predecessor checksum mismatch",
            ));
        }
        Ok(())
    }

    /// Applies the edit script to `index`, in order. The delta should be
    /// [`Delta::verify_link`]-checked first; geometry errors (multi-face
    /// polygons) surface as [`SnapshotError::Inconsistent`] and may leave
    /// a prefix of the script applied — apply to a scratch clone when that
    /// matters (the serve watcher does).
    pub fn apply(&self, index: &mut ActIndex) -> Result<(), SnapshotError> {
        for op in &self.ops {
            match op {
                DeltaOp::Insert { id, polygon } => {
                    index.insert_polygon(*id, polygon).map_err(|_| {
                        SnapshotError::Inconsistent("insert polygon spans multiple faces")
                    })?;
                }
                DeltaOp::Remove { id } => {
                    index.remove_polygon(*id);
                }
            }
        }
        Ok(())
    }
}

fn read_count(words: &[u64], at: &mut usize, what: &'static str) -> Result<usize, SnapshotError> {
    let w = *words.get(*at).ok_or(SnapshotError::Inconsistent(what))?;
    *at += 1;
    usize::try_from(w)
        .ok()
        .filter(|&n| n <= words.len())
        .ok_or(SnapshotError::Inconsistent(what))
}

/// Loads, link-verifies, and applies one delta file to a live index.
/// Returns the advanced [`DeltaLink`] for the next delta in the chain.
/// The index is only mutated after the file fully validates and decodes.
pub fn apply_delta_file(
    index: &mut ActIndex,
    path: &Path,
    link: DeltaLink,
) -> Result<DeltaLink, SnapshotError> {
    let delta = Delta::load(path)?;
    delta.verify_link(&link)?;
    delta.apply(index)?;
    Ok(link.advance(delta.checksum))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(cx: f64, cy: f64, half: f64) -> Polygon {
        Polygon::new(
            Ring::new(vec![
                Coord::new(cx - half, cy - half),
                Coord::new(cx + half, cy - half),
                Coord::new(cx + half, cy + half),
                Coord::new(cx - half, cy + half),
            ]),
            vec![],
        )
    }

    fn sample_ops() -> Vec<DeltaOp> {
        vec![
            DeltaOp::Insert {
                id: 3,
                polygon: square(-73.98, 40.75, 0.01),
            },
            DeltaOp::Remove { id: 1 },
            DeltaOp::Insert {
                id: 7,
                polygon: Polygon::new(
                    square(-74.0, 40.7, 0.05).outer().clone(),
                    vec![square(-74.0, 40.7, 0.01).outer().clone()],
                ),
            },
        ]
    }

    #[test]
    fn save_load_roundtrip() {
        let link = DeltaLink::for_base(0xDEAD_BEEF);
        let ops = sample_ops();
        let mut buf = Vec::new();
        let (next, sum) = save_delta(&ops, link, &mut buf).unwrap();
        assert_eq!(next.next_seq, 2);
        assert_eq!(next.prev_sum, sum);
        assert_eq!(next.base_sum, link.base_sum);

        let d = Delta::from_bytes(&buf).unwrap();
        assert_eq!(d.base_sum, 0xDEAD_BEEF);
        assert_eq!(d.seq, 1);
        assert_eq!(d.prev_sum, 0xDEAD_BEEF);
        assert_eq!(d.checksum, sum);
        assert_eq!(d.ops.len(), 3);
        d.verify_link(&link).unwrap();
        // Geometry round-trips bit-exactly.
        match (&d.ops[0], &ops[0]) {
            (DeltaOp::Insert { id: a, polygon: pa }, DeltaOp::Insert { id: b, polygon: pb }) => {
                assert_eq!(a, b);
                assert_eq!(pa.outer().vertices(), pb.outer().vertices());
            }
            _ => panic!("op 0 should be an insert"),
        }
        match &d.ops[2] {
            DeltaOp::Insert { polygon, .. } => assert_eq!(polygon.holes().len(), 1),
            _ => panic!("op 2 should be an insert with a hole"),
        }
    }

    #[test]
    fn chained_deltas_verify_in_order_only() {
        let base = DeltaLink::for_base(42);
        let mut b1 = Vec::new();
        let (after1, _) = save_delta(&[DeltaOp::Remove { id: 0 }], base, &mut b1).unwrap();
        let mut b2 = Vec::new();
        let (_, _) = save_delta(&[DeltaOp::Remove { id: 1 }], after1, &mut b2).unwrap();

        let d1 = Delta::from_bytes(&b1).unwrap();
        let d2 = Delta::from_bytes(&b2).unwrap();
        d1.verify_link(&base).unwrap();
        d2.verify_link(&after1).unwrap();
        // Out of order, wrong base, or replayed — all refused.
        assert!(d2.verify_link(&base).is_err());
        assert!(d1.verify_link(&after1).is_err());
        assert!(d1.verify_link(&DeltaLink::for_base(43)).is_err());
    }

    #[test]
    fn corruption_is_detected() {
        let mut buf = Vec::new();
        save_delta(&sample_ops(), DeltaLink::for_base(1), &mut buf).unwrap();

        // Flip one payload byte.
        let mut bad = buf.clone();
        let last = bad.len() - 3;
        bad[last] ^= 0x40;
        assert!(matches!(
            Delta::from_bytes(&bad),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        // Truncate.
        assert!(matches!(
            Delta::from_bytes(&buf[..buf.len() - 8]),
            Err(SnapshotError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Delta::from_bytes(&buf[..12]),
            Err(SnapshotError::Truncated { .. })
        ));

        // Wrong magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            Delta::from_bytes(&bad),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn empty_delta_is_valid() {
        let mut buf = Vec::new();
        let (next, _) = save_delta(&[], DeltaLink::for_base(9), &mut buf).unwrap();
        let d = Delta::from_bytes(&buf).unwrap();
        assert!(d.ops.is_empty());
        assert_eq!(next.next_seq, 2);
    }
}
