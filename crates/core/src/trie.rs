//! The Adaptive Cell Trie (ACT): a radix tree over hierarchical-grid cells.
//!
//! ## Structure (paper §II, Figure 2a)
//!
//! * Fanout **256**: every trie node is a fixed array of 256 tagged 8-byte
//!   entries, so each trie level consumes 8 key bits = **4 quadtree levels**
//!   (the *cell level granularity* `g = 4`).
//! * The key of a cell is its Hilbert **position bit string** (2 bits per
//!   level); the cube face selects one of six root nodes. With cells up to
//!   level 28 the maximum key length is 56 bits → at most **7 node
//!   accesses** per lookup; indexes bounded at level 24 need only 6, as in
//!   the paper.
//! * A tagged entry is one of (2 least-significant bits):
//!   - `00` — a child reference (index into the node arena; index 0 is the
//!     sentinel meaning *false hit*),
//!   - `01` — one inlined 31-bit payload,
//!   - `10` — two inlined 31-bit payloads,
//!   - `11` — a 31-bit offset into the shared lookup table (≥ 3 references).
//! * Payload bit 0 is the true-hit flag; the remaining 30 bits are the
//!   polygon id (see [`crate::refs`]).
//!
//! ## Denormalization
//!
//! Cells whose level is not a multiple of 4 do not align with a single
//! slot. Insertion *denormalizes* them: a level-`l` cell with
//! `r = l mod 4 ≠ 0` spans `4^(4−r)` consecutive slots of one node, and its
//! payload is **replicated** into that slot range. Replicating payloads
//! (rather than materializing descendant cells) is why a finer covering
//! does not necessarily grow the trie — the paper's Table I artifact where
//! the 15 m and 4 m indexes have (almost) the same size.
//!
//! ## Safety
//!
//! Nodes live in a flat `Vec<u64>` arena and child references are node
//! indices. This keeps the implementation 100% safe Rust with the same
//! cache behaviour as raw pointers (one dependent load per level).
//!
//! ## Batched probing
//!
//! [`Act::lookup`] issues one *dependent* load per level — the probe's
//! latency is the sum of its cache misses. [`Act::lookup_batch`] walks a
//! block of keys level-synchronously instead, so the misses of different
//! keys overlap in the memory pipeline (memory-level parallelism); on
//! larger-than-cache tries this is worth ~1.3–1.5× single-threaded (see
//! `BENCH_probe.json`).

use crate::lookup::{LookupTable, LookupTableBuilder};
use crate::refs::{PolygonRef, RefSet};
use s2cell::CellId;

/// Entries per node (fanout).
pub const FANOUT: usize = 256;
/// Quadtree levels consumed per trie level.
pub const GRANULARITY: u8 = 4;
/// Maximum indexable cell level (7 key bytes × 4 levels/byte).
pub const MAX_INDEX_LEVEL: u8 = 28;
/// Maximum lanes walked together by one [`Act::lookup_batch`] block (the
/// lane state must stay stack- and L1-resident; see the method docs).
pub const MAX_PROBE_BLOCK: usize = 256;

const TAG_MASK: u64 = 3;
const TAG_CHILD: u64 = 0;
const TAG_ONE: u64 = 1;
const TAG_TWO: u64 = 2;
const TAG_OFFSET: u64 = 3;

#[inline]
fn encode_child(index: u32) -> u64 {
    (index as u64) << 2
}

#[inline]
fn encode_one(payload: u32) -> u64 {
    ((payload as u64) << 2) | TAG_ONE
}

#[inline]
fn encode_two(p1: u32, p2: u32) -> u64 {
    ((p2 as u64) << 33) | ((p1 as u64) << 2) | TAG_TWO
}

#[inline]
fn encode_offset(offset: u32) -> u64 {
    ((offset as u64) << 2) | TAG_OFFSET
}

/// The result of probing the trie with a query point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// No indexed cell contains the point: guaranteed **not** within ε of
    /// any polygon (a *false hit* in the paper's terms).
    Miss,
    /// The matched cell references one polygon.
    One(PolygonRef),
    /// The matched cell references two polygons.
    Two(PolygonRef, PolygonRef),
    /// The matched cell references ≥ 3 polygons; resolve via the
    /// [`LookupTable`] at this offset.
    Table(u32),
}

impl Probe {
    /// Decodes a raw tagged entry (must not be a child reference).
    #[inline]
    fn from_entry(entry: u64) -> Probe {
        match entry & TAG_MASK {
            TAG_ONE => Probe::One(PolygonRef::decode((entry >> 2) as u32 & 0x7FFF_FFFF)),
            TAG_TWO => Probe::Two(
                PolygonRef::decode((entry >> 2) as u32 & 0x7FFF_FFFF),
                PolygonRef::decode((entry >> 33) as u32 & 0x7FFF_FFFF),
            ),
            TAG_OFFSET => Probe::Table((entry >> 2) as u32 & 0x7FFF_FFFF),
            _ => unreachable!("child entries are consumed by the descent"),
        }
    }
}

/// The canonical identity of a probe's **resolved trie cell**: the key
/// prefix the walk actually consumed, plus the depth it terminated at.
///
/// A lookup for `query` reads the 3 face bits and then `depth` bytes of
/// the position bit string (see [`RawTrie::lookup`]); nothing below that
/// prefix can influence the result. Two queries sharing the top
/// `3 + 8·depth` bits therefore terminate at the same entry with the
/// same answer — and, because the walk is deterministic, at the same
/// depth, so for any query exactly one `(prefix, depth)` pair is ever
/// its key. That makes this value a correct cache key for probe
/// results: the serving layer's hot-cell cache stores resolved ref sets
/// under `probe_cell_key(query, depth)` (depth from
/// [`Act::lookup_batch_depths`]) and looks a query up by trying its
/// prefixes at each depth `1..=7`.
///
/// Layout: the query's top `3 + 8·depth` bits in place, low bits
/// zeroed, with `depth` (≤ 7, so 3 bits) packed into the low bits —
/// depths 1..=7 keep ≤ 59 prefix bits, leaving the bottom 5 free.
#[inline]
#[must_use]
pub fn probe_cell_key(query: CellId, depth: u8) -> u64 {
    let d = u64::from(depth.min(7));
    let mask = !(u64::MAX >> (3 + 8 * d));
    (query.0 & mask) | d
}

/// Per-depth structural statistics (for analysis and the paper's Table I).
#[derive(Debug, Clone, Default)]
pub struct TrieStats {
    /// Nodes at each trie depth (depth 0 = root nodes).
    pub nodes_per_depth: Vec<usize>,
    /// Occupied (non-sentinel) slots at each depth.
    pub occupied_per_depth: Vec<usize>,
    /// Total terminal entries by kind: (one, two, offset).
    pub terminals: (usize, usize, usize),
}

/// A borrowed `(node arena, roots)` pair: the probe-side core of the
/// trie, shared by the owned [`Act`] and the zero-copy snapshot views in
/// [`crate::snapshot`]. All lookup walks live here so a memory-mapped
/// arena probes through exactly the code paths the built one does.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RawTrie<'a> {
    pub(crate) slots: &'a [u64],
    pub(crate) roots: &'a [u32; 6],
}

impl RawTrie<'_> {
    /// See [`Act::lookup`].
    #[inline]
    pub(crate) fn lookup(self, query: CellId) -> Probe {
        let face = (query.0 >> 61) as usize;
        let mut node = self.roots[face] as usize;
        if node == 0 {
            return Probe::Miss;
        }
        // Position bits at the top of the word; consume 8 per level.
        let mut key = query.0 << 3;
        for _ in 0..7 {
            let b = (key >> 56) as usize;
            key <<= 8;
            let e = self.slots[node * FANOUT + b];
            if e & TAG_MASK == TAG_CHILD {
                let idx = (e >> 2) as usize;
                if idx == 0 {
                    return Probe::Miss;
                }
                node = idx;
            } else {
                return Probe::from_entry(e);
            }
        }
        Probe::Miss
    }

    /// See [`Act::lookup_batch`].
    pub(crate) fn lookup_batch(self, queries: &[CellId], out: &mut [Probe]) {
        assert_eq!(
            queries.len(),
            out.len(),
            "lookup_batch: queries/out length mismatch"
        );
        for (q, o) in queries
            .chunks(MAX_PROBE_BLOCK)
            .zip(out.chunks_mut(MAX_PROBE_BLOCK))
        {
            self.lookup_block(q, o);
        }
    }

    /// See [`Act::lookup_batch_depths`].
    pub(crate) fn lookup_batch_depths(
        self,
        queries: &[CellId],
        out: &mut [Probe],
        depths: &mut [u8],
    ) {
        assert_eq!(
            queries.len(),
            out.len(),
            "lookup_batch_depths: queries/out length mismatch"
        );
        assert_eq!(
            queries.len(),
            depths.len(),
            "lookup_batch_depths: queries/depths length mismatch"
        );
        for ((q, o), d) in queries
            .chunks(MAX_PROBE_BLOCK)
            .zip(out.chunks_mut(MAX_PROBE_BLOCK))
            .zip(depths.chunks_mut(MAX_PROBE_BLOCK))
        {
            self.lookup_block_depths(q, o, d);
        }
    }

    /// [`RawTrie::lookup_block`] with per-lane termination depths: the
    /// same level-synchronous walk (lanes advance one level together,
    /// resolved lanes compacted out, so the memory-level parallelism
    /// the batched probe exists for is preserved), plus one byte store
    /// per lane recording how many node accesses the walk made —
    /// 0 for an empty root face, 1..=7 otherwise. This is the serving
    /// pipeline's probed-cell-depth instrumentation hook; the
    /// depth histogram it feeds is what ROADMAP's prefetch and
    /// hot-cell-cache items will be judged against.
    fn lookup_block_depths(self, queries: &[CellId], out: &mut [Probe], depths: &mut [u8]) {
        let n = queries.len();
        debug_assert!(n <= MAX_PROBE_BLOCK);
        let mut node = [0u32; MAX_PROBE_BLOCK];
        let mut key = [0u64; MAX_PROBE_BLOCK];
        let mut lanes = [0u16; MAX_PROBE_BLOCK];
        let mut live = 0usize;
        for (i, (&q, o)) in queries.iter().zip(out.iter_mut()).enumerate() {
            let root = self.roots[(q.0 >> 61) as usize];
            *o = Probe::Miss;
            depths[i] = 0;
            if root != 0 {
                node[i] = root;
                key[i] = q.0 << 3;
                lanes[live] = i as u16;
                live += 1;
            }
        }
        for depth in 1..=7u8 {
            if live == 0 {
                return;
            }
            let mut kept = 0usize;
            for j in 0..live {
                let i = lanes[j] as usize;
                let b = (key[i] >> 56) as usize;
                key[i] <<= 8;
                let e = self.slots[node[i] as usize * FANOUT + b];
                if e & TAG_MASK == TAG_CHILD {
                    let idx = (e >> 2) as u32;
                    if idx != 0 {
                        node[i] = idx;
                        lanes[kept] = i as u16;
                        kept += 1;
                        // Depth advances with the lane: a lane that runs
                        // off the key after 7 levels keeps depth 7.
                        depths[i] = depth;
                    } else {
                        depths[i] = depth; // resolved Miss at this level
                    }
                } else {
                    out[i] = Probe::from_entry(e);
                    depths[i] = depth;
                }
            }
            live = kept;
        }
    }

    /// One level-synchronous block (≤ [`MAX_PROBE_BLOCK`] lanes).
    fn lookup_block(self, queries: &[CellId], out: &mut [Probe]) {
        let n = queries.len();
        debug_assert!(n <= MAX_PROBE_BLOCK);
        let mut node = [0u32; MAX_PROBE_BLOCK];
        let mut key = [0u64; MAX_PROBE_BLOCK];
        // Active lane ids, compacted as lanes resolve.
        let mut lanes = [0u16; MAX_PROBE_BLOCK];
        let mut live = 0usize;
        for (i, (&q, o)) in queries.iter().zip(out.iter_mut()).enumerate() {
            let root = self.roots[(q.0 >> 61) as usize];
            *o = Probe::Miss;
            if root != 0 {
                node[i] = root;
                key[i] = q.0 << 3;
                lanes[live] = i as u16;
                live += 1;
            }
        }
        for _ in 0..7 {
            if live == 0 {
                return;
            }
            let mut kept = 0usize;
            for j in 0..live {
                let i = lanes[j] as usize;
                let b = (key[i] >> 56) as usize;
                key[i] <<= 8;
                let e = self.slots[node[i] as usize * FANOUT + b];
                if e & TAG_MASK == TAG_CHILD {
                    let idx = (e >> 2) as u32;
                    if idx != 0 {
                        node[i] = idx;
                        lanes[kept] = i as u16;
                        kept += 1;
                    }
                    // idx == 0: stays the Miss written above.
                } else {
                    out[i] = Probe::from_entry(e);
                }
            }
            live = kept;
        }
        // Lanes still live after 7 levels ran off the key: Miss (pre-set).
    }

    /// Checks every arena entry for out-of-bounds child pointers and
    /// lookup-table offsets against `table` (the raw word array). The
    /// snapshot loader runs this so that probing a validated arena can
    /// never index out of bounds, whatever the bytes came from; `Err` is
    /// the first violation's reason.
    pub(crate) fn validate_entries(self, table: &[u32]) -> Result<(), &'static str> {
        let num_nodes = self.slots.len() / FANOUT;
        for &e in self.slots {
            match e & TAG_MASK {
                TAG_CHILD if (e >> 2) as usize >= num_nodes => {
                    return Err("trie child pointer out of arena range");
                }
                TAG_OFFSET => {
                    // Entry layout: [n_true, trues…, n_cand, cands…].
                    let off = ((e >> 2) as u32 & 0x7FFF_FFFF) as usize;
                    let n_true = *table.get(off).ok_or("lookup-table offset out of range")?;
                    let at = off + 1 + n_true as usize;
                    let n_cand = *table
                        .get(at)
                        .ok_or("lookup-table entry exceeds the table")?;
                    if at + 1 + n_cand as usize > table.len() {
                        return Err("lookup-table entry exceeds the table");
                    }
                }
                // Inlined payloads (TAG_ONE/TAG_TWO) decode without
                // indexing anything — any bit pattern is safe.
                _ => {}
            }
        }
        Ok(())
    }
}

/// Arena bookkeeping returned by the mutating walks: how much of the
/// index became garbage (unreachable nodes, superseded lookup-table
/// entries). [`crate::ActIndex`] accumulates these into its waste ratio
/// to decide when a lazy compaction pays for itself.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MutationWaste {
    /// Nodes that became unreachable from the roots (their slots are
    /// zeroed, but the arena still holds them until a compaction).
    pub(crate) orphaned_nodes: u64,
    /// Lookup-table words left behind by rewritten `Many` entries.
    pub(crate) stale_table_words: u64,
}

/// Decodes a terminal entry into its reference set, consulting the raw
/// lookup-table `words` for `TAG_OFFSET` entries.
fn entry_refset(e: u64, words: &[u32]) -> RefSet {
    match e & TAG_MASK {
        TAG_ONE => RefSet::One(PolygonRef::decode((e >> 2) as u32 & 0x7FFF_FFFF)),
        TAG_TWO => RefSet::Two(
            PolygonRef::decode((e >> 2) as u32 & 0x7FFF_FFFF),
            PolygonRef::decode((e >> 33) as u32 & 0x7FFF_FFFF),
        ),
        TAG_OFFSET => {
            let (t, c) = crate::lookup::decode_at(words, (e >> 2) as u32 & 0x7FFF_FFFF);
            RefSet::Many(
                t.iter()
                    .map(|&id| PolygonRef::true_hit(id))
                    .chain(c.iter().map(|&id| PolygonRef::candidate(id)))
                    .collect(),
            )
        }
        _ => unreachable!("child entries carry no references"),
    }
}

/// The cell of the single slot `s` of the node covering `node_cell`
/// (four quadtree levels down, two key bits per level).
fn slot_cell(node_cell: CellId, s: usize) -> CellId {
    node_cell
        .child(((s >> 6) & 3) as u8)
        .child(((s >> 4) & 3) as u8)
        .child(((s >> 2) & 3) as u8)
        .child((s & 3) as u8)
}

/// The cell of an aligned uniform slot run `[base, base+size)` of the
/// node covering `node_cell` — the inverse of denormalization: runs of
/// 256/64/16/4/1 slots are cells 0/1/2/3/4 levels below the node's.
fn run_cell(node_cell: CellId, base: usize, size: usize) -> CellId {
    let steps = match size {
        256 => 0,
        64 => 1,
        16 => 2,
        4 => 3,
        1 => 4,
        _ => unreachable!("runs are aligned power-of-4 blocks"),
    };
    let mut c = node_cell;
    for k in 0..steps {
        c = c.child(((base >> (6 - 2 * k)) & 3) as u8);
    }
    c
}

/// The Adaptive Cell Trie.
#[derive(Debug, Clone)]
pub struct Act {
    /// Flat node arena: node `i` occupies `slots[i*256 .. (i+1)*256]`.
    /// Node 0 is the all-zero sentinel.
    slots: Vec<u64>,
    /// Root node index per cube face (0 = no data on that face).
    roots: [u32; 6],
    /// Number of cells inserted (before denormalization) — the paper's
    /// "indexed cells" metric counts denormalized slot ranges; both are
    /// tracked.
    inserted_cells: u64,
    /// Number of slot writes performed by denormalization.
    denormalized_slots: u64,
}

impl Default for Act {
    fn default() -> Self {
        Self::new()
    }
}

impl Act {
    /// Creates an empty trie (just the sentinel node).
    pub fn new() -> Act {
        Act {
            slots: vec![0u64; FANOUT],
            roots: [0; 6],
            inserted_cells: 0,
            denormalized_slots: 0,
        }
    }

    /// Reassembles a trie from its raw parts (snapshot load path). The
    /// caller is responsible for having validated the arena: slot count a
    /// positive multiple of [`FANOUT`], roots within bounds.
    pub(crate) fn from_raw_parts(
        slots: Vec<u64>,
        roots: [u32; 6],
        inserted_cells: u64,
        denormalized_slots: u64,
    ) -> Act {
        debug_assert!(!slots.is_empty() && slots.len().is_multiple_of(FANOUT));
        debug_assert!(roots.iter().all(|&r| (r as usize) < slots.len() / FANOUT));
        Act {
            slots,
            roots,
            inserted_cells,
            denormalized_slots,
        }
    }

    /// The borrowed probe core (shared with snapshot views).
    #[inline]
    pub(crate) fn raw(&self) -> RawTrie<'_> {
        RawTrie {
            slots: &self.slots,
            roots: &self.roots,
        }
    }

    #[inline]
    fn alloc_node(&mut self) -> u32 {
        let idx = (self.slots.len() / FANOUT) as u32;
        self.slots.resize(self.slots.len() + FANOUT, 0);
        idx
    }

    /// Inserts a cell with its reference set.
    ///
    /// # Preconditions (enforced by the super covering, asserted here)
    /// * `cell.level() ≤ 28`
    /// * no inserted cell is an ancestor or descendant of another
    /// * no cell is inserted twice
    pub fn insert(&mut self, cell: CellId, refs: &RefSet, table: &mut LookupTableBuilder) {
        debug_assert!(cell.is_valid());
        let level = cell.level();
        assert!(
            level <= MAX_INDEX_LEVEL,
            "cell level {level} exceeds MAX_INDEX_LEVEL"
        );

        let entry = match refs {
            RefSet::One(r) => encode_one(r.encode()),
            RefSet::Two(a, b) => encode_two(a.encode(), b.encode()),
            RefSet::Many(_) => encode_offset(table.intern(refs)),
        };

        let face = cell.face() as usize;
        if self.roots[face] == 0 {
            let n = self.alloc_node();
            self.roots[face] = n;
        }
        let mut node = self.roots[face] as usize;

        if level == 0 {
            // A face cell covers the whole root node.
            self.fill_range(node, 0, FANOUT, entry);
            self.inserted_cells += 1;
            return;
        }

        let d_last = ((level - 1) / GRANULARITY) as u32;
        for d in 0..d_last {
            let b = cell.key_byte(d) as usize;
            let slot = node * FANOUT + b;
            let e = self.slots[slot];
            match e & TAG_MASK {
                TAG_CHILD => {
                    let mut idx = (e >> 2) as u32;
                    if idx == 0 {
                        idx = self.alloc_node();
                        self.slots[slot] = encode_child(idx);
                    }
                    node = idx as usize;
                }
                _ => panic!(
                    "ACT insert: cell {cell:?} is nested under an already-indexed cell; \
                     the super covering must resolve nesting before insertion"
                ),
            }
        }

        let bits = 2 * (level as u32 - GRANULARITY as u32 * d_last);
        debug_assert!((2..=8).contains(&bits));
        let byte = cell.key_byte(d_last) as usize;
        let base = byte & !((1usize << (8 - bits)) - 1);
        let count = 1usize << (8 - bits);
        self.fill_range(node, base, count, entry);
        self.inserted_cells += 1;
    }

    fn fill_range(&mut self, node: usize, base: usize, count: usize, entry: u64) {
        for s in base..base + count {
            let slot = node * FANOUT + s;
            assert_eq!(
                self.slots[slot], 0,
                "ACT insert: slot already occupied; cells must be disjoint and unique"
            );
            self.slots[slot] = entry;
        }
        self.denormalized_slots += count as u64;
    }

    /// Probes the trie with a leaf (or any sufficiently deep) cell id.
    ///
    /// The descent is comparison-free in the paper's sense: it extracts one
    /// key byte per level and jumps; the only branches distinguish entry
    /// tags.
    #[inline]
    pub fn lookup(&self, query: CellId) -> Probe {
        self.raw().lookup(query)
    }

    /// Probes a batch of keys, writing `out[i]` = [`Act::lookup`]`(queries[i])`.
    ///
    /// Rationale: a single lookup is a chain of up to 7 *dependent*
    /// cache-missing loads — the memory pipeline stalls on every level.
    /// This walk instead advances a block of up to [`MAX_PROBE_BLOCK`] keys
    /// *level-synchronously*: within one level the loads of different lanes
    /// are independent, so the core keeps many misses in flight
    /// (memory-level parallelism) instead of serializing them. Lanes that
    /// resolve early are compacted out of the active list.
    ///
    /// # Panics
    /// Panics if `queries.len() != out.len()`.
    pub fn lookup_batch(&self, queries: &[CellId], out: &mut [Probe]) {
        self.raw().lookup_batch(queries, out);
    }

    /// [`Act::lookup_batch`] plus per-query termination depths:
    /// `depths[i]` is the number of trie node accesses query `i` made
    /// (0 for an empty root face, 1..=7 otherwise — so `depths[i] * 4`
    /// is the terminating slot level, matching
    /// [`Act::lookup_with_slot_level`]). Same level-synchronous walk,
    /// same memory-level parallelism; the extra cost is one byte store
    /// per lane per level, so it is cheap enough to run always-on in
    /// the serving pipeline's probe-depth histogram.
    ///
    /// # Panics
    /// Panics if the three slices' lengths disagree.
    pub fn lookup_batch_depths(&self, queries: &[CellId], out: &mut [Probe], depths: &mut [u8]) {
        self.raw().lookup_batch_depths(queries, out, depths);
    }

    /// Like [`Act::lookup`], additionally returning the quadtree level of
    /// the *slot* that terminated the walk (a multiple of 4; the matched
    /// indexed cell is that slot's cell or a denormalized ancestor of it).
    /// The adaptive index uses this to attribute probe heat to regions.
    #[inline]
    pub fn lookup_with_slot_level(&self, query: CellId) -> (Probe, u8) {
        let face = (query.0 >> 61) as usize;
        let mut node = self.roots[face] as usize;
        if node == 0 {
            return (Probe::Miss, 0);
        }
        let mut key = query.0 << 3;
        for d in 0..7u8 {
            let b = (key >> 56) as usize;
            key <<= 8;
            let e = self.slots[node * FANOUT + b];
            if e & TAG_MASK == TAG_CHILD {
                let idx = (e >> 2) as usize;
                if idx == 0 {
                    return (Probe::Miss, (d + 1) * 4);
                }
                node = idx;
            } else {
                return (Probe::from_entry(e), (d + 1) * 4);
            }
        }
        (Probe::Miss, MAX_INDEX_LEVEL)
    }

    /// The raw node arena (node `i` is `slots()[i*256..(i+1)*256]`).
    /// Exposed so builds can be compared for byte-identity.
    #[inline]
    pub fn slots(&self) -> &[u64] {
        &self.slots
    }

    /// The per-face root node indices.
    #[inline]
    pub fn roots(&self) -> &[u32; 6] {
        &self.roots
    }

    /// Number of nodes (including the sentinel).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.slots.len() / FANOUT
    }

    /// Memory consumed by the node arena in bytes (the paper's "ACT \[MB\]").
    #[inline]
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u64>()
    }

    /// Number of `insert` calls (cells before denormalization).
    #[inline]
    pub fn inserted_cells(&self) -> u64 {
        self.inserted_cells
    }

    /// Number of slots written (cells after denormalization) — the
    /// fine-grained "indexed cells" count.
    #[inline]
    pub fn denormalized_slots(&self) -> u64 {
        self.denormalized_slots
    }

    /// Walks the trie and gathers structural statistics.
    pub fn stats(&self) -> TrieStats {
        let mut st = TrieStats::default();
        for f in 0..6 {
            if self.roots[f] != 0 {
                self.stats_rec(self.roots[f] as usize, 0, &mut st);
            }
        }
        st
    }

    fn stats_rec(&self, node: usize, depth: usize, st: &mut TrieStats) {
        if st.nodes_per_depth.len() <= depth {
            st.nodes_per_depth.resize(depth + 1, 0);
            st.occupied_per_depth.resize(depth + 1, 0);
        }
        st.nodes_per_depth[depth] += 1;
        for s in 0..FANOUT {
            let e = self.slots[node * FANOUT + s];
            if e == 0 {
                continue;
            }
            st.occupied_per_depth[depth] += 1;
            match e & TAG_MASK {
                TAG_CHILD => self.stats_rec((e >> 2) as usize, depth + 1, st),
                TAG_ONE => st.terminals.0 += 1,
                TAG_TWO => st.terminals.1 += 1,
                _ => st.terminals.2 += 1,
            }
        }
    }

    // ---- live mutation (incremental inserts / removals) ----------------
    //
    // The walks below are the write-side complement of the probe walks:
    // they invert denormalization (maximal aligned uniform slot runs map
    // back to cells), extract the `(cell, refs)` pairs a region holds,
    // and zero what they extracted so `insert` can repopulate the freed
    // slots. Child nodes cut loose this way stay in the arena as all-zero
    // orphans until [`crate::ActIndex::compact`] rewrites it.

    /// The maximal aligned uniform run containing slot `s` of `node`
    /// (entry `e`, non-child). May merge sibling cells that happen to
    /// carry the same entry — probe-equivalent, since every leaf in the
    /// merged block resolves to the same entry either way.
    fn expand_run(&self, node: usize, s: usize, e: u64) -> (usize, usize) {
        for size in [256usize, 64, 16, 4] {
            let base = s & !(size - 1);
            if self.slots[node * FANOUT + base..node * FANOUT + base + size]
                .iter()
                .all(|&x| x == e)
            {
                return (base, size);
            }
        }
        (s, 1)
    }

    /// Zeroes an extracted run and keeps the insertion counters honest.
    fn zero_run(&mut self, node: usize, base: usize, size: usize) {
        for s in base..base + size {
            self.slots[node * FANOUT + s] = 0;
        }
        self.denormalized_slots = self.denormalized_slots.saturating_sub(size as u64);
        self.inserted_cells = self.inserted_cells.saturating_sub(1);
    }

    /// Extracts every `(cell, refs)` pair stored under `node` (which
    /// covers `node_cell`), in range order. With `zero`, also clears the
    /// visited slots — the subtree's nodes become all-zero orphans,
    /// counted in `waste`.
    fn extract_node(
        &mut self,
        node: usize,
        node_cell: CellId,
        words: &[u32],
        out: &mut Vec<(CellId, RefSet)>,
        zero: bool,
        waste: &mut MutationWaste,
    ) {
        let mut s = 0usize;
        while s < FANOUT {
            let e = self.slots[node * FANOUT + s];
            if e == 0 {
                s += 1;
                continue;
            }
            if e & TAG_MASK == TAG_CHILD {
                let idx = (e >> 2) as usize;
                self.extract_node(idx, slot_cell(node_cell, s), words, out, zero, waste);
                if zero {
                    self.slots[node * FANOUT + s] = 0;
                    waste.orphaned_nodes += 1;
                }
                s += 1;
            } else {
                // Left-to-right greedy: at an aligned boundary a uniform
                // block this large is maximal (a larger one would have
                // been taken at its own boundary).
                let mut size = 1usize;
                for cand in [256usize, 64, 16, 4] {
                    if s.is_multiple_of(cand)
                        && self.slots[node * FANOUT + s..node * FANOUT + s + cand]
                            .iter()
                            .all(|&x| x == e)
                    {
                        size = cand;
                        break;
                    }
                }
                out.push((run_cell(node_cell, s, size), entry_refset(e, words)));
                if zero {
                    self.zero_run(node, s, size);
                }
                s += size;
            }
        }
    }

    /// Extracts the full live cell set `(cell, refs)` in range order —
    /// the compaction source. The trie is left untouched.
    pub(crate) fn extract_all(&mut self, words: &[u32]) -> Vec<(CellId, RefSet)> {
        let mut out = Vec::new();
        let mut waste = MutationWaste::default();
        for f in 0..6u8 {
            let root = self.roots[f as usize] as usize;
            if root != 0 {
                self.extract_node(
                    root,
                    CellId::from_face(f),
                    words,
                    &mut out,
                    false,
                    &mut waste,
                );
            }
        }
        out
    }

    /// Collects every polygon id held inline in `ONE`/`TWO` entries by a
    /// flat scan of the whole arena — orphaned nodes included, so
    /// together with a lookup-table scan the result is a *superset* of
    /// the ids the index can still answer with. One sequential pass over
    /// the slot array; no tree walk.
    pub(crate) fn collect_inline_ids(&self, into: &mut std::collections::BTreeSet<u32>) {
        // Denormalization writes the same entry across aligned runs of
        // up to 256 slots, so skipping consecutive repeats removes the
        // bulk of the set insertions (the scan itself stays linear).
        let mut prev = 0u64;
        for &e in &self.slots {
            if e == prev {
                continue;
            }
            prev = e;
            match e & TAG_MASK {
                TAG_ONE => {
                    into.insert(PolygonRef::decode((e >> 2) as u32 & 0x7FFF_FFFF).id);
                }
                TAG_TWO => {
                    into.insert(PolygonRef::decode((e >> 2) as u32 & 0x7FFF_FFFF).id);
                    into.insert(PolygonRef::decode((e >> 33) as u32 & 0x7FFF_FFFF).id);
                }
                _ => {}
            }
        }
    }

    /// Extracts and clears every indexed cell overlapping `cell` (the
    /// cell's ancestors, itself, and its descendants — quadtree cells are
    /// laminar, so nothing else can overlap). After this returns, `cell`'s
    /// whole territory probes as a miss and [`Act::insert`] can write into
    /// it. Extracted ancestor runs may extend beyond `cell` (a coarser
    /// denormalized run covers it); those slots are cleared too, and the
    /// returned pairs carry everything needed to re-insert them.
    pub(crate) fn clear_overlaps(
        &mut self,
        cell: CellId,
        words: &[u32],
        out: &mut Vec<(CellId, RefSet)>,
        waste: &mut MutationWaste,
    ) {
        debug_assert!(cell.is_valid());
        let level = cell.level();
        assert!(
            level <= MAX_INDEX_LEVEL,
            "cell level exceeds MAX_INDEX_LEVEL"
        );
        let face = cell.face();
        let mut node = self.roots[face as usize] as usize;
        if node == 0 {
            return;
        }
        let mut node_cell = CellId::from_face(face);
        if level == 0 {
            // A face cell overlaps everything on the face.
            self.extract_node(node, node_cell, words, out, true, waste);
            return;
        }
        let d_last = ((level - 1) / GRANULARITY) as u32;
        for d in 0..d_last {
            let b = cell.key_byte(d) as usize;
            let e = self.slots[node * FANOUT + b];
            match e & TAG_MASK {
                TAG_CHILD => {
                    let idx = (e >> 2) as usize;
                    if idx == 0 {
                        return; // nothing indexed under here
                    }
                    node_cell = slot_cell(node_cell, b);
                    node = idx;
                }
                _ => {
                    // An ancestor terminal covers `cell` entirely: its
                    // denormalized run is the only overlap.
                    let (base, size) = self.expand_run(node, b, e);
                    out.push((run_cell(node_cell, base, size), entry_refset(e, words)));
                    self.zero_run(node, base, size);
                    return;
                }
            }
        }
        // Final node: the slot range `cell` denormalizes to. Runs are
        // aligned, so each either lies inside the range or contains it.
        let bits = 2 * (level as u32 - GRANULARITY as u32 * d_last);
        let byte = cell.key_byte(d_last) as usize;
        let base = byte & !((1usize << (8 - bits)) - 1);
        let count = 1usize << (8 - bits);
        let mut s = base;
        while s < base + count {
            let e = self.slots[node * FANOUT + s];
            if e == 0 {
                s += 1;
                continue;
            }
            if e & TAG_MASK == TAG_CHILD {
                let idx = (e >> 2) as usize;
                if idx != 0 {
                    self.extract_node(idx, slot_cell(node_cell, s), words, out, true, waste);
                    self.slots[node * FANOUT + s] = 0;
                    waste.orphaned_nodes += 1;
                }
                s += 1;
            } else {
                let (rbase, rsize) = self.expand_run(node, s, e);
                out.push((run_cell(node_cell, rbase, rsize), entry_refset(e, words)));
                self.zero_run(node, rbase, rsize);
                s = rbase + rsize; // a containing run ends past the range
            }
        }
    }

    /// Strips references to polygon `id` under `cell`'s territory only,
    /// tombstoning in place: terminal runs are rewritten (`Two`→`One`,
    /// `Many`→ smaller set, sole ref → empty), emptied subtrees under
    /// the territory are pruned so probes into them miss, and superseded
    /// `Many` entries leave their old words in the table as garbage
    /// (counted in `waste`). The descent also handles the run *covering*
    /// `cell` when its slots were merged into a coarser denormalized
    /// ancestor run. This is the per-id-inventory complement of the old
    /// whole-arena removal walk: [`crate::ActIndex`] records which cells
    /// each id touched at insert time, so removal visits exactly those
    /// territories — O(cells touched), not O(arena). Idempotent per
    /// cell; a stale inventory entry (territory no longer referencing
    /// `id`) rewrites nothing. `memo` caches entry rewrites across the
    /// calls of one removal; `changed` accumulates whether any slot was
    /// rewritten.
    pub(crate) fn remove_refs_in_cell(
        &mut self,
        cell: CellId,
        id: u32,
        tb: &mut LookupTableBuilder,
        memo: &mut std::collections::HashMap<u64, u64>,
        changed: &mut bool,
        waste: &mut MutationWaste,
    ) {
        debug_assert!(cell.is_valid());
        let level = cell.level();
        assert!(
            level <= MAX_INDEX_LEVEL,
            "cell level exceeds MAX_INDEX_LEVEL"
        );
        let face = cell.face();
        let root = self.roots[face as usize] as usize;
        if root == 0 {
            return;
        }
        if level == 0 {
            // A face cell's territory is the whole root subtree.
            if self.remove_rec(root, id, tb, memo, changed, waste) {
                self.roots[face as usize] = 0;
                waste.orphaned_nodes += 1;
            }
            return;
        }
        let mut node = root;
        // The descent path (node per depth), for bottom-up pruning of
        // nodes the rewrite empties — the waste they become must be
        // counted or lazy compaction would never see tombstone garbage.
        let mut path = [0usize; 8];
        path[0] = root;
        let d_last = ((level - 1) / GRANULARITY) as u32;
        for d in 0..d_last {
            let b = cell.key_byte(d) as usize;
            let e = self.slots[node * FANOUT + b];
            match e & TAG_MASK {
                TAG_CHILD => {
                    let idx = (e >> 2) as usize;
                    if idx == 0 {
                        return; // nothing indexed under here
                    }
                    node = idx;
                    path[d as usize + 1] = idx;
                }
                _ => {
                    // An ancestor terminal covers `cell` entirely: its
                    // denormalized run is the only territory to rewrite.
                    let (rbase, rsize) = self.expand_run(node, b, e);
                    self.rewrite_run(node, rbase, rsize, e, id, tb, memo, changed, waste);
                    self.prune_path(cell, &path[..d as usize + 1], waste);
                    return;
                }
            }
        }
        // Final node: the slot range `cell` denormalizes to. Runs are
        // aligned, so each either lies inside the range or contains it.
        let bits = 2 * (level as u32 - GRANULARITY as u32 * d_last);
        let byte = cell.key_byte(d_last) as usize;
        let base = byte & !((1usize << (8 - bits)) - 1);
        let count = 1usize << (8 - bits);
        let mut s = base;
        while s < base + count {
            let e = self.slots[node * FANOUT + s];
            if e == 0 {
                s += 1;
                continue;
            }
            if e & TAG_MASK == TAG_CHILD {
                let idx = (e >> 2) as usize;
                if idx != 0 && self.remove_rec(idx, id, tb, memo, changed, waste) {
                    self.slots[node * FANOUT + s] = 0;
                    waste.orphaned_nodes += 1;
                }
                s += 1;
            } else {
                let (rbase, rsize) = self.expand_run(node, s, e);
                self.rewrite_run(node, rbase, rsize, e, id, tb, memo, changed, waste);
                s = rbase + rsize; // a containing run ends past the range
            }
        }
        self.prune_path(cell, &path[..d_last as usize + 1], waste);
    }

    /// Prunes the descent path bottom-up after a targeted removal: each
    /// node the rewrite left all-zero is cut from its parent (or its
    /// face root) and counted as an orphan, so probes into the emptied
    /// territory short-circuit and the waste metric sees the garbage.
    fn prune_path(&mut self, cell: CellId, path: &[usize], waste: &mut MutationWaste) {
        for d in (0..path.len()).rev() {
            let node = path[d];
            if !self.slots[node * FANOUT..(node + 1) * FANOUT]
                .iter()
                .all(|&x| x == 0)
            {
                return;
            }
            if d == 0 {
                self.roots[cell.face() as usize] = 0;
            } else {
                let b = cell.key_byte(d as u32 - 1) as usize;
                self.slots[path[d - 1] * FANOUT + b] = 0;
            }
            waste.orphaned_nodes += 1;
        }
    }

    /// Rewrites one terminal run without polygon `id` (memoized), keeping
    /// the slot counters honest when the run empties.
    #[allow(clippy::too_many_arguments)]
    fn rewrite_run(
        &mut self,
        node: usize,
        rbase: usize,
        rsize: usize,
        e: u64,
        id: u32,
        tb: &mut LookupTableBuilder,
        memo: &mut std::collections::HashMap<u64, u64>,
        changed: &mut bool,
        waste: &mut MutationWaste,
    ) {
        let ne = match memo.get(&e) {
            Some(&ne) => ne,
            None => {
                let ne = rewrite_without(e, id, tb, waste);
                memo.insert(e, ne);
                ne
            }
        };
        if ne != e {
            *changed = true;
            for i in rbase..rbase + rsize {
                self.slots[node * FANOUT + i] = ne;
            }
            if ne == 0 {
                self.denormalized_slots = self.denormalized_slots.saturating_sub(rsize as u64);
                self.inserted_cells = self.inserted_cells.saturating_sub(1);
            }
        }
    }

    /// Returns true when `node` is all-zero after the rewrite.
    fn remove_rec(
        &mut self,
        node: usize,
        id: u32,
        tb: &mut LookupTableBuilder,
        memo: &mut std::collections::HashMap<u64, u64>,
        changed: &mut bool,
        waste: &mut MutationWaste,
    ) -> bool {
        let mut all_zero = true;
        let mut s = 0usize;
        while s < FANOUT {
            let e = self.slots[node * FANOUT + s];
            if e == 0 {
                s += 1;
                continue;
            }
            if e & TAG_MASK == TAG_CHILD {
                let idx = (e >> 2) as usize;
                if self.remove_rec(idx, id, tb, memo, changed, waste) {
                    self.slots[node * FANOUT + s] = 0;
                    waste.orphaned_nodes += 1;
                } else {
                    all_zero = false;
                }
                s += 1;
            } else {
                let (rbase, rsize) = self.expand_run(node, s, e);
                let ne = match memo.get(&e) {
                    Some(&ne) => ne,
                    None => {
                        let ne = rewrite_without(e, id, tb, waste);
                        memo.insert(e, ne);
                        ne
                    }
                };
                if ne != e {
                    *changed = true;
                    for i in rbase..rbase + rsize {
                        self.slots[node * FANOUT + i] = ne;
                    }
                    if ne == 0 {
                        self.denormalized_slots =
                            self.denormalized_slots.saturating_sub(rsize as u64);
                        self.inserted_cells = self.inserted_cells.saturating_sub(1);
                    }
                }
                if ne != 0 {
                    all_zero = false;
                }
                s = rbase + rsize;
            }
        }
        all_zero
    }
}

/// Rewrites a terminal entry with polygon `id`'s reference dropped;
/// returns the entry unchanged when it does not reference `id`, and `0`
/// when `id` was its only reference. A shrunk `Many` set re-interns into
/// `tb` (the old entry's words become table garbage, counted in `waste`).
fn rewrite_without(e: u64, id: u32, tb: &mut LookupTableBuilder, waste: &mut MutationWaste) -> u64 {
    match e & TAG_MASK {
        TAG_ONE => {
            let r = PolygonRef::decode((e >> 2) as u32 & 0x7FFF_FFFF);
            if r.id == id {
                0
            } else {
                e
            }
        }
        TAG_TWO => {
            let a = PolygonRef::decode((e >> 2) as u32 & 0x7FFF_FFFF);
            let b = PolygonRef::decode((e >> 33) as u32 & 0x7FFF_FFFF);
            match (a.id == id, b.id == id) {
                (false, false) => e,
                (true, false) => encode_one(b.encode()),
                (false, true) => encode_one(a.encode()),
                (true, true) => 0, // ids are unique per set; defensive
            }
        }
        TAG_OFFSET => {
            let off = (e >> 2) as u32 & 0x7FFF_FFFF;
            let (t, c) = crate::lookup::decode_at(tb.words(), off);
            if !t.contains(&id) && !c.contains(&id) {
                return e;
            }
            waste.stale_table_words += (t.len() + c.len() + 2) as u64;
            let mut v: Vec<PolygonRef> = t
                .iter()
                .filter(|&&x| x != id)
                .map(|&x| PolygonRef::true_hit(x))
                .chain(
                    c.iter()
                        .filter(|&&x| x != id)
                        .map(|&x| PolygonRef::candidate(x)),
                )
                .collect();
            v.sort_unstable_by_key(|r| r.id);
            match v.len() {
                0 => 0,
                1 => encode_one(v[0].encode()),
                2 => encode_two(v[0].encode(), v[1].encode()),
                _ => encode_offset(tb.intern(&RefSet::Many(v))),
            }
        }
        _ => unreachable!("child entries are handled by the walk"),
    }
}

/// Resolves a [`Probe`] into an iterator over `(polygon id, is_true_hit)`
/// pairs, consulting the lookup table when necessary.
#[inline]
pub fn resolve_probe<'a>(
    probe: Probe,
    table: &'a LookupTable,
) -> impl Iterator<Item = (u32, bool)> + 'a {
    resolve_probe_words(probe, table.words())
}

/// [`resolve_probe`] over the raw lookup-table word array — the shared
/// implementation behind the owned table and borrowed snapshot views.
#[inline]
pub(crate) fn resolve_probe_words(
    probe: Probe,
    words: &[u32],
) -> impl Iterator<Item = (u32, bool)> + '_ {
    // A small state machine keeps the common One/Two cases allocation-free.
    type Decoded<'t> = ([Option<PolygonRef>; 2], Option<(&'t [u32], &'t [u32])>);
    let (inline, slices): Decoded<'_> = match probe {
        Probe::Miss => ([None, None], None),
        Probe::One(a) => ([Some(a), None], None),
        Probe::Two(a, b) => ([Some(a), Some(b)], None),
        Probe::Table(off) => ([None, None], Some(crate::lookup::decode_at(words, off))),
    };
    let inline_iter = inline.into_iter().flatten().map(|r| (r.id, r.interior));
    let table_iter = slices.into_iter().flat_map(|(t, c)| {
        t.iter()
            .map(|&id| (id, true))
            .chain(c.iter().map(|&id| (id, false)))
    });
    inline_iter.chain(table_iter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2cell::LatLng;

    fn nyc_leaf(lat: f64, lng: f64) -> CellId {
        CellId::from_latlng(LatLng::from_degrees(lat, lng))
    }

    #[test]
    fn empty_trie_misses() {
        let act = Act::new();
        assert_eq!(act.lookup(nyc_leaf(40.7, -74.0)), Probe::Miss);
        assert_eq!(act.num_nodes(), 1); // sentinel only
    }

    #[test]
    fn single_cell_hit_and_miss() {
        let mut act = Act::new();
        let mut tb = LookupTableBuilder::new();
        let leaf = nyc_leaf(40.7580, -73.9855);
        let cell = leaf.parent(16);
        act.insert(cell, &RefSet::single(PolygonRef::true_hit(7)), &mut tb);
        // Any leaf inside the cell hits.
        assert_eq!(act.lookup(leaf), Probe::One(PolygonRef::true_hit(7)));
        assert_eq!(
            act.lookup(cell.child(3).child(0).range_min()),
            Probe::One(PolygonRef::true_hit(7))
        );
        // A leaf outside misses.
        let outside = nyc_leaf(41.5, -74.0);
        assert_eq!(act.lookup(outside), Probe::Miss);
        assert_eq!(act.inserted_cells(), 1);
    }

    #[test]
    fn unaligned_levels_are_denormalized() {
        // Levels 17..20 all live in the depth-5 node; a level-17 cell spans
        // 64 slots, 18 → 16, 19 → 4, 20 → 1.
        for (level, span) in [(17u8, 64u64), (18, 16), (19, 4), (20, 1)] {
            let mut act = Act::new();
            let mut tb = LookupTableBuilder::new();
            let leaf = nyc_leaf(40.7580, -73.9855);
            let cell = leaf.parent(level);
            act.insert(cell, &RefSet::single(PolygonRef::candidate(1)), &mut tb);
            assert_eq!(act.denormalized_slots(), span, "level {level}");
            // Every descendant leaf of the cell must hit...
            assert_eq!(act.lookup(leaf), Probe::One(PolygonRef::candidate(1)));
            assert_eq!(
                act.lookup(cell.range_min()),
                Probe::One(PolygonRef::candidate(1))
            );
            assert_eq!(
                act.lookup(cell.range_max()),
                Probe::One(PolygonRef::candidate(1))
            );
            // ...and the neighbor cell must miss.
            assert_eq!(act.lookup(CellId(cell.range_max().0 + 2)), Probe::Miss);
        }
    }

    #[test]
    fn two_payloads_inline() {
        let mut act = Act::new();
        let mut tb = LookupTableBuilder::new();
        let cell = nyc_leaf(40.7, -74.0).parent(12);
        let refs = RefSet::Two(PolygonRef::true_hit(3), PolygonRef::candidate(9));
        act.insert(cell, &refs, &mut tb);
        match act.lookup(cell.range_min()) {
            Probe::Two(a, b) => {
                assert_eq!(a, PolygonRef::true_hit(3));
                assert_eq!(b, PolygonRef::candidate(9));
            }
            other => panic!("expected Two, got {other:?}"),
        }
        // No lookup table entries were created for inlined payloads.
        assert_eq!(tb.build().len_words(), 0);
    }

    #[test]
    fn three_refs_go_to_lookup_table() {
        let mut act = Act::new();
        let mut tb = LookupTableBuilder::new();
        let cell = nyc_leaf(40.7, -74.0).parent(8);
        let refs = RefSet::Many(vec![
            PolygonRef::true_hit(1),
            PolygonRef::candidate(2),
            PolygonRef::candidate(3),
        ]);
        act.insert(cell, &refs, &mut tb);
        let table = tb.build();
        match act.lookup(cell.range_min()) {
            Probe::Table(off) => {
                let (t, c) = table.decode(off);
                assert_eq!(t, &[1]);
                assert_eq!(c, &[2, 3]);
            }
            other => panic!("expected Table, got {other:?}"),
        }
    }

    #[test]
    fn disjoint_cells_in_same_node() {
        // A level-18 cell and a sibling level-20 cell share the depth-5
        // node but disjoint slot ranges.
        let mut act = Act::new();
        let mut tb = LookupTableBuilder::new();
        let leaf = nyc_leaf(40.7580, -73.9855);
        let a = leaf.parent(18);
        // A level-20 cell in the *other half* of the level-16 ancestor.
        let anc = leaf.parent(16);
        let mut other = anc.child(0);
        if a.parent(17) == other {
            other = anc.child(1);
        }
        let b = other.child(2).child(1).child(3).parent(20);
        act.insert(a, &RefSet::single(PolygonRef::true_hit(1)), &mut tb);
        act.insert(b, &RefSet::single(PolygonRef::true_hit(2)), &mut tb);
        assert_eq!(act.lookup(leaf), Probe::One(PolygonRef::true_hit(1)));
        assert_eq!(
            act.lookup(b.range_min()),
            Probe::One(PolygonRef::true_hit(2))
        );
    }

    #[test]
    #[should_panic(expected = "nested")]
    fn nested_insert_panics() {
        let mut act = Act::new();
        let mut tb = LookupTableBuilder::new();
        let leaf = nyc_leaf(40.7, -74.0);
        act.insert(
            leaf.parent(8),
            &RefSet::single(PolygonRef::true_hit(1)),
            &mut tb,
        );
        act.insert(
            leaf.parent(16),
            &RefSet::single(PolygonRef::true_hit(2)),
            &mut tb,
        );
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn duplicate_insert_panics() {
        let mut act = Act::new();
        let mut tb = LookupTableBuilder::new();
        let cell = nyc_leaf(40.7, -74.0).parent(12);
        act.insert(cell, &RefSet::single(PolygonRef::true_hit(1)), &mut tb);
        act.insert(cell, &RefSet::single(PolygonRef::true_hit(2)), &mut tb);
    }

    #[test]
    fn level_and_face_boundaries() {
        let mut act = Act::new();
        let mut tb = LookupTableBuilder::new();
        // Level 28 (max indexable).
        let leaf = nyc_leaf(40.7, -74.0);
        act.insert(
            leaf.parent(28),
            &RefSet::single(PolygonRef::true_hit(5)),
            &mut tb,
        );
        assert_eq!(act.lookup(leaf), Probe::One(PolygonRef::true_hit(5)));
        // Different faces are independent roots.
        let other_face = CellId::from_latlng(LatLng::from_degrees(0.0, 0.0));
        assert_eq!(act.lookup(other_face), Probe::Miss);
        act.insert(
            other_face.parent(4),
            &RefSet::single(PolygonRef::candidate(6)),
            &mut tb,
        );
        assert_eq!(act.lookup(other_face), Probe::One(PolygonRef::candidate(6)));
        assert_eq!(act.lookup(leaf), Probe::One(PolygonRef::true_hit(5)));
    }

    #[test]
    fn face_cell_insert() {
        let mut act = Act::new();
        let mut tb = LookupTableBuilder::new();
        let face_cell = CellId::from_face(2);
        act.insert(face_cell, &RefSet::single(PolygonRef::true_hit(0)), &mut tb);
        let p = CellId::from_latlng(LatLng::from_degrees(89.0, 10.0)); // near north pole, face 2
        assert_eq!(p.face(), 2);
        assert_eq!(act.lookup(p), Probe::One(PolygonRef::true_hit(0)));
    }

    #[test]
    fn max_node_accesses_bounded() {
        // kmax = 56 bits / 8 bits per level = 7 node accesses. The stats
        // walk must never report depth > 6 (0-based).
        let mut act = Act::new();
        let mut tb = LookupTableBuilder::new();
        let leaf = nyc_leaf(40.7580, -73.9855);
        for level in [4u8, 11, 19, 28] {
            let mut a = Act::new();
            a.insert(
                leaf.parent(level),
                &RefSet::single(PolygonRef::true_hit(1)),
                &mut tb,
            );
            let st = a.stats();
            assert!(st.nodes_per_depth.len() <= 7);
        }
        act.insert(
            leaf.parent(28),
            &RefSet::single(PolygonRef::true_hit(1)),
            &mut tb,
        );
        assert_eq!(act.stats().nodes_per_depth.len(), 7);
    }

    #[test]
    fn lookup_batch_matches_scalar() {
        let mut act = Act::new();
        let mut tb = LookupTableBuilder::new();
        let leaf = nyc_leaf(40.7580, -73.9855);
        act.insert(
            leaf.parent(18),
            &RefSet::single(PolygonRef::true_hit(1)),
            &mut tb,
        );
        let anc = leaf.parent(16);
        let mut half = anc.child(0);
        if leaf.parent(17) == half {
            half = anc.child(1);
        }
        act.insert(
            half.child(2).child(1).child(3),
            &RefSet::Two(PolygonRef::true_hit(2), PolygonRef::candidate(3)),
            &mut tb,
        );
        let other_face = CellId::from_latlng(LatLng::from_degrees(0.0, 0.0));
        act.insert(
            other_face.parent(6),
            &RefSet::Many(vec![
                PolygonRef::true_hit(4),
                PolygonRef::candidate(5),
                PolygonRef::candidate(6),
            ]),
            &mut tb,
        );
        // Queries spanning hits on two faces, misses, and an empty face —
        // sized to exercise multiple internal blocks.
        let mut queries = Vec::new();
        for k in 0..600u64 {
            queries.push(CellId(leaf.parent(18).range_min().0 + 2 * k));
            queries.push(CellId(other_face.range_min().0 + 2 * k));
            queries.push(nyc_leaf(41.5, -74.0 + 0.0001 * k as f64));
            queries.push(CellId::from_latlng(LatLng::from_degrees(-41.0, 100.0)));
        }
        queries.push(half.child(2).child(1).child(3).range_min());
        queries.push(half.child(2).child(1).child(3).range_max());
        let mut out = vec![Probe::Miss; queries.len()];
        act.lookup_batch(&queries, &mut out);
        for (q, got) in queries.iter().zip(&out) {
            assert_eq!(*got, act.lookup(*q), "query {q:?}");
        }
        assert!(out.iter().any(|p| matches!(p, Probe::One(_))));
        assert!(out.iter().any(|p| matches!(p, Probe::Two(..))));
        assert!(out.iter().any(|p| matches!(p, Probe::Table(_))));
        assert!(out.iter().any(|p| matches!(p, Probe::Miss)));
    }

    #[test]
    fn lookup_batch_depths_matches_probes_and_slot_levels() {
        let mut act = Act::new();
        let mut tb = LookupTableBuilder::new();
        let leaf = nyc_leaf(40.7580, -73.9855);
        act.insert(
            leaf.parent(18),
            &RefSet::single(PolygonRef::true_hit(1)),
            &mut tb,
        );
        let anc = leaf.parent(3);
        let mut shallow = anc.child(0);
        if leaf.parent(4) == shallow {
            shallow = anc.child(1);
        }
        act.insert(
            shallow,
            &RefSet::Two(PolygonRef::true_hit(2), PolygonRef::candidate(3)),
            &mut tb,
        );
        let other_face = CellId::from_latlng(LatLng::from_degrees(0.0, 0.0));
        act.insert(
            other_face.parent(28),
            &RefSet::single(PolygonRef::true_hit(4)),
            &mut tb,
        );
        // Hits at shallow and full depth, misses resolved mid-walk, a
        // run-off miss under the level-28 entry, and an empty face.
        let mut queries = vec![
            leaf,
            leaf.parent(18).range_min(),
            shallow.range_min(),
            other_face.parent(28).range_min(),
            CellId(other_face.parent(28).range_max().0 + 2),
            CellId::from_latlng(LatLng::from_degrees(-41.0, 100.0)),
        ];
        for k in 0..400u64 {
            queries.push(CellId(other_face.range_min().0 + 2 * k));
            queries.push(nyc_leaf(41.5, -74.0 + 0.0001 * k as f64));
        }
        let mut out = vec![Probe::Miss; queries.len()];
        let mut plain = vec![Probe::Miss; queries.len()];
        let mut depths = vec![0xffu8; queries.len()];
        act.lookup_batch_depths(&queries, &mut out, &mut depths);
        act.lookup_batch(&queries, &mut plain);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(out[i], plain[i], "probe mismatch for {q:?}");
            let (probe, slot_level) = act.lookup_with_slot_level(*q);
            assert_eq!(out[i], probe, "scalar probe mismatch for {q:?}");
            assert_eq!(
                u16::from(depths[i]) * 4,
                u16::from(slot_level),
                "depth {} vs slot level {} for {q:?}",
                depths[i],
                slot_level
            );
        }
        // All the depth classes we constructed must actually appear.
        assert!(depths.contains(&0), "empty-face depth 0");
        assert!(depths.iter().any(|&d| (1..7).contains(&d)), "mid-walk");
        assert!(depths.contains(&7), "full-depth walk");
    }

    #[test]
    fn lookup_batch_empty_and_empty_trie() {
        let act = Act::new();
        act.lookup_batch(&[], &mut []);
        let q = [nyc_leaf(40.7, -74.0)];
        let mut out = [Probe::One(PolygonRef::true_hit(9))];
        act.lookup_batch(&q, &mut out);
        assert_eq!(out[0], Probe::Miss);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn lookup_batch_length_mismatch_panics() {
        let act = Act::new();
        let q = [nyc_leaf(40.7, -74.0)];
        act.lookup_batch(&q, &mut []);
    }

    #[test]
    fn memory_accounting_matches_nodes() {
        let mut act = Act::new();
        let mut tb = LookupTableBuilder::new();
        act.insert(
            nyc_leaf(40.7, -74.0).parent(8),
            &RefSet::single(PolygonRef::true_hit(1)),
            &mut tb,
        );
        assert_eq!(act.memory_bytes(), act.num_nodes() * FANOUT * 8);
        // sentinel + root + depth-1 node = 3 nodes.
        assert_eq!(act.num_nodes(), 3);
    }

    #[test]
    fn probe_cell_key_is_prefix_and_depth_exact() {
        let q = CellId(0xABCD_EF01_2345_6789);
        // Depth 0 keeps only the face bits.
        assert_eq!(probe_cell_key(q, 0), q.0 & !(u64::MAX >> 3));
        // Each extra depth keeps one more consumed byte of the shifted key.
        for d in 1..=7u8 {
            let kept = 3 + 8 * u32::from(d);
            let want = (q.0 & !(u64::MAX >> kept)) | u64::from(d);
            assert_eq!(probe_cell_key(q, d), want, "depth {d}");
            // Same prefix ⇒ same key; a flipped bit below the prefix
            // must not change it.
            let below = q.0 ^ (1u64 << (63 - kept));
            assert_eq!(probe_cell_key(CellId(below), d), probe_cell_key(q, d));
            // A flipped bit inside the prefix must.
            let inside = q.0 ^ (1u64 << (64 - kept));
            assert_ne!(probe_cell_key(CellId(inside), d), probe_cell_key(q, d));
        }
        // Distinct depths of one query never collide.
        let keys: std::collections::HashSet<u64> =
            (0..=7u8).map(|d| probe_cell_key(q, d)).collect();
        assert_eq!(keys.len(), 8);
        // Depths past the walk's 7-level maximum clamp.
        assert_eq!(probe_cell_key(q, 9), probe_cell_key(q, 7));
    }

    #[test]
    fn resolve_probe_variants() {
        let table = {
            let mut b = LookupTableBuilder::new();
            b.intern(&RefSet::Many(vec![
                PolygonRef::true_hit(1),
                PolygonRef::true_hit(2),
                PolygonRef::candidate(3),
            ]));
            b.build()
        };
        let collect = |p: Probe| resolve_probe(p, &table).collect::<Vec<_>>();
        assert!(collect(Probe::Miss).is_empty());
        assert_eq!(
            collect(Probe::One(PolygonRef::true_hit(9))),
            vec![(9, true)]
        );
        assert_eq!(
            collect(Probe::Two(
                PolygonRef::candidate(4),
                PolygonRef::true_hit(5)
            )),
            vec![(4, false), (5, true)]
        );
        assert_eq!(
            collect(Probe::Table(0)),
            vec![(1, true), (2, true), (3, false)]
        );
    }
}
