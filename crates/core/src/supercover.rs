//! The super covering: merging per-polygon coverings into one global,
//! conflict-free cell set.
//!
//! Paper §II: *"Once the coverings of every polygon have been computed, we
//! merge these individual coverings into a super covering that represents
//! all polygons. This step involves removing duplicate cells and resolving
//! conflicts between overlapping cells. The latter may require additional
//! refinement steps and potentially increases the total number of cells."*
//!
//! Two kinds of conflicts exist (cells from a quadtree are *laminar*: any
//! two are either disjoint or nested):
//!
//! 1. **Duplicates** — the same cell appears in several coverings (e.g. a
//!    boundary cell on a shared border). Resolved by merging reference
//!    sets.
//! 2. **Nesting** — a cell of one polygon strictly contains a cell of
//!    another (possible when polygons overlap). Resolved by *pushing the
//!    ancestor down*: the ancestor is replaced by its four children, each
//!    inheriting its references, repeatedly, until no ancestor remains.
//!    This preserves semantics exactly (a cell's references apply to all
//!    its descendants: an interior cell's descendants are still interior;
//!    a boundary cell's descendants still satisfy the ε bound because they
//!    are smaller) and is the paper's "additional refinement".
//!
//! The result is a set of **disjoint, unique** cells, each with a merged
//! [`RefSet`] — exactly what [`crate::trie::Act::insert`] requires so that
//! a lookup returns at most one entry.

use crate::covering::Covering;
use crate::refs::{PolygonRef, RefSet};
use s2cell::CellId;

/// The merged covering of a whole polygon set.
#[derive(Debug, Default)]
pub struct SuperCovering {
    /// Disjoint cells with merged reference sets, sorted by id range.
    pub cells: Vec<(CellId, RefSet)>,
    /// Number of push-down splits performed during conflict resolution.
    pub pushdown_splits: u64,
}

impl SuperCovering {
    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if there are no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Builds the super covering from per-polygon coverings.
///
/// `coverings[i]` must be the covering of polygon id `i`.
pub fn build_super_covering(coverings: &[Covering]) -> SuperCovering {
    let mut items: Vec<(CellId, PolygonRef)> = Vec::new();
    for (poly_id, cov) in coverings.iter().enumerate() {
        let id = poly_id as u32;
        for &(cell, interior) in &cov.cells {
            items.push((cell, PolygonRef { id, interior }));
        }
    }
    build_from_pairs(items)
}

/// [`build_super_covering`], sharded by cube face across `pool`.
///
/// Cells on different faces can neither nest nor collide, and the global
/// sort key (`range_min`, whose top bits are the face) orders whole faces
/// contiguously — so merging each face independently and concatenating the
/// results in face order yields the **exact** cell sequence (and push-down
/// split count) of the serial merge. [`crate::ActIndex::build_parallel`]
/// relies on this for byte-identical arenas.
pub fn build_super_covering_sharded(coverings: &[Covering], pool: &jobs::JobPool) -> SuperCovering {
    let mut by_face: Vec<Vec<(CellId, PolygonRef)>> = (0..6).map(|_| Vec::new()).collect();
    for (poly_id, cov) in coverings.iter().enumerate() {
        let id = poly_id as u32;
        for &(cell, interior) in &cov.cells {
            by_face[cell.face() as usize].push((cell, PolygonRef { id, interior }));
        }
    }
    let parts = pool.map_owned(by_face, build_from_pairs);
    let mut out = SuperCovering::default();
    out.cells.reserve(parts.iter().map(|p| p.cells.len()).sum());
    for part in parts {
        out.cells.extend(part.cells);
        out.pushdown_splits += part.pushdown_splits;
    }
    out
}

/// Builds from raw `(cell, reference)` pairs (used by tests and by adaptive
/// extensions that inject extra cells).
pub fn build_from_pairs(mut items: Vec<(CellId, PolygonRef)>) -> SuperCovering {
    let mut pushdown_splits = 0u64;

    // Resolve nesting by repeated push-down. Quadtree cells are laminar, so
    // after sorting by (range_min, level) an ancestor immediately precedes
    // its first descendant; a stack scan finds all nestings in O(n).
    loop {
        items.sort_unstable_by_key(|(c, _)| (c.range_min().0, c.level()));
        let mut marked = vec![false; items.len()];
        let mut any = false;
        let mut stack: Vec<(usize, u64)> = Vec::new(); // (index, range_max)
        for (idx, (cell, _)) in items.iter().enumerate() {
            let min = cell.range_min().0;
            let max = cell.range_max().0;
            while let Some(&(_, top_max)) = stack.last() {
                if top_max < min {
                    stack.pop();
                } else {
                    break;
                }
            }
            for &(anc_idx, _) in &stack {
                // Everything on the stack whose range is strictly larger
                // contains this cell. Equal cells are duplicates (merged
                // later), not nestings.
                if items[anc_idx].0 != *cell && !marked[anc_idx] {
                    marked[anc_idx] = true;
                    any = true;
                }
            }
            stack.push((idx, max));
        }
        if !any {
            break;
        }
        // Split every marked ancestor one level down.
        let mut next: Vec<(CellId, PolygonRef)> = Vec::with_capacity(items.len() + 3);
        for (idx, (cell, r)) in items.iter().enumerate() {
            if marked[idx] {
                pushdown_splits += 1;
                for child in cell.children() {
                    next.push((child, *r));
                }
            } else {
                next.push((*cell, *r));
            }
        }
        items = next;
    }

    // Merge duplicates (items are sorted; equal cells are adjacent because
    // equal ids share (range_min, level)).
    let mut cells: Vec<(CellId, RefSet)> = Vec::with_capacity(items.len());
    for (cell, r) in items {
        match cells.last_mut() {
            Some((last, refs)) if *last == cell => refs.merge(r),
            _ => cells.push((cell, RefSet::single(r))),
        }
    }

    SuperCovering {
        cells,
        pushdown_splits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2cell::LatLng;

    fn leaf() -> CellId {
        CellId::from_latlng(LatLng::from_degrees(40.7580, -73.9855))
    }

    fn th(id: u32) -> PolygonRef {
        PolygonRef::true_hit(id)
    }

    fn ca(id: u32) -> PolygonRef {
        PolygonRef::candidate(id)
    }

    #[test]
    fn disjoint_cells_pass_through() {
        let a = leaf().parent(12);
        let b = CellId(a.range_max().0 + 2); // next sibling at level 12
        let sc = build_from_pairs(vec![(a, th(0)), (b, ca(1))]);
        assert_eq!(sc.len(), 2);
        assert_eq!(sc.pushdown_splits, 0);
    }

    #[test]
    fn duplicates_merge_refs() {
        let a = leaf().parent(14);
        let sc = build_from_pairs(vec![(a, ca(0)), (a, ca(1)), (a, th(2))]);
        assert_eq!(sc.len(), 1);
        let refs = &sc.cells[0].1;
        assert_eq!(refs.len(), 3);
        assert_eq!(refs.true_hits().collect::<Vec<_>>(), vec![2]);
        assert_eq!(refs.candidates().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn nesting_pushes_ancestor_down() {
        let descendant = leaf().parent(14);
        let ancestor = leaf().parent(12);
        let sc = build_from_pairs(vec![(ancestor, th(0)), (descendant, ca(1))]);
        assert!(sc.pushdown_splits > 0);
        // No cell may contain another.
        for i in 0..sc.cells.len() {
            for j in 0..sc.cells.len() {
                if i != j {
                    assert!(
                        !sc.cells[i].0.contains(sc.cells[j].0),
                        "{:?} contains {:?}",
                        sc.cells[i].0,
                        sc.cells[j].0
                    );
                }
            }
        }
        // The descendant cell must now carry both references.
        let d = sc
            .cells
            .iter()
            .find(|(c, _)| *c == descendant)
            .expect("descendant survives");
        assert_eq!(d.1.len(), 2);
        assert_eq!(d.1.true_hits().collect::<Vec<_>>(), vec![0]);
        assert_eq!(d.1.candidates().collect::<Vec<_>>(), vec![1]);
        // Area conservation: the ancestor's range is fully covered.
        let total: u128 = sc
            .cells
            .iter()
            .map(|(c, _)| c.range_max().0 as u128 - c.range_min().0 as u128 + 2)
            .sum();
        let anc_range = ancestor.range_max().0 as u128 - ancestor.range_min().0 as u128 + 2;
        assert_eq!(total, anc_range);
    }

    #[test]
    fn deep_nesting_resolves() {
        let descendant = leaf().parent(16);
        let ancestor = leaf().parent(10); // 6 levels apart
        let sc = build_from_pairs(vec![(ancestor, th(0)), (descendant, ca(1))]);
        // Push-down must recurse along the path: splits at levels 10..15.
        assert!(sc.pushdown_splits >= 6);
        for (cell, _) in &sc.cells {
            assert!(cell.level() >= 11 || !cell.contains(descendant));
        }
        // Every cell still within the ancestor's range carries ref 0.
        for (cell, refs) in &sc.cells {
            if ancestor.contains(*cell) {
                assert!(
                    refs.iter().any(|r| r.id == 0),
                    "cell {cell:?} lost the ancestor reference"
                );
            }
        }
    }

    #[test]
    fn three_way_overlap() {
        let l = leaf();
        let sc = build_from_pairs(vec![
            (l.parent(10), ca(0)),
            (l.parent(12), th(1)),
            (l.parent(14), ca(2)),
        ]);
        // The deepest cell ends up with all three references.
        let d = sc.cells.iter().find(|(c, _)| *c == l.parent(14)).unwrap();
        assert_eq!(d.1.len(), 3);
        // And the result is conflict-free.
        let mut sorted: Vec<CellId> = sc.cells.iter().map(|(c, _)| *c).collect();
        sorted.sort_by_key(|c| c.range_min().0);
        for w in sorted.windows(2) {
            assert!(w[0].range_max().0 < w[1].range_min().0);
        }
    }

    #[test]
    fn empty_input() {
        let sc = build_from_pairs(vec![]);
        assert!(sc.is_empty());
    }

    #[test]
    fn sharded_matches_serial_across_faces() {
        use crate::covering::Covering;
        // Coverings spanning three faces, with duplicates and nesting on
        // each face.
        let nyc = leaf(); // face 4
        let equator = CellId::from_latlng(LatLng::from_degrees(0.0, 0.0));
        let pole = CellId::from_latlng(LatLng::from_degrees(89.0, 10.0));
        assert_ne!(nyc.face(), equator.face());
        assert_ne!(equator.face(), pole.face());
        let coverings = vec![
            Covering {
                cells: vec![
                    (nyc.parent(12), true),
                    (equator.parent(10), false),
                    (pole.parent(8), true),
                ],
            },
            Covering {
                cells: vec![
                    (nyc.parent(14), false),    // nests under poly 0's cell
                    (equator.parent(10), true), // duplicate of poly 0's cell
                    (pole.parent(11), false),   // nests under poly 0's cell
                ],
            },
        ];
        let serial = build_super_covering(&coverings);
        for threads in [1usize, 2, 4] {
            let pool = jobs::JobPool::new(threads);
            let sharded = build_super_covering_sharded(&coverings, &pool);
            assert_eq!(sharded.pushdown_splits, serial.pushdown_splits);
            assert_eq!(sharded.cells.len(), serial.cells.len());
            for (a, b) in sharded.cells.iter().zip(&serial.cells) {
                assert_eq!(a.0, b.0);
                assert_eq!(
                    a.1.iter().collect::<Vec<_>>(),
                    b.1.iter().collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn true_hit_propagates_through_pushdown() {
        // An interior (true hit) ancestor pushed down onto a boundary cell:
        // the merged cell reports the polygon as a true hit (descendants of
        // interior cells are interior).
        let descendant = leaf().parent(13);
        let ancestor = leaf().parent(12);
        let sc = build_from_pairs(vec![(ancestor, th(7)), (descendant, ca(7))]);
        let d = sc.cells.iter().find(|(c, _)| *c == descendant).unwrap();
        assert_eq!(d.1.len(), 1);
        assert!(d.1.iter().next().unwrap().interior, "true hit must win");
    }
}
