//! The end-to-end index: polygons → coverings → super covering → ACT.
//!
//! [`ActIndex::build`] runs the full paper pipeline and records the metrics
//! reported in the paper's Table I (indexed cells, ACT size, lookup-table
//! size, covering build time, super-covering build time).

use crate::covering::{cover_uv_polygon, Covering, CoveringParams};
use crate::lookup::{LookupTable, LookupTableBuilder};
use crate::refs::MAX_POLYGON_ID;
use crate::snapshot::SnapshotError;
use crate::supercover::{build_super_covering, build_super_covering_sharded, SuperCovering};
use crate::trie::{Act, Probe};

use crate::uvpoly::{MultiFaceError, UvPolygon};
use geom::{Coord, Polygon};
use s2cell::{CellId, LatLng};
use std::time::Instant;

/// Build-phase metrics (the paper's Table I rows).
#[derive(Debug, Clone, Default)]
pub struct BuildStats {
    /// Precision bound ε in meters.
    pub precision_m: f64,
    /// Terminal level boundary cells were refined to.
    pub terminal_level: u8,
    /// Number of cells over all per-polygon coverings (pre-merge).
    pub covering_cells: u64,
    /// Cells in the merged super covering ("indexed cells").
    pub indexed_cells: u64,
    /// Slots written after denormalization.
    pub denormalized_slots: u64,
    /// Push-down splits during conflict resolution.
    pub pushdown_splits: u64,
    /// ACT node-arena size in bytes.
    pub act_bytes: usize,
    /// Lookup-table size in bytes.
    pub lookup_table_bytes: usize,
    /// Wall time to compute per-polygon coverings, seconds.
    pub build_coverings_secs: f64,
    /// Wall time to merge the super covering, seconds.
    pub build_supercover_secs: f64,
    /// Wall time to populate the trie, seconds.
    pub build_insert_secs: f64,
}

/// The query-ready index over a set of polygons.
///
/// Built once via [`ActIndex::build`] and then either served as-is or
/// mutated in place: [`ActIndex::insert_polygon`] and
/// [`ActIndex::remove_polygon`] edit the live trie (inserts append into
/// the node arena, removals tombstone references), and a lazy
/// [`ActIndex::compact`] rewrites the arena once the accumulated garbage
/// crosses [`ActIndex::COMPACT_WASTE_THRESHOLD`]. Compaction is
/// **time-bounded and resumable**: [`ActIndex::compact_deadline`] does a
/// deadline's worth of rebuild work off to the side (probes keep running
/// against the untouched live trie) and picks up where it left off on
/// the next call; a mutation in between invalidates the partial rebuild
/// and it restarts from the mutated state.
#[derive(Debug)]
pub struct ActIndex {
    act: Act,
    table: LookupTable,
    stats: BuildStats,
    /// Estimated garbage bytes accumulated by mutations since the last
    /// compaction (orphaned arena nodes + stale lookup-table words).
    /// Transient: not persisted in snapshots.
    waste_bytes: u64,
    /// Superset of the polygon ids the trie can reference (stale entries
    /// from tombstoned removals may linger until a compaction — that
    /// only costs a wasted scan, never a wrong answer). `None` until the
    /// first mutation (or [`ActIndex::prime_mutations`]) pays the one
    /// arena scan to build it; maintained incrementally afterwards so
    /// upserts of unseen ids skip the full-arena remove pass. Transient:
    /// not persisted in snapshots.
    live_ids: Option<std::collections::BTreeSet<u32>>,
    /// Per-id cell inventory: id → the cells whose territories may still
    /// reference it, recorded as inserts land. Removal walks exactly
    /// these territories instead of the whole node arena — O(cells
    /// touched), not O(arena). A *superset* per id (cells another insert
    /// later overwrote linger until a compaction rebuilds the inventory
    /// exact) — a stale entry only costs a no-op descent, never a wrong
    /// answer. `None` until the first mutation (or
    /// [`ActIndex::prime_mutations`]) pays one tree walk to build it.
    /// Transient: not persisted in snapshots.
    cell_inventory: Option<std::collections::HashMap<u32, Vec<CellId>>>,
    /// Bumped by every structural mutation; a paused [`CompactState`]
    /// snapshots it so interleaved mutations invalidate the partial
    /// rebuild instead of silently losing their edits.
    mutation_epoch: u64,
    /// Paused incremental compaction, if one is mid-flight.
    compact_state: Option<CompactState>,
    /// Deadline budget automatic (threshold-triggered) compactions run
    /// under; `None` keeps the historical run-to-completion behavior.
    compact_budget: Option<std::time::Duration>,
}

impl Clone for ActIndex {
    fn clone(&self) -> ActIndex {
        ActIndex {
            act: self.act.clone(),
            table: self.table.clone(),
            stats: self.stats.clone(),
            waste_bytes: self.waste_bytes,
            live_ids: self.live_ids.clone(),
            cell_inventory: self.cell_inventory.clone(),
            mutation_epoch: self.mutation_epoch,
            // A paused rebuild references only this index's state; the
            // clone restarts compaction on its own schedule.
            compact_state: None,
            compact_budget: self.compact_budget,
        }
    }
}

/// A paused incremental compaction: the live cell set extracted up
/// front, plus the replacement trie/table rebuilt `pos` cells deep.
struct CompactState {
    cells: Vec<(CellId, crate::refs::RefSet)>,
    pos: usize,
    act: Act,
    tb: LookupTableBuilder,
    /// The owner's [`ActIndex::mutation_epoch`] when extraction ran; a
    /// mismatch at resume time means the cell set is stale.
    epoch: u64,
}

impl std::fmt::Debug for CompactState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompactState")
            .field("pos", &self.pos)
            .field("cells", &self.cells.len())
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

/// Cells re-inserted between deadline checks during an incremental
/// compaction: coarse enough to amortize the clock read, fine enough
/// that a 5 ms budget is overshot by microseconds, not milliseconds.
const COMPACT_CHECK_EVERY: usize = 32;

impl ActIndex {
    /// Builds the index for `polygons` with precision bound `precision_m`
    /// meters. Polygon ids are the slice indices.
    ///
    /// # Errors
    /// Returns an error if any polygon spans multiple cube faces.
    ///
    /// # Panics
    /// Panics if more than 2³⁰ polygons are supplied (payloads hold 30-bit
    /// ids) or if the precision is below the ~6 cm level-28 limit.
    pub fn build(polygons: &[Polygon], precision_m: f64) -> Result<ActIndex, MultiFaceError> {
        assert!(
            polygons.len() <= MAX_POLYGON_ID as usize + 1,
            "more than 2^30 polygons"
        );
        let params = CoveringParams::new(precision_m);

        // Phase 1: per-polygon coverings. See build_parallel for the
        // fanned-out version; this serial loop is the reference the
        // parallel build must reproduce byte-for-byte.
        let t0 = Instant::now();
        let mut coverings = Vec::with_capacity(polygons.len());
        for poly in polygons {
            let uv = UvPolygon::from_polygon(poly)?;
            coverings.push(cover_uv_polygon(&uv, &params));
        }
        let covering_secs = t0.elapsed().as_secs_f64();

        Ok(Self::from_coverings(coverings, params, covering_secs))
    }

    /// [`ActIndex::build`] with both build hot spots fanned out over
    /// `pool`: per-polygon coverings (phase 1, embarrassingly parallel) and
    /// the super-covering merge (phase 2, sharded by cube face). The trie
    /// populate (phase 3) stays serial — it is a fraction of build time and
    /// arena allocation order must not depend on thread interleaving.
    ///
    /// Output is **deterministic**: coverings are collected in polygon
    /// order and face shards concatenate in face order, so the node arena,
    /// lookup table, and every [`BuildStats`] counter are identical to the
    /// serial build whatever `pool`'s width (only the wall-time fields
    /// differ). A 1-thread pool degenerates to inline execution.
    ///
    /// # Errors
    /// Returns an error if any polygon spans multiple cube faces.
    ///
    /// # Panics
    /// As [`ActIndex::build`].
    pub fn build_parallel(
        polygons: &[Polygon],
        precision_m: f64,
        pool: &jobs::JobPool,
    ) -> Result<ActIndex, MultiFaceError> {
        assert!(
            polygons.len() <= MAX_POLYGON_ID as usize + 1,
            "more than 2^30 polygons"
        );
        let params = CoveringParams::new(precision_m);

        // Phase 1: independent per-polygon coverings, in input order.
        let t0 = Instant::now();
        let coverings = pool
            .map(polygons, |poly| {
                UvPolygon::from_polygon(poly).map(|uv| cover_uv_polygon(&uv, &params))
            })
            .into_iter()
            .collect::<Result<Vec<Covering>, MultiFaceError>>()?;
        let covering_secs = t0.elapsed().as_secs_f64();

        let covering_cells: u64 = coverings.iter().map(|c| c.cells.len() as u64).sum();

        // Phase 2: super covering, one shard per cube face.
        let t1 = Instant::now();
        let sc = build_super_covering_sharded(&coverings, pool);
        drop(coverings);
        let supercover_secs = t1.elapsed().as_secs_f64();

        Ok(Self::finish(
            sc,
            params,
            covering_cells,
            covering_secs,
            supercover_secs,
        ))
    }

    /// Assembles the index from precomputed coverings (`coverings[i]` is
    /// polygon `i`'s). Exposed for parallel builds and ablations.
    pub fn from_coverings(
        coverings: Vec<Covering>,
        params: CoveringParams,
        covering_secs: f64,
    ) -> ActIndex {
        let covering_cells: u64 = coverings.iter().map(|c| c.cells.len() as u64).sum();

        // Phase 2: super covering (duplicate removal, conflict resolution).
        let t1 = Instant::now();
        let sc = build_super_covering(&coverings);
        drop(coverings);
        let supercover_secs = t1.elapsed().as_secs_f64();

        Self::finish(sc, params, covering_cells, covering_secs, supercover_secs)
    }

    /// Assembles an index directly from an already-merged super covering.
    /// Used by the adaptive index (which maintains its own cell set) and by
    /// baseline comparisons that share one covering across index types.
    pub fn from_supercover(
        sc: crate::supercover::SuperCovering,
        params: CoveringParams,
    ) -> ActIndex {
        Self::finish(sc, params, 0, 0.0, 0.0)
    }

    /// Phase 3 (trie populate) + stats assembly, shared by every build
    /// entry point.
    fn finish(
        sc: SuperCovering,
        params: CoveringParams,
        covering_cells: u64,
        covering_secs: f64,
        supercover_secs: f64,
    ) -> ActIndex {
        let t2 = Instant::now();
        let mut act = Act::new();
        let mut table_builder = LookupTableBuilder::new();
        for (cell, refs) in &sc.cells {
            act.insert(*cell, refs, &mut table_builder);
        }
        let table = table_builder.build();
        let insert_secs = t2.elapsed().as_secs_f64();

        let stats = BuildStats {
            precision_m: params.precision_m,
            terminal_level: params.terminal_level(),
            covering_cells,
            indexed_cells: sc.cells.len() as u64,
            denormalized_slots: act.denormalized_slots(),
            pushdown_splits: sc.pushdown_splits,
            act_bytes: act.memory_bytes(),
            lookup_table_bytes: table.memory_bytes(),
            build_coverings_secs: covering_secs,
            build_supercover_secs: supercover_secs,
            build_insert_secs: insert_secs,
        };

        ActIndex {
            act,
            table,
            stats,
            waste_bytes: 0,
            live_ids: None,
            cell_inventory: None,
            mutation_epoch: 0,
            compact_state: None,
            compact_budget: None,
        }
    }

    /// Reassembles an index from already-validated parts (snapshot load
    /// path; see [`crate::snapshot`]).
    pub(crate) fn from_parts(act: Act, table: LookupTable, stats: BuildStats) -> ActIndex {
        ActIndex {
            act,
            table,
            stats,
            waste_bytes: 0,
            live_ids: None,
            cell_inventory: None,
            mutation_epoch: 0,
            compact_state: None,
            compact_budget: None,
        }
    }

    /// Serializes the built index into the versioned snapshot format
    /// (see [`crate::snapshot`] for the layout), returning the number of
    /// bytes written. Loading the snapshot back — via
    /// [`ActIndex::load_snapshot`] or a zero-copy
    /// [`crate::snapshot::ActIndexView`] — reproduces the node arena,
    /// lookup table, and build stats exactly.
    ///
    /// # Errors
    /// Propagates I/O errors from `w`.
    pub fn save_snapshot(&self, w: &mut impl std::io::Write) -> Result<u64, SnapshotError> {
        crate::snapshot::save(self, w)
    }

    /// Reads a snapshot produced by [`ActIndex::save_snapshot`] into an
    /// owned index, validating magic, version, section structure, and the
    /// checksum before any field is used.
    ///
    /// # Errors
    /// Returns a typed [`SnapshotError`] on I/O failure or any form of
    /// corruption; never panics on malformed input.
    pub fn load_snapshot(r: &mut impl std::io::Read) -> Result<ActIndex, SnapshotError> {
        crate::snapshot::load(r)
    }

    /// Opens a snapshot file as a query-ready
    /// [`MappedSnapshot`](crate::snapshot::MappedSnapshot): memory-mapped
    /// where the platform allows (probes run off the page cache, warm
    /// loads copy almost nothing), an owned aligned heap read otherwise.
    /// This is the warm-start entry point a serving fleet wants —
    /// restarts ship snapshots, not polygon sets.
    ///
    /// # Errors
    /// As [`ActIndex::load_snapshot`].
    pub fn map_snapshot(
        path: impl AsRef<std::path::Path>,
    ) -> Result<crate::snapshot::MappedSnapshot, SnapshotError> {
        crate::snapshot::MappedSnapshot::open(path)
    }

    /// True when two indexes are the same query artifact byte for byte:
    /// node arena, roots, lookup-table words, and insertion counters all
    /// equal (build wall-times excluded — they are measurements, not
    /// index content). Used to verify snapshot round trips and parallel
    /// builds before recording benchmark numbers against them.
    pub fn identical_to(&self, other: &ActIndex) -> bool {
        self.act.slots() == other.act.slots()
            && self.act.roots() == other.act.roots()
            && self.act.inserted_cells() == other.act.inserted_cells()
            && self.act.denormalized_slots() == other.act.denormalized_slots()
            && self.table.words() == other.table.words()
    }

    /// Build metrics (Table I).
    #[inline]
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// The underlying trie (for structural inspection).
    #[inline]
    pub fn act(&self) -> &Act {
        &self.act
    }

    /// The lookup table.
    #[inline]
    pub fn table(&self) -> &LookupTable {
        &self.table
    }

    /// Total index memory (trie + lookup table) in bytes.
    #[inline]
    pub fn memory_bytes(&self) -> usize {
        self.act.memory_bytes() + self.table.memory_bytes()
    }

    /// Probes with a precomputed leaf cell id — the hot path.
    #[inline]
    pub fn probe_cell(&self, leaf: CellId) -> Probe {
        self.act.lookup(leaf)
    }

    /// Probes a batch of precomputed leaf cell ids, writing one [`Probe`]
    /// per query — the batched hot path (see [`Act::lookup_batch`] for why
    /// this beats a loop over [`ActIndex::probe_cell`]).
    ///
    /// # Panics
    /// Panics if `cells.len() != out.len()`.
    #[inline]
    pub fn probe_batch(&self, cells: &[CellId], out: &mut [Probe]) {
        self.act.lookup_batch(cells, out);
    }

    /// Probes with a lat/lng coordinate (degree-space `Coord`).
    #[inline]
    pub fn probe_coord(&self, c: Coord) -> Probe {
        self.act
            .lookup(CellId::from_latlng(LatLng::from_degrees(c.y, c.x)))
    }

    /// Returns the `(polygon id, is_true_hit)` pairs for a query point.
    pub fn lookup_refs(&self, c: Coord) -> Vec<(u32, bool)> {
        crate::trie::resolve_probe(self.probe_coord(c), &self.table).collect()
    }

    /// A borrowed zero-copy view over this index — the same query surface
    /// a mapped snapshot exposes, so serving code can treat owned
    /// (mutated) and mapped indexes uniformly.
    #[inline]
    pub fn as_view(&self) -> crate::snapshot::ActIndexView<'_> {
        crate::snapshot::ActIndexView::from_index(self)
    }

    // ---- live mutation --------------------------------------------------

    /// Waste fraction above which a mutation triggers [`ActIndex::compact`]
    /// automatically.
    pub const COMPACT_WASTE_THRESHOLD: f64 = 0.25;

    /// Inserts (or replaces — upsert semantics) polygon `id` into the live
    /// index, covering it at the index's precision bound. The covering is
    /// appended into the existing node arena; cells of other polygons that
    /// overlap the new covering are extracted, merged with it through the
    /// same conflict-resolution engine the full build uses, and
    /// re-inserted. Probe results afterwards are equivalent to a fresh
    /// rebuild over the updated polygon set (the mutation property tests
    /// assert exactly this against the cross-index oracles).
    ///
    /// # Errors
    /// Returns an error (leaving the index untouched) if the polygon spans
    /// multiple cube faces.
    ///
    /// # Panics
    /// Panics if `id` exceeds [`MAX_POLYGON_ID`].
    pub fn insert_polygon(&mut self, id: u32, polygon: &Polygon) -> Result<(), MultiFaceError> {
        assert!(id <= MAX_POLYGON_ID, "polygon id exceeds 30 bits");
        let params = CoveringParams::new(self.stats.precision_m);
        let uv = UvPolygon::from_polygon(polygon)?; // fail before mutating
        let covering = cover_uv_polygon(&uv, &params);

        // Upsert: any previous shape under this id goes first. The
        // live-id superset lets inserts of unseen ids — the common case
        // for delta streams — skip the removal pass entirely.
        self.ensure_live_ids();
        self.ensure_inventory();
        if self.may_contain(id) {
            self.remove_inner(id);
        }

        // Extract + clear everything overlapping the new covering, then
        // let the super-covering engine resolve the combined set. Its
        // outputs are descendants-or-equal of its inputs, i.e. confined
        // to the territory the clearing pass just freed, so re-insertion
        // cannot collide with surviving cells.
        let mut waste = crate::trie::MutationWaste::default();
        let mut affected: Vec<(CellId, crate::refs::RefSet)> = Vec::new();
        for &(cell, _) in &covering.cells {
            self.act
                .clear_overlaps(cell, self.table.words(), &mut affected, &mut waste);
        }
        let mut pairs: Vec<(CellId, crate::refs::PolygonRef)> =
            Vec::with_capacity(covering.cells.len() + affected.len());
        for &(cell, interior) in &covering.cells {
            pairs.push((cell, crate::refs::PolygonRef { id, interior }));
        }
        for (cell, refs) in &affected {
            for r in refs.iter() {
                pairs.push((*cell, r));
            }
        }
        let sc = crate::supercover::build_from_pairs(pairs);
        let mut tb = LookupTableBuilder::from_table(std::mem::take(&mut self.table));
        for (cell, refs) in &sc.cells {
            self.act.insert(*cell, refs, &mut tb);
        }
        self.table = tb.build();
        if let Some(ids) = &mut self.live_ids {
            ids.insert(id);
        }
        // Record where every re-inserted reference landed — the merged
        // set covers both the new polygon and its displaced neighbors,
        // so each touched id's inventory stays a territory superset.
        if let Some(inv) = &mut self.cell_inventory {
            for (cell, refs) in &sc.cells {
                for r in refs.iter() {
                    inv.entry(r.id).or_default().push(*cell);
                }
            }
        }
        self.note_mutation(waste);
        self.maybe_compact();
        Ok(())
    }

    /// Removes polygon `id` from the live index: every reference to it is
    /// tombstoned out of the trie, emptied subtrees are pruned so probes
    /// miss, and the arena/table garbage this leaves behind is reclaimed
    /// by the next (possibly automatic) [`ActIndex::compact`]. Returns
    /// whether the index referenced `id` at all.
    pub fn remove_polygon(&mut self, id: u32) -> bool {
        self.ensure_live_ids();
        if !self.may_contain(id) {
            return false;
        }
        self.ensure_inventory();
        let changed = self.remove_inner(id);
        if changed {
            self.maybe_compact();
        }
        changed
    }

    fn remove_inner(&mut self, id: u32) -> bool {
        let mut waste = crate::trie::MutationWaste::default();
        let mut tb = LookupTableBuilder::from_table(std::mem::take(&mut self.table));
        // The inventory names every cell whose territory may still
        // reference `id`; walk those territories only. No entry means no
        // live reference anywhere (the inventory is a per-id superset of
        // the live trie, maintained by every insert since it was built),
        // so there is nothing to walk at all.
        let cells = self
            .cell_inventory
            .as_mut()
            .expect("inventory is ensured before removal")
            .remove(&id);
        let changed = match cells {
            Some(mut cells) => {
                cells.sort_unstable();
                cells.dedup();
                let mut memo = std::collections::HashMap::new();
                let mut changed = false;
                for cell in cells {
                    self.act.remove_refs_in_cell(
                        cell,
                        id,
                        &mut tb,
                        &mut memo,
                        &mut changed,
                        &mut waste,
                    );
                }
                changed
            }
            None => false,
        };
        self.table = tb.build();
        // The remove pass strips *every* reference to `id`, so the id is
        // definitively gone whether or not anything changed.
        if let Some(ids) = &mut self.live_ids {
            ids.remove(&id);
        }
        if changed {
            self.note_mutation(waste);
        }
        changed
    }

    /// `false` means polygon `id` is definitively absent; `true` means it
    /// may be present (the tracked set is a superset of the live ids).
    fn may_contain(&self, id: u32) -> bool {
        self.live_ids.as_ref().is_none_or(|ids| ids.contains(&id))
    }

    /// Builds the live-id superset if it has not been built yet: one
    /// sequential pass over the node arena (inline `ONE`/`TWO` payloads)
    /// plus one over the lookup-table words. Orphaned nodes and stale
    /// table entries contribute ids too — a superset is all the fast
    /// path needs, and compactions shed the stragglers.
    fn ensure_live_ids(&mut self) {
        if self.live_ids.is_some() {
            return;
        }
        let mut ids = std::collections::BTreeSet::new();
        self.act.collect_inline_ids(&mut ids);
        let words = self.table.words();
        let mut off = 0usize;
        while off < words.len() {
            let n_true = words[off] as usize;
            let n_cand = words[off + 1 + n_true] as usize;
            for &id in &words[off + 1..off + 1 + n_true] {
                ids.insert(id);
            }
            for &id in &words[off + 2 + n_true..off + 2 + n_true + n_cand] {
                ids.insert(id);
            }
            off += 2 + n_true + n_cand;
        }
        self.live_ids = Some(ids);
    }

    /// Builds the per-id cell inventory if it has not been built yet:
    /// one tree walk extracting the live `(cell, refs)` set, inverted
    /// into id → cells. Exact at build time; inserts keep it a superset
    /// afterwards and compactions make it exact again.
    fn ensure_inventory(&mut self) {
        if self.cell_inventory.is_some() {
            return;
        }
        let mut inv: std::collections::HashMap<u32, Vec<CellId>> = std::collections::HashMap::new();
        for (cell, refs) in self.act.extract_all(self.table.words()) {
            for r in refs.iter() {
                inv.entry(r.id).or_default().push(cell);
            }
        }
        self.cell_inventory = Some(inv);
    }

    /// Pays the one-time live-id scan and per-id cell inventory build up
    /// front (see [`ActIndex::insert_polygon`]) so the first mutation
    /// after a load is as fast as the steady state. Idempotent; called
    /// automatically by the first mutation otherwise.
    pub fn prime_mutations(&mut self) {
        self.ensure_live_ids();
        self.ensure_inventory();
    }

    /// Rewrites the node arena and lookup table from the live cell set,
    /// dropping orphaned nodes and tombstoned table entries. Mutations
    /// call this automatically once [`ActIndex::waste_ratio`] crosses
    /// [`ActIndex::COMPACT_WASTE_THRESHOLD`]; it is also safe to call at
    /// any time. Probe results are unchanged. Runs to completion,
    /// resuming (or restarting, if a mutation intervened) any paused
    /// incremental compaction.
    pub fn compact(&mut self) {
        while !self.compact_step(None) {}
    }

    /// A deadline-bounded slice of [`ActIndex::compact`]: does rebuild
    /// work until `deadline` (checked every [`COMPACT_CHECK_EVERY`]
    /// cells) and pauses the rest for the next call. Returns `true` when
    /// the compaction completed — or when there was nothing to do —
    /// `false` when work remains. Probes against the index stay valid
    /// and unchanged between slices: the rebuild happens off to the
    /// side and is swapped in atomically on the completing call.
    ///
    /// A mutation between slices invalidates the paused rebuild (it was
    /// extracted from a trie that no longer exists); the next call
    /// restarts extraction from the mutated state. The extraction pass
    /// itself is not sliced — it is a read-only arena walk, a small
    /// fraction of the insert work — so a single call can overshoot a
    /// very tight deadline by the extraction cost.
    pub fn compact_deadline(&mut self, deadline: Instant) -> bool {
        if self.compact_state.is_none() && self.waste_bytes == 0 {
            return true; // nothing to reclaim; don't churn the arena
        }
        self.compact_step(Some(deadline))
    }

    /// True while an incremental compaction is paused mid-rebuild.
    pub fn compact_in_progress(&self) -> bool {
        self.compact_state.is_some()
    }

    /// Sets the deadline budget automatic (threshold-triggered)
    /// compactions run under: with a budget, a mutation that crosses
    /// [`ActIndex::COMPACT_WASTE_THRESHOLD`] does at most one budget's
    /// worth of compaction work before returning, and later mutations
    /// (or [`ActIndex::compact_deadline`] calls) continue it. `None`
    /// restores the historical stop-the-world compact-on-threshold.
    pub fn set_compact_budget(&mut self, budget: Option<std::time::Duration>) {
        self.compact_budget = budget;
    }

    /// The engine behind every compact entry point. `deadline: None`
    /// finishes in one call; otherwise pauses once the deadline passes.
    /// Returns `true` when the rebuild was swapped in.
    fn compact_step(&mut self, deadline: Option<Instant>) -> bool {
        // A paused rebuild from before a mutation is stale: drop it.
        if self
            .compact_state
            .as_ref()
            .is_some_and(|st| st.epoch != self.mutation_epoch)
        {
            self.compact_state = None;
        }
        let mut st = match self.compact_state.take() {
            Some(st) => st,
            None => CompactState {
                cells: self.act.extract_all(self.table.words()),
                pos: 0,
                act: Act::new(),
                tb: LookupTableBuilder::new(),
                epoch: self.mutation_epoch,
            },
        };
        while st.pos < st.cells.len() {
            let stop = (st.pos + COMPACT_CHECK_EVERY).min(st.cells.len());
            for (cell, refs) in &st.cells[st.pos..stop] {
                st.act.insert(*cell, refs, &mut st.tb);
            }
            st.pos = stop;
            if let Some(dl) = deadline {
                if st.pos < st.cells.len() && Instant::now() >= dl {
                    self.compact_state = Some(st);
                    return false;
                }
            }
        }
        // Done: swap the rebuild in. The extracted cells are exactly the
        // live set, so this is the one place the id superset — and the
        // per-id cell inventory — can be made exact again.
        self.act = st.act;
        self.table = st.tb.build();
        if self.live_ids.is_some() {
            let mut ids = std::collections::BTreeSet::new();
            for (_, refs) in &st.cells {
                for r in refs.iter() {
                    ids.insert(r.id);
                }
            }
            self.live_ids = Some(ids);
        }
        if self.cell_inventory.is_some() {
            let mut inv: std::collections::HashMap<u32, Vec<CellId>> =
                std::collections::HashMap::new();
            for (cell, refs) in &st.cells {
                for r in refs.iter() {
                    inv.entry(r.id).or_default().push(*cell);
                }
            }
            self.cell_inventory = Some(inv);
        }
        self.waste_bytes = 0;
        self.note_mutation(crate::trie::MutationWaste::default());
        true
    }

    /// Estimated garbage bytes accumulated by mutations since the last
    /// compaction (orphaned arena nodes + superseded lookup-table words).
    #[inline]
    pub fn waste_bytes(&self) -> u64 {
        self.waste_bytes
    }

    /// `waste_bytes / memory_bytes` — the lazy-compaction trigger metric.
    pub fn waste_ratio(&self) -> f64 {
        let total = self.memory_bytes() as f64;
        if total <= 0.0 {
            0.0
        } else {
            self.waste_bytes as f64 / total
        }
    }

    fn maybe_compact(&mut self) {
        if self.compact_state.is_some() || self.waste_ratio() > Self::COMPACT_WASTE_THRESHOLD {
            match self.compact_budget {
                Some(budget) => {
                    let _ = self.compact_step(Some(Instant::now() + budget));
                }
                None => self.compact(),
            }
        }
    }

    /// Folds a mutation's garbage estimate into the waste counters and
    /// refreshes the size/count fields of [`BuildStats`] (the build
    /// wall-time fields keep their original values; cell counts follow
    /// the live trie and are approximate between compactions, exact
    /// right after one). Also bumps the mutation epoch, which is what
    /// invalidates a paused incremental compaction.
    fn note_mutation(&mut self, waste: crate::trie::MutationWaste) {
        self.mutation_epoch += 1;
        self.waste_bytes +=
            waste.orphaned_nodes * (crate::trie::FANOUT as u64 * 8) + waste.stale_table_words * 4;
        self.stats.indexed_cells = self.act.inserted_cells();
        self.stats.denormalized_slots = self.act.denormalized_slots();
        self.stats.act_bytes = self.act.memory_bytes();
        self.stats.lookup_table_bytes = self.table.memory_bytes();
    }
}

/// Converts a degree-space coordinate to the leaf cell id used for probes.
#[inline]
pub fn coord_to_cell(c: Coord) -> CellId {
    CellId::from_latlng(LatLng::from_degrees(c.y, c.x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Ring;

    fn square(cx: f64, cy: f64, half: f64) -> Polygon {
        Polygon::new(
            Ring::new(vec![
                Coord::new(cx - half, cy - half),
                Coord::new(cx + half, cy - half),
                Coord::new(cx + half, cy + half),
                Coord::new(cx - half, cy + half),
            ]),
            vec![],
        )
    }

    #[test]
    fn build_and_probe_two_squares() {
        let polys = vec![square(-74.05, 40.70, 0.02), square(-73.95, 40.70, 0.02)];
        let idx = ActIndex::build(&polys, 15.0).unwrap();
        // Deep inside polygon 0: a true hit for 0, nothing for 1.
        let refs = idx.lookup_refs(Coord::new(-74.05, 40.70));
        assert_eq!(refs, vec![(0, true)]);
        // Deep inside polygon 1.
        let refs = idx.lookup_refs(Coord::new(-73.95, 40.70));
        assert_eq!(refs, vec![(1, true)]);
        // Far away: miss.
        assert!(idx.lookup_refs(Coord::new(-74.2, 40.9)).is_empty());
        // Stats populated.
        let st = idx.stats();
        assert!(st.indexed_cells > 0);
        assert!(st.act_bytes > 0);
        assert_eq!(st.terminal_level, 20);
    }

    #[test]
    fn boundary_points_are_candidates() {
        let polys = vec![square(-74.0, 40.7, 0.02)];
        let idx = ActIndex::build(&polys, 15.0).unwrap();
        // A point just outside the edge (within ε) should be a candidate
        // or a miss — never a true hit.
        let just_outside = Coord::new(-74.0 + 0.02 + 0.00002, 40.7); // ~1.7 m out
        for (id, interior) in idx.lookup_refs(just_outside) {
            assert_eq!(id, 0);
            assert!(!interior, "points outside must not be true hits");
        }
    }

    #[test]
    fn shared_border_probes_both() {
        // Two squares sharing the x = -74.0 border: a point on the border
        // area must reference both polygons (as candidates).
        let polys = vec![
            square(-74.02, 40.70, 0.02), // right edge at -74.0
            square(-73.98, 40.70, 0.02), // left edge at -74.0
        ];
        let idx = ActIndex::build(&polys, 4.0).unwrap();
        let refs = idx.lookup_refs(Coord::new(-74.0, 40.70));
        let ids: Vec<u32> = refs.iter().map(|(id, _)| *id).collect();
        assert!(
            ids.contains(&0),
            "border point must see polygon 0: {refs:?}"
        );
        assert!(
            ids.contains(&1),
            "border point must see polygon 1: {refs:?}"
        );
    }

    #[test]
    fn memory_grows_with_precision() {
        let polys = vec![square(-74.0, 40.7, 0.03)];
        let coarse = ActIndex::build(&polys, 60.0).unwrap();
        let fine = ActIndex::build(&polys, 4.0).unwrap();
        assert!(fine.stats().indexed_cells > coarse.stats().indexed_cells);
        assert!(fine.memory_bytes() >= coarse.memory_bytes());
    }

    #[test]
    fn parallel_build_is_byte_identical() {
        let polys = vec![
            square(-74.05, 40.70, 0.02),
            square(-73.95, 40.70, 0.02),
            square(-74.00, 40.70, 0.03), // overlaps both
        ];
        let serial = ActIndex::build(&polys, 15.0).unwrap();
        for threads in [1usize, 2, 4] {
            let pool = jobs::JobPool::new(threads);
            let par = ActIndex::build_parallel(&polys, 15.0, &pool).unwrap();
            assert_eq!(par.act().slots(), serial.act().slots(), "{threads} threads");
            assert_eq!(par.act().roots(), serial.act().roots());
            assert_eq!(par.stats().indexed_cells, serial.stats().indexed_cells);
            assert_eq!(par.stats().covering_cells, serial.stats().covering_cells);
            assert_eq!(par.stats().pushdown_splits, serial.stats().pushdown_splits);
            assert_eq!(
                par.stats().lookup_table_bytes,
                serial.stats().lookup_table_bytes
            );
        }
    }

    #[test]
    fn probe_batch_agrees_with_probe_cell() {
        let polys = vec![square(-74.05, 40.70, 0.02), square(-73.95, 40.70, 0.02)];
        let idx = ActIndex::build(&polys, 15.0).unwrap();
        let cells: Vec<CellId> = (0..300)
            .map(|k| coord_to_cell(Coord::new(-74.1 + 0.001 * k as f64, 40.70)))
            .collect();
        let mut out = vec![Probe::Miss; cells.len()];
        idx.probe_batch(&cells, &mut out);
        for (c, p) in cells.iter().zip(&out) {
            assert_eq!(*p, idx.probe_cell(*c));
        }
    }

    /// The pathological tombstone load: remove most of a dense index so
    /// the threshold-crossing compaction is large, then prove the
    /// deadline API pauses it, resumes it across calls, keeps probes
    /// correct the whole way, and restarts cleanly when a mutation
    /// invalidates the paused rebuild.
    #[test]
    fn deadline_compaction_pauses_resumes_and_survives_mutation() {
        use std::time::Duration;
        let polys: Vec<Polygon> = (0..30)
            .map(|k| square(-74.0 + 0.024 * k as f64, 40.7, 0.01))
            .collect();
        let mut idx = ActIndex::build(&polys, 15.0).unwrap();
        // A zero budget means threshold-triggered compactions do one
        // slice and pause — the waste pile-up below survives them.
        idx.set_compact_budget(Some(Duration::ZERO));
        for id in 0..25u32 {
            assert!(idx.remove_polygon(id));
        }
        assert!(
            idx.waste_bytes() > 0 || idx.compact_in_progress(),
            "mass removal must leave garbage behind"
        );
        let probe_at =
            |idx: &ActIndex, k: usize| idx.lookup_refs(Coord::new(-74.0 + 0.024 * k as f64, 40.7));
        let check_survivors = |idx: &ActIndex| {
            for k in 0..25 {
                assert!(probe_at(idx, k).is_empty(), "removed polygon {k} answered");
            }
            for k in 25..30 {
                assert_eq!(probe_at(idx, k), vec![(k as u32, true)], "survivor {k}");
            }
        };
        check_survivors(&idx);

        // An already-expired deadline: the slice must pause, not finish
        // (the surviving cells far exceed one check quantum).
        assert!(
            !idx.compact_deadline(Instant::now()),
            "an expired deadline must pause a large compaction"
        );
        assert!(idx.compact_in_progress());
        // The paused rebuild is invisible to probes.
        check_survivors(&idx);

        // A mutation invalidates the paused rebuild and still lands.
        idx.insert_polygon(30, &square(-74.0 + 0.024 * 30.0, 40.7, 0.01))
            .unwrap();
        assert_eq!(probe_at(&idx, 30), vec![(30, true)]);

        // Drive the restarted compaction to completion in slices.
        let mut slices = 0u32;
        while !idx.compact_deadline(Instant::now() + Duration::from_micros(200)) {
            slices += 1;
            assert!(slices < 100_000, "compaction never converged");
        }
        assert!(!idx.compact_in_progress());
        assert_eq!(idx.waste_bytes(), 0, "completed compaction clears waste");
        check_survivors(&idx);
        assert_eq!(probe_at(&idx, 30), vec![(30, true)]);

        // compact() is still the run-to-completion wrapper.
        idx.set_compact_budget(None);
        assert!(idx.remove_polygon(30));
        idx.compact();
        assert!(!idx.compact_in_progress());
        assert_eq!(idx.waste_bytes(), 0);
        check_survivors(&idx);
    }

    #[test]
    fn probe_cell_and_coord_agree() {
        let polys = vec![square(-74.0, 40.7, 0.02)];
        let idx = ActIndex::build(&polys, 15.0).unwrap();
        let c = Coord::new(-74.01, 40.705);
        assert_eq!(idx.probe_coord(c), idx.probe_cell(coord_to_cell(c)));
    }
}
