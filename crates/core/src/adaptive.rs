//! Adaptive and memory-budgeted ACT variants.
//!
//! The paper's introduction sketches two deployment modes beyond the basic
//! index (§I, last paragraph):
//!
//! 1. **Memory budget**: "If ACT cannot guarantee the desired precision
//!    given a certain memory budget, the refinement phase clearly cannot be
//!    omitted." — [`build_with_budget`] finds the finest terminal level
//!    whose index fits the budget and reports the achieved precision and
//!    whether the requested guarantee holds (if not, exact mode /
//!    refinement must be used for candidates).
//!
//! 2. **Query-adaptive refinement**: "Our solution is to adaptively alter
//!    the trie structure based on the distribution of query points to
//!    provide higher precision where it is actually needed. Thus, the
//!    probability for true hits increases, false positives are reduced." —
//!    [`AdaptiveIndex`] starts from a coarse base index and, given a sample
//!    of query traffic, re-covers the *hottest candidate cells* at the
//!    target precision, turning most of their area into true-hit interior
//!    cells. The paper defers this to future work; this is a faithful
//!    realization of the sketch.

use crate::covering::{cover_uv_polygon, cover_uv_polygon_within, CoveringParams};
use crate::index::ActIndex;
use crate::refs::PolygonRef;
use crate::supercover::build_from_pairs;
use crate::trie::Probe;
use crate::uvpoly::{MultiFaceError, UvPolygon};
use geom::Polygon;
use s2cell::{metrics, CellId};
use std::collections::HashMap;

/// Result of a budget-constrained build.
#[derive(Debug)]
pub struct BudgetedBuild {
    /// The built index (at the finest precision that fit).
    pub index: ActIndex,
    /// The precision the index actually guarantees (max cell diagonal of
    /// its terminal level), in meters.
    pub achieved_precision_m: f64,
    /// True if `achieved ≤ requested`: the approximate join satisfies the
    /// requested ε without refinement.
    pub guaranteed: bool,
}

/// Builds the finest index that fits in `budget_bytes` (trie + lookup
/// table), starting from the level that guarantees `target_precision_m`
/// and coarsening one level at a time.
///
/// Returns an error if any polygon spans multiple cube faces.
pub fn build_with_budget(
    polygons: &[Polygon],
    target_precision_m: f64,
    budget_bytes: usize,
) -> Result<BudgetedBuild, MultiFaceError> {
    let target_level = metrics::level_for_max_diag_meters(target_precision_m);
    let mut level = target_level;
    loop {
        let precision = metrics::max_diag_meters(level);
        let index = ActIndex::build(polygons, precision)?;
        if index.memory_bytes() <= budget_bytes || level <= 4 {
            return Ok(BudgetedBuild {
                achieved_precision_m: precision,
                guaranteed: level >= target_level,
                index,
            });
        }
        level -= 1;
    }
}

/// Configuration of the query-adaptive index.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveParams {
    /// The precision hot regions are refined to.
    pub target_precision_m: f64,
    /// The precision of the coarse base build (must be ≥ target).
    pub base_precision_m: f64,
    /// Hard cap on total index memory after adaptation.
    pub budget_bytes: usize,
    /// At most this many hot cells are refined per [`AdaptiveIndex::adapt`]
    /// call.
    pub max_refined_cells: usize,
}

/// Outcome of one adaptation round.
#[derive(Debug, Clone, Default)]
pub struct AdaptReport {
    /// Cells actually refined this round.
    pub refined_cells: usize,
    /// Candidate (non-true-hit) probe fraction on the sample, before.
    pub candidate_rate_before: f64,
    /// Candidate probe fraction on the sample, after.
    pub candidate_rate_after: f64,
    /// Index bytes before / after.
    pub bytes_before: usize,
    pub bytes_after: usize,
}

/// An ACT index that refines itself where query traffic concentrates.
#[derive(Debug)]
pub struct AdaptiveIndex {
    index: ActIndex,
    uvpolys: Vec<UvPolygon>,
    params: AdaptiveParams,
    /// Current cell set as raw pairs (regenerated on each adaptation).
    pairs: Vec<(CellId, PolygonRef)>,
}

impl AdaptiveIndex {
    /// Builds the coarse base index.
    pub fn build(
        polygons: &[Polygon],
        params: AdaptiveParams,
    ) -> Result<AdaptiveIndex, MultiFaceError> {
        assert!(
            params.base_precision_m >= params.target_precision_m,
            "base precision must be coarser than (≥) the target"
        );
        let base = CoveringParams::new(params.base_precision_m);
        let mut pairs = Vec::new();
        let mut uvpolys = Vec::with_capacity(polygons.len());
        for (id, poly) in polygons.iter().enumerate() {
            let uv = UvPolygon::from_polygon(poly)?;
            let cov = cover_uv_polygon(&uv, &base);
            for &(cell, interior) in &cov.cells {
                pairs.push((
                    cell,
                    PolygonRef {
                        id: id as u32,
                        interior,
                    },
                ));
            }
            uvpolys.push(uv);
        }
        let index = rebuild(&pairs, base);
        Ok(AdaptiveIndex {
            index,
            uvpolys,
            params,
            pairs,
        })
    }

    /// The current queryable index.
    #[inline]
    pub fn index(&self) -> &ActIndex {
        &self.index
    }

    /// Observes a sample of query traffic and refines the hottest candidate
    /// regions to the target precision, within the memory budget.
    ///
    /// Returns the adaptation report; calling it again with fresh samples
    /// continues refining (already-refined regions no longer produce
    /// coarse candidates, so the heat moves on).
    pub fn adapt(&mut self, sample: &[CellId]) -> AdaptReport {
        let mut report = AdaptReport {
            bytes_before: self.index.memory_bytes(),
            ..AdaptReport::default()
        };

        // 1. Heat map over slot-level cells whose probe was (partly) a
        //    candidate.
        let mut heat: HashMap<CellId, u64> = HashMap::new();
        let mut candidate_probes = 0u64;
        for &q in sample {
            let (probe, slot_level) = self.index.act().lookup_with_slot_level(q);
            if probe_has_candidate(probe, &self.index) {
                candidate_probes += 1;
                *heat.entry(q.parent(slot_level)).or_insert(0) += 1;
            }
        }
        report.candidate_rate_before = candidate_probes as f64 / sample.len().max(1) as f64;
        if heat.is_empty() {
            report.candidate_rate_after = report.candidate_rate_before;
            report.bytes_after = report.bytes_before;
            return report;
        }

        // 2. Hottest slot cells first.
        let mut hot: Vec<(CellId, u64)> = heat.into_iter().collect();
        hot.sort_unstable_by_key(|&(_, count)| std::cmp::Reverse(count));
        hot.truncate(self.params.max_refined_cells);

        // 3. Replace the candidate references of every indexed cell that
        //    overlaps a hot slot cell with a finer re-covering of that cell.
        let target = CoveringParams::new(self.params.target_precision_m);
        let mut refined = 0usize;
        for (hot_cell, _) in hot {
            let mut new_pairs: Vec<(CellId, PolygonRef)> = Vec::new();
            let mut touched = false;
            self.pairs.retain(|&(cell, r)| {
                let overlaps = cell.contains(hot_cell) || hot_cell.contains(cell);
                if !overlaps || r.interior || cell.level() >= target.terminal_level() {
                    return true;
                }
                // Re-cover polygon r.id within the indexed cell at the
                // target precision.
                let cov = cover_uv_polygon_within(&self.uvpolys[r.id as usize], &target, cell);
                for &(c, interior) in &cov.cells {
                    new_pairs.push((c, PolygonRef { id: r.id, interior }));
                }
                touched = true;
                false
            });
            if touched {
                refined += 1;
                self.pairs.append(&mut new_pairs);
            }
        }
        report.refined_cells = refined;

        // 4. Rebuild. Refinement never degrades correctness (finer cells
        //    satisfy a stricter bound), so the new index is always adopted;
        //    a budget overshoot is surfaced via bytes_after > budget_bytes,
        //    which callers use as the signal to stop adapting.
        let base = CoveringParams::new(self.params.base_precision_m);
        self.index = rebuild(&self.pairs, base);
        report.bytes_after = self.index.memory_bytes();

        // 5. Post-adaptation candidate rate on the same sample.
        let mut after = 0u64;
        for &q in sample {
            let (probe, _) = self.index.act().lookup_with_slot_level(q);
            if probe_has_candidate(probe, &self.index) {
                after += 1;
            }
        }
        report.candidate_rate_after = after as f64 / sample.len().max(1) as f64;
        report
    }
}

fn probe_has_candidate(probe: Probe, index: &ActIndex) -> bool {
    match probe {
        Probe::Miss => false,
        Probe::One(r) => !r.interior,
        Probe::Two(a, b) => !a.interior || !b.interior,
        Probe::Table(off) => !index.table().decode(off).1.is_empty(),
    }
}

fn rebuild(pairs: &[(CellId, PolygonRef)], params: CoveringParams) -> ActIndex {
    let sc = build_from_pairs(pairs.to_vec());
    ActIndex::from_supercover(sc, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::coord_to_cell;
    use geom::{Coord, Ring};

    fn square(cx: f64, cy: f64, half: f64) -> Polygon {
        Polygon::new(
            Ring::new(vec![
                Coord::new(cx - half, cy - half),
                Coord::new(cx + half, cy - half),
                Coord::new(cx + half, cy + half),
                Coord::new(cx - half, cy + half),
            ]),
            vec![],
        )
    }

    #[test]
    fn budgeted_build_tight_budget_degrades_gracefully() {
        let polys = vec![square(-74.0, 40.7, 0.02)];
        // A budget too small for 4 m must coarsen and report no guarantee.
        let tight = build_with_budget(&polys, 4.0, 200_000).unwrap();
        assert!(!tight.guaranteed);
        assert!(tight.achieved_precision_m > 4.0);
        assert!(tight.index.memory_bytes() <= 200_000);
        // A generous budget keeps the target precision.
        let roomy = build_with_budget(&polys, 15.0, 64 << 20).unwrap();
        assert!(roomy.guaranteed);
        assert!(roomy.achieved_precision_m <= 15.0);
    }

    #[test]
    fn budgeted_build_never_violates_achieved_precision() {
        let polys = vec![square(-74.0, 40.7, 0.02)];
        let b = build_with_budget(&polys, 4.0, 300_000).unwrap();
        // Every approximate hit is within the *achieved* precision.
        for k in 0..500 {
            let p = Coord::new(-74.03 + 0.00012 * k as f64, 40.7);
            for (id, _) in b.index.lookup_refs(p) {
                assert!(
                    polys[id as usize].distance_meters(p) <= b.achieved_precision_m * 1.0001,
                    "violation at {p}"
                );
            }
        }
    }

    #[test]
    fn adaptive_reduces_candidate_rate_where_it_is_hot() {
        let polys = vec![square(-74.0, 40.7, 0.02), square(-73.95, 40.7, 0.02)];
        let params = AdaptiveParams {
            target_precision_m: 4.0,
            base_precision_m: 60.0,
            budget_bytes: 256 << 20,
            max_refined_cells: 512,
        };
        let mut adaptive = AdaptiveIndex::build(&polys, params).unwrap();

        // Query traffic concentrated on one edge of polygon 0 (boundary
        // hits ⇒ coarse candidates).
        let sample: Vec<CellId> = (0..4000)
            .map(|k| {
                coord_to_cell(Coord::new(
                    -74.02 + 0.000002 * (k % 40) as f64,
                    40.69 + 0.00001 * k as f64,
                ))
            })
            .collect();

        let report = adaptive.adapt(&sample);
        assert!(report.refined_cells > 0, "hot cells must be refined");
        assert!(
            report.candidate_rate_after < report.candidate_rate_before,
            "adaptation must reduce the candidate rate: {report:?}"
        );

        // Correctness is preserved: sample points inside polygon 0 are
        // still reported.
        for &q in sample.iter().step_by(97) {
            let center = q.to_latlng();
            let c = Coord::new(center.lng_degrees(), center.lat_degrees());
            let inside: Vec<u32> = (0..polys.len() as u32)
                .filter(|&i| polys[i as usize].contains(c))
                .collect();
            let reported: Vec<u32> = adaptive
                .index()
                .lookup_refs(c)
                .iter()
                .map(|&(id, _)| id)
                .collect();
            for id in inside {
                assert!(reported.contains(&id), "lost polygon {id} at {c}");
            }
        }
    }

    #[test]
    fn adapt_with_no_candidates_is_a_noop() {
        let polys = vec![square(-74.0, 40.7, 0.02)];
        let params = AdaptiveParams {
            target_precision_m: 15.0,
            base_precision_m: 60.0,
            budget_bytes: 256 << 20,
            max_refined_cells: 64,
        };
        let mut adaptive = AdaptiveIndex::build(&polys, params).unwrap();
        // Deep-interior traffic only: all true hits.
        let sample: Vec<CellId> = (0..500)
            .map(|k| coord_to_cell(Coord::new(-74.0 + 0.00001 * k as f64, 40.7)))
            .collect();
        let bytes = adaptive.index().memory_bytes();
        let report = adaptive.adapt(&sample);
        assert_eq!(report.refined_cells, 0);
        assert_eq!(adaptive.index().memory_bytes(), bytes);
    }
}
