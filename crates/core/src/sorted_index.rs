//! A sorted-array baseline index over super-covering cells.
//!
//! The paper motivates the radix tree by comparison with "a (sorted)
//! vector" probed by binary search: the trie's O(k) comparison-free descent
//! versus O(log n) comparisons. This module materializes that alternative
//! so the claim is measurable (ablation A4 in DESIGN.md): the *same*
//! super-covering cells, stored as parallel sorted arrays of
//! `[range_min, range_max]` with the same tagged payload words as the trie,
//! probed by binary search on the query's leaf id.
//!
//! Because super-covering cells are disjoint, a leaf id is contained in at
//! most one `[range_min, range_max]` interval — the one with the greatest
//! `range_min` ≤ leaf id, found by one partition-point search.

use crate::lookup::{LookupTable, LookupTableBuilder};
use crate::refs::RefSet;
use crate::supercover::SuperCovering;
use crate::trie::Probe;
use s2cell::CellId;

const TAG_ONE: u64 = 1;
const TAG_TWO: u64 = 2;
const TAG_OFFSET: u64 = 3;

/// Sorted-array cell index (binary-search baseline).
#[derive(Debug)]
pub struct SortedCellIndex {
    mins: Vec<u64>,
    maxs: Vec<u64>,
    payloads: Vec<u64>,
    table: LookupTable,
}

impl SortedCellIndex {
    /// Builds from a super covering (cells must be disjoint, which
    /// [`crate::supercover::build_super_covering`] guarantees).
    pub fn build(sc: &SuperCovering) -> SortedCellIndex {
        let mut rows: Vec<(u64, u64, u64)> = Vec::with_capacity(sc.cells.len());
        let mut tb = LookupTableBuilder::new();
        for (cell, refs) in &sc.cells {
            let payload = match refs {
                RefSet::One(r) => ((r.encode() as u64) << 2) | TAG_ONE,
                RefSet::Two(a, b) => {
                    ((b.encode() as u64) << 33) | ((a.encode() as u64) << 2) | TAG_TWO
                }
                RefSet::Many(_) => ((tb.intern(refs) as u64) << 2) | TAG_OFFSET,
            };
            rows.push((cell.range_min().0, cell.range_max().0, payload));
        }
        rows.sort_unstable_by_key(|r| r.0);
        SortedCellIndex {
            mins: rows.iter().map(|r| r.0).collect(),
            maxs: rows.iter().map(|r| r.1).collect(),
            payloads: rows.iter().map(|r| r.2).collect(),
            table: tb.build(),
        }
    }

    /// Probes with a leaf cell id: binary search for the candidate
    /// interval, one containment check.
    #[inline]
    pub fn lookup(&self, leaf: CellId) -> Probe {
        let id = leaf.0;
        // partition_point returns the first index with min > id; the
        // candidate interval is the one before it.
        let idx = self.mins.partition_point(|&m| m <= id);
        if idx == 0 {
            return Probe::Miss;
        }
        let i = idx - 1;
        if id > self.maxs[i] {
            return Probe::Miss;
        }
        let e = self.payloads[i];
        match e & 3 {
            TAG_ONE => Probe::One(crate::refs::PolygonRef::decode(
                (e >> 2) as u32 & 0x7FFF_FFFF,
            )),
            TAG_TWO => Probe::Two(
                crate::refs::PolygonRef::decode((e >> 2) as u32 & 0x7FFF_FFFF),
                crate::refs::PolygonRef::decode((e >> 33) as u32 & 0x7FFF_FFFF),
            ),
            _ => Probe::Table((e >> 2) as u32 & 0x7FFF_FFFF),
        }
    }

    /// The shared lookup table for `Probe::Table` results.
    #[inline]
    pub fn table(&self) -> &LookupTable {
        &self.table
    }

    /// Number of indexed cells.
    pub fn len(&self) -> usize {
        self.mins.len()
    }

    /// True if no cells are indexed.
    pub fn is_empty(&self) -> bool {
        self.mins.is_empty()
    }

    /// Heap bytes (three u64 arrays + lookup table).
    pub fn memory_bytes(&self) -> usize {
        (self.mins.len() + self.maxs.len() + self.payloads.len()) * 8 + self.table.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covering::{cover_polygon, CoveringParams};
    use crate::refs::PolygonRef;
    use crate::supercover::{build_from_pairs, build_super_covering};
    use geom::{Coord, Polygon, Ring};
    use s2cell::LatLng;

    fn leaf(lat: f64, lng: f64) -> CellId {
        CellId::from_latlng(LatLng::from_degrees(lat, lng))
    }

    #[test]
    fn empty_index_misses() {
        let idx = SortedCellIndex::build(&SuperCovering::default());
        assert!(idx.is_empty());
        assert_eq!(idx.lookup(leaf(40.7, -74.0)), Probe::Miss);
    }

    #[test]
    fn hit_and_miss() {
        let cell = leaf(40.7580, -73.9855).parent(14);
        let sc = build_from_pairs(vec![(cell, PolygonRef::true_hit(3))]);
        let idx = SortedCellIndex::build(&sc);
        assert_eq!(
            idx.lookup(leaf(40.7580, -73.9855)),
            Probe::One(PolygonRef::true_hit(3))
        );
        assert_eq!(idx.lookup(leaf(41.5, -74.0)), Probe::Miss);
        // Just outside the interval on both sides.
        assert_eq!(idx.lookup(CellId(cell.range_min().0 - 2)), Probe::Miss);
        assert_eq!(idx.lookup(CellId(cell.range_max().0 + 2)), Probe::Miss);
    }

    #[test]
    fn agrees_with_act_on_real_covering() {
        // The binary-search index and the trie must answer identically for
        // the same super covering.
        let poly = Polygon::new(
            Ring::new(vec![
                Coord::new(-74.02, 40.68),
                Coord::new(-73.98, 40.68),
                Coord::new(-73.98, 40.72),
                Coord::new(-74.02, 40.72),
            ]),
            vec![],
        );
        let params = CoveringParams::new(15.0);
        let cov = cover_polygon(&poly, &params).unwrap();
        let sc = build_super_covering(&[cov]);

        let sorted = SortedCellIndex::build(&sc);
        let mut act = crate::trie::Act::new();
        let mut tb = LookupTableBuilder::new();
        for (cell, refs) in &sc.cells {
            act.insert(*cell, refs, &mut tb);
        }

        for i in 0..60 {
            for j in 0..60 {
                let p = leaf(40.67 + 0.001 * i as f64, -74.03 + 0.001 * j as f64);
                assert_eq!(sorted.lookup(p), act.lookup(p), "at ({i},{j})");
            }
        }
    }

    #[test]
    fn memory_accounting() {
        let cell = leaf(40.7, -74.0).parent(12);
        let sc = build_from_pairs(vec![(cell, PolygonRef::true_hit(1))]);
        let idx = SortedCellIndex::build(&sc);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.memory_bytes(), 24);
    }
}
