//! # act-core — Approximate Geospatial Joins with Precision Guarantees
//!
//! A from-scratch Rust implementation of the **Adaptive Cell Trie (ACT)**
//! from Kipf, Lang, Pandey, Persa, Boncz, Neumann, Kemper:
//! *Approximate Geospatial Joins with Precision Guarantees* (ICDE 2018).
//!
//! ACT answers streaming point-in-polygon joins **without a refinement
//! phase** while guaranteeing a user-defined precision ε: every reported
//! (point, polygon) pair is either exact (a *true hit* from a cell entirely
//! inside the polygon) or the point lies within ε of the polygon (a
//! *candidate hit* from a boundary cell whose diagonal is ≤ ε).
//!
//! ## Pipeline
//!
//! ```text
//! polygons ──►  covering (interior + boundary cells, uv-exact)   [covering]
//!          ──►  super covering (dedup + conflict push-down)      [supercover]
//!          ──►  Adaptive Cell Trie + lookup table                [trie, lookup]
//! points   ──►  leaf cell id ──► trie probe ──► per-polygon counts   [join]
//! ```
//!
//! ## Quick example
//!
//! ```
//! use act_core::ActIndex;
//! use geom::{Coord, Polygon, Ring};
//!
//! // One ~4 km square around Midtown Manhattan.
//! let midtown = Polygon::new(
//!     Ring::new(vec![
//!         Coord::new(-74.00, 40.74),
//!         Coord::new(-73.96, 40.74),
//!         Coord::new(-73.96, 40.78),
//!         Coord::new(-74.00, 40.78),
//!     ]),
//!     vec![],
//! );
//!
//! // Build with a 15 m precision guarantee.
//! let index = ActIndex::build(&[midtown], 15.0).unwrap();
//!
//! // Probe a point: Times Square is a true hit for polygon 0.
//! let refs = index.lookup_refs(Coord::new(-73.9855, 40.7580));
//! assert_eq!(refs, vec![(0, true)]);
//! ```

// All unsafe in the serving stack lives in `vendor/mmapio` (the mmap
// syscall shim + checked slice casts); this crate is pure safe code.
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod covering;
pub mod delta;
pub mod index;
pub mod join;
pub mod lookup;
pub mod refs;
pub mod shard;
pub mod snapshot;
pub mod sorted_index;
pub mod supercover;
pub mod trie;
pub mod uvpoly;

pub use adaptive::{build_with_budget, AdaptReport, AdaptiveIndex, AdaptiveParams, BudgetedBuild};
pub use covering::{cover_polygon, Covering, CoveringParams};
pub use delta::{apply_delta_file, save_delta, save_delta_file, Delta, DeltaLink, DeltaOp};
pub use index::{coord_to_cell, ActIndex, BuildStats};
pub use join::{
    join_approx_cells, join_approx_cells_batch, join_approx_coords, join_exact,
    join_parallel_cells, join_parallel_cells_batch, JoinStats, Refiner, DEFAULT_PROBE_BATCH,
};
pub use lookup::{LookupTable, LookupTableBuilder};
pub use refs::{PolygonRef, RefSet, MAX_POLYGON_ID};
pub use shard::{
    shard_file_name, shard_of_cell, shard_paths, shards_for_cell, split_index, write_shard_files,
    DEFAULT_SPLIT_LEVEL,
};
pub use snapshot::{header_checksum, ActIndexView, MappedSnapshot, SnapshotBuf, SnapshotError};
pub use sorted_index::SortedCellIndex;
pub use supercover::{build_super_covering, build_super_covering_sharded, SuperCovering};
pub use trie::{probe_cell_key, resolve_probe, Act, Probe};
