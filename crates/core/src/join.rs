//! The streaming point-polygon join: probe, classify, aggregate.
//!
//! The paper's evaluation joins a stream of points against the indexed
//! polygons and *counts the number of points per polygon*. Two modes:
//!
//! * **Approximate** (the paper's contribution): every reference returned
//!   by the probe counts — true hits are exact, candidate hits may be false
//!   positives within ε of the polygon. No geometry is touched; the
//!   refinement phase is entirely avoided.
//! * **Exact** (validation / classical filter-and-refine): true hits count
//!   directly, candidate hits are refined with a point-in-polygon test.
//!
//! The multithreaded driver partitions the point stream into contiguous
//! chunks, one per thread, each with a private counter array — no shared
//! mutable state, no atomics; counters are merged at the end. This mirrors
//! the paper's scalability experiment (Figure 4).

use crate::index::ActIndex;
use crate::trie::Probe;
use geom::{Coord, PreparedPolygon};
use s2cell::CellId;

/// Aggregate outcome of a join run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Points probed.
    pub points: u64,
    /// Probe outcomes that were true hits (counted without refinement).
    pub true_hits: u64,
    /// Probe outcomes that were candidate hits.
    pub candidate_hits: u64,
    /// Points matching no indexed cell.
    pub misses: u64,
    /// Candidate hits that survived refinement (exact mode only).
    pub refined_hits: u64,
}

/// Counts points per polygon in **approximate** mode from precomputed leaf
/// cell ids (the measured hot path of the paper's Figure 3).
pub fn join_approx_cells(index: &ActIndex, cells: &[CellId], counts: &mut [u64]) -> JoinStats {
    let mut stats = JoinStats {
        points: cells.len() as u64,
        ..JoinStats::default()
    };
    let table = index.table();
    for &cell in cells {
        match index.probe_cell(cell) {
            Probe::Miss => stats.misses += 1,
            Probe::One(r) => {
                counts[r.id as usize] += 1;
                if r.interior {
                    stats.true_hits += 1;
                } else {
                    stats.candidate_hits += 1;
                }
            }
            Probe::Two(a, b) => {
                counts[a.id as usize] += 1;
                counts[b.id as usize] += 1;
                for r in [a, b] {
                    if r.interior {
                        stats.true_hits += 1;
                    } else {
                        stats.candidate_hits += 1;
                    }
                }
            }
            Probe::Table(off) => {
                let (trues, cands) = table.decode(off);
                for &id in trues {
                    counts[id as usize] += 1;
                }
                for &id in cands {
                    counts[id as usize] += 1;
                }
                stats.true_hits += trues.len() as u64;
                stats.candidate_hits += cands.len() as u64;
            }
        }
    }
    stats
}

/// Approximate join from raw coordinates (includes the point→cell
/// conversion in the measured work).
pub fn join_approx_coords(index: &ActIndex, coords: &[Coord], counts: &mut [u64]) -> JoinStats {
    let mut stats = JoinStats {
        points: coords.len() as u64,
        ..JoinStats::default()
    };
    let table = index.table();
    for &c in coords {
        let probe = index.probe_coord(c);
        accumulate(probe, table, counts, &mut stats);
    }
    stats
}

#[inline]
fn accumulate(
    probe: Probe,
    table: &crate::lookup::LookupTable,
    counts: &mut [u64],
    stats: &mut JoinStats,
) {
    match probe {
        Probe::Miss => stats.misses += 1,
        Probe::One(r) => {
            counts[r.id as usize] += 1;
            if r.interior {
                stats.true_hits += 1;
            } else {
                stats.candidate_hits += 1;
            }
        }
        Probe::Two(a, b) => {
            for r in [a, b] {
                counts[r.id as usize] += 1;
                if r.interior {
                    stats.true_hits += 1;
                } else {
                    stats.candidate_hits += 1;
                }
            }
        }
        Probe::Table(off) => {
            let (trues, cands) = table.decode(off);
            for &id in trues {
                counts[id as usize] += 1;
            }
            for &id in cands {
                counts[id as usize] += 1;
            }
            stats.true_hits += trues.len() as u64;
            stats.candidate_hits += cands.len() as u64;
        }
    }
}

/// A refinement engine for exact mode: prepared polygons for fast PIP.
#[derive(Debug)]
pub struct Refiner {
    prepared: Vec<PreparedPolygon>,
}

impl Refiner {
    /// Prepares all polygons (one-time cost).
    pub fn new(polygons: &[geom::Polygon]) -> Refiner {
        Refiner {
            prepared: polygons
                .iter()
                .map(|p| PreparedPolygon::new(p, 0))
                .collect(),
        }
    }

    /// Exact containment test for polygon `id`.
    #[inline]
    pub fn contains(&self, id: u32, c: Coord) -> bool {
        self.prepared[id as usize].contains(c)
    }

    /// Number of prepared polygons.
    pub fn len(&self) -> usize {
        self.prepared.len()
    }

    /// True if no polygons were prepared.
    pub fn is_empty(&self) -> bool {
        self.prepared.is_empty()
    }
}

/// **Exact** join: candidates are refined by point-in-polygon tests. True
/// hits skip refinement — the paper's true-hit-filtering benefit carries
/// over to exact joins as avoided PIP calls (tracked in
/// [`JoinStats::candidate_hits`] vs [`JoinStats::true_hits`]).
pub fn join_exact(
    index: &ActIndex,
    refiner: &Refiner,
    coords: &[Coord],
    counts: &mut [u64],
) -> JoinStats {
    let mut stats = JoinStats {
        points: coords.len() as u64,
        ..JoinStats::default()
    };
    let table = index.table();
    for &c in coords {
        match index.probe_coord(c) {
            Probe::Miss => stats.misses += 1,
            Probe::One(r) => refine_one(r.id, r.interior, c, refiner, counts, &mut stats),
            Probe::Two(a, b) => {
                refine_one(a.id, a.interior, c, refiner, counts, &mut stats);
                refine_one(b.id, b.interior, c, refiner, counts, &mut stats);
            }
            Probe::Table(off) => {
                let (trues, cands) = table.decode(off);
                for &id in trues {
                    counts[id as usize] += 1;
                    stats.true_hits += 1;
                }
                for &id in cands {
                    stats.candidate_hits += 1;
                    if refiner.contains(id, c) {
                        counts[id as usize] += 1;
                        stats.refined_hits += 1;
                    }
                }
            }
        }
    }
    stats
}

#[inline]
fn refine_one(
    id: u32,
    interior: bool,
    c: Coord,
    refiner: &Refiner,
    counts: &mut [u64],
    stats: &mut JoinStats,
) {
    if interior {
        counts[id as usize] += 1;
        stats.true_hits += 1;
    } else {
        stats.candidate_hits += 1;
        if refiner.contains(id, c) {
            counts[id as usize] += 1;
            stats.refined_hits += 1;
        }
    }
}

/// Multithreaded approximate join over precomputed cell ids.
///
/// Partitions `cells` into `threads` contiguous chunks with per-thread
/// counter arrays, merged after the scoped threads join. Returns the merged
/// counts and stats.
pub fn join_parallel_cells(
    index: &ActIndex,
    cells: &[CellId],
    num_polygons: usize,
    threads: usize,
) -> (Vec<u64>, JoinStats) {
    assert!(threads >= 1);
    let chunk = cells.len().div_ceil(threads);
    let mut results: Vec<(Vec<u64>, JoinStats)> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let slice =
                    &cells[(t * chunk).min(cells.len())..((t + 1) * chunk).min(cells.len())];
                scope.spawn(move || {
                    let mut counts = vec![0u64; num_polygons];
                    let stats = join_approx_cells(index, slice, &mut counts);
                    (counts, stats)
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("join worker panicked"));
        }
    });
    let mut counts = vec![0u64; num_polygons];
    let mut stats = JoinStats::default();
    for (c, s) in results {
        for (acc, v) in counts.iter_mut().zip(c) {
            *acc += v;
        }
        stats.points += s.points;
        stats.true_hits += s.true_hits;
        stats.candidate_hits += s.candidate_hits;
        stats.misses += s.misses;
        stats.refined_hits += s.refined_hits;
    }
    (counts, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::coord_to_cell;
    use geom::{Polygon, Ring};

    fn square(cx: f64, cy: f64, half: f64) -> Polygon {
        Polygon::new(
            Ring::new(vec![
                Coord::new(cx - half, cy - half),
                Coord::new(cx + half, cy - half),
                Coord::new(cx + half, cy + half),
                Coord::new(cx - half, cy + half),
            ]),
            vec![],
        )
    }

    fn setup() -> (Vec<Polygon>, ActIndex) {
        let polys = vec![square(-74.05, 40.70, 0.02), square(-73.95, 40.70, 0.02)];
        let idx = ActIndex::build(&polys, 15.0).unwrap();
        (polys, idx)
    }

    fn test_points() -> Vec<Coord> {
        let mut pts = Vec::new();
        // 10 points deep in polygon 0, 5 in polygon 1, 5 outside all.
        for k in 0..10 {
            pts.push(Coord::new(-74.05 + 0.001 * k as f64, 40.70));
        }
        for k in 0..5 {
            pts.push(Coord::new(-73.95 + 0.001 * k as f64, 40.70));
        }
        for k in 0..5 {
            pts.push(Coord::new(-74.2, 40.88 + 0.001 * k as f64));
        }
        pts
    }

    #[test]
    fn approx_counts_match_geometry() {
        let (_, idx) = setup();
        let pts = test_points();
        let mut counts = vec![0u64; 2];
        let stats = join_approx_coords(&idx, &pts, &mut counts);
        assert_eq!(counts, vec![10, 5]);
        assert_eq!(stats.points, 20);
        assert_eq!(stats.misses, 5);
        assert_eq!(stats.true_hits + stats.candidate_hits, 15);
        // Deep-interior points should be true hits.
        assert!(stats.true_hits >= 13);
    }

    #[test]
    fn cells_and_coords_paths_agree() {
        let (_, idx) = setup();
        let pts = test_points();
        let cells: Vec<CellId> = pts.iter().map(|&c| coord_to_cell(c)).collect();
        let mut c1 = vec![0u64; 2];
        let mut c2 = vec![0u64; 2];
        let s1 = join_approx_coords(&idx, &pts, &mut c1);
        let s2 = join_approx_cells(&idx, &cells, &mut c2);
        assert_eq!(c1, c2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn exact_equals_brute_force() {
        let (polys, idx) = setup();
        let refiner = Refiner::new(&polys);
        // Points including some within ε of the boundary.
        let mut pts = test_points();
        for k in 0..20 {
            pts.push(Coord::new(
                -74.07 + 0.002 * k as f64,
                40.68 + 0.0001 * k as f64,
            ));
        }
        let mut exact = vec![0u64; 2];
        join_exact(&idx, &refiner, &pts, &mut exact);
        // Brute force.
        let mut brute = vec![0u64; 2];
        for &c in &pts {
            for (i, _p) in polys.iter().enumerate() {
                // Use the same PIP engine as the refiner for boundary-rule
                // consistency.
                if refiner.contains(i as u32, c) {
                    brute[i] += 1;
                }
            }
        }
        assert_eq!(exact, brute);
    }

    #[test]
    fn approx_overcounts_only_within_epsilon() {
        let (polys, idx) = setup();
        let pts = test_points();
        let mut approx = vec![0u64; 2];
        join_approx_coords(&idx, &pts, &mut approx);
        // Every approximate hit must be within ε of the polygon.
        for &c in &pts {
            for (id, _) in idx.lookup_refs(c) {
                let d = polys[id as usize].distance_meters(c);
                assert!(
                    d <= idx.stats().precision_m,
                    "approx hit at distance {d} exceeds ε"
                );
            }
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let (_, idx) = setup();
        let pts = test_points();
        let cells: Vec<CellId> = pts.iter().map(|&c| coord_to_cell(c)).collect();
        let mut seq = vec![0u64; 2];
        let seq_stats = join_approx_cells(&idx, &cells, &mut seq);
        for threads in [1usize, 2, 3, 8] {
            let (par, par_stats) = join_parallel_cells(&idx, &cells, 2, threads);
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(par_stats, seq_stats, "threads={threads}");
        }
    }

    #[test]
    fn empty_inputs() {
        let (_, idx) = setup();
        let mut counts = vec![0u64; 2];
        let stats = join_approx_cells(&idx, &[], &mut counts);
        assert_eq!(stats.points, 0);
        let (par, _) = join_parallel_cells(&idx, &[], 2, 4);
        assert_eq!(par, vec![0, 0]);
    }
}
