//! The streaming point-polygon join: probe, classify, aggregate.
//!
//! The paper's evaluation joins a stream of points against the indexed
//! polygons and *counts the number of points per polygon*. Two modes:
//!
//! * **Approximate** (the paper's contribution): every reference returned
//!   by the probe counts — true hits are exact, candidate hits may be false
//!   positives within ε of the polygon. No geometry is touched; the
//!   refinement phase is entirely avoided.
//! * **Exact** (validation / classical filter-and-refine): true hits count
//!   directly, candidate hits are refined with a point-in-polygon test.
//!
//! The multithreaded driver partitions the point stream into contiguous
//! chunks, one per thread, each with a private counter array — no shared
//! mutable state, no atomics; counters are merged at the end. This mirrors
//! the paper's scalability experiment (Figure 4).

use crate::index::ActIndex;
use crate::trie::Probe;
use geom::{Coord, PreparedPolygon};
use s2cell::CellId;

/// Aggregate outcome of a join run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Points probed.
    pub points: u64,
    /// Probe outcomes that were true hits (counted without refinement).
    pub true_hits: u64,
    /// Probe outcomes that were candidate hits.
    pub candidate_hits: u64,
    /// Points matching no indexed cell.
    pub misses: u64,
    /// Candidate hits that survived refinement (exact mode only).
    pub refined_hits: u64,
}

/// Default points per [`join_approx_cells_batch`] block: enough lanes to
/// saturate the memory pipeline's outstanding-miss capacity, small enough
/// that lane state stays in registers/L1.
///
/// Tradeoff: batching pays for itself when probes miss cache — the larger
/// tries in `BENCH_probe.json` gain ~1.3–1.5× — but on indexes whose hot
/// node set is cache-resident (few polygons, shallow probe termination)
/// the lane bookkeeping can cost ~10%. Workloads in that regime should
/// pass `batch = 1` to [`join_approx_cells_batch`] /
/// [`join_parallel_cells_batch`], which degenerates to scalar probing.
pub const DEFAULT_PROBE_BATCH: usize = 64;

/// Counts points per polygon in **approximate** mode from precomputed leaf
/// cell ids (the measured hot path of the paper's Figure 3), probing one
/// point at a time. [`join_approx_cells_batch`] is the faster batched
/// variant; this scalar loop stays as the reference implementation.
pub fn join_approx_cells(index: &ActIndex, cells: &[CellId], counts: &mut [u64]) -> JoinStats {
    let mut stats = JoinStats {
        points: cells.len() as u64,
        ..JoinStats::default()
    };
    let table = index.table();
    for &cell in cells {
        accumulate(index.probe_cell(cell), table, counts, &mut stats);
    }
    stats
}

/// [`join_approx_cells`] with batched trie probes: points are processed in
/// blocks of `batch` (see [`DEFAULT_PROBE_BATCH`]) via
/// [`crate::Act::lookup_batch`], overlapping the dependent loads of
/// different keys in the memory pipeline. Counts and stats are identical
/// to the scalar loop for any `batch`; `batch == 0` is treated as 1.
pub fn join_approx_cells_batch(
    index: &ActIndex,
    cells: &[CellId],
    counts: &mut [u64],
    batch: usize,
) -> JoinStats {
    let mut stats = JoinStats {
        points: cells.len() as u64,
        ..JoinStats::default()
    };
    let batch = batch.clamp(1, cells.len().max(1));
    let table = index.table();
    let act = index.act();
    let mut probes = vec![Probe::Miss; batch];
    for chunk in cells.chunks(batch) {
        let out = &mut probes[..chunk.len()];
        act.lookup_batch(chunk, out);
        for &p in out.iter() {
            accumulate(p, table, counts, &mut stats);
        }
    }
    stats
}

/// Approximate join from raw coordinates (includes the point→cell
/// conversion in the measured work).
pub fn join_approx_coords(index: &ActIndex, coords: &[Coord], counts: &mut [u64]) -> JoinStats {
    let mut stats = JoinStats {
        points: coords.len() as u64,
        ..JoinStats::default()
    };
    let table = index.table();
    for &c in coords {
        let probe = index.probe_coord(c);
        accumulate(probe, table, counts, &mut stats);
    }
    stats
}

#[inline]
fn accumulate(
    probe: Probe,
    table: &crate::lookup::LookupTable,
    counts: &mut [u64],
    stats: &mut JoinStats,
) {
    match probe {
        Probe::Miss => stats.misses += 1,
        Probe::One(r) => {
            counts[r.id as usize] += 1;
            if r.interior {
                stats.true_hits += 1;
            } else {
                stats.candidate_hits += 1;
            }
        }
        Probe::Two(a, b) => {
            for r in [a, b] {
                counts[r.id as usize] += 1;
                if r.interior {
                    stats.true_hits += 1;
                } else {
                    stats.candidate_hits += 1;
                }
            }
        }
        Probe::Table(off) => {
            let (trues, cands) = table.decode(off);
            for &id in trues {
                counts[id as usize] += 1;
            }
            for &id in cands {
                counts[id as usize] += 1;
            }
            stats.true_hits += trues.len() as u64;
            stats.candidate_hits += cands.len() as u64;
        }
    }
}

/// A refinement engine for exact mode: prepared polygons for fast PIP.
#[derive(Debug)]
pub struct Refiner {
    prepared: Vec<PreparedPolygon>,
}

impl Refiner {
    /// Prepares all polygons (one-time cost).
    pub fn new(polygons: &[geom::Polygon]) -> Refiner {
        Refiner {
            prepared: polygons
                .iter()
                .map(|p| PreparedPolygon::new(p, 0))
                .collect(),
        }
    }

    /// Exact containment test for polygon `id`.
    #[inline]
    pub fn contains(&self, id: u32, c: Coord) -> bool {
        self.prepared[id as usize].contains(c)
    }

    /// Number of prepared polygons.
    pub fn len(&self) -> usize {
        self.prepared.len()
    }

    /// True if no polygons were prepared.
    pub fn is_empty(&self) -> bool {
        self.prepared.is_empty()
    }
}

/// **Exact** join: candidates are refined by point-in-polygon tests. True
/// hits skip refinement — the paper's true-hit-filtering benefit carries
/// over to exact joins as avoided PIP calls (tracked in
/// [`JoinStats::candidate_hits`] vs [`JoinStats::true_hits`]).
pub fn join_exact(
    index: &ActIndex,
    refiner: &Refiner,
    coords: &[Coord],
    counts: &mut [u64],
) -> JoinStats {
    let mut stats = JoinStats {
        points: coords.len() as u64,
        ..JoinStats::default()
    };
    let table = index.table();
    for &c in coords {
        match index.probe_coord(c) {
            Probe::Miss => stats.misses += 1,
            Probe::One(r) => refine_one(r.id, r.interior, c, refiner, counts, &mut stats),
            Probe::Two(a, b) => {
                refine_one(a.id, a.interior, c, refiner, counts, &mut stats);
                refine_one(b.id, b.interior, c, refiner, counts, &mut stats);
            }
            Probe::Table(off) => {
                let (trues, cands) = table.decode(off);
                for &id in trues {
                    counts[id as usize] += 1;
                    stats.true_hits += 1;
                }
                for &id in cands {
                    stats.candidate_hits += 1;
                    if refiner.contains(id, c) {
                        counts[id as usize] += 1;
                        stats.refined_hits += 1;
                    }
                }
            }
        }
    }
    stats
}

#[inline]
fn refine_one(
    id: u32,
    interior: bool,
    c: Coord,
    refiner: &Refiner,
    counts: &mut [u64],
    stats: &mut JoinStats,
) {
    if interior {
        counts[id as usize] += 1;
        stats.true_hits += 1;
    } else {
        stats.candidate_hits += 1;
        if refiner.contains(id, c) {
            counts[id as usize] += 1;
            stats.refined_hits += 1;
        }
    }
}

/// Multithreaded approximate join over precomputed cell ids, with batched
/// probes ([`DEFAULT_PROBE_BATCH`]) inside each worker.
///
/// Partitions `cells` into `threads` contiguous chunks on a [`jobs::JobPool`]
/// with per-chunk counter arrays — no shared mutable state, no atomics;
/// counters are merged after the pool drains. Returns the merged counts and
/// stats, bit-identical to the sequential join. For cache-resident indexes
/// where batching does not pay (see [`DEFAULT_PROBE_BATCH`]), use
/// [`join_parallel_cells_batch`] with `batch = 1`.
pub fn join_parallel_cells(
    index: &ActIndex,
    cells: &[CellId],
    num_polygons: usize,
    threads: usize,
) -> (Vec<u64>, JoinStats) {
    join_parallel_cells_batch(index, cells, num_polygons, threads, DEFAULT_PROBE_BATCH)
}

/// [`join_parallel_cells`] with an explicit probe batch size (`batch == 0`
/// or `1` degenerates to scalar probing; the bench harness's `--batch`
/// knob lands here).
pub fn join_parallel_cells_batch(
    index: &ActIndex,
    cells: &[CellId],
    num_polygons: usize,
    threads: usize,
    batch: usize,
) -> (Vec<u64>, JoinStats) {
    let pool = jobs::JobPool::new(threads);
    let chunk = cells.len().div_ceil(threads).max(1);
    let results = pool.map_range(0..cells.len(), chunk, |r| {
        let mut counts = vec![0u64; num_polygons];
        let stats = join_approx_cells_batch(index, &cells[r], &mut counts, batch);
        (counts, stats)
    });
    let mut counts = vec![0u64; num_polygons];
    let mut stats = JoinStats::default();
    for (c, s) in results {
        for (acc, v) in counts.iter_mut().zip(c) {
            *acc += v;
        }
        stats.points += s.points;
        stats.true_hits += s.true_hits;
        stats.candidate_hits += s.candidate_hits;
        stats.misses += s.misses;
        stats.refined_hits += s.refined_hits;
    }
    (counts, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::coord_to_cell;
    use geom::{Polygon, Ring};

    fn square(cx: f64, cy: f64, half: f64) -> Polygon {
        Polygon::new(
            Ring::new(vec![
                Coord::new(cx - half, cy - half),
                Coord::new(cx + half, cy - half),
                Coord::new(cx + half, cy + half),
                Coord::new(cx - half, cy + half),
            ]),
            vec![],
        )
    }

    fn setup() -> (Vec<Polygon>, ActIndex) {
        let polys = vec![square(-74.05, 40.70, 0.02), square(-73.95, 40.70, 0.02)];
        let idx = ActIndex::build(&polys, 15.0).unwrap();
        (polys, idx)
    }

    fn test_points() -> Vec<Coord> {
        let mut pts = Vec::new();
        // 10 points deep in polygon 0, 5 in polygon 1, 5 outside all.
        for k in 0..10 {
            pts.push(Coord::new(-74.05 + 0.001 * k as f64, 40.70));
        }
        for k in 0..5 {
            pts.push(Coord::new(-73.95 + 0.001 * k as f64, 40.70));
        }
        for k in 0..5 {
            pts.push(Coord::new(-74.2, 40.88 + 0.001 * k as f64));
        }
        pts
    }

    #[test]
    fn approx_counts_match_geometry() {
        let (_, idx) = setup();
        let pts = test_points();
        let mut counts = vec![0u64; 2];
        let stats = join_approx_coords(&idx, &pts, &mut counts);
        assert_eq!(counts, vec![10, 5]);
        assert_eq!(stats.points, 20);
        assert_eq!(stats.misses, 5);
        assert_eq!(stats.true_hits + stats.candidate_hits, 15);
        // Deep-interior points should be true hits.
        assert!(stats.true_hits >= 13);
    }

    #[test]
    fn cells_and_coords_paths_agree() {
        let (_, idx) = setup();
        let pts = test_points();
        let cells: Vec<CellId> = pts.iter().map(|&c| coord_to_cell(c)).collect();
        let mut c1 = vec![0u64; 2];
        let mut c2 = vec![0u64; 2];
        let s1 = join_approx_coords(&idx, &pts, &mut c1);
        let s2 = join_approx_cells(&idx, &cells, &mut c2);
        assert_eq!(c1, c2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn exact_equals_brute_force() {
        let (polys, idx) = setup();
        let refiner = Refiner::new(&polys);
        // Points including some within ε of the boundary.
        let mut pts = test_points();
        for k in 0..20 {
            pts.push(Coord::new(
                -74.07 + 0.002 * k as f64,
                40.68 + 0.0001 * k as f64,
            ));
        }
        let mut exact = vec![0u64; 2];
        join_exact(&idx, &refiner, &pts, &mut exact);
        // Brute force.
        let mut brute = vec![0u64; 2];
        for &c in &pts {
            for (i, _p) in polys.iter().enumerate() {
                // Use the same PIP engine as the refiner for boundary-rule
                // consistency.
                if refiner.contains(i as u32, c) {
                    brute[i] += 1;
                }
            }
        }
        assert_eq!(exact, brute);
    }

    #[test]
    fn approx_overcounts_only_within_epsilon() {
        let (polys, idx) = setup();
        let pts = test_points();
        let mut approx = vec![0u64; 2];
        join_approx_coords(&idx, &pts, &mut approx);
        // Every approximate hit must be within ε of the polygon.
        for &c in &pts {
            for (id, _) in idx.lookup_refs(c) {
                let d = polys[id as usize].distance_meters(c);
                assert!(
                    d <= idx.stats().precision_m,
                    "approx hit at distance {d} exceeds ε"
                );
            }
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let (_, idx) = setup();
        let pts = test_points();
        let cells: Vec<CellId> = pts.iter().map(|&c| coord_to_cell(c)).collect();
        let mut seq = vec![0u64; 2];
        let seq_stats = join_approx_cells(&idx, &cells, &mut seq);
        for threads in [1usize, 2, 3, 8] {
            let (par, par_stats) = join_parallel_cells(&idx, &cells, 2, threads);
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(par_stats, seq_stats, "threads={threads}");
        }
    }

    #[test]
    fn empty_inputs() {
        let (_, idx) = setup();
        let mut counts = vec![0u64; 2];
        let stats = join_approx_cells(&idx, &[], &mut counts);
        assert_eq!(stats.points, 0);
        let (par, _) = join_parallel_cells(&idx, &[], 2, 4);
        assert_eq!(par, vec![0, 0]);
        let stats = join_approx_cells_batch(&idx, &[], &mut counts, 64);
        assert_eq!(stats.points, 0);
    }

    #[test]
    fn batched_equals_scalar_for_any_batch_size() {
        let (_, idx) = setup();
        let pts = test_points();
        let cells: Vec<CellId> = pts.iter().map(|&c| coord_to_cell(c)).collect();
        let mut scalar = vec![0u64; 2];
        let scalar_stats = join_approx_cells(&idx, &cells, &mut scalar);
        for batch in [0usize, 1, 2, 7, 64, 256, 1000] {
            let mut counts = vec![0u64; 2];
            let stats = join_approx_cells_batch(&idx, &cells, &mut counts, batch);
            assert_eq!(counts, scalar, "batch={batch}");
            assert_eq!(stats, scalar_stats, "batch={batch}");
        }
    }

    #[test]
    fn parallel_batch_equals_sequential() {
        let (_, idx) = setup();
        let pts = test_points();
        let cells: Vec<CellId> = pts.iter().map(|&c| coord_to_cell(c)).collect();
        let mut seq = vec![0u64; 2];
        let seq_stats = join_approx_cells(&idx, &cells, &mut seq);
        for (threads, batch) in [(2usize, 1usize), (3, 8), (4, 64)] {
            let (par, par_stats) = join_parallel_cells_batch(&idx, &cells, 2, threads, batch);
            assert_eq!(par, seq, "threads={threads} batch={batch}");
            assert_eq!(par_stats, seq_stats, "threads={threads} batch={batch}");
        }
    }
}
