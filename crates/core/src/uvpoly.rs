//! Polygons projected to cube-face (u, v) space.
//!
//! The covering recursion must classify grid cells against polygons. Doing
//! that in lat/lng space would approximate cells by warped quads; doing it
//! in (u, v) space is **exact**: a cell at any level is an axis-aligned
//! rectangle in its face's (u, v) plane, and — because the face projection
//! is gnomonic — great-circle arcs are straight lines, so polygon edges are
//! exact segments. (Our datasets' edges are defined in lat/lng degree
//! space; at the ≤ 200 m segment lengths the generators produce, the
//! difference between a great-circle arc and a degree-space straight edge
//! is sub-millimeter — far below any supported precision bound.)
//!
//! Restriction: a polygon must project onto a single cube face. This holds
//! for any city-scale dataset away from face boundaries (all of NYC is
//! comfortably inside face 4); multi-face polygons would need clipping,
//! which the paper's workloads never exercise.

use geom::{CellRelation, Coord, Polygon};
use s2cell::coords::{valid_face_xyz_to_uv, xyz_to_face_uv};
use s2cell::LatLng;

/// An axis-aligned rectangle in (u, v) face coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UvRect {
    pub u_lo: f64,
    pub u_hi: f64,
    pub v_lo: f64,
    pub v_hi: f64,
}

impl UvRect {
    /// Containment of a uv point (closed).
    #[inline]
    pub fn contains(&self, u: f64, v: f64) -> bool {
        u >= self.u_lo && u <= self.u_hi && v >= self.v_lo && v <= self.v_hi
    }

    /// Center of the rectangle.
    #[inline]
    pub fn center(&self) -> (f64, f64) {
        (0.5 * (self.u_lo + self.u_hi), 0.5 * (self.v_lo + self.v_hi))
    }
}

/// One polygon edge as a uv segment, with its own bbox for pruning.
#[derive(Debug, Clone, Copy)]
pub struct UvEdge {
    pub au: f64,
    pub av: f64,
    pub bu: f64,
    pub bv: f64,
    bb_u_lo: f64,
    bb_u_hi: f64,
    bb_v_lo: f64,
    bb_v_hi: f64,
}

impl UvEdge {
    fn new(au: f64, av: f64, bu: f64, bv: f64) -> UvEdge {
        UvEdge {
            au,
            av,
            bu,
            bv,
            bb_u_lo: au.min(bu),
            bb_u_hi: au.max(bu),
            bb_v_lo: av.min(bv),
            bb_v_hi: av.max(bv),
        }
    }

    /// Bbox-vs-rect prefilter.
    #[inline]
    pub fn bbox_intersects(&self, r: &UvRect) -> bool {
        self.bb_u_lo <= r.u_hi
            && self.bb_u_hi >= r.u_lo
            && self.bb_v_lo <= r.v_hi
            && self.bb_v_hi >= r.v_lo
    }

    /// Exact segment-vs-rectangle intersection (either endpoint inside, or
    /// the segment crosses one of the four rectangle edges).
    pub fn intersects_rect(&self, r: &UvRect) -> bool {
        if r.contains(self.au, self.av) || r.contains(self.bu, self.bv) {
            return true;
        }
        // Liang–Barsky style clipping test.
        let (mut t0, mut t1) = (0.0f64, 1.0f64);
        let dx = self.bu - self.au;
        let dy = self.bv - self.av;
        let clips = [
            (-dx, self.au - r.u_lo),
            (dx, r.u_hi - self.au),
            (-dy, self.av - r.v_lo),
            (dy, r.v_hi - self.av),
        ];
        for (p, q) in clips {
            if p == 0.0 {
                if q < 0.0 {
                    return false;
                }
            } else {
                let t = q / p;
                if p < 0.0 {
                    if t > t1 {
                        return false;
                    }
                    if t > t0 {
                        t0 = t;
                    }
                } else {
                    if t < t0 {
                        return false;
                    }
                    if t < t1 {
                        t1 = t;
                    }
                }
            }
        }
        t0 <= t1
    }
}

/// A polygon in uv space with a banded edge index for fast PIP.
#[derive(Debug)]
pub struct UvPolygon {
    /// The cube face this polygon lives on.
    pub face: u8,
    /// All edges of all rings (outer + holes).
    pub edges: Vec<UvEdge>,
    /// Polygon bbox in uv.
    pub bbox: UvRect,
    /// Banded index over `edges` by v coordinate.
    bands: Vec<Vec<u32>>,
    v_lo: f64,
    inv_band_h: f64,
}

/// Error raised when a polygon cannot be projected onto one face.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiFaceError {
    /// The two faces that were encountered.
    pub faces: (u8, u8),
}

impl std::fmt::Display for MultiFaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "polygon spans cube faces {} and {}; single-face polygons required",
            self.faces.0, self.faces.1
        )
    }
}

impl std::error::Error for MultiFaceError {}

fn project(face: u8, c: Coord) -> (f64, f64) {
    let p = LatLng::from_degrees(c.y, c.x).to_point();
    valid_face_xyz_to_uv(face, &p)
}

impl UvPolygon {
    /// Projects a lat/lng polygon onto its cube face.
    pub fn from_polygon(poly: &Polygon) -> Result<UvPolygon, MultiFaceError> {
        let first = poly.outer().vertices()[0];
        let p0 = LatLng::from_degrees(first.y, first.x).to_point();
        let (face, _, _) = xyz_to_face_uv(&p0);

        // Validate all vertices are on the same face.
        for ring in std::iter::once(poly.outer()).chain(poly.holes().iter()) {
            for v in ring.vertices() {
                let p = LatLng::from_degrees(v.y, v.x).to_point();
                let f = s2cell::coords::face(&p);
                if f != face {
                    return Err(MultiFaceError { faces: (face, f) });
                }
            }
        }

        let mut edges = Vec::with_capacity(poly.num_vertices());
        let mut ring_uv = |ring: &geom::Ring| {
            let uv: Vec<(f64, f64)> = ring.vertices().iter().map(|&c| project(face, c)).collect();
            let n = uv.len();
            for i in 0..n {
                let (au, av) = uv[i];
                let (bu, bv) = uv[(i + 1) % n];
                edges.push(UvEdge::new(au, av, bu, bv));
            }
        };
        ring_uv(poly.outer());
        for h in poly.holes() {
            ring_uv(h);
        }

        let (mut u_lo, mut u_hi, mut v_lo, mut v_hi) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
        for e in &edges {
            u_lo = u_lo.min(e.bb_u_lo);
            u_hi = u_hi.max(e.bb_u_hi);
            v_lo = v_lo.min(e.bb_v_lo);
            v_hi = v_hi.max(e.bb_v_hi);
        }
        let bbox = UvRect {
            u_lo,
            u_hi,
            v_lo,
            v_hi,
        };

        // Banded PIP index over v.
        let n_bands = ((edges.len() as f64).sqrt().ceil() as usize).max(1);
        let height = (v_hi - v_lo).max(f64::MIN_POSITIVE);
        let inv_band_h = n_bands as f64 / height;
        let mut bands = vec![Vec::new(); n_bands];
        for (i, e) in edges.iter().enumerate() {
            let lo = band_idx(e.bb_v_lo, v_lo, inv_band_h, n_bands);
            let hi = band_idx(e.bb_v_hi, v_lo, inv_band_h, n_bands);
            for band in bands.iter_mut().take(hi + 1).skip(lo) {
                band.push(i as u32);
            }
        }

        Ok(UvPolygon {
            face,
            edges,
            bbox,
            bands,
            v_lo,
            inv_band_h,
        })
    }

    /// Point-in-polygon in uv space (even-odd rule over all rings, so holes
    /// are handled naturally).
    pub fn contains_uv(&self, u: f64, v: f64) -> bool {
        if !self.bbox.contains(u, v) {
            return false;
        }
        let band = band_idx(v, self.v_lo, self.inv_band_h, self.bands.len());
        let mut inside = false;
        for &i in &self.bands[band] {
            let e = &self.edges[i as usize];
            if (e.bv > v) != (e.av > v) {
                let u_cross = e.bu + (v - e.bv) * (e.au - e.bu) / (e.av - e.bv);
                if u < u_cross {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// Classifies `rect` against this polygon, scanning only the edge
    /// indices in `subset` (pass `None` for all edges). On `Boundary`,
    /// also returns the sub-subset of edges relevant inside `rect`, for the
    /// covering recursion to pass to the four children.
    pub fn relate_rect(&self, rect: &UvRect, subset: Option<&[u32]>) -> (CellRelation, Vec<u32>) {
        let mut out = Vec::new();
        let mut boundary = false;
        let mut scan = |i: u32| {
            let e = &self.edges[i as usize];
            if e.bbox_intersects(rect) {
                out.push(i);
                if !boundary && e.intersects_rect(rect) {
                    boundary = true;
                }
            }
        };
        match subset {
            Some(s) => s.iter().copied().for_each(&mut scan),
            None => (0..self.edges.len() as u32).for_each(&mut scan),
        }
        if boundary {
            return (CellRelation::Boundary, out);
        }
        // No edge touches the rect: it is uniformly inside or outside.
        let (cu, cv) = rect.center();
        if self.contains_uv(cu, cv) {
            (CellRelation::Inside, out)
        } else {
            (CellRelation::Outside, out)
        }
    }
}

#[inline]
fn band_idx(v: f64, v_lo: f64, inv_band_h: f64, n_bands: usize) -> usize {
    let b = ((v - v_lo) * inv_band_h) as isize;
    b.clamp(0, n_bands as isize - 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::Ring;

    fn nyc_square(cx: f64, cy: f64, half: f64) -> Polygon {
        Polygon::new(
            Ring::new(vec![
                Coord::new(cx - half, cy - half),
                Coord::new(cx + half, cy - half),
                Coord::new(cx + half, cy + half),
                Coord::new(cx - half, cy + half),
            ]),
            vec![],
        )
    }

    #[test]
    fn projection_face_is_consistent() {
        let poly = nyc_square(-74.0, 40.7, 0.05);
        let uv = UvPolygon::from_polygon(&poly).unwrap();
        assert_eq!(uv.face, 4);
        assert_eq!(uv.edges.len(), 4);
    }

    #[test]
    fn multi_face_is_rejected() {
        // A polygon spanning from NYC to the prime meridian crosses faces.
        let poly = Polygon::new(
            Ring::new(vec![
                Coord::new(-74.0, 40.7),
                Coord::new(0.0, 40.7),
                Coord::new(0.0, 45.0),
            ]),
            vec![],
        );
        assert!(UvPolygon::from_polygon(&poly).is_err());
    }

    #[test]
    fn contains_uv_agrees_with_latlng_contains() {
        let poly = nyc_square(-74.0, 40.7, 0.05);
        let uv = UvPolygon::from_polygon(&poly).unwrap();
        // Sample a grid around the square; projections of contained points
        // must be contained in uv space and vice versa. (Edges here are
        // ≤ 10 km, so arc-vs-straight discrepancy is ~cm — sample away from
        // the boundary to stay clear of it.)
        for i in -10..=10 {
            for j in -10..=10 {
                let c = Coord::new(
                    -74.0 + i as f64 * 0.012 + 0.001,
                    40.7 + j as f64 * 0.012 + 0.001,
                );
                let (u, v) = project(uv.face, c);
                assert_eq!(
                    uv.contains_uv(u, v),
                    poly.contains(c),
                    "disagreement at {c}"
                );
            }
        }
    }

    #[test]
    fn relate_rect_classification() {
        let poly = nyc_square(-74.0, 40.7, 0.05);
        let uv = UvPolygon::from_polygon(&poly).unwrap();
        // A rect well inside the square.
        let (cu, cv) = project(uv.face, Coord::new(-74.0, 40.7));
        let tiny = UvRect {
            u_lo: cu - 1e-6,
            u_hi: cu + 1e-6,
            v_lo: cv - 1e-6,
            v_hi: cv + 1e-6,
        };
        let (rel, edges) = uv.relate_rect(&tiny, None);
        assert_eq!(rel, CellRelation::Inside);
        assert!(edges.is_empty());
        // A rect far away.
        let far = UvRect {
            u_lo: cu + 0.5,
            u_hi: cu + 0.6,
            v_lo: cv,
            v_hi: cv + 0.1,
        };
        assert_eq!(uv.relate_rect(&far, None).0, CellRelation::Outside);
        // A rect straddling the boundary.
        let (bu, bv) = project(uv.face, Coord::new(-74.05, 40.7));
        let straddle = UvRect {
            u_lo: bu - 1e-4,
            u_hi: bu + 1e-4,
            v_lo: bv - 1e-4,
            v_hi: bv + 1e-4,
        };
        let (rel, edges) = uv.relate_rect(&straddle, None);
        assert_eq!(rel, CellRelation::Boundary);
        assert!(!edges.is_empty());
    }

    #[test]
    fn relate_rect_subset_recursion_is_consistent() {
        // Classifying with the parent's edge subset must give the same
        // answer as classifying against all edges.
        let poly = nyc_square(-74.0, 40.7, 0.05);
        let uv = UvPolygon::from_polygon(&poly).unwrap();
        let (bu, bv) = project(uv.face, Coord::new(-74.05, 40.75));
        let parent = UvRect {
            u_lo: bu - 1e-3,
            u_hi: bu + 1e-3,
            v_lo: bv - 1e-3,
            v_hi: bv + 1e-3,
        };
        let (_, subset) = uv.relate_rect(&parent, None);
        let child = UvRect {
            u_lo: bu - 1e-3,
            u_hi: bu,
            v_lo: bv - 1e-3,
            v_hi: bv,
        };
        let (rel_full, _) = uv.relate_rect(&child, None);
        let (rel_sub, _) = uv.relate_rect(&child, Some(&subset));
        assert_eq!(rel_full, rel_sub);
    }

    #[test]
    fn segment_rect_intersection_cases() {
        let r = UvRect {
            u_lo: 0.0,
            u_hi: 1.0,
            v_lo: 0.0,
            v_hi: 1.0,
        };
        // Fully inside.
        assert!(UvEdge::new(0.2, 0.2, 0.8, 0.8).intersects_rect(&r));
        // Crossing through.
        assert!(UvEdge::new(-1.0, 0.5, 2.0, 0.5).intersects_rect(&r));
        // Diagonal crossing a corner region.
        assert!(UvEdge::new(-0.5, 0.5, 0.5, 1.5).intersects_rect(&r));
        // Outside, parallel.
        assert!(!UvEdge::new(-1.0, 2.0, 2.0, 2.0).intersects_rect(&r));
        // Diagonal near-miss of the corner.
        assert!(!UvEdge::new(1.5, 0.5, 0.5, 1.6).intersects_rect(&r));
        // Touching an edge exactly.
        assert!(UvEdge::new(1.0, 0.2, 2.0, 0.2).intersects_rect(&r));
    }

    #[test]
    fn donut_pip_in_uv() {
        let outer = Ring::new(vec![
            Coord::new(-74.1, 40.6),
            Coord::new(-73.9, 40.6),
            Coord::new(-73.9, 40.8),
            Coord::new(-74.1, 40.8),
        ]);
        let hole = Ring::new(vec![
            Coord::new(-74.05, 40.65),
            Coord::new(-73.95, 40.65),
            Coord::new(-73.95, 40.75),
            Coord::new(-74.05, 40.75),
        ]);
        let poly = Polygon::new(outer, vec![hole]);
        let uv = UvPolygon::from_polygon(&poly).unwrap();
        let probe = |c: Coord| {
            let (u, v) = project(uv.face, c);
            uv.contains_uv(u, v)
        };
        assert!(probe(Coord::new(-74.08, 40.62))); // in ring, not hole
        assert!(!probe(Coord::new(-74.0, 40.7))); // in hole
        assert!(!probe(Coord::new(-74.3, 40.7))); // outside
    }
}
