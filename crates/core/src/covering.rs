//! Per-polygon coverings with a precision bound.
//!
//! A *covering* of a polygon is a set of cells classified as:
//!
//! * **interior cells** — entirely inside the polygon (true hits). Emitted
//!   at whatever level the recursion discovers them, so large interiors are
//!   covered by few, coarse, cache-resident cells (the reason the paper's
//!   boroughs stay fast even at high precision).
//! * **boundary cells** — intersecting the polygon boundary (candidates).
//!   These are refined to the *terminal level* `L(ε)` — the smallest level
//!   whose maximum cell diagonal is ≤ ε — which bounds the distance of any
//!   false positive to the polygon by ε (the paper's precision guarantee).
//!
//! The recursion runs in exact (u, v) face coordinates (see
//! [`crate::uvpoly`]), narrowing the candidate edge set as it descends so
//! per-cell work stays proportional to local boundary complexity.

use crate::uvpoly::{MultiFaceError, UvPolygon, UvRect};
use geom::{CellRelation, Polygon};
use s2cell::coords::st_to_uv;
use s2cell::{metrics, CellId, MAX_SIZE};

/// Parameters of a covering computation.
#[derive(Debug, Clone, Copy)]
pub struct CoveringParams {
    /// The precision bound ε in meters: the maximum distance between the
    /// partners of a false-positive join pair.
    pub precision_m: f64,
}

impl CoveringParams {
    /// Creates parameters, validating that ε is achievable: the deepest
    /// indexable cell (level 28) has a ~6 cm diagonal, so ε must be at
    /// least that ("up to a few centimeters", as the paper puts it).
    pub fn new(precision_m: f64) -> CoveringParams {
        assert!(
            precision_m >= metrics::max_diag_meters(crate::trie::MAX_INDEX_LEVEL),
            "precision {precision_m} m is below the ~6 cm limit of level-28 cells"
        );
        CoveringParams { precision_m }
    }

    /// The terminal level boundary cells are refined to.
    pub fn terminal_level(&self) -> u8 {
        metrics::level_for_max_diag_meters(self.precision_m)
    }
}

/// The covering of one polygon.
#[derive(Debug, Clone, Default)]
pub struct Covering {
    /// `(cell, interior)` pairs; `interior == true` marks a true-hit cell.
    pub cells: Vec<(CellId, bool)>,
}

impl Covering {
    /// Number of interior cells.
    pub fn num_interior(&self) -> usize {
        self.cells.iter().filter(|(_, i)| *i).count()
    }

    /// Number of boundary cells.
    pub fn num_boundary(&self) -> usize {
        self.cells.len() - self.num_interior()
    }
}

/// Computes the covering of `poly` with the given precision bound.
///
/// Returns an error if the polygon spans multiple cube faces.
pub fn cover_polygon(poly: &Polygon, params: &CoveringParams) -> Result<Covering, MultiFaceError> {
    let uv = UvPolygon::from_polygon(poly)?;
    Ok(cover_uv_polygon(&uv, params))
}

/// Computes the covering of an already-projected polygon.
pub fn cover_uv_polygon(uv: &UvPolygon, params: &CoveringParams) -> Covering {
    let terminal = params.terminal_level();
    let mut out = Covering::default();
    let mut scratch = RecursionScratch {
        uv,
        terminal,
        out: &mut out,
    };
    // Start at the face cell: i, j in [0, 2^30), level 0.
    scratch.recurse(0, 0, 0, None);
    out
}

/// Computes the covering of `uv` restricted to the region of `within`
/// (a cell on the same face), refining boundary cells to `params`'
/// terminal level. Used by the adaptive index to re-cover hot cells at a
/// finer precision than the base build.
pub fn cover_uv_polygon_within(
    uv: &UvPolygon,
    params: &CoveringParams,
    within: s2cell::CellId,
) -> Covering {
    debug_assert_eq!(within.face(), uv.face, "cell must be on the polygon's face");
    let terminal = params.terminal_level().max(within.level());
    let mut out = Covering::default();
    let mut scratch = RecursionScratch {
        uv,
        terminal,
        out: &mut out,
    };
    let level = within.level();
    let (_, i, j, _) = within.to_face_ij_orientation();
    let size = 1u32 << (s2cell::MAX_LEVEL - level);
    scratch.recurse(level, i & !(size - 1), j & !(size - 1), None);
    out
}

struct RecursionScratch<'a> {
    uv: &'a UvPolygon,
    terminal: u8,
    out: &'a mut Covering,
}

impl RecursionScratch<'_> {
    /// `i_lo`, `j_lo` are the cell's minimum leaf coordinates; `level` its
    /// subdivision level; `subset` the parent's relevant edge indices.
    fn recurse(&mut self, level: u8, i_lo: u32, j_lo: u32, subset: Option<&[u32]>) {
        let rect = cell_uv_rect(level, i_lo, j_lo);
        let (rel, sub) = self.uv.relate_rect(&rect, subset);
        match rel {
            CellRelation::Outside => {}
            CellRelation::Inside => {
                self.out
                    .cells
                    .push((cell_id_on_face(self.uv.face, level, i_lo, j_lo), true));
            }
            CellRelation::Boundary => {
                if level >= self.terminal {
                    self.out
                        .cells
                        .push((cell_id_on_face(self.uv.face, level, i_lo, j_lo), false));
                } else {
                    let half = 1u32 << (s2cell::MAX_LEVEL - level - 1);
                    self.recurse(level + 1, i_lo, j_lo, Some(&sub));
                    self.recurse(level + 1, i_lo + half, j_lo, Some(&sub));
                    self.recurse(level + 1, i_lo, j_lo + half, Some(&sub));
                    self.recurse(level + 1, i_lo + half, j_lo + half, Some(&sub));
                }
            }
        }
    }
}

/// The uv rectangle of the cell with minimum leaf coordinates (i_lo, j_lo)
/// at `level`. Exact: cells are axis-aligned uv rectangles.
fn cell_uv_rect(level: u8, i_lo: u32, j_lo: u32) -> UvRect {
    let size = 1u64 << (s2cell::MAX_LEVEL - level);
    let s_lo = i_lo as f64 / MAX_SIZE as f64;
    let s_hi = (i_lo as u64 + size) as f64 / MAX_SIZE as f64;
    let t_lo = j_lo as f64 / MAX_SIZE as f64;
    let t_hi = (j_lo as u64 + size) as f64 / MAX_SIZE as f64;
    UvRect {
        u_lo: st_to_uv(s_lo),
        u_hi: st_to_uv(s_hi),
        v_lo: st_to_uv(t_lo),
        v_hi: st_to_uv(t_hi),
    }
}

/// The id of the cell with minimum leaf coordinates (i_lo, j_lo) at `level`
/// on `face`.
fn cell_id_on_face(face: u8, level: u8, i_lo: u32, j_lo: u32) -> CellId {
    CellId::from_face_ij(face, i_lo, j_lo).parent(level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geom::{Coord, Ring};
    use s2cell::LatLng;

    fn nyc_square(cx: f64, cy: f64, half: f64) -> Polygon {
        Polygon::new(
            Ring::new(vec![
                Coord::new(cx - half, cy - half),
                Coord::new(cx + half, cy - half),
                Coord::new(cx + half, cy + half),
                Coord::new(cx - half, cy + half),
            ]),
            vec![],
        )
    }

    #[test]
    fn covering_has_both_kinds_of_cells() {
        let poly = nyc_square(-74.0, 40.7, 0.02); // ~3.4 km square
        let params = CoveringParams::new(60.0);
        let cov = cover_polygon(&poly, &params).unwrap();
        assert!(cov.num_interior() > 0, "expected interior cells");
        assert!(cov.num_boundary() > 0, "expected boundary cells");
    }

    #[test]
    fn boundary_cells_at_terminal_level() {
        let poly = nyc_square(-74.0, 40.7, 0.02);
        let params = CoveringParams::new(60.0);
        assert_eq!(params.terminal_level(), 18);
        let cov = cover_polygon(&poly, &params).unwrap();
        for (cell, interior) in &cov.cells {
            if !interior {
                assert_eq!(cell.level(), 18, "boundary cells sit at L(ε)");
            } else {
                assert!(cell.level() <= 18);
            }
        }
    }

    #[test]
    fn interior_cells_are_inside_boundary_cells_touch() {
        let poly = nyc_square(-74.0, 40.7, 0.02);
        let params = CoveringParams::new(15.0);
        let cov = cover_polygon(&poly, &params).unwrap();
        for (cell, interior) in cov.cells.iter().take(500) {
            let center = cell.to_latlng();
            let c = Coord::new(center.lng_degrees(), center.lat_degrees());
            if *interior {
                assert!(
                    poly.contains(c),
                    "interior cell center {c} must be inside the polygon"
                );
            } else {
                // Boundary cell centers are within ε of the polygon.
                assert!(
                    poly.distance_meters(c) <= params.precision_m,
                    "boundary cell center {c} too far from polygon"
                );
            }
        }
    }

    #[test]
    fn cells_are_disjoint() {
        let poly = nyc_square(-74.0, 40.7, 0.015);
        let cov = cover_polygon(&poly, &CoveringParams::new(60.0)).unwrap();
        let mut sorted: Vec<CellId> = cov.cells.iter().map(|(c, _)| *c).collect();
        sorted.sort_by_key(|c| c.range_min().0);
        for w in sorted.windows(2) {
            assert!(
                w[0].range_max().0 < w[1].range_min().0,
                "cells {:?} and {:?} overlap",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn covering_covers_the_polygon() {
        // Every point inside the polygon must fall in some covering cell.
        let poly = nyc_square(-74.0, 40.7, 0.02);
        let cov = cover_polygon(&poly, &CoveringParams::new(60.0)).unwrap();
        let cells: Vec<CellId> = cov.cells.iter().map(|(c, _)| *c).collect();
        let mut rng = 12345u64;
        for _ in 0..300 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let fx = (rng >> 33) as f64 / (1u64 << 31) as f64;
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let fy = (rng >> 33) as f64 / (1u64 << 31) as f64;
            let c = Coord::new(-74.02 + 0.04 * fx, 40.68 + 0.04 * fy);
            if !poly.contains(c) {
                continue;
            }
            let leaf = CellId::from_latlng(LatLng::from_degrees(c.y, c.x));
            assert!(
                cells.iter().any(|cell| cell.contains(leaf)),
                "contained point {c} not covered"
            );
        }
    }

    #[test]
    fn finer_precision_more_boundary_cells() {
        let poly = nyc_square(-74.0, 40.7, 0.01);
        let coarse = cover_polygon(&poly, &CoveringParams::new(60.0)).unwrap();
        let fine = cover_polygon(&poly, &CoveringParams::new(4.0)).unwrap();
        assert!(
            fine.num_boundary() > 4 * coarse.num_boundary(),
            "coarse {} vs fine {}",
            coarse.num_boundary(),
            fine.num_boundary()
        );
    }

    #[test]
    #[should_panic(expected = "below the ~6 cm limit")]
    fn unachievable_precision_panics() {
        CoveringParams::new(0.01);
    }

    #[test]
    fn covering_with_holes() {
        let outer = Ring::new(vec![
            Coord::new(-74.05, 40.65),
            Coord::new(-73.95, 40.65),
            Coord::new(-73.95, 40.75),
            Coord::new(-74.05, 40.75),
        ]);
        let hole = Ring::new(vec![
            Coord::new(-74.02, 40.68),
            Coord::new(-73.98, 40.68),
            Coord::new(-73.98, 40.72),
            Coord::new(-74.02, 40.72),
        ]);
        let poly = Polygon::new(outer, vec![hole]);
        let cov = cover_polygon(&poly, &CoveringParams::new(60.0)).unwrap();
        // A point in the hole must not be in any interior cell.
        let in_hole = CellId::from_latlng(LatLng::from_degrees(40.70, -74.0));
        for (cell, interior) in &cov.cells {
            if *interior {
                assert!(!cell.contains(in_hole), "hole covered by interior cell");
            }
        }
    }
}
