//! Polygon references: the payloads stored in the Adaptive Cell Trie.
//!
//! A cell of the super covering references one or more polygons. Each
//! reference carries an *interior flag*: `true` means the cell lies entirely
//! inside that polygon (a **true hit** — any point in the cell is guaranteed
//! to be in the polygon), `false` means the cell intersects the polygon's
//! boundary (a **candidate hit** — a point in the cell is within the
//! precision bound ε of the polygon, but possibly outside it).
//!
//! Following the paper, a reference is packed into a 31-bit payload whose
//! least-significant bit is the interior flag, leaving 30 bits for the
//! polygon id (up to 2³⁰ ≈ 1.07 B polygons).

/// Maximum representable polygon id (30 bits).
pub const MAX_POLYGON_ID: u32 = (1 << 30) - 1;

/// A reference from a cell to a polygon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PolygonRef {
    /// The polygon id (dataset index), ≤ [`MAX_POLYGON_ID`].
    pub id: u32,
    /// True hit (interior cell) vs candidate hit (boundary cell).
    pub interior: bool,
}

impl PolygonRef {
    /// Creates a true-hit reference.
    #[inline]
    pub fn true_hit(id: u32) -> PolygonRef {
        PolygonRef { id, interior: true }
    }

    /// Creates a candidate-hit reference.
    #[inline]
    pub fn candidate(id: u32) -> PolygonRef {
        PolygonRef {
            id,
            interior: false,
        }
    }

    /// Packs into the 31-bit payload: `(id << 1) | interior`.
    #[inline]
    pub fn encode(&self) -> u32 {
        debug_assert!(self.id <= MAX_POLYGON_ID);
        (self.id << 1) | self.interior as u32
    }

    /// Unpacks a 31-bit payload.
    #[inline]
    pub fn decode(payload: u32) -> PolygonRef {
        PolygonRef {
            id: payload >> 1,
            interior: payload & 1 == 1,
        }
    }
}

/// The set of references attached to one cell of the super covering.
///
/// Most cells reference one or two polygons (the paper inlines those in the
/// trie); the variants mirror that so the common cases stay allocation-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefSet {
    /// One reference — inlined in the trie as a single payload.
    One(PolygonRef),
    /// Two references — inlined in the trie as a double payload.
    Two(PolygonRef, PolygonRef),
    /// Three or more references — stored in the shared lookup table.
    Many(Vec<PolygonRef>),
}

impl RefSet {
    /// A set with a single reference.
    #[inline]
    pub fn single(r: PolygonRef) -> RefSet {
        RefSet::One(r)
    }

    /// Number of references.
    pub fn len(&self) -> usize {
        match self {
            RefSet::One(_) => 1,
            RefSet::Two(..) => 2,
            RefSet::Many(v) => v.len(),
        }
    }

    /// Ref sets are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over the references.
    pub fn iter(&self) -> RefSetIter<'_> {
        match self {
            RefSet::One(a) => RefSetIter::Inline([Some(*a), None], 0),
            RefSet::Two(a, b) => RefSetIter::Inline([Some(*a), Some(*b)], 0),
            RefSet::Many(v) => RefSetIter::Slice(v.iter()),
        }
    }

    /// Merges another reference into this set, keeping references sorted by
    /// id and resolving duplicates: if the same polygon appears as both true
    /// hit and candidate, **true hit wins** (the stronger claim — this
    /// happens when a pushed-down interior ancestor meets a boundary cell;
    /// the descendant is genuinely inside the polygon).
    pub fn merge(&mut self, r: PolygonRef) {
        let mut v: Vec<PolygonRef> = self.iter().collect();
        match v.binary_search_by_key(&r.id, |x| x.id) {
            Ok(i) => {
                if r.interior {
                    v[i].interior = true;
                }
            }
            Err(i) => v.insert(i, r),
        }
        *self = RefSet::from_sorted(v);
    }

    /// Builds from a sorted, deduplicated vec.
    fn from_sorted(v: Vec<PolygonRef>) -> RefSet {
        match v.len() {
            1 => RefSet::One(v[0]),
            2 => RefSet::Two(v[0], v[1]),
            _ => RefSet::Many(v),
        }
    }

    /// The true-hit references.
    pub fn true_hits(&self) -> impl Iterator<Item = u32> + '_ {
        self.iter().filter(|r| r.interior).map(|r| r.id)
    }

    /// The candidate references.
    pub fn candidates(&self) -> impl Iterator<Item = u32> + '_ {
        self.iter().filter(|r| !r.interior).map(|r| r.id)
    }
}

/// Iterator over a [`RefSet`].
pub enum RefSetIter<'a> {
    /// Inline storage (One / Two variants).
    Inline([Option<PolygonRef>; 2], usize),
    /// Heap storage (Many variant).
    Slice(std::slice::Iter<'a, PolygonRef>),
}

impl Iterator for RefSetIter<'_> {
    type Item = PolygonRef;

    fn next(&mut self) -> Option<PolygonRef> {
        match self {
            RefSetIter::Inline(arr, i) => {
                if *i < 2 {
                    let r = arr[*i];
                    *i += 1;
                    r
                } else {
                    None
                }
            }
            RefSetIter::Slice(it) => it.next().copied(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        for &(id, interior) in &[
            (0u32, false),
            (0, true),
            (12345, true),
            (MAX_POLYGON_ID, false),
        ] {
            let r = PolygonRef { id, interior };
            let enc = r.encode();
            assert!(enc < (1 << 31), "payload must fit 31 bits");
            assert_eq!(PolygonRef::decode(enc), r);
        }
    }

    #[test]
    fn interior_flag_is_lsb() {
        // The paper: "we differentiate between a true hit and a candidate
        // hit using the least significant bit of the 31 bit payload".
        assert_eq!(PolygonRef::true_hit(5).encode() & 1, 1);
        assert_eq!(PolygonRef::candidate(5).encode() & 1, 0);
    }

    #[test]
    fn merge_grows_and_sorts() {
        let mut s = RefSet::single(PolygonRef::candidate(5));
        assert_eq!(s.len(), 1);
        s.merge(PolygonRef::true_hit(2));
        assert_eq!(s.len(), 2);
        s.merge(PolygonRef::candidate(9));
        assert_eq!(s.len(), 3);
        let ids: Vec<u32> = s.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![2, 5, 9]);
        assert!(matches!(s, RefSet::Many(_)));
    }

    #[test]
    fn merge_duplicate_true_hit_wins() {
        let mut s = RefSet::single(PolygonRef::candidate(7));
        s.merge(PolygonRef::true_hit(7));
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().next().unwrap(), PolygonRef::true_hit(7));
        // And the reverse order: merging a candidate into a true hit is a no-op.
        let mut s = RefSet::single(PolygonRef::true_hit(7));
        s.merge(PolygonRef::candidate(7));
        assert_eq!(s.iter().next().unwrap(), PolygonRef::true_hit(7));
    }

    #[test]
    fn max_polygon_id_boundary() {
        // 30-bit id space: MAX encodes into 31 bits with either flag, and
        // the id survives the round trip exactly at the boundary.
        assert_eq!(MAX_POLYGON_ID, (1 << 30) - 1);
        for interior in [false, true] {
            let r = PolygonRef {
                id: MAX_POLYGON_ID,
                interior,
            };
            let enc = r.encode();
            assert!(enc < (1 << 31), "31-bit payload overflow at MAX");
            assert_eq!(PolygonRef::decode(enc), r);
        }
        // The true-hit payload at MAX is the largest representable payload.
        assert_eq!(PolygonRef::true_hit(MAX_POLYGON_ID).encode(), (1 << 31) - 1);
        // Ids remain distinguishable at the top of the range.
        assert_ne!(
            PolygonRef::candidate(MAX_POLYGON_ID).encode(),
            PolygonRef::candidate(MAX_POLYGON_ID - 1).encode()
        );
    }

    #[test]
    fn merge_dedups_repeated_refs() {
        // Merging the same reference many times never grows the set, for
        // every storage variant (One, Two, Many).
        let mut s = RefSet::single(PolygonRef::candidate(3));
        for _ in 0..5 {
            s.merge(PolygonRef::candidate(3));
        }
        assert_eq!(s.len(), 1);
        assert!(matches!(s, RefSet::One(_)));

        s.merge(PolygonRef::candidate(8));
        for _ in 0..5 {
            s.merge(PolygonRef::candidate(8));
            s.merge(PolygonRef::candidate(3));
        }
        assert_eq!(s.len(), 2);
        assert!(matches!(s, RefSet::Two(..)));

        s.merge(PolygonRef::true_hit(5));
        for _ in 0..5 {
            s.merge(PolygonRef::candidate(5)); // true hit must survive
            s.merge(PolygonRef::candidate(8));
        }
        assert_eq!(s.len(), 3);
        let v: Vec<PolygonRef> = s.iter().collect();
        assert_eq!(
            v,
            vec![
                PolygonRef::candidate(3),
                PolygonRef::true_hit(5),
                PolygonRef::candidate(8),
            ]
        );
    }

    #[test]
    fn split_accessors() {
        let s = RefSet::Many(vec![
            PolygonRef::true_hit(1),
            PolygonRef::candidate(2),
            PolygonRef::true_hit(3),
        ]);
        assert_eq!(s.true_hits().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(s.candidates().collect::<Vec<_>>(), vec![2]);
    }
}
