//! Taxi-like query point streams.
//!
//! The paper joins 1 B NYC taxi pickup locations against the polygon
//! datasets. Real pickups are heavily skewed (Manhattan hotspots) with a
//! long uniform-ish tail across the city. We model that as a mixture of
//! isotropic Gaussian clusters plus a uniform background, clamped to the
//! bounding box — deterministic under a seed, and stream-generated so
//! paper-scale (10⁹) runs never materialize the whole set.

use crate::rng::{mix, Rng64};
use geom::{Coord, Rect};

/// One Gaussian hotspot of the mixture.
#[derive(Debug, Clone, Copy)]
pub struct Hotspot {
    /// Cluster center.
    pub center: Coord,
    /// Standard deviation in degrees (isotropic).
    pub sigma: f64,
    /// Relative weight (normalized internally).
    pub weight: f64,
}

/// A deterministic point stream: `uniform_fraction` of points are uniform in
/// the box, the rest are drawn from the weighted hotspot mixture.
#[derive(Debug, Clone)]
pub struct PointGen {
    bbox: Rect,
    hotspots: Vec<Hotspot>,
    cumulative: Vec<f64>,
    uniform_fraction: f64,
    seed: u64,
}

impl PointGen {
    /// Creates a generator. `hotspots` may be empty, in which case all
    /// points are uniform regardless of `uniform_fraction`.
    pub fn new(bbox: Rect, hotspots: Vec<Hotspot>, uniform_fraction: f64, seed: u64) -> PointGen {
        let total: f64 = hotspots.iter().map(|h| h.weight).sum();
        let mut acc = 0.0;
        let cumulative = hotspots
            .iter()
            .map(|h| {
                acc += h.weight / total.max(f64::MIN_POSITIVE);
                acc
            })
            .collect();
        PointGen {
            bbox,
            hotspots,
            cumulative,
            uniform_fraction: uniform_fraction.clamp(0.0, 1.0),
            seed,
        }
    }

    /// A uniform-only generator over the box.
    pub fn uniform(bbox: Rect, seed: u64) -> PointGen {
        PointGen::new(bbox, Vec::new(), 1.0, seed)
    }

    /// The NYC-like default: three Manhattan-ish hotspots + two outer-borough
    /// ones, 30% uniform background. Mirrors the skew of the taxi dataset.
    pub fn nyc_taxi_like(bbox: Rect, seed: u64) -> PointGen {
        let w = bbox.max.x - bbox.min.x;
        let h = bbox.max.y - bbox.min.y;
        let at = |fx: f64, fy: f64| Coord::new(bbox.min.x + fx * w, bbox.min.y + fy * h);
        PointGen::new(
            bbox,
            vec![
                // Midtown-like: dense, tight.
                Hotspot {
                    center: at(0.52, 0.62),
                    sigma: 0.015 * w,
                    weight: 4.0,
                },
                // Downtown-like.
                Hotspot {
                    center: at(0.48, 0.52),
                    sigma: 0.020 * w,
                    weight: 2.5,
                },
                // Airport-like (east).
                Hotspot {
                    center: at(0.80, 0.45),
                    sigma: 0.012 * w,
                    weight: 1.5,
                },
                // Brooklyn-like spread.
                Hotspot {
                    center: at(0.60, 0.35),
                    sigma: 0.060 * w,
                    weight: 1.5,
                },
                // Bronx-like spread.
                Hotspot {
                    center: at(0.55, 0.85),
                    sigma: 0.050 * w,
                    weight: 1.0,
                },
            ],
            0.30,
            seed,
        )
    }

    /// The bounding box points are clamped to.
    #[inline]
    pub fn bbox(&self) -> &Rect {
        &self.bbox
    }

    /// Generates the `idx`-th point of the stream. Random-access: chunks of
    /// the stream can be generated independently (and in parallel) without
    /// sequential state.
    pub fn point_at(&self, idx: u64) -> Coord {
        let mut rng = Rng64::new(mix(self.seed, idx));
        let u = rng.next_f64();
        if self.hotspots.is_empty() || u < self.uniform_fraction {
            return Coord::new(
                rng.range(self.bbox.min.x, self.bbox.max.x),
                rng.range(self.bbox.min.y, self.bbox.max.y),
            );
        }
        // Pick a hotspot by cumulative weight.
        let pick = rng.next_f64();
        let mut k = 0;
        while k + 1 < self.cumulative.len() && pick > self.cumulative[k] {
            k += 1;
        }
        let hs = &self.hotspots[k];
        let x = hs.center.x + rng.next_gaussian() * hs.sigma;
        let y = hs.center.y + rng.next_gaussian() * hs.sigma;
        Coord::new(
            x.clamp(self.bbox.min.x, self.bbox.max.x),
            y.clamp(self.bbox.min.y, self.bbox.max.y),
        )
    }

    /// Materializes points `[0, n)`.
    pub fn take_vec(&self, n: usize) -> Vec<Coord> {
        (0..n as u64).map(|i| self.point_at(i)).collect()
    }

    /// An iterator over points `[start, start + n)`.
    pub fn iter_range(&self, start: u64, n: u64) -> impl Iterator<Item = Coord> + '_ {
        (start..start + n).map(move |i| self.point_at(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nyc_box() -> Rect {
        Rect::new(Coord::new(-74.26, 40.49), Coord::new(-73.70, 40.92))
    }

    #[test]
    fn all_points_in_bbox() {
        let g = PointGen::nyc_taxi_like(nyc_box(), 1);
        for p in g.iter_range(0, 5_000) {
            assert!(g.bbox().contains(p), "{p} escapes the box");
        }
    }

    #[test]
    fn deterministic_and_random_access() {
        let g1 = PointGen::nyc_taxi_like(nyc_box(), 5);
        let g2 = PointGen::nyc_taxi_like(nyc_box(), 5);
        let v1 = g1.take_vec(1000);
        // Random access must agree with sequential generation.
        assert_eq!(v1[123], g2.point_at(123));
        assert_eq!(v1[999], g2.point_at(999));
        // Different seed, different stream.
        let g3 = PointGen::nyc_taxi_like(nyc_box(), 6);
        assert_ne!(v1[0], g3.point_at(0));
    }

    #[test]
    fn skew_is_present() {
        // The hotspot mixture must concentrate mass: the densest 10% of a
        // coarse grid should hold far more than 10% of the points.
        let g = PointGen::nyc_taxi_like(nyc_box(), 2);
        let n = 20_000usize;
        let grid = 20usize;
        let mut counts = vec![0usize; grid * grid];
        let b = nyc_box();
        for p in g.iter_range(0, n as u64) {
            let gx = (((p.x - b.min.x) / (b.max.x - b.min.x)) * grid as f64)
                .clamp(0.0, grid as f64 - 1.0) as usize;
            let gy = (((p.y - b.min.y) / (b.max.y - b.min.y)) * grid as f64)
                .clamp(0.0, grid as f64 - 1.0) as usize;
            counts[gy * grid + gx] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10pct: usize = counts.iter().take(grid * grid / 10).sum();
        assert!(
            top10pct as f64 > 0.4 * n as f64,
            "top decile holds only {top10pct}/{n}"
        );
    }

    #[test]
    fn uniform_generator_is_roughly_uniform() {
        let g = PointGen::uniform(nyc_box(), 3);
        let n = 20_000usize;
        let mut left = 0usize;
        for p in g.iter_range(0, n as u64) {
            if p.x < (nyc_box().min.x + nyc_box().max.x) / 2.0 {
                left += 1;
            }
        }
        let frac = left as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "left fraction {frac}");
    }

    #[test]
    fn empty_hotspots_fall_back_to_uniform() {
        let g = PointGen::new(nyc_box(), Vec::new(), 0.0, 9);
        for p in g.iter_range(0, 100) {
            assert!(g.bbox().contains(p));
        }
    }
}
