//! Small deterministic RNG utilities.
//!
//! The generators must be reproducible across runs and platforms, and must
//! be able to derive *independent* streams from structured keys (e.g. "the
//! lattice edge between these two points"), so that two polygons sharing an
//! edge derive the exact same fractal refinement. We use SplitMix64 both as
//! a hash and as a tiny PRNG — statistically strong enough for workload
//! generation and fully deterministic.

/// One SplitMix64 scramble step.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines a key into a seed (order-dependent).
#[inline]
pub fn mix(seed: u64, key: u64) -> u64 {
    splitmix64(seed ^ key.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// A tiny deterministic PRNG (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed.
    #[inline]
    pub fn new(seed: u64) -> Rng64 {
        Rng64 {
            state: splitmix64(seed ^ 0x1234_5678_9ABC_DEF0),
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in [-1, 1).
    #[inline]
    pub fn next_signed(&mut self) -> f64 {
        2.0 * self.next_f64() - 1.0
    }

    /// Uniform in [lo, hi).
    #[inline]
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in [0, n).
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Hashes the quantized coordinates of two points into an orientation-
/// independent edge key (sorted endpoints), so both directions of traversal
/// derive the same value.
pub fn edge_key(ax: f64, ay: f64, bx: f64, by: f64) -> u64 {
    let q = |v: f64| (v * 1e9).round() as i64 as u64;
    let a = splitmix64(q(ax) ^ q(ay).rotate_left(32));
    let b = splitmix64(q(bx) ^ q(by).rotate_left(32));
    // Symmetric combine: xor + min/max mixing keeps direction independence.
    splitmix64(a.min(b)).wrapping_add(splitmix64(a.max(b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::new(43);
        assert_ne!(Rng64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // Mean should be near 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng64::new(11);
        let n = 20_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let g = r.next_gaussian();
            s1 += g;
            s2 += g * g;
        }
        let mean = s1 / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn edge_key_is_symmetric() {
        let k1 = edge_key(-74.1, 40.6, -73.9, 40.8);
        let k2 = edge_key(-73.9, 40.8, -74.1, 40.6);
        assert_eq!(k1, k2);
        let k3 = edge_key(-74.1, 40.6, -73.9, 40.800001);
        assert_ne!(k1, k3);
    }

    #[test]
    fn below_bounds() {
        let mut r = Rng64::new(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
