//! # datagen — synthetic NYC-like workloads for the ACT reproduction
//!
//! The paper evaluates on three NYC polygon datasets and 1 B taxi pickup
//! points, none of which ship with this repository. This crate generates
//! *synthetic equivalents* that preserve what drives the experiments:
//!
//! | paper dataset  | polygons | character                    | preset |
//! |----------------|----------|------------------------------|--------|
//! | boroughs       | 5        | few, huge, very complex      | [`boroughs`] |
//! | neighborhoods  | 289      | mid-sized, moderately complex| [`neighborhoods`] |
//! | census blocks  | 39,184   | many, small, simple          | [`census_blocks`] |
//!
//! All three are **planar partitions** of the NYC bounding box (polygons
//! tile the box without overlap), like the real datasets. Complexity is
//! controlled by fractal boundary refinement; shared boundaries agree
//! exactly between neighbors. Points come from a skewed hotspot mixture
//! ([`PointGen::nyc_taxi_like`]).
//!
//! Everything is deterministic under a seed.

#![forbid(unsafe_code)]

pub mod fractal;
pub mod lattice;
pub mod points;
pub mod rng;

pub use fractal::FractalParams;
pub use lattice::LatticeParams;
pub use points::{Hotspot, PointGen};

use geom::{Coord, Polygon, Rect};

/// The NYC bounding box used by all presets:
/// longitude −74.26 … −73.70, latitude 40.49 … 40.92.
pub fn nyc_bbox() -> Rect {
    Rect::new(Coord::new(-74.26, 40.49), Coord::new(-73.70, 40.92))
}

/// A named polygon dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name ("boroughs", …).
    pub name: String,
    /// The polygons; index = polygon id in the join.
    pub polygons: Vec<Polygon>,
    /// The box the polygons partition.
    pub bbox: Rect,
}

impl Dataset {
    /// Total vertex count over all polygons.
    pub fn num_vertices(&self) -> usize {
        self.polygons.iter().map(Polygon::num_vertices).sum()
    }
}

/// Borough-like preset: 5 polygons with very complex boundaries
/// (~16k vertices each — the paper notes boroughs are "significantly more
/// complex" than the other datasets; real borough coastlines are intricate).
pub fn boroughs(seed: u64) -> Dataset {
    let params = LatticeParams {
        nx: 5,
        ny: 1,
        bbox: nyc_bbox(),
        jitter: 0.30,
        fractal: FractalParams {
            depth: 12, // 4096 segments per lattice edge: coastline-like
            roughness: 0.30,
            seed,
        },
        hole_fraction: 0.0,
    };
    Dataset {
        name: "boroughs".into(),
        polygons: lattice::generate(&params),
        bbox: nyc_bbox(),
    }
}

/// Neighborhood-like preset: 17 × 17 = 289 polygons (matching the paper's
/// 289) with moderately complex boundaries (~130 vertices each).
pub fn neighborhoods(seed: u64) -> Dataset {
    let params = LatticeParams {
        nx: 17,
        ny: 17,
        bbox: nyc_bbox(),
        jitter: 0.30,
        fractal: FractalParams {
            depth: 5, // 32 segments per edge
            roughness: 0.25,
            seed,
        },
        hole_fraction: 0.0,
    };
    Dataset {
        name: "neighborhoods".into(),
        polygons: lattice::generate(&params),
        bbox: nyc_bbox(),
    }
}

/// Census-block-like preset: 248 × 158 = 39,184 polygons (exactly the
/// paper's count) with simple boundaries (~12 vertices each).
pub fn census_blocks(seed: u64) -> Dataset {
    let params = LatticeParams {
        nx: 248,
        ny: 158,
        bbox: nyc_bbox(),
        jitter: 0.30,
        fractal: FractalParams {
            depth: 1, // 2 segments per edge
            roughness: 0.20,
            seed,
        },
        hole_fraction: 0.0,
    };
    Dataset {
        name: "census".into(),
        polygons: lattice::generate(&params),
        bbox: nyc_bbox(),
    }
}

/// A scaled-down census-like dataset for tests and quick benchmarks:
/// `nx × ny` small simple polygons.
pub fn blocks_scaled(nx: usize, ny: usize, seed: u64) -> Dataset {
    let params = LatticeParams {
        nx,
        ny,
        bbox: nyc_bbox(),
        jitter: 0.30,
        fractal: FractalParams {
            depth: 1,
            roughness: 0.20,
            seed,
        },
        hole_fraction: 0.0,
    };
    Dataset {
        name: format!("blocks-{nx}x{ny}"),
        polygons: lattice::generate(&params),
        bbox: nyc_bbox(),
    }
}

/// Surge-pricing-like preset: `layers` independent partitions of the
/// box stacked on top of each other (each layer its own jittered
/// lattice), so every point lies in ~one polygon *per layer*. Real
/// serving traffic probes stacked zone products — surge hexes, delivery
/// areas, ad geofences — all at once, which makes per-cell ref lists
/// `layers` deep and resolution the dominant per-probe cost. Planar
/// presets can't express that; this one exists for exactly that regime
/// (the hot-cell cache's design point).
pub fn surge_zones(seed: u64, layers: usize, nx: usize, ny: usize) -> Dataset {
    let mut polygons = Vec::new();
    for layer in 0..layers {
        let params = LatticeParams {
            nx,
            ny,
            bbox: nyc_bbox(),
            jitter: 0.30,
            fractal: FractalParams {
                depth: 2,
                roughness: 0.20,
                // Each layer draws a distinct partition; the stack as a
                // whole is still deterministic under `seed`.
                seed: seed.wrapping_add(layer as u64).wrapping_mul(0x9E37_79B9),
            },
            hole_fraction: 0.0,
        };
        polygons.extend(lattice::generate(&params));
    }
    Dataset {
        name: format!("surge-{layers}x{nx}x{ny}"),
        polygons,
        bbox: nyc_bbox(),
    }
}

/// A small dataset with holes, exercising the hole-handling paths.
pub fn holed(nx: usize, ny: usize, seed: u64) -> Dataset {
    let params = LatticeParams {
        nx,
        ny,
        bbox: nyc_bbox(),
        jitter: 0.25,
        fractal: FractalParams {
            depth: 2,
            roughness: 0.20,
            seed,
        },
        hole_fraction: 0.5,
    };
    Dataset {
        name: format!("holed-{nx}x{ny}"),
        polygons: lattice::generate(&params),
        bbox: nyc_bbox(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_counts_match_paper() {
        assert_eq!(boroughs(1).polygons.len(), 5);
        assert_eq!(neighborhoods(1).polygons.len(), 289);
        // census_blocks is exercised at full size in the benchmark harness;
        // here we only verify the arithmetic matches the paper's count.
        assert_eq!(248 * 158, 39_184);
    }

    #[test]
    fn borough_complexity_dominates() {
        let b = boroughs(1);
        let n = neighborhoods(1);
        let b_avg = b.num_vertices() / b.polygons.len();
        let n_avg = n.num_vertices() / n.polygons.len();
        assert!(
            b_avg > 10 * n_avg,
            "boroughs avg {b_avg} vs neighborhoods avg {n_avg}"
        );
    }

    #[test]
    fn presets_are_deterministic() {
        assert_eq!(neighborhoods(7).polygons, neighborhoods(7).polygons);
        assert_ne!(neighborhoods(7).polygons, neighborhoods(8).polygons);
    }

    #[test]
    fn polygons_stay_in_bbox() {
        for ds in [neighborhoods(3), blocks_scaled(10, 8, 3)] {
            for poly in &ds.polygons {
                for v in poly.outer().vertices() {
                    // Fractal displacement may push slightly past the border
                    // edges of the box; tolerance is one cell's roughness.
                    assert!(v.x > ds.bbox.min.x - 0.05 && v.x < ds.bbox.max.x + 0.05);
                    assert!(v.y > ds.bbox.min.y - 0.05 && v.y < ds.bbox.max.y + 0.05);
                }
            }
        }
    }

    #[test]
    fn holed_preset_has_holes() {
        let ds = holed(4, 4, 2);
        assert!(ds.polygons.iter().any(|p| !p.holes().is_empty()));
    }

    #[test]
    fn surge_zones_stack_layers_over_one_box() {
        let ds = surge_zones(3, 4, 3, 3);
        assert_eq!(ds.polygons.len(), 4 * 9);
        assert_eq!(surge_zones(3, 4, 3, 3).polygons, ds.polygons);
        // Layers genuinely differ (distinct partitions, not copies).
        assert_ne!(ds.polygons[..9], ds.polygons[9..18]);
    }
}
