//! Fractal edge refinement by midpoint displacement.
//!
//! The real NYC polygon datasets have intricate shared boundaries
//! (coastlines, street grids). We reproduce that characteristic with
//! midpoint displacement: each lattice edge is recursively subdivided, the
//! midpoint displaced perpendicular to the edge by a random fraction of the
//! segment length. The displacement RNG is seeded from the *endpoint
//! coordinates* ([`edge_key`]), so the two polygons sharing an edge derive
//! byte-identical polylines — the partition stays a partition.

use crate::rng::{edge_key, mix, Rng64};
use geom::Coord;

/// Parameters for fractal refinement of one edge.
#[derive(Debug, Clone, Copy)]
pub struct FractalParams {
    /// Number of subdivision rounds; the refined edge has `2^depth` segments.
    pub depth: u32,
    /// Initial perpendicular displacement as a fraction of segment length.
    /// Values ≤ 0.35 keep the polyline within a lens around the edge so
    /// adjacent edges of a lattice cell cannot cross (jitter permitting).
    pub roughness: f64,
    /// Global dataset seed, mixed into every edge's RNG.
    pub seed: u64,
}

/// Refines the directed edge `a -> b`, returning the interior polyline
/// **excluding** both endpoints (so rings can be concatenated without
/// duplicates). Direction-independent: `refine_edge(a, b)` is the reverse
/// of `refine_edge(b, a)`.
pub fn refine_edge(a: Coord, b: Coord, params: &FractalParams) -> Vec<Coord> {
    if params.depth == 0 {
        return Vec::new();
    }
    // Canonical direction so both sides of the edge agree.
    let flip = (b.x, b.y) < (a.x, a.y);
    let (lo, hi) = if flip { (b, a) } else { (a, b) };
    let mut pts = Vec::with_capacity((1usize << params.depth) + 1);
    pts.push(lo);
    subdivide(
        lo,
        hi,
        params.depth,
        params.roughness,
        mix(params.seed, edge_key(lo.x, lo.y, hi.x, hi.y)),
        &mut pts,
    );
    pts.push(hi);
    // Drop the endpoints; reverse if we flipped.
    pts.remove(0);
    pts.pop();
    if flip {
        pts.reverse();
    }
    pts
}

fn subdivide(a: Coord, b: Coord, depth: u32, roughness: f64, seed: u64, out: &mut Vec<Coord>) {
    if depth == 0 {
        return;
    }
    let mid = Coord::new(0.5 * (a.x + b.x), 0.5 * (a.y + b.y));
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let len = (dx * dx + dy * dy).sqrt();
    // Perpendicular unit vector.
    let (px, py) = if len > 0.0 {
        (-dy / len, dx / len)
    } else {
        (0.0, 0.0)
    };
    let mut rng = Rng64::new(seed);
    let disp = rng.next_signed() * roughness * len;
    let m = Coord::new(mid.x + px * disp, mid.y + py * disp);
    // Halve roughness each level: classic 1/f displacement.
    subdivide(a, m, depth - 1, roughness * 0.5, mix(seed, 1), out);
    out.push(m);
    subdivide(m, b, depth - 1, roughness * 0.5, mix(seed, 2), out);
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: FractalParams = FractalParams {
        depth: 4,
        roughness: 0.25,
        seed: 99,
    };

    #[test]
    fn segment_count() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(1.0, 0.0);
        let pts = refine_edge(a, b, &P);
        // 2^4 segments => 15 interior points.
        assert_eq!(pts.len(), 15);
        let zero = FractalParams { depth: 0, ..P };
        assert!(refine_edge(a, b, &zero).is_empty());
    }

    #[test]
    fn direction_independence() {
        let a = Coord::new(-74.1, 40.62);
        let b = Coord::new(-73.93, 40.71);
        let fwd = refine_edge(a, b, &P);
        let mut rev = refine_edge(b, a, &P);
        rev.reverse();
        assert_eq!(fwd, rev, "shared edges must agree in both directions");
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(1.0, 1.0);
        assert_eq!(refine_edge(a, b, &P), refine_edge(a, b, &P));
        let other = FractalParams { seed: 100, ..P };
        assert_ne!(refine_edge(a, b, &P), refine_edge(a, b, &other));
    }

    #[test]
    fn displacement_is_bounded() {
        // All interior points stay within roughness·len of the base line
        // (geometric series with ratio 1/2 doubles the worst case).
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(1.0, 0.0);
        let pts = refine_edge(a, b, &P);
        for p in pts {
            assert!(p.y.abs() <= 2.0 * P.roughness, "excursion {}", p.y);
            assert!(p.x > 0.0 && p.x < 1.0);
        }
    }

    #[test]
    fn monotone_progress_along_edge() {
        // With roughness ≤ 0.35 the polyline must not loop back on itself
        // along the edge direction (a necessary condition for simple rings).
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(2.0, 0.0);
        let pts = refine_edge(
            a,
            b,
            &FractalParams {
                depth: 6,
                roughness: 0.3,
                seed: 5,
            },
        );
        let mut last_x = 0.0;
        for p in &pts {
            assert!(p.x >= last_x - 0.25, "large backtrack at {p}");
            last_x = p.x;
        }
    }
}
