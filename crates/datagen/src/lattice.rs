//! Jittered-lattice polygon partitions.
//!
//! The three NYC polygon datasets of the paper (boroughs, neighborhoods,
//! census blocks) are *planar partitions* of the city: polygons tile the
//! area without overlaps. We synthesize equivalents by:
//!
//! 1. laying an `nx × ny` lattice of points over the bounding box,
//! 2. jittering interior lattice points (border points stay put so the
//!    union of the polygons is exactly the box),
//! 3. refining every lattice edge with deterministic midpoint displacement
//!    ([`crate::fractal`]) keyed on the edge's endpoints, so the two cells
//!    sharing an edge agree on the refined boundary,
//! 4. assembling each cell's ring from its four refined edges.
//!
//! The result: `nx · ny` simple polygons that tile the box, with vertex
//! complexity controlled by the fractal depth.

use crate::fractal::{refine_edge, FractalParams};
use crate::rng::{mix, Rng64};
use geom::{Coord, Polygon, Rect, Ring};

/// Parameters of a lattice partition.
#[derive(Debug, Clone)]
pub struct LatticeParams {
    /// Number of cells horizontally.
    pub nx: usize,
    /// Number of cells vertically.
    pub ny: usize,
    /// Bounding box to partition.
    pub bbox: Rect,
    /// Jitter of interior lattice points as a fraction of cell spacing
    /// (≤ 0.35 keeps cells simple when combined with fractal roughness ≤ 0.3).
    pub jitter: f64,
    /// Fractal refinement of the cell boundaries.
    pub fractal: FractalParams,
    /// Fraction of cells that receive a rectangular hole (0.0 to disable).
    pub hole_fraction: f64,
}

/// Generates the partition. Returns `nx · ny` polygons in row-major order.
pub fn generate(params: &LatticeParams) -> Vec<Polygon> {
    let LatticeParams {
        nx,
        ny,
        bbox,
        jitter,
        fractal,
        hole_fraction,
    } = params;
    let (nx, ny) = (*nx, *ny);
    assert!(nx >= 1 && ny >= 1, "lattice must have at least one cell");

    let dx = (bbox.max.x - bbox.min.x) / nx as f64;
    let dy = (bbox.max.y - bbox.min.y) / ny as f64;

    // Lattice points with deterministic jitter on interior points.
    let pt = |i: usize, j: usize| -> Coord {
        let base_x = bbox.min.x + i as f64 * dx;
        let base_y = bbox.min.y + j as f64 * dy;
        if i == 0 || i == nx || j == 0 || j == ny {
            return Coord::new(base_x, base_y);
        }
        let mut rng = Rng64::new(mix(fractal.seed, (i as u64) << 32 | j as u64));
        Coord::new(
            base_x + rng.next_signed() * jitter * dx,
            base_y + rng.next_signed() * jitter * dy,
        )
    };

    // Edges lying on the bounding-box border stay straight so the union of
    // the polygons is exactly the box (no gaps, no spill-over).
    let on_border = |a: Coord, b: Coord| -> bool {
        (a.x == bbox.min.x && b.x == bbox.min.x)
            || (a.x == bbox.max.x && b.x == bbox.max.x)
            || (a.y == bbox.min.y && b.y == bbox.min.y)
            || (a.y == bbox.max.y && b.y == bbox.max.y)
    };
    let refine = |a: Coord, b: Coord| -> Vec<Coord> {
        if on_border(a, b) {
            Vec::new()
        } else {
            refine_edge(a, b, fractal)
        }
    };

    let mut polygons = Vec::with_capacity(nx * ny);
    for j in 0..ny {
        for i in 0..nx {
            let c00 = pt(i, j);
            let c10 = pt(i + 1, j);
            let c11 = pt(i + 1, j + 1);
            let c01 = pt(i, j + 1);
            // CCW ring: bottom, right, top (reversed), left (reversed).
            let mut v = Vec::new();
            v.push(c00);
            v.extend(refine(c00, c10));
            v.push(c10);
            v.extend(refine(c10, c11));
            v.push(c11);
            v.extend(refine(c11, c01));
            v.push(c01);
            v.extend(refine(c01, c00));

            let holes = if *hole_fraction > 0.0 {
                let mut rng =
                    Rng64::new(mix(fractal.seed ^ HOLE_SALT, (i as u64) << 32 | j as u64));
                if rng.next_f64() < *hole_fraction {
                    vec![make_hole(c00, c10, c11, c01, &mut rng)]
                } else {
                    Vec::new()
                }
            } else {
                Vec::new()
            };

            polygons.push(Polygon::new(Ring::new(v), holes));
        }
    }
    polygons
}

/// Salt separating the hole RNG stream from the jitter stream.
const HOLE_SALT: u64 = 0x484F_4C45; // "HOLE"

/// A small rectangle around the quad centroid — safely inside the cell as
/// long as jitter + roughness keep boundary excursions under ~60% of the
/// half-spacing (the presets do).
fn make_hole(c00: Coord, c10: Coord, c11: Coord, c01: Coord, rng: &mut Rng64) -> Ring {
    let cx = 0.25 * (c00.x + c10.x + c11.x + c01.x);
    let cy = 0.25 * (c00.y + c10.y + c11.y + c01.y);
    let w = 0.08 * ((c10.x - c00.x).abs() + (c11.x - c01.x).abs()) * rng.range(0.5, 1.0);
    let h = 0.08 * ((c01.y - c00.y).abs() + (c11.y - c10.y).abs()) * rng.range(0.5, 1.0);
    // Holes are CW (opposite of the CCW outer ring) by convention.
    Ring::new(vec![
        Coord::new(cx - w, cy - h),
        Coord::new(cx - w, cy + h),
        Coord::new(cx + w, cy + h),
        Coord::new(cx + w, cy - h),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params(nx: usize, ny: usize, depth: u32, holes: f64) -> LatticeParams {
        LatticeParams {
            nx,
            ny,
            bbox: Rect::new(Coord::new(-74.26, 40.49), Coord::new(-73.70, 40.92)),
            jitter: 0.3,
            fractal: FractalParams {
                depth,
                roughness: 0.25,
                seed: 42,
            },
            hole_fraction: holes,
        }
    }

    #[test]
    fn cell_count_and_determinism() {
        let p = small_params(4, 3, 2, 0.0);
        let polys = generate(&p);
        assert_eq!(polys.len(), 12);
        let again = generate(&p);
        assert_eq!(polys, again);
    }

    #[test]
    fn vertex_complexity_scales_with_depth() {
        // An interior cell of a 4×4 lattice has 4 fractal edges, so it has
        // 4 + 4·(2^depth − 1) vertices.
        for (depth, interior_verts) in [(0u32, 4usize), (2, 16), (4, 64)] {
            let polys = generate(&small_params(4, 4, depth, 0.0));
            let max = polys.iter().map(|p| p.num_vertices()).max().unwrap();
            assert_eq!(max, interior_verts, "depth {depth}");
        }
    }

    #[test]
    fn rings_are_ccw_and_have_positive_area() {
        let polys = generate(&small_params(3, 3, 3, 0.0));
        for poly in &polys {
            assert!(poly.outer().is_ccw(), "outer ring must be CCW");
            assert!(poly.area() > 0.0);
        }
    }

    #[test]
    fn partition_tiles_the_box() {
        // Random interior points must fall in exactly one polygon
        // (two only in the measure-zero case of a shared edge).
        let p = small_params(5, 4, 3, 0.0);
        let polys = generate(&p);
        let mut rng = Rng64::new(7);
        for _ in 0..500 {
            let pt = Coord::new(
                rng.range(p.bbox.min.x, p.bbox.max.x),
                rng.range(p.bbox.min.y, p.bbox.max.y),
            );
            let owners = polys.iter().filter(|poly| poly.contains(pt)).count();
            assert!(
                (1..=2).contains(&owners),
                "point {pt} contained in {owners} polygons"
            );
        }
    }

    #[test]
    fn shared_edges_agree() {
        // Adjacent cells must share their boundary exactly: the union of
        // their areas equals the sum (no overlap beyond the shared polyline).
        // We verify via the vertex sets: the right edge of cell (i,j) equals
        // the reversed left edge of cell (i+1,j) — implied by refine_edge
        // determinism, checked here end-to-end through area conservation.
        let p = small_params(4, 4, 3, 0.0);
        let polys = generate(&p);
        let total: f64 = polys.iter().map(|poly| poly.area()).sum();
        let box_area = p.bbox.area();
        assert!(
            (total - box_area).abs() / box_area < 1e-9,
            "areas sum to {total}, box is {box_area}"
        );
    }

    #[test]
    fn holes_are_inside_their_polygon() {
        let p = small_params(4, 4, 2, 1.0);
        let polys = generate(&p);
        let mut with_holes = 0;
        for poly in &polys {
            for h in poly.holes() {
                with_holes += 1;
                for v in h.vertices() {
                    assert!(
                        poly.outer().contains(*v),
                        "hole vertex {v} escapes the outer ring"
                    );
                }
                // A point inside the hole is not contained in the polygon.
                let c = h.bbox().center();
                assert!(!poly.contains(c));
            }
        }
        assert!(with_holes > 0, "hole_fraction=1.0 must create holes");
    }

    #[test]
    fn no_self_intersections_small_sample() {
        // O(n^2) simplicity check on a small preset: no two non-adjacent
        // edges of a ring may intersect.
        let polys = generate(&small_params(2, 2, 3, 0.0));
        for poly in &polys {
            let edges: Vec<_> = poly.outer().edges().collect();
            let n = edges.len();
            for a in 0..n {
                for b in (a + 2)..n {
                    if a == 0 && b == n - 1 {
                        continue; // adjacent via the closing edge
                    }
                    let (p1, p2) = edges[a];
                    let (q1, q2) = edges[b];
                    assert!(
                        !geom::segments_intersect(p1, p2, q1, q2),
                        "edges {a} and {b} intersect"
                    );
                }
            }
        }
    }
}
