//! # bench — shared harness for regenerating the paper's tables and figures
//!
//! Binaries (paper artifacts; run with `--release`):
//!
//! * `table1` — index metrics per dataset × precision (paper Table I)
//! * `fig3`   — single-threaded throughput, ACT vs R-tree baseline (Fig. 3)
//! * `fig4`   — multithreaded scalability (Fig. 4)
//!
//! Criterion benches (`cargo bench`): `throughput`, `scalability`,
//! `ablations`, `build_phase`.
//!
//! All binaries accept `--points N`, `--seed S`, and `--full` (enable the
//! census-blocks × 4 m cell, which needs several GB of RAM — see
//! EXPERIMENTS.md).

use act_core::{coord_to_cell, ActIndex, JoinStats};
use datagen::{Dataset, PointGen};
use geom::Coord;
use s2cell::CellId;
use std::time::Instant;

/// The paper's three precision tiers, in meters.
pub const PRECISIONS: [f64; 3] = [60.0, 15.0, 4.0];

/// Simple CLI options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Number of query points (paper: 1 B; default here: 10 M).
    pub points: usize,
    /// Workload seed.
    pub seed: u64,
    /// Include the census × 4 m configuration (multi-GB index).
    pub full: bool,
    /// Restrict to matching dataset names (empty = all).
    pub datasets: Vec<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            points: 10_000_000,
            seed: 42,
            full: false,
            datasets: Vec::new(),
        }
    }
}

impl Opts {
    /// Parses `--points N --seed S --full --datasets a,b` from argv.
    pub fn parse() -> Opts {
        let mut o = Opts::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--points" => {
                    i += 1;
                    o.points = args[i].replace('_', "").parse().expect("--points N");
                }
                "--seed" => {
                    i += 1;
                    o.seed = args[i].parse().expect("--seed S");
                }
                "--full" => o.full = true,
                "--datasets" => {
                    i += 1;
                    o.datasets = args[i].split(',').map(str::to_string).collect();
                }
                other => panic!("unknown argument: {other}"),
            }
            i += 1;
        }
        if std::env::var("ACT_FULL").is_ok() {
            o.full = true;
        }
        o
    }

    /// True if dataset `name` is selected.
    pub fn wants(&self, name: &str) -> bool {
        self.datasets.is_empty() || self.datasets.iter().any(|d| d == name)
    }
}

/// Loads the three paper datasets (boroughs, neighborhoods, census).
pub fn paper_datasets(seed: u64) -> Vec<Dataset> {
    vec![
        datagen::boroughs(seed),
        datagen::neighborhoods(seed),
        datagen::census_blocks(seed),
    ]
}

/// Whether a (dataset, precision) cell is feasible by default: census at
/// 4 m needs several GB of trie nodes (see DESIGN.md §4) and is opt-in.
pub fn feasible(dataset: &str, precision_m: f64, full: bool) -> bool {
    full || dataset != "census" || precision_m > 4.0
}

/// Generates the taxi-like query points.
pub fn make_points(ds: &Dataset, n: usize, seed: u64) -> Vec<Coord> {
    PointGen::nyc_taxi_like(ds.bbox, seed).take_vec(n)
}

/// Converts points to leaf cell ids (done once, outside measured loops, as
/// ingest would in a streaming system).
pub fn to_cells(points: &[Coord]) -> Vec<CellId> {
    points.iter().map(|&c| coord_to_cell(c)).collect()
}

/// Outcome of one timed join run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub secs: f64,
    pub mpts_per_sec: f64,
    pub stats: JoinStats,
    pub counts: Vec<u64>,
}

/// Times the approximate cell-id join (the paper's measured hot path).
/// A warmup pass over a prefix touches the trie's pages first, so the
/// timed loop measures steady-state probing rather than page faults.
pub fn run_act_join(index: &ActIndex, cells: &[CellId], num_polygons: usize) -> RunResult {
    let mut counts = vec![0u64; num_polygons];
    let warm = cells.len().min(200_000);
    act_core::join_approx_cells(index, &cells[..warm], &mut counts);
    counts.iter_mut().for_each(|c| *c = 0);
    let t = Instant::now();
    let stats = act_core::join_approx_cells(index, cells, &mut counts);
    let secs = t.elapsed().as_secs_f64();
    RunResult {
        secs,
        mpts_per_sec: cells.len() as f64 / secs / 1e6,
        stats,
        counts,
    }
}

/// Times the R-tree baseline: candidate counting without refinement, as in
/// the paper ("for each returned candidate, we simply increase the counter
/// of the respective polygon").
pub fn run_rtree_join(tree: &rtree::RTree, points: &[Coord], num_polygons: usize) -> RunResult {
    let mut counts = vec![0u64; num_polygons];
    let mut hits = Vec::with_capacity(16);
    let mut total_hits = 0u64;
    for &p in points.iter().take(200_000) {
        hits.clear();
        tree.query_point_into(p, &mut hits);
    }
    let t = Instant::now();
    for &p in points {
        hits.clear();
        tree.query_point_into(p, &mut hits);
        for &id in &hits {
            counts[id as usize] += 1;
        }
        total_hits += hits.len() as u64;
    }
    let secs = t.elapsed().as_secs_f64();
    RunResult {
        secs,
        mpts_per_sec: points.len() as f64 / secs / 1e6,
        stats: JoinStats {
            points: points.len() as u64,
            candidate_hits: total_hits,
            ..JoinStats::default()
        },
        counts,
    }
}

/// Builds the paper's R-tree baseline (insertion-based, rstar-like splits,
/// max 8 entries) over the polygons' MBRs.
pub fn build_rtree(ds: &Dataset) -> rtree::RTree {
    let mut t = rtree::RTree::new(8);
    for (i, p) in ds.polygons.iter().enumerate() {
        t.insert(*p.bbox(), i as u32);
    }
    t
}

/// Formats a byte count like the paper's Table I (kB / MB / GB).
pub fn fmt_bytes(b: usize) -> String {
    let b = b as f64;
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1} kB", b / 1e3)
    } else {
        format!("{b} B")
    }
}

/// Formats a cell count in millions, Table-I style.
pub fn fmt_mcells(c: u64) -> String {
    format!("{:.2}", c as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasibility_gate() {
        assert!(feasible("boroughs", 4.0, false));
        assert!(feasible("census", 15.0, false));
        assert!(!feasible("census", 4.0, false));
        assert!(feasible("census", 4.0, true));
    }

    #[test]
    fn harness_smoke() {
        // Tiny end-to-end run: index a small dataset, join points both ways.
        let ds = datagen::blocks_scaled(6, 5, 1);
        let index = ActIndex::build(&ds.polygons, 60.0).unwrap();
        let pts = make_points(&ds, 20_000, 7);
        let cells = to_cells(&pts);
        let act = run_act_join(&index, &cells, ds.polygons.len());
        assert_eq!(act.stats.points, 20_000);
        // Partition ⇒ nearly every point matches something.
        assert!(act.stats.misses < 1_000, "misses {}", act.stats.misses);

        let tree = build_rtree(&ds);
        let rt = run_rtree_join(&tree, &pts, ds.polygons.len());
        assert_eq!(rt.stats.points, 20_000);
        // MBR candidates ⊇ actual matches.
        assert!(rt.counts.iter().sum::<u64>() >= act.counts.iter().sum::<u64>() / 2);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(500), "500 B");
        assert_eq!(fmt_bytes(2_500), "2.5 kB");
        assert_eq!(fmt_bytes(3_100_000), "3.1 MB");
        assert_eq!(fmt_bytes(1_210_000_000), "1.21 GB");
        assert_eq!(fmt_mcells(1_330_000), "1.33");
    }
}
