//! # bench — shared harness for regenerating the paper's tables and figures
//!
//! Binaries (paper artifacts; run with `--release`):
//!
//! * `table1`   — index metrics per dataset × precision (paper Table I)
//! * `fig3`     — single-threaded throughput, ACT vs R-tree baseline (Fig. 3)
//! * `fig4`     — multithreaded scalability (Fig. 4)
//! * `baseline` — machine-readable perf baseline (`BENCH_build.json` /
//!   `BENCH_probe.json`, committed at the repo root)
//! * `snapshot` — build-once/load-many index-persistence baseline
//!   (`BENCH_snapshot.json`, committed at the repo root; `--mmap` adds
//!   the memory-mapped load rows)
//! * `loadgen`  — drives an in-process `act-serve` over TCP and records
//!   client-observed latency/throughput (`BENCH_serve.json`)
//!
//! Criterion benches (`cargo bench`): `throughput`, `scalability`,
//! `ablations`, `build_phase`.
//!
//! All binaries share the [`Opts`] flags (see [`USAGE`]); unknown flags
//! print the usage message and exit non-zero.

#![forbid(unsafe_code)]

use act_core::{coord_to_cell, ActIndex, JoinStats};
use datagen::{Dataset, PointGen};
use geom::Coord;
use s2cell::CellId;
use std::time::Instant;

pub mod json;

/// The paper's three precision tiers, in meters.
pub const PRECISIONS: [f64; 3] = [60.0, 15.0, 4.0];

/// Simple CLI options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Number of query points (paper: 1 B; default here: 10 M).
    pub points: usize,
    /// Workload seed.
    pub seed: u64,
    /// Include the census × 4 m configuration (multi-GB index).
    pub full: bool,
    /// Restrict to matching dataset names (empty = all).
    pub datasets: Vec<String>,
    /// Thread counts for scaling sweeps (empty = the binary's default).
    pub threads: Vec<usize>,
    /// Points per batched-probe block (`--batch 1` degenerates to scalar).
    pub batch: usize,
    /// Directory for index snapshots: binaries that support it save each
    /// built index there on first run and load-and-verify on later runs.
    pub snapshot: Option<String>,
    /// Also measure memory-mapped snapshot loads (`snapshot` bin).
    pub mmap: bool,
    /// Also run the overload phase (`loadgen` bin): drive a
    /// small-queue server past capacity and record shed rate + goodput.
    pub overload: bool,
    /// Also run the fault-injection soak (`loadgen` bin, requires the
    /// `fault-injection` feature): drive live traffic through a seeded
    /// fault schedule and record recovery rows.
    pub faults: bool,
    /// Also run the sharded-routing phase (`loadgen` bin): split the
    /// index across a worker fleet behind a scatter-gather router and
    /// record routed goodput vs the single-process baseline.
    pub router: bool,
    /// Drive an already-running `act-route` (or `act-serve`) at this
    /// address instead of spawning servers in-process (`loadgen` bin).
    /// The external fleet must serve the same dataset snapshot the
    /// workload verifies against.
    pub router_addr: Option<String>,
    /// Skew exponent for the zipf phase (`loadgen` bin): draw query
    /// points from a Zipf(s) distribution over a fixed hot set and
    /// record cache-off vs cache-on throughput/latency rows.
    pub zipf: Option<f64>,
    /// Also run the fairness phase (`loadgen` bin): one greedy client
    /// floods a capacity-pinned server while polite clients probe, and
    /// worst-client goodput is recorded quota-off vs quota-on.
    pub greedy: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            points: 10_000_000,
            seed: 42,
            full: false,
            datasets: Vec::new(),
            threads: Vec::new(),
            batch: act_core::DEFAULT_PROBE_BATCH,
            snapshot: None,
            mmap: false,
            overload: false,
            faults: false,
            router: false,
            router_addr: None,
            zipf: None,
            greedy: false,
        }
    }
}

/// The usage text printed when CLI parsing fails.
pub const USAGE: &str = "\
usage: <bin> [options]
  --points N        query points (default 10_000_000; '_' separators ok)
  --seed S          workload seed (default 42)
  --full            include the census x 4 m configuration (multi-GB index)
  --datasets a,b    restrict to matching dataset names (default: all)
  --threads 1,2,4   thread counts for scaling sweeps (default: per binary)
  --batch B         points per batched-probe block (default 64; 1 = scalar)
  --snapshot DIR    save built indexes as snapshots in DIR on first run;
                    load-and-verify them on later runs
  --mmap            also measure memory-mapped snapshot loads
                    (snapshot bin; adds the mmap rows to BENCH_snapshot.json)
  --overload        also run the overload phase (loadgen bin): drive a
                    small-queue server past capacity and record shed rate
                    + goodput rows into BENCH_serve.json
  --faults          also run the fault-injection soak (loadgen bin, built
                    with --features fault-injection): seeded worker
                    panics, torn deltas, socket resets under live load;
                    records recovery rows into BENCH_serve.json
  --router          also run the sharded-routing phase (loadgen bin):
                    shard the index across a worker fleet behind the
                    scatter-gather router and record routed goodput vs
                    the single-process baseline into BENCH_serve.json
  --router-addr A   drive an already-running act-route (or act-serve) at
                    HOST:PORT instead of spawning in-process (loadgen
                    bin); the external fleet must serve the same dataset
                    snapshot the workload verifies against
  --zipf S          also run the hot-cell cache phase (loadgen bin):
                    draw probes Zipf(S)-skewed over a fixed hot set and
                    record cache-off vs cache-on throughput + p99 rows
                    into BENCH_serve.json (S > 0; 1.0 ~ classic zipf)
  --greedy          also run the fairness phase (loadgen bin): a greedy
                    client floods a capacity-pinned server while polite
                    clients probe; records worst-client goodput with and
                    without --quota-lanes into BENCH_serve.json
(env: ACT_FULL=1 behaves like --full)";

impl Opts {
    /// Parses the shared experiment flags from argv; unknown or malformed
    /// flags print [`USAGE`] to stderr and exit with status 2.
    pub fn parse() -> Opts {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut o = match Self::try_parse(&args) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}\n{USAGE}");
                std::process::exit(2);
            }
        };
        if std::env::var("ACT_FULL").is_ok() {
            o.full = true;
        }
        o
    }

    /// [`Opts::parse`] on an explicit argument list, returning an error
    /// message instead of exiting (testable core of the parser).
    pub fn try_parse(args: &[String]) -> Result<Opts, String> {
        fn value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
            *i += 1;
            args.get(*i)
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{flag} requires a value"))
        }
        let mut o = Opts::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--points" => {
                    o.points = value(args, &mut i, "--points")?
                        .replace('_', "")
                        .parse()
                        .map_err(|_| "--points expects an integer".to_string())?;
                }
                "--seed" => {
                    o.seed = value(args, &mut i, "--seed")?
                        .parse()
                        .map_err(|_| "--seed expects an integer".to_string())?;
                }
                "--full" => o.full = true,
                "--datasets" => {
                    o.datasets = value(args, &mut i, "--datasets")?
                        .split(',')
                        .map(str::to_string)
                        .collect();
                }
                "--threads" => {
                    o.threads = value(args, &mut i, "--threads")?
                        .split(',')
                        .map(|t| {
                            t.parse::<usize>().ok().filter(|&t| t >= 1).ok_or_else(|| {
                                "--threads expects positive integers like 1,2,4".to_string()
                            })
                        })
                        .collect::<Result<Vec<usize>, String>>()?;
                }
                "--batch" => {
                    o.batch = value(args, &mut i, "--batch")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&b| b >= 1)
                        .ok_or_else(|| "--batch expects a positive integer".to_string())?;
                }
                "--snapshot" => {
                    let dir = value(args, &mut i, "--snapshot")?;
                    if dir.is_empty() {
                        return Err("--snapshot expects a directory path".to_string());
                    }
                    o.snapshot = Some(dir.to_string());
                }
                "--mmap" => o.mmap = true,
                "--overload" => o.overload = true,
                "--faults" => o.faults = true,
                "--router" => o.router = true,
                "--router-addr" => {
                    let addr = value(args, &mut i, "--router-addr")?;
                    if addr.is_empty() {
                        return Err("--router-addr expects HOST:PORT".to_string());
                    }
                    o.router_addr = Some(addr.to_string());
                }
                "--zipf" => {
                    let s = value(args, &mut i, "--zipf")?
                        .parse::<f64>()
                        .ok()
                        .filter(|s| s.is_finite() && *s > 0.0)
                        .ok_or_else(|| "--zipf expects a positive exponent".to_string())?;
                    o.zipf = Some(s);
                }
                "--greedy" => o.greedy = true,
                other => return Err(format!("unknown argument: {other}")),
            }
            i += 1;
        }
        Ok(o)
    }

    /// True if dataset `name` is selected.
    pub fn wants(&self, name: &str) -> bool {
        self.datasets.is_empty() || self.datasets.iter().any(|d| d == name)
    }

    /// The sweep thread counts, or `default` when `--threads` wasn't given.
    pub fn threads_or(&self, default: &[usize]) -> Vec<usize> {
        if self.threads.is_empty() {
            default.to_vec()
        } else {
            self.threads.clone()
        }
    }
}

/// The snapshot file naming convention shared by the experiment binaries:
/// `<dir>/<dataset>-<precision>m.snap`.
pub fn snapshot_path(dir: &str, dataset: &str, precision_m: f64) -> std::path::PathBuf {
    std::path::Path::new(dir).join(format!("{dataset}-{precision_m}m.snap"))
}

/// Loads the three paper datasets (boroughs, neighborhoods, census).
pub fn paper_datasets(seed: u64) -> Vec<Dataset> {
    vec![
        datagen::boroughs(seed),
        datagen::neighborhoods(seed),
        datagen::census_blocks(seed),
    ]
}

/// Whether a (dataset, precision) cell is feasible by default: census at
/// 4 m needs several GB of trie nodes (see DESIGN.md §4) and is opt-in.
pub fn feasible(dataset: &str, precision_m: f64, full: bool) -> bool {
    full || dataset != "census" || precision_m > 4.0
}

/// Generates the taxi-like query points.
pub fn make_points(ds: &Dataset, n: usize, seed: u64) -> Vec<Coord> {
    PointGen::nyc_taxi_like(ds.bbox, seed).take_vec(n)
}

/// Converts points to leaf cell ids (done once, outside measured loops, as
/// ingest would in a streaming system).
pub fn to_cells(points: &[Coord]) -> Vec<CellId> {
    points.iter().map(|&c| coord_to_cell(c)).collect()
}

/// Outcome of one timed join run.
#[derive(Debug, Clone)]
pub struct RunResult {
    pub secs: f64,
    pub mpts_per_sec: f64,
    pub stats: JoinStats,
    pub counts: Vec<u64>,
}

/// The shared warmup/timing protocol of every join runner: a warmup pass
/// over a prefix touches the trie's pages first, so the timed loop
/// measures steady-state probing rather than page faults. Scalar and
/// batched numbers are directly comparable because both go through here.
fn timed_join(
    cells: &[CellId],
    num_polygons: usize,
    join: impl Fn(&[CellId], &mut [u64]) -> JoinStats,
) -> RunResult {
    let mut counts = vec![0u64; num_polygons];
    let warm = cells.len().min(200_000);
    join(&cells[..warm], &mut counts);
    counts.iter_mut().for_each(|c| *c = 0);
    let t = Instant::now();
    let stats = join(cells, &mut counts);
    let secs = t.elapsed().as_secs_f64();
    RunResult {
        secs,
        mpts_per_sec: cells.len() as f64 / secs / 1e6,
        stats,
        counts,
    }
}

/// Times the approximate cell-id join (the paper's measured hot path).
pub fn run_act_join(index: &ActIndex, cells: &[CellId], num_polygons: usize) -> RunResult {
    timed_join(cells, num_polygons, |c, counts| {
        act_core::join_approx_cells(index, c, counts)
    })
}

/// Times the approximate join with **batched** probes (blocks of `batch`
/// through [`act_core::join_approx_cells_batch`]).
pub fn run_act_join_batch(
    index: &ActIndex,
    cells: &[CellId],
    num_polygons: usize,
    batch: usize,
) -> RunResult {
    timed_join(cells, num_polygons, |c, counts| {
        act_core::join_approx_cells_batch(index, c, counts, batch)
    })
}

/// Times the R-tree baseline: candidate counting without refinement, as in
/// the paper ("for each returned candidate, we simply increase the counter
/// of the respective polygon").
pub fn run_rtree_join(tree: &rtree::RTree, points: &[Coord], num_polygons: usize) -> RunResult {
    let mut counts = vec![0u64; num_polygons];
    let mut hits = Vec::with_capacity(16);
    let mut total_hits = 0u64;
    for &p in points.iter().take(200_000) {
        hits.clear();
        tree.query_point_into(p, &mut hits);
    }
    let t = Instant::now();
    for &p in points {
        hits.clear();
        tree.query_point_into(p, &mut hits);
        for &id in &hits {
            counts[id as usize] += 1;
        }
        total_hits += hits.len() as u64;
    }
    let secs = t.elapsed().as_secs_f64();
    RunResult {
        secs,
        mpts_per_sec: points.len() as f64 / secs / 1e6,
        stats: JoinStats {
            points: points.len() as u64,
            candidate_hits: total_hits,
            ..JoinStats::default()
        },
        counts,
    }
}

/// Builds the paper's R-tree baseline (insertion-based, rstar-like splits,
/// max 8 entries) over the polygons' MBRs.
pub fn build_rtree(ds: &Dataset) -> rtree::RTree {
    let mut t = rtree::RTree::new(8);
    for (i, p) in ds.polygons.iter().enumerate() {
        t.insert(*p.bbox(), i as u32);
    }
    t
}

/// Formats a byte count like the paper's Table I (kB / MB / GB).
pub fn fmt_bytes(b: usize) -> String {
    let b = b as f64;
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1} kB", b / 1e3)
    } else {
        format!("{b} B")
    }
}

/// Formats a cell count in millions, Table-I style.
pub fn fmt_mcells(c: u64) -> String {
    format!("{:.2}", c as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasibility_gate() {
        assert!(feasible("boroughs", 4.0, false));
        assert!(feasible("census", 15.0, false));
        assert!(!feasible("census", 4.0, false));
        assert!(feasible("census", 4.0, true));
    }

    #[test]
    fn harness_smoke() {
        // Tiny end-to-end run: index a small dataset, join points both ways.
        let ds = datagen::blocks_scaled(6, 5, 1);
        let index = ActIndex::build(&ds.polygons, 60.0).unwrap();
        let pts = make_points(&ds, 20_000, 7);
        let cells = to_cells(&pts);
        let act = run_act_join(&index, &cells, ds.polygons.len());
        assert_eq!(act.stats.points, 20_000);
        // Partition ⇒ nearly every point matches something.
        assert!(act.stats.misses < 1_000, "misses {}", act.stats.misses);

        let tree = build_rtree(&ds);
        let rt = run_rtree_join(&tree, &pts, ds.polygons.len());
        assert_eq!(rt.stats.points, 20_000);
        // MBR candidates ⊇ actual matches.
        assert!(rt.counts.iter().sum::<u64>() >= act.counts.iter().sum::<u64>() / 2);
    }

    fn parse(args: &[&str]) -> Result<Opts, String> {
        Opts::try_parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn cli_parses_all_flags() {
        let o = parse(&[
            "--points",
            "1_000_000",
            "--seed",
            "7",
            "--full",
            "--datasets",
            "boroughs,census",
            "--threads",
            "1,2,4",
            "--batch",
            "128",
            "--snapshot",
            "target/snaps",
            "--mmap",
            "--overload",
            "--faults",
            "--router",
            "--router-addr",
            "127.0.0.1:9000",
            "--zipf",
            "1.2",
            "--greedy",
        ])
        .unwrap();
        assert_eq!(o.points, 1_000_000);
        assert_eq!(o.seed, 7);
        assert!(o.full);
        assert_eq!(o.datasets, vec!["boroughs", "census"]);
        assert_eq!(o.threads, vec![1, 2, 4]);
        assert_eq!(o.batch, 128);
        assert_eq!(o.snapshot.as_deref(), Some("target/snaps"));
        assert!(o.mmap);
        assert!(o.overload);
        assert!(o.faults);
        assert!(o.router);
        assert_eq!(o.router_addr.as_deref(), Some("127.0.0.1:9000"));
        assert_eq!(o.zipf, Some(1.2));
        assert!(o.greedy);
        let defaults = parse(&[]).unwrap();
        assert!(!defaults.router);
        assert!(defaults.router_addr.is_none());
        assert!(defaults.zipf.is_none());
        assert!(!defaults.greedy);
        assert!(parse(&["--router-addr", ""])
            .unwrap_err()
            .contains("HOST:PORT"));
        assert!(parse(&["--zipf", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--zipf", "nan"]).unwrap_err().contains("positive"));
    }

    #[test]
    fn cli_rejects_unknown_and_malformed_flags() {
        assert!(parse(&["--nope"]).unwrap_err().contains("unknown argument"));
        assert!(parse(&["--points"])
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse(&["--points", "abc"]).unwrap_err().contains("integer"));
        assert!(parse(&["--threads", "1,0"])
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&["--batch", "0"]).unwrap_err().contains("positive"));
        assert!(parse(&["--snapshot"])
            .unwrap_err()
            .contains("requires a value"));
        assert!(parse(&["--snapshot", ""])
            .unwrap_err()
            .contains("directory"));
    }

    #[test]
    fn snapshot_path_convention() {
        assert_eq!(
            snapshot_path("d", "census", 15.0),
            std::path::Path::new("d").join("census-15m.snap")
        );
    }

    #[test]
    fn cli_threads_default_fallback() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.threads_or(&[1, 2, 4]), vec![1, 2, 4]);
        let o = parse(&["--threads", "8"]).unwrap();
        assert_eq!(o.threads_or(&[1, 2, 4]), vec![8]);
    }

    #[test]
    fn batched_harness_agrees_with_scalar() {
        let ds = datagen::blocks_scaled(6, 5, 1);
        let index = ActIndex::build(&ds.polygons, 60.0).unwrap();
        let pts = make_points(&ds, 20_000, 7);
        let cells = to_cells(&pts);
        let scalar = run_act_join(&index, &cells, ds.polygons.len());
        let batched = run_act_join_batch(&index, &cells, ds.polygons.len(), 64);
        assert_eq!(scalar.counts, batched.counts);
        assert_eq!(scalar.stats, batched.stats);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(500), "500 B");
        assert_eq!(fmt_bytes(2_500), "2.5 kB");
        assert_eq!(fmt_bytes(3_100_000), "3.1 MB");
        assert_eq!(fmt_bytes(1_210_000_000), "1.21 GB");
        assert_eq!(fmt_mcells(1_330_000), "1.33");
    }
}
