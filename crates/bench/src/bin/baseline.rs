//! Emits the repo's machine-readable performance baseline:
//! `BENCH_build.json` (serial vs parallel index build, Table-I-style
//! workload) and `BENCH_probe.json` (scalar vs batched probes plus a
//! thread sweep). These files are committed so every future perf PR can
//! diff against the trajectory.
//!
//! ```text
//! cargo run --release -p bench --bin baseline [--points N] [--threads 1,2,4] [--batch B]
//! ```
//!
//! Build runs reuse [`act_core::ActIndex::build_parallel`] and assert the
//! parallel arena is byte-identical to the serial one before recording a
//! time — a baseline entry for a wrong index would be worse than none.

use act_core::ActIndex;
use bench::json::{array, pretty, Obj};
use bench::{
    feasible, make_points, paper_datasets, run_act_join, run_act_join_batch, to_cells, Opts,
};
use jobs::JobPool;
use std::time::Instant;

/// Default thread sweep (ISSUE baseline: 1/2/4).
const DEFAULT_THREADS: [usize; 3] = [1, 2, 4];

fn hardware_threads() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

/// Build-phase precision per dataset: the finest tier whose index is
/// feasible without `--full` (census at 4 m needs several GB).
fn build_precision(name: &str, full: bool) -> f64 {
    if feasible(name, 4.0, full) {
        4.0
    } else {
        15.0
    }
}

fn main() {
    let opts = Opts::parse();
    let threads = opts.threads_or(&DEFAULT_THREADS);
    let hw = hardware_threads();
    println!(
        "BASELINE: build + probe, {} M points, seed {}, threads {:?}, batch {}, {} hardware thread(s)",
        opts.points as f64 / 1e6,
        opts.seed,
        threads,
        opts.batch,
        hw
    );

    let mut build_entries = Vec::new();
    let mut probe_entries = Vec::new();

    for ds in paper_datasets(opts.seed) {
        if !opts.wants(&ds.name) {
            continue;
        }
        let precision = build_precision(&ds.name, opts.full);
        println!(
            "\n=== {} ({} polygons, {precision} m) ===",
            ds.name,
            ds.polygons.len()
        );

        // ----- build: serial reference -----
        let t = Instant::now();
        let serial = ActIndex::build(&ds.polygons, precision).expect("single-face datasets");
        let serial_secs = t.elapsed().as_secs_f64();
        let st = serial.stats();
        println!(
            "build serial: {serial_secs:.3} s (coverings {:.3} s, supercover {:.3} s, insert {:.3} s)",
            st.build_coverings_secs, st.build_supercover_secs, st.build_insert_secs
        );

        // --snapshot DIR: persist the built index on first run; on later
        // runs load the file back and verify it matches today's build
        // byte for byte (a drifted snapshot would invalidate every number
        // recorded against it).
        if let Some(dir) = &opts.snapshot {
            let path = bench::snapshot_path(dir, &ds.name, precision);
            if path.exists() {
                let t = Instant::now();
                let mut f = std::fs::File::open(&path).expect("open snapshot");
                let loaded = ActIndex::load_snapshot(&mut f)
                    .unwrap_or_else(|e| panic!("load snapshot {}: {e}", path.display()));
                let load_secs = t.elapsed().as_secs_f64();
                assert!(
                    loaded.identical_to(&serial),
                    "snapshot {} does not match today's build — delete it and re-save",
                    path.display()
                );
                println!(
                    "snapshot load: {load_secs:.3} s from {} ({:.2}x vs serial build)",
                    path.display(),
                    serial_secs / load_secs
                );
            } else {
                std::fs::create_dir_all(dir).expect("create snapshot dir");
                let t = Instant::now();
                let mut f = std::fs::File::create(&path).expect("create snapshot");
                let bytes = serial.save_snapshot(&mut f).expect("save snapshot");
                let save_secs = t.elapsed().as_secs_f64();
                println!(
                    "snapshot save: {save_secs:.3} s, {} bytes to {}",
                    bytes,
                    path.display()
                );
            }
        }

        // ----- build: parallel sweep -----
        let mut parallel_entries = Vec::new();
        for &t_count in &threads {
            let pool = JobPool::new(t_count);
            let t = Instant::now();
            let par = ActIndex::build_parallel(&ds.polygons, precision, &pool)
                .expect("single-face datasets");
            let par_secs = t.elapsed().as_secs_f64();
            let identical = par.act().slots() == serial.act().slots()
                && par.act().roots() == serial.act().roots()
                && par.stats().indexed_cells == serial.stats().indexed_cells;
            assert!(
                identical,
                "parallel build diverged from serial — not recording"
            );
            let pst = par.stats();
            println!(
                "build {t_count} thread(s): {par_secs:.3} s  ({:.2}x vs serial)",
                serial_secs / par_secs
            );
            parallel_entries.push(
                Obj::new()
                    .int("threads", t_count as u64)
                    .num("total_secs", par_secs)
                    .num("covering_secs", pst.build_coverings_secs)
                    .num("supercover_secs", pst.build_supercover_secs)
                    .num("insert_secs", pst.build_insert_secs)
                    .num("speedup_vs_serial", serial_secs / par_secs)
                    .bool("byte_identical", identical)
                    .build(),
            );
        }
        build_entries.push(
            Obj::new()
                .str("dataset", &ds.name)
                .int("polygons", ds.polygons.len() as u64)
                .num("precision_m", precision)
                .int("indexed_cells", st.indexed_cells)
                .int("act_bytes", st.act_bytes as u64)
                .raw(
                    "serial",
                    Obj::new()
                        .num("total_secs", serial_secs)
                        .num("covering_secs", st.build_coverings_secs)
                        .num("supercover_secs", st.build_supercover_secs)
                        .num("insert_secs", st.build_insert_secs)
                        .build(),
                )
                .raw("parallel", array(parallel_entries))
                .build(),
        );

        // ----- probe: scalar vs batched, then thread sweep -----
        let points = make_points(&ds, opts.points, opts.seed);
        let cells = to_cells(&points);
        let scalar = run_act_join(&serial, &cells, ds.polygons.len());
        let batched = run_act_join_batch(&serial, &cells, ds.polygons.len(), opts.batch);
        assert_eq!(
            scalar.counts, batched.counts,
            "batched probe diverged from scalar — not recording"
        );
        println!(
            "probe scalar: {:.1} M pts/s   batched({}): {:.1} M pts/s  ({:.2}x)",
            scalar.mpts_per_sec,
            opts.batch,
            batched.mpts_per_sec,
            batched.mpts_per_sec / scalar.mpts_per_sec
        );

        let mut thread_entries = Vec::new();
        let mut base = 0.0;
        let base_threads = threads.first().copied().unwrap_or(1);
        for &t_count in &threads {
            let t = Instant::now();
            let (counts, _) = act_core::join_parallel_cells_batch(
                &serial,
                &cells,
                ds.polygons.len(),
                t_count,
                opts.batch,
            );
            let secs = t.elapsed().as_secs_f64();
            assert_eq!(counts, scalar.counts, "parallel join diverged");
            let mpts = cells.len() as f64 / secs / 1e6;
            if base == 0.0 {
                base = mpts;
            }
            println!(
                "probe {t_count} thread(s): {mpts:.1} M pts/s  ({:.2}x vs {base_threads} thread(s))",
                mpts / base
            );
            thread_entries.push(
                Obj::new()
                    .int("threads", t_count as u64)
                    .num("mpts_per_sec", mpts)
                    .num("speedup_vs_first", mpts / base)
                    .build(),
            );
        }
        probe_entries.push(
            Obj::new()
                .str("dataset", &ds.name)
                .int("polygons", ds.polygons.len() as u64)
                .num("precision_m", precision)
                .num("scalar_mpts_per_sec", scalar.mpts_per_sec)
                .num("batched_mpts_per_sec", batched.mpts_per_sec)
                .num(
                    "batched_speedup",
                    batched.mpts_per_sec / scalar.mpts_per_sec,
                )
                .raw("thread_sweep", array(thread_entries))
                .build(),
        );
    }

    let machine = bench::json::machine_stamp;
    let build_doc = Obj::new()
        .str("bench", "build")
        .str("command", "cargo run --release -p bench --bin baseline")
        .raw("machine", machine())
        .int("seed", opts.seed)
        .raw("build_runs", array(build_entries))
        .build();
    let probe_doc = Obj::new()
        .str("bench", "probe")
        .str("command", "cargo run --release -p bench --bin baseline")
        .raw("machine", machine())
        .int("points", opts.points as u64)
        .int("seed", opts.seed)
        .int("batch", opts.batch as u64)
        .raw("probe_runs", array(probe_entries))
        .build();

    // Anchor to the workspace root (two levels above crates/bench) so the
    // committed baselines are updated regardless of the invocation CWD.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(root.join("BENCH_build.json"), pretty(&build_doc))
        .expect("write BENCH_build.json");
    std::fs::write(root.join("BENCH_probe.json"), pretty(&probe_doc))
        .expect("write BENCH_probe.json");
    println!(
        "\nwrote BENCH_build.json and BENCH_probe.json to {}",
        root.display()
    );
}
