//! Regenerates the paper's **Figure 3**: single-threaded join throughput
//! (M points/s) of ACT-60m / ACT-15m / ACT-4m per dataset, against the
//! R-tree baseline (the paper's dashed lines).
//!
//! ```text
//! cargo run --release -p bench --bin fig3 [--points 10000000] [--full]
//! ```
//!
//! The measured loop matches the paper's: probe the index with each point
//! and bump the matched polygons' counters, no refinement. Points enter the
//! ACT path as precomputed leaf cell ids (ingest-time conversion); the
//! R-tree path consumes raw coordinates, as boost's R-tree would. Both the
//! scalar probe loop and the batched walk (`--batch`, default 64 — see
//! `Act::lookup_batch`) are measured; the speedup column uses the batched
//! number, which is the production path. For completeness the end-to-end
//! ACT throughput (including the lat/lng→cell conversion per point) is
//! also printed.

use act_core::ActIndex;
use bench::{
    build_rtree, feasible, make_points, paper_datasets, run_act_join, run_act_join_batch,
    run_rtree_join, to_cells, Opts, PRECISIONS,
};
use std::time::Instant;

fn main() {
    let opts = Opts::parse();
    println!(
        "FIGURE 3: single-threaded throughput, {} M points, seed {}, batch {}",
        opts.points as f64 / 1e6,
        opts.seed,
        opts.batch
    );
    println!();
    println!(
        "{:<14} {:>10} {:>11} {:>11} {:>11} {:>11} {:>9}",
        "dataset", "index", "scalar M/s", "batch M/s", "end-to-end", "hits/point", "speedup"
    );

    for ds in paper_datasets(opts.seed) {
        if !opts.wants(&ds.name) {
            continue;
        }
        let points = make_points(&ds, opts.points, opts.seed);
        let cells = to_cells(&points);

        // Baseline first (the dashed line).
        let tree = build_rtree(&ds);
        let base = run_rtree_join(&tree, &points, ds.polygons.len());
        println!(
            "{:<14} {:>10} {:>11.1} {:>11} {:>11} {:>11.3} {:>9}",
            ds.name,
            "R-tree",
            base.mpts_per_sec,
            "-",
            "-",
            base.stats.candidate_hits as f64 / base.stats.points as f64,
            "1.00x"
        );

        for precision in PRECISIONS {
            if !feasible(&ds.name, precision, opts.full) {
                println!(
                    "{:<14} {:>7}m   (skipped: needs several GB; rerun with --full)",
                    ds.name, precision
                );
                continue;
            }
            let index = ActIndex::build(&ds.polygons, precision).expect("single-face datasets");
            let scalar = run_act_join(&index, &cells, ds.polygons.len());
            let batched = run_act_join_batch(&index, &cells, ds.polygons.len(), opts.batch);

            // End-to-end: includes lat/lng -> cell conversion per point.
            let mut counts = vec![0u64; ds.polygons.len()];
            let t = Instant::now();
            act_core::join_approx_coords(&index, &points, &mut counts);
            let e2e = points.len() as f64 / t.elapsed().as_secs_f64() / 1e6;

            let hits = batched.stats.true_hits + batched.stats.candidate_hits;
            println!(
                "{:<14} {:>7}m {:>11.1} {:>11.1} {:>11.1} {:>11.3} {:>8.2}x",
                ds.name,
                precision,
                scalar.mpts_per_sec,
                batched.mpts_per_sec,
                e2e,
                hits as f64 / batched.stats.points as f64,
                batched.mpts_per_sec / base.mpts_per_sec,
            );
        }
        println!();
    }

    println!("shape checks vs. the paper:");
    println!(" * ACT outperforms the R-tree baseline on every dataset");
    println!(" * the ACT/R-tree factor grows with the number of polygons");
    println!("   (paper: 3.54x boroughs, 5.86x neighborhoods, 10.3x census)");
    println!(" * boroughs throughput barely drops at finer precision (large,");
    println!("   cache-resident interior cells absorb most probes)");
}
