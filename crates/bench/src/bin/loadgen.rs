//! loadgen — drives an `act-serve` server over TCP and records the
//! client-observed latency distribution and throughput to
//! `BENCH_serve.json` (committed at the repo root).
//!
//! ```text
//! cargo run --release -p bench --bin loadgen -- \
//!     [--datasets census] [--points N] [--seed S] [--threads C] [--batch B] \
//!     [--snapshot DIR] [--overload]
//! ```
//!
//! The server is spawned **in-process** on an ephemeral loopback port —
//! same code path as an external `act-serve`, but the run is
//! self-contained and the numbers include the full protocol round trip
//! (frame encode → TCP → decode → cell conversion → micro-batched probe
//! → response encode → TCP → decode). `--threads` is the number of
//! client connections (micro-batches form *across* connections),
//! `--batch` the points per request frame.
//!
//! Every run verifies before it records: the per-zone counts aggregated
//! from server replies must equal an offline probe of the same snapshot
//! over the same points, and an exact-mode sample must match refining
//! locally. On a single-core container the server and clients share one
//! hardware thread, so recorded numbers are a *floor* — see the
//! machine stamp.
//!
//! Every response read carries a deadline: a wedged server surfaces as a
//! typed `"failed": true` row in `BENCH_serve.json` (and a non-zero
//! exit), never as a hung benchmark.
//!
//! `--overload` adds a second phase against a **fresh, deliberately
//! small** server: queue depth D lanes, one worker whose per-batch delay
//! pins capacity to a known constant, and pipelining clients driving ≥4×
//! that capacity. The phase asserts the admission-control contract —
//! every frame answered (`OK` or `LOADSHED`, nothing dropped), queue
//! high-water ≤ D, `accepted = answered + shed` — verifies the `OK`
//! answers against an offline probe of exactly those frames, and records
//! shed rate + goodput-under-overload rows.
//!
//! The throughput phase runs with the observability pipeline **on**
//! (`ObsConfig::default()`): the recorded throughput is the
//! fully-instrumented number, and the row carries the *server-side*
//! per-stage latency distribution (queue wait, batch walk, exact
//! refine, reply write, admission→flush total) pulled over the wire
//! with a histogram-flagged STATS. Stage quantiles are log-bucket
//! lower bounds, so `server_frame_p99 ≤ client_frame_p99` is asserted,
//! not assumed.
//!
//! `--router-addr HOST:PORT` drives an **already-running** `act-route`
//! (or `act-serve`) instead of spawning in-process — the CI
//! observability smoke uses this to point loadgen at a fleet started
//! with `--metrics-addr`. The external fleet must serve the same
//! dataset snapshot; counts are still verified against the local
//! offline probe, and the in-process phases (overload/faults/router)
//! are skipped.
//!
//! `--router` adds the sharded-serving phase: the snapshot splits into
//! [`ROUTER_SHARDS`] per-shard snapshots (`act_core::write_shard_files`),
//! one worker per shard, and the scatter-gather router in front — the
//! same wire protocol, so the measured path is identical to the
//! single-process run plus the extra hop. The phase verifies the routed
//! counts against the offline probe, cross-checks the router's merged
//! counter block against the per-worker sums, and records routed
//! throughput next to the single-process number from the first phase.

use act_core::{coord_to_cell, MappedSnapshot, Probe, Refiner};
use act_serve::{protocol as proto, Client, ObsConfig, ServeConfig, Server};
use bench::json::{array, machine_stamp, pretty, Obj};
use bench::{make_points, paper_datasets, snapshot_path, Opts};
use geom::Coord;
use std::io::Write;
use std::time::{Duration, Instant};

/// Points per exact-mode verification sample.
const EXACT_SAMPLE: usize = 2_000;
/// Response-read deadline: far above any healthy frame latency, far
/// below "the bench hung overnight".
const READ_DEADLINE: Duration = Duration::from_secs(30);

/// Overload phase shape: queue depth D (lanes), frame size, pipelined
/// frames per connection, connections, and the per-batch delay that pins
/// worker capacity to `OVERLOAD_BATCH_LANES / OVERLOAD_BATCH_DELAY`.
const OVERLOAD_DEPTH_LANES: usize = 1_024;
const OVERLOAD_FRAME: usize = 256;
// The *server-side* per-connection in-flight cap for the phase. The
// client pipelines without a window of its own (decoupled writer +
// always-draining reader, see `overload_conn`), so this cap — and TCP
// backpressure behind it — is what bounds the server's buffering.
const OVERLOAD_WINDOW: usize = 32;
const OVERLOAD_CONNS: usize = 4;
const OVERLOAD_BATCH_LANES: usize = 256;
const OVERLOAD_BATCH_DELAY: Duration = Duration::from_millis(2);
/// Cap on overload-phase points (the phase measures shedding, not
/// scale; ~1 600 frames is plenty).
const OVERLOAD_MAX_POINTS: usize = 409_600;
/// Configured offered-load target, as a multiple of service capacity.
/// The measured offered rate is recorded alongside this target; when
/// TCP backpressure behind `max_inflight_frames` throttles the writers
/// below it, the run is a *throttled equilibrium* and the row says so
/// instead of passing the target off as what was actually offered.
const OVERLOAD_TARGET_X_CAPACITY: f64 = 4.0;

/// Sharded-serving phase shape: the fleet size behind the router.
const ROUTER_SHARDS: usize = 4;
/// Split level for the routed phase. The paper datasets are one
/// metropolitan area; at the global default (level 4, ~600 km cells)
/// the whole city is one prefix and one shard does all the work. Level
/// 10 (~10 km cells) spreads an NYC-sized bbox over ~100 prefixes so
/// the fleet actually shares the load — the row records the per-shard
/// split so imbalance is visible, not assumed away.
const ROUTER_SPLIT_LEVEL: u8 = 10;

/// One connection's measured-run outcome: per-zone counts + frame
/// latencies (µs), or the typed failure that ends the run.
type ConnResult = Result<(Vec<u64>, Vec<f64>), String>;
/// One overload connection's outcome: per-frame OK mask (false =
/// LOADSHED) + zone counts over the OK frames + how long the writer
/// took to push its whole stripe onto the wire (the offered-load side
/// of the measurement, distinct from when replies finished arriving).
type OverloadResult = Result<(Vec<bool>, Vec<u64>, Duration), String>;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The server-side pipeline stages recorded into the bench row, in
/// pipeline order. Each is a nanosecond histogram on the wire.
const TIME_STAGES: &[(&str, u8)] = &[
    ("queue_wait", proto::STAGE_QUEUE_WAIT),
    ("walk", proto::STAGE_WALK),
    ("refine", proto::STAGE_REFINE),
    ("write", proto::STAGE_WRITE),
    ("frame_total", proto::STAGE_FRAME_TOTAL),
];

/// Quantile of a wire stage histogram in its native unit (`NaN` when
/// the stage is absent or empty). Log-bucketed: the returned value is
/// the bucket **lower bound**, i.e. a slight understatement.
fn stage_raw(hists: &[proto::StageHistogram], stage: u8, q: f64) -> f64 {
    hists
        .iter()
        .find(|h| h.stage == stage && h.hist.count() > 0)
        .map_or(f64::NAN, |h| h.hist.quantile(q) as f64)
}

/// [`stage_raw`] for the nanosecond time stages, scaled to µs.
fn stage_us(hists: &[proto::StageHistogram], stage: u8, q: f64) -> f64 {
    stage_raw(hists, stage, q) / 1e3
}

/// Appends the per-stage server-side p50/p99 columns to a bench row.
fn with_stage_quantiles(mut row: Obj, hists: &[proto::StageHistogram]) -> Obj {
    for &(name, stage) in TIME_STAGES {
        row = row
            .num(
                &format!("server_{name}_p50_us"),
                stage_us(hists, stage, 0.50),
            )
            .num(
                &format!("server_{name}_p99_us"),
                stage_us(hists, stage, 0.99),
            );
    }
    row.num(
        "server_probe_depth_p50",
        stage_raw(hists, proto::STAGE_PROBE_DEPTH, 0.50),
    )
    .num(
        "server_probe_depth_p99",
        stage_raw(hists, proto::STAGE_PROBE_DEPTH, 0.99),
    )
}

fn main() {
    let opts = Opts::parse();
    let selected: Vec<String> = if opts.datasets.is_empty() {
        // The acceptance configuration: the census-scale lattice.
        vec!["census".into()]
    } else {
        opts.datasets.clone()
    };
    let connections = opts.threads_or(&[1]);
    let connections = connections.first().copied().unwrap_or(1).max(1);
    let frame = opts.batch.clamp(1, proto::MAX_POINTS);
    let dir = opts
        .snapshot
        .clone()
        .unwrap_or_else(|| "target/serve-bench".to_string());
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    println!(
        "LOADGEN: {} points, {connections} connection(s), {frame} points/frame, datasets {selected:?}{}",
        opts.points,
        if opts.overload { ", overload phase on" } else { "" },
    );
    if opts.faults && cfg!(not(feature = "fault-injection")) {
        eprintln!("LOADGEN: --faults needs `--features fault-injection`; phase will fail typed");
    }

    let mut entries = Vec::new();
    let mut failed = false;
    for ds in paper_datasets(opts.seed) {
        if !selected.iter().any(|d| d == &ds.name) {
            continue;
        }
        match run_dataset(&ds, &dir, connections, frame, &opts) {
            Ok(mut rows) => entries.append(&mut rows),
            Err(e) => {
                // The typed failure row: the bench records *that* and
                // *why* it failed instead of hanging or dying silently.
                eprintln!("LOADGEN FAILURE on {}: {e}", ds.name);
                failed = true;
                entries.push(
                    Obj::new()
                        .str("dataset", &ds.name)
                        .bool("failed", true)
                        .str("error", &e)
                        .build(),
                );
            }
        }
    }

    let doc = Obj::new()
        .str("bench", "serve")
        .str(
            "command",
            "cargo run --release -p bench --features fault-injection --bin loadgen -- --overload --faults --router",
        )
        .raw("machine", machine_stamp())
        .int("seed", opts.seed)
        .raw("serve_runs", array(entries))
        .build();

    // Anchor to the workspace root (two levels above crates/bench) so the
    // committed baseline is updated regardless of the invocation CWD.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(root.join("BENCH_serve.json"), pretty(&doc)).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json to {}", root.display());
    if failed {
        std::process::exit(1);
    }
}

/// The full per-dataset pipeline: snapshot, offline truth, the measured
/// throughput run, verification, and (optionally) the overload phase.
/// Client-side I/O failures come back as `Err` rows, not hangs.
fn run_dataset(
    ds: &datagen::Dataset,
    dir: &str,
    connections: usize,
    frame: usize,
    opts: &Opts,
) -> Result<Vec<String>, String> {
    let precision = 15.0;
    println!(
        "\n=== {} ({} polygons, {precision} m) ===",
        ds.name,
        ds.polygons.len()
    );

    // Snapshot cache: build + save on first run, reuse afterwards
    // (restarts ship snapshots, not polygon sets).
    let path = snapshot_path(dir, &ds.name, precision);
    if !path.exists() {
        let t = Instant::now();
        let built = act_core::ActIndex::build(&ds.polygons, precision).expect("build index");
        println!(
            "built index in {:.2} s (no cached snapshot)",
            t.elapsed().as_secs_f64()
        );
        let mut f = std::fs::File::create(&path).expect("create snapshot");
        built.save_snapshot(&mut f).expect("save snapshot");
    }

    // The workload, striped across connections.
    let points = make_points(ds, opts.points, opts.seed);
    let num_zones = ds.polygons.len();

    // Offline truth from the same snapshot the server maps.
    let snap = MappedSnapshot::open(&path).expect("map snapshot");
    let mut expected = vec![0u64; num_zones];
    {
        let view = snap.view();
        let cells: Vec<_> = points.iter().map(|&c| coord_to_cell(c)).collect();
        let mut probes = vec![Probe::Miss; cells.len()];
        view.probe_batch(&cells, &mut probes);
        for &p in &probes {
            for (id, _) in view.resolve_refs(p) {
                expected[id as usize] += 1;
            }
        }
    }

    if let Some(addr) = &opts.router_addr {
        return Ok(vec![run_external(
            ds,
            &points,
            &expected,
            connections,
            frame,
            addr,
        )?]);
    }

    let server = Server::spawn(
        &path,
        ServeConfig {
            refiner: Some(Refiner::new(&ds.polygons)),
            watch: None,
            // The headline throughput is measured with the full
            // observability pipeline on — overhead is part of the row.
            obs: Some(ObsConfig::default()),
            ..ServeConfig::default()
        },
    )
    .expect("spawn act-serve");
    let addr = server.addr();
    let connect = |what: &str| -> Result<Client, String> {
        let mut c = Client::connect(addr).map_err(|e| format!("{what}: connect: {e}"))?;
        c.set_read_timeout(Some(READ_DEADLINE))
            .map_err(|e| format!("{what}: set deadline: {e}"))?;
        Ok(c)
    };

    // Warmup: touch the mapped pages through the server.
    {
        let mut c = connect("warmup")?;
        for chunk in points.chunks(frame).take(64) {
            c.probe(chunk, false)
                .map_err(|e| format!("warmup probe: {e}"))?;
        }
    }
    let warm_probes = server.stats().probes;

    // Measured run: each connection owns a contiguous stripe.
    let t0 = Instant::now();
    let stripe = points.len().div_ceil(connections);
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let point_stripes: Vec<&[Coord]> = points.chunks(stripe.max(1)).collect();
        let handles: Vec<_> = point_stripes
            .into_iter()
            .map(|mine| {
                scope.spawn(move || {
                    let mut client = connect("measured run")?;
                    let mut counts = vec![0u64; num_zones];
                    let mut lat_us = Vec::with_capacity(mine.len() / frame + 1);
                    for chunk in mine.chunks(frame) {
                        let t = Instant::now();
                        let reply = client
                            .probe(chunk, false)
                            .map_err(|e| format!("probe frame: {e}"))?;
                        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                        for refs in &reply.refs {
                            for &(id, _) in refs {
                                counts[id as usize] += 1;
                            }
                        }
                    }
                    Ok((counts, lat_us))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let secs = t0.elapsed().as_secs_f64();

    // Verify: aggregated server answers ≡ offline probe.
    let mut counts = vec![0u64; num_zones];
    let mut latencies = Vec::new();
    for r in results {
        let (c, l) = r?;
        for (acc, v) in counts.iter_mut().zip(c) {
            *acc += v;
        }
        latencies.extend(l);
    }
    assert_eq!(counts, expected, "served counts diverged — not recording");

    // Exact-mode spot check against local refinement.
    let exact_n = points.len().min(EXACT_SAMPLE);
    {
        let refiner = Refiner::new(&ds.polygons);
        let view = snap.view();
        let mut c = connect("exact check")?;
        let sample = &points[..exact_n];
        let reply = c
            .probe(sample, true)
            .map_err(|e| format!("exact probe: {e}"))?;
        for (pt, got) in sample.iter().zip(&reply.refs) {
            let want: Vec<(u32, bool)> = view
                .resolve_refs(view.probe_coord(*pt))
                .filter(|&(id, interior)| interior || refiner.contains(id, *pt))
                .map(|(id, _)| (id, true))
                .collect();
            assert_eq!(*got, want, "exact mode diverged at {pt} — not recording");
        }
    }

    // Server-side per-stage distribution, over the wire (v3 flagged
    // STATS) — the same path an external scraper uses.
    let stats_ex = {
        let mut c = connect("stage stats")?;
        c.stats_ex().map_err(|e| format!("stats_ex: {e}"))?
    };

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let stats = server.stats();
    let measured_probes = stats.probes - warm_probes - exact_n as u64;
    assert_eq!(measured_probes, points.len() as u64);
    assert_eq!(
        stats.shed, 0,
        "the throughput phase must never shed (default depth)"
    );
    assert_eq!(stats.accepted, stats.answered + stats.shed);
    let throughput = points.len() as f64 / secs;
    let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
    let batch_width = stats.probes as f64 / stats.batches.max(1) as f64;
    println!(
        "served {} probes in {secs:.2} s  ({:.2} M probes/s, {connections} conn, {frame}/frame)",
        points.len(),
        throughput / 1e6
    );
    println!(
        "latency/frame: p50 {p50:.0} us, p99 {p99:.0} us, max {:.0} us; mean micro-batch width {batch_width:.1}",
        latencies.last().copied().unwrap_or(f64::NAN)
    );

    // Sanity: the server-side admission→flush total must sit at or
    // below what clients observed for the same frames (stage quantiles
    // are bucket lower bounds; the client adds encode/TCP/decode).
    let hists = &stats_ex.histograms;
    let server_frame_p99_us = stage_us(hists, proto::STAGE_FRAME_TOTAL, 0.99);
    assert!(
        server_frame_p99_us <= p99,
        "server-side frame p99 ({server_frame_p99_us:.0} us) exceeded client-side p99 ({p99:.0} us)"
    );
    println!(
        "server stages p50/p99 us: queue_wait {:.1}/{:.1}, walk {:.1}/{:.1}, refine {:.1}/{:.1}, \
         write {:.1}/{:.1}, frame_total {:.1}/{:.1}; probe depth p99 {:.0}",
        stage_us(hists, proto::STAGE_QUEUE_WAIT, 0.50),
        stage_us(hists, proto::STAGE_QUEUE_WAIT, 0.99),
        stage_us(hists, proto::STAGE_WALK, 0.50),
        stage_us(hists, proto::STAGE_WALK, 0.99),
        stage_us(hists, proto::STAGE_REFINE, 0.50),
        stage_us(hists, proto::STAGE_REFINE, 0.99),
        stage_us(hists, proto::STAGE_WRITE, 0.50),
        stage_us(hists, proto::STAGE_WRITE, 0.99),
        stage_us(hists, proto::STAGE_FRAME_TOTAL, 0.50),
        stage_us(hists, proto::STAGE_FRAME_TOTAL, 0.99),
        stage_raw(hists, proto::STAGE_PROBE_DEPTH, 0.99),
    );

    let mut rows = vec![with_stage_quantiles(
        Obj::new()
            .str("dataset", &ds.name)
            .int("polygons", num_zones as u64)
            .num("precision_m", precision)
            .int("points", points.len() as u64)
            .int("connections", connections as u64)
            .int("points_per_frame", frame as u64)
            .num("secs", secs)
            .num("probes_per_sec", throughput)
            .num("frame_latency_p50_us", p50)
            .num("frame_latency_p99_us", p99)
            .num(
                "frame_latency_max_us",
                latencies.last().copied().unwrap_or(f64::NAN),
            )
            .int("server_batches", stats.batches)
            .num("mean_batch_width", batch_width)
            .int("epoch", stats.epoch as u64)
            .bool("obs_enabled", true)
            .bool("server_p99_le_client_p99", true)
            .bool("counts_verified", true)
            .bool("exact_mode_verified", true),
        hists,
    )
    .build()];
    server.shutdown();

    if opts.router {
        rows.push(run_router(
            ds,
            &path,
            &snap,
            &points,
            connections,
            frame,
            throughput,
        )?);
    }
    if opts.overload {
        rows.push(run_overload(ds, &path, &snap, &points)?);
    }
    if opts.faults {
        #[cfg(feature = "fault-injection")]
        rows.push(run_faults(ds, &path, &snap, &points)?);
        #[cfg(not(feature = "fault-injection"))]
        return Err(
            "--faults requires a loadgen built with --features fault-injection".to_string(),
        );
    }
    Ok(rows)
}

/// The external-target phase (`--router-addr`): the same striped
/// workload driven at an already-running `act-route` or `act-serve`
/// endpoint instead of an in-process spawn. Counts are verified against
/// the local offline probe (the external fleet must serve the same
/// snapshot); the exact-mode spot check is skipped because an external
/// worker may run without a refiner. The phase also pulls a flagged
/// STATS (recording merged per-stage quantiles when the target has
/// observability on) and probes the DUMP op, tolerating UNSUPPORTED.
fn run_external(
    ds: &datagen::Dataset,
    points: &[Coord],
    expected: &[u64],
    connections: usize,
    frame: usize,
    addr: &str,
) -> Result<String, String> {
    use std::net::ToSocketAddrs;
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("--router-addr {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("--router-addr {addr} resolved to nothing"))?;
    let num_zones = ds.polygons.len();
    println!("external: driving {addr} with {connections} conn(s), {frame}/frame");
    let connect = |what: &str| -> Result<Client, String> {
        let mut c = Client::connect(addr).map_err(|e| format!("{what}: connect {addr}: {e}"))?;
        c.set_read_timeout(Some(READ_DEADLINE))
            .map_err(|e| format!("{what}: set deadline: {e}"))?;
        Ok(c)
    };

    // Warmup: touch the fleet's mapped pages through the endpoint.
    {
        let mut c = connect("external warmup")?;
        for chunk in points.chunks(frame).take(64) {
            c.probe(chunk, false)
                .map_err(|e| format!("external warmup probe: {e}"))?;
        }
    }

    let t0 = Instant::now();
    let stripe = points.len().div_ceil(connections);
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = points
            .chunks(stripe.max(1))
            .map(|mine| {
                scope.spawn(move || {
                    let mut client = connect("external run")?;
                    let mut counts = vec![0u64; num_zones];
                    let mut lat_us = Vec::with_capacity(mine.len() / frame + 1);
                    for chunk in mine.chunks(frame) {
                        let t = Instant::now();
                        let reply = client
                            .probe(chunk, false)
                            .map_err(|e| format!("external probe: {e}"))?;
                        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                        for refs in &reply.refs {
                            for &(id, _) in refs {
                                counts[id as usize] += 1;
                            }
                        }
                    }
                    Ok((counts, lat_us))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("external client thread"))
            .collect()
    });
    let secs = t0.elapsed().as_secs_f64();

    let mut counts = vec![0u64; num_zones];
    let mut latencies = Vec::new();
    for r in results {
        let (c, l) = r?;
        for (acc, v) in counts.iter_mut().zip(c) {
            *acc += v;
        }
        latencies.extend(l);
    }
    if counts != expected {
        return Err(
            "external counts diverged from the local offline probe — is the fleet serving the \
             same snapshot?"
                .to_string(),
        );
    }

    // Observability over the wire: merged stage histograms when the
    // target runs with obs on (empty section otherwise), and the DUMP
    // op (UNSUPPORTED when no trace ring is configured).
    let stats_ex = {
        let mut c = connect("external stats")?;
        c.stats_ex()
            .map_err(|e| format!("external stats_ex: {e}"))?
    };
    let hists = &stats_ex.histograms;
    let has_stage_hists = hists
        .iter()
        .any(|h| h.stage == proto::STAGE_FRAME_TOTAL && h.hist.count() > 0);
    let dump_lines = {
        let mut c = connect("external dump")?;
        c.dump().ok().map(|text| text.lines().count() as u64)
    };

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let throughput = points.len() as f64 / secs;
    let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
    if has_stage_hists {
        let server_p99 = stage_us(hists, proto::STAGE_FRAME_TOTAL, 0.99);
        // The external fleet's histograms cover *all* its traffic (ours
        // plus anything before), so this is a sanity print, not an
        // assert — the CI smoke asserts on a fleet only we drove.
        println!(
            "external: server frame p99 {server_p99:.0} us vs client p99 {p99:.0} us \
             (fleet-lifetime histogram)"
        );
    }
    println!(
        "external: {} probes in {secs:.2} s ({:.2} M probes/s); p50 {p50:.0} us p99 {p99:.0} us; \
         stage histograms {}, trace dump {}",
        points.len(),
        throughput / 1e6,
        if has_stage_hists { "present" } else { "absent" },
        match dump_lines {
            Some(n) => format!("{n} events"),
            None => "unsupported".to_string(),
        },
    );

    let row = Obj::new()
        .str("dataset", &ds.name)
        .str("mode", "external")
        .str("addr", &addr.to_string())
        .int("points", points.len() as u64)
        .int("connections", connections as u64)
        .int("points_per_frame", frame as u64)
        .num("secs", secs)
        .num("probes_per_sec", throughput)
        .num("frame_latency_p50_us", p50)
        .num("frame_latency_p99_us", p99)
        .bool("stage_histograms_present", has_stage_hists)
        .bool("trace_dump_supported", dump_lines.is_some())
        .int("trace_dump_events", dump_lines.unwrap_or(0))
        .bool("counts_verified", true);
    Ok(with_stage_quantiles(row, hists).build())
}

/// The sharded-serving phase: sharder → [`ROUTER_SHARDS`] in-process
/// workers → scatter-gather router, the same workload driven through
/// the router's endpoint, counts verified against the offline probe and
/// the merged counter block cross-checked against per-worker sums. The
/// recorded ratio vs the single-process run is the scale-out headline;
/// on a box with fewer cores than workers it is a floor, not the
/// ceiling (see the machine stamp).
#[allow(clippy::too_many_arguments)]
fn run_router(
    ds: &datagen::Dataset,
    path: &std::path::Path,
    snap: &MappedSnapshot,
    points: &[Coord],
    connections: usize,
    frame: usize,
    single_process_throughput: f64,
) -> Result<String, String> {
    use act_core::write_shard_files;
    use act_serve::{Router, RouterConfig};

    let num_zones = ds.polygons.len();
    println!("router: sharding into {ROUTER_SHARDS} workers, {connections} conn(s), {frame}/frame");

    // Shard the cached snapshot. The shards are derived artifacts —
    // rebuilt per run, removed after — so a refreshed base snapshot can
    // never race stale shards.
    let index = {
        let mut f = std::fs::File::open(path).map_err(|e| format!("router: open snapshot: {e}"))?;
        act_core::ActIndex::load_snapshot(&mut f).map_err(|e| format!("router: load: {e}"))?
    };
    let shard_dir = path.with_extension("shards");
    let t = Instant::now();
    let shard_paths = write_shard_files(&index, &shard_dir, ROUTER_SPLIT_LEVEL, ROUTER_SHARDS)
        .map_err(|e| format!("router: shard: {e}"))?;
    println!("router: sharded in {:.2} s", t.elapsed().as_secs_f64());
    drop(index);

    let workers: Vec<_> = shard_paths
        .iter()
        .map(|p| {
            Server::spawn(
                p,
                ServeConfig {
                    watch: None,
                    ..ServeConfig::default()
                },
            )
            .expect("spawn shard worker")
        })
        .collect();
    let router = Router::spawn(
        workers.iter().map(|w| w.addr()).collect(),
        RouterConfig {
            split_level: ROUTER_SPLIT_LEVEL,
            ..RouterConfig::default()
        },
    )
    .map_err(|e| format!("router: spawn: {e}"))?;
    let addr = router.addr();
    let connect = |what: &str| -> Result<Client, String> {
        let mut c = Client::connect(addr).map_err(|e| format!("{what}: connect: {e}"))?;
        c.set_read_timeout(Some(READ_DEADLINE))
            .map_err(|e| format!("{what}: set deadline: {e}"))?;
        Ok(c)
    };

    // Warmup: touch every shard's mapped pages through the router.
    {
        let mut c = connect("router warmup")?;
        for chunk in points.chunks(frame).take(64) {
            c.probe(chunk, false)
                .map_err(|e| format!("router warmup probe: {e}"))?;
        }
    }
    let warm_probes: u64 = workers.iter().map(|w| w.stats().probes).sum();

    // Measured routed run: same striping as the single-process phase.
    let t0 = Instant::now();
    let stripe = points.len().div_ceil(connections);
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = points
            .chunks(stripe.max(1))
            .map(|mine| {
                scope.spawn(move || {
                    let mut client = connect("routed run")?;
                    let mut counts = vec![0u64; num_zones];
                    let mut lat_us = Vec::with_capacity(mine.len() / frame + 1);
                    for chunk in mine.chunks(frame) {
                        let t = Instant::now();
                        let reply = client
                            .probe(chunk, false)
                            .map_err(|e| format!("routed probe: {e}"))?;
                        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                        for refs in &reply.refs {
                            for &(id, _) in refs {
                                counts[id as usize] += 1;
                            }
                        }
                    }
                    Ok((counts, lat_us))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("routed client thread"))
            .collect()
    });
    let secs = t0.elapsed().as_secs_f64();

    let mut counts = vec![0u64; num_zones];
    let mut latencies = Vec::new();
    for r in results {
        let (c, l) = r?;
        for (acc, v) in counts.iter_mut().zip(c) {
            *acc += v;
        }
        latencies.extend(l);
    }

    // Oracle: routed counts ≡ offline probe of the unsharded snapshot.
    let mut expected = vec![0u64; num_zones];
    {
        let view = snap.view();
        let cells: Vec<_> = points.iter().map(|&c| coord_to_cell(c)).collect();
        let mut probes = vec![Probe::Miss; cells.len()];
        view.probe_batch(&cells, &mut probes);
        for &p in &probes {
            for (id, _) in view.resolve_refs(p) {
                expected[id as usize] += 1;
            }
        }
    }
    assert_eq!(counts, expected, "routed counts diverged — not recording");

    // Books: every probe point was answered by exactly one worker, and
    // the router's merged counter block equals the sum of the parts.
    let per_shard: Vec<u64> = workers.iter().map(|w| w.stats().probes).collect();
    let fleet_probes: u64 = per_shard.iter().sum();
    assert_eq!(fleet_probes - warm_probes, points.len() as u64);
    let merged = {
        let mut c = connect("router stats")?;
        c.stats().map_err(|e| format!("router stats: {e}"))?
    };
    assert_eq!(merged.counters.probes, fleet_probes);
    assert_eq!(merged.counters.shed, 0, "routed run must never shed");
    assert_eq!(merged.epoch, 1, "fresh fleet min epoch");

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let throughput = points.len() as f64 / secs;
    let speedup = throughput / single_process_throughput;
    let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
    println!(
        "router: {} probes in {secs:.2} s ({:.2} M probes/s routed vs {:.2} M single-process, \
         {speedup:.2}x with {ROUTER_SHARDS} workers); latency/frame p50 {p50:.0} us p99 {p99:.0} us; \
         per-shard probes {per_shard:?}",
        points.len(),
        throughput / 1e6,
        single_process_throughput / 1e6
    );

    router.shutdown();
    for w in workers {
        w.shutdown();
    }
    std::fs::remove_dir_all(&shard_dir).ok();

    Ok(Obj::new()
        .str("dataset", &ds.name)
        .str("mode", "router")
        .int("shards", ROUTER_SHARDS as u64)
        .int("split_level", ROUTER_SPLIT_LEVEL as u64)
        .raw(
            "fleet_probes_per_shard",
            format!(
                "[{}]",
                per_shard
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        )
        .int("points", points.len() as u64)
        .int("connections", connections as u64)
        .int("points_per_frame", frame as u64)
        .num("secs", secs)
        .num("probes_per_sec_routed", throughput)
        .num("probes_per_sec_single_process", single_process_throughput)
        .num("routed_over_single_process", speedup)
        .num("frame_latency_p50_us", p50)
        .num("frame_latency_p99_us", p99)
        .int("fleet_probes", fleet_probes)
        .bool("counts_verified", true)
        .bool("merged_counters_verified", true)
        .build())
}

/// The fault soak: a seeded, deterministic fault schedule — worker
/// panics, socket resets, socket stalls — fires under live traffic
/// driven through the [`act_serve::ResilientClient`]. Records the
/// latency penalty during the fault window, the time from the last
/// injected fault to the first clean reply, and whether every frame was
/// eventually answered (the client absorbing INTERNAL/reset/stall with
/// retries) with the server's books balanced.
#[cfg(feature = "fault-injection")]
fn run_faults(
    ds: &datagen::Dataset,
    path: &std::path::Path,
    snap: &MappedSnapshot,
    points: &[Coord],
) -> Result<String, String> {
    use act_serve::faults::{FaultPlan, FaultSpec, Site};
    use act_serve::{ResilientClient, RetryPolicy};

    const FAULT_FRAME: usize = 256;
    const FAULT_MAX_FRAMES: usize = 600;
    let frames: Vec<&[Coord]> = points.chunks(FAULT_FRAME).take(FAULT_MAX_FRAMES).collect();

    // The schedule: 4 worker panics spread across the soak, 3 mid-reply
    // socket resets, 4 socket stalls. Hit numbers are per-site, so the
    // same seed + same traffic reproduces the same fault times.
    let plan = FaultPlan::new(0xFA0175)
        .stall(Duration::from_millis(5))
        .with(FaultSpec {
            site: Site::WorkerPanic,
            first: 5,
            every: 40,
            count: 4,
        })
        .with(FaultSpec {
            site: Site::ConnWrite,
            first: 10,
            every: 120,
            count: 3,
        })
        .with(FaultSpec {
            site: Site::ConnStall,
            first: 20,
            every: 90,
            count: 4,
        });
    let faults = plan.arm();
    let planned_fires: u64 = 4 + 3 + 4;
    println!(
        "faults: {} frames × {FAULT_FRAME} pts through a seeded schedule \
         (4 worker panics, 3 socket resets, 4 stalls)",
        frames.len()
    );

    let server = Server::spawn(
        path,
        ServeConfig {
            workers: 1,
            watch: None,
            faults: Some(std::sync::Arc::clone(&faults)),
            ..ServeConfig::default()
        },
    )
    .expect("spawn fault-soak act-serve");

    let mut client = ResilientClient::new(
        server.addr(),
        RetryPolicy {
            max_attempts: 10,
            read_timeout: READ_DEADLINE,
            deadline: Some(Duration::from_secs(60)),
            ..RetryPolicy::default()
        },
    )
    .map_err(|e| format!("faults: client: {e}"))?;

    let mut counts = vec![0u64; ds.polygons.len()];
    let mut fault_lat_us = Vec::new();
    let mut clean_lat_us = Vec::new();
    let mut fault_end: Option<Instant> = None;
    let mut recovery = None;
    for (k, chunk) in frames.iter().enumerate() {
        let t = Instant::now();
        let reply = client
            .probe(chunk, false)
            .map_err(|e| format!("faults: frame {k} not absorbed by retries: {e}"))?;
        let us = t.elapsed().as_secs_f64() * 1e6;
        for refs in &reply.refs {
            for &(id, _) in refs {
                counts[id as usize] += 1;
            }
        }
        if faults.total_fires() < planned_fires {
            fault_lat_us.push(us);
        } else {
            if fault_end.is_none() {
                // This frame completed after the final injected fault:
                // its completion is the recovery point.
                let now = Instant::now();
                fault_end = Some(now);
                recovery = Some(t.elapsed());
            }
            clean_lat_us.push(us);
        }
    }
    if faults.total_fires() < planned_fires {
        return Err(format!(
            "faults: schedule only fired {}/{planned_fires} — traffic too thin to trust the row",
            faults.total_fires()
        ));
    }

    // Every frame was eventually answered correctly: aggregated counts
    // must equal the offline probe of the same frames.
    let mut want = vec![0u64; ds.polygons.len()];
    {
        let view = snap.view();
        let cells: Vec<_> = frames
            .iter()
            .flat_map(|f| f.iter().map(|&c| coord_to_cell(c)))
            .collect();
        let mut probes = vec![Probe::Miss; cells.len()];
        view.probe_batch(&cells, &mut probes);
        for &p in &probes {
            for (id, _) in view.resolve_refs(p) {
                want[id as usize] += 1;
            }
        }
    }
    assert_eq!(
        counts, want,
        "answers under fault injection diverged — not recording"
    );

    let stats = server.stats();
    server.shutdown();
    assert_eq!(
        stats.accepted,
        stats.answered + stats.shed,
        "faults: counters must reconcile"
    );
    assert_eq!(
        stats.panics_contained,
        faults.fires(Site::WorkerPanic),
        "every injected panic must be contained (none took a worker down)"
    );

    fault_lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    clean_lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p99_fault = percentile(&fault_lat_us, 0.99);
    let p99_clean = percentile(&clean_lat_us, 0.99);
    let recovery_ms = recovery.map_or(f64::NAN, |d| d.as_secs_f64() * 1e3);
    println!(
        "faults: p99 {p99_fault:.0} us during the fault window vs {p99_clean:.0} us after; \
         recovered {recovery_ms:.1} ms after the last fault; {} panics contained, \
         {} resets, {} stalls, {} retries over {} connections — zero lost frames",
        stats.panics_contained,
        faults.fires(Site::ConnWrite),
        faults.fires(Site::ConnStall),
        client.retries(),
        client.connects(),
    );

    Ok(Obj::new()
        .str("dataset", &ds.name)
        .str("mode", "faults")
        .int("frames", frames.len() as u64)
        .int("points_per_frame", FAULT_FRAME as u64)
        .int("worker_panics_injected", faults.fires(Site::WorkerPanic))
        .int("socket_resets_injected", faults.fires(Site::ConnWrite))
        .int("socket_stalls_injected", faults.fires(Site::ConnStall))
        .int("panics_contained", stats.panics_contained)
        .num("frame_latency_p99_fault_window_us", p99_fault)
        .num("frame_latency_p99_after_us", p99_clean)
        .num("recovery_after_last_fault_ms", recovery_ms)
        .int("client_retries", client.retries())
        .int("client_connects", client.connects())
        .num("client_backoff_secs", client.backoff_slept().as_secs_f64())
        .bool("zero_lost_frames", true)
        .bool("counts_verified", true)
        .bool("counters_reconciled", true)
        .build())
}

/// The overload phase: a fresh small-queue server, pipelining clients
/// past capacity, shed-rate + goodput rows. See the bin docs for the
/// asserted contract.
fn run_overload(
    ds: &datagen::Dataset,
    path: &std::path::Path,
    snap: &MappedSnapshot,
    points: &[Coord],
) -> Result<String, String> {
    let n_points = points.len().min(OVERLOAD_MAX_POINTS);
    let points = &points[..n_points];
    let frames: Vec<&[Coord]> = points.chunks(OVERLOAD_FRAME).collect();
    let capacity_lanes_per_sec = OVERLOAD_BATCH_LANES as f64 / OVERLOAD_BATCH_DELAY.as_secs_f64();
    println!(
        "overload: {} frames × {OVERLOAD_FRAME} pts over {OVERLOAD_CONNS} pipelining conns \
         (server in-flight cap {OVERLOAD_WINDOW}), depth {OVERLOAD_DEPTH_LANES} lanes, capacity {:.0} lanes/s",
        frames.len(),
        capacity_lanes_per_sec
    );

    let server = Server::spawn(
        path,
        ServeConfig {
            workers: 1,
            batch_lanes: OVERLOAD_BATCH_LANES,
            queue_depth_lanes: OVERLOAD_DEPTH_LANES,
            max_inflight_frames: OVERLOAD_WINDOW,
            batch_delay: Some(OVERLOAD_BATCH_DELAY),
            watch: None,
            ..ServeConfig::default()
        },
    )
    .expect("spawn overload act-serve");
    let addr = server.addr();

    // Pipelined drive: each connection owns a stripe of frames, keeps a
    // window of OVERLOAD_WINDOW requests on the wire, and records which
    // frames were answered OK vs LOADSHED (in order — the protocol
    // answers a connection's frames in request order).
    let t0 = Instant::now();
    let stripe = frames.len().div_ceil(OVERLOAD_CONNS).max(1);
    let per_conn: Vec<OverloadResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = frames
            .chunks(stripe)
            .map(|mine| scope.spawn(move || overload_conn(addr, mine, ds.polygons.len())))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("overload client thread"))
            .collect()
    });
    let secs = t0.elapsed().as_secs_f64();

    let mut ok_mask: Vec<bool> = Vec::with_capacity(frames.len());
    let mut got_counts = vec![0u64; ds.polygons.len()];
    let mut write_secs = 0f64;
    for r in per_conn {
        let (mask, counts, write_dur) = r?;
        ok_mask.extend(mask);
        for (acc, v) in got_counts.iter_mut().zip(counts) {
            *acc += v;
        }
        // Connections blast concurrently, so the slowest writer bounds
        // when the full point set had been offered.
        write_secs = write_secs.max(write_dur.as_secs_f64());
    }
    assert_eq!(
        ok_mask.len(),
        frames.len(),
        "every frame must be answered, OK or LOADSHED"
    );

    // Verify the OK answers against an offline probe of exactly those
    // frames — shedding must never corrupt what *is* answered.
    let mut want_counts = vec![0u64; ds.polygons.len()];
    {
        let view = snap.view();
        let ok_cells: Vec<_> = ok_mask
            .iter()
            .zip(&frames)
            .filter(|(ok, _)| **ok)
            .flat_map(|(_, f)| f.iter().map(|&c| coord_to_cell(c)))
            .collect();
        let mut probes = vec![Probe::Miss; ok_cells.len()];
        view.probe_batch(&ok_cells, &mut probes);
        for &p in &probes {
            for (id, _) in view.resolve_refs(p) {
                want_counts[id as usize] += 1;
            }
        }
    }
    assert_eq!(
        got_counts, want_counts,
        "OK answers under overload diverged from offline probe — not recording"
    );

    let ok_frames = ok_mask.iter().filter(|&&b| b).count();
    let shed_frames = frames.len() - ok_frames;
    let stats = server.stats();
    server.shutdown();

    // The admission-control contract, asserted before recording.
    assert_eq!(
        stats.accepted,
        frames.len() as u64,
        "one admission per frame"
    );
    assert_eq!(
        stats.shed, shed_frames as u64,
        "server and client agree on sheds"
    );
    assert_eq!(
        stats.accepted,
        stats.answered + stats.shed,
        "counters reconcile"
    );
    assert!(
        stats.queue_high_water_lanes <= OVERLOAD_DEPTH_LANES as u64,
        "queue high-water {} exceeded depth {OVERLOAD_DEPTH_LANES}",
        stats.queue_high_water_lanes
    );
    assert!(shed_frames > 0, "overload phase must actually shed");

    let ok_points: usize = ok_mask
        .iter()
        .zip(&frames)
        .filter(|(ok, _)| **ok)
        .map(|(_, f)| f.len())
        .sum();
    // Offered load is measured on the *write* side: the slowest writer's
    // blast time is when the full point set had been pushed onto the
    // wire. Dividing by the full-run wall clock (which includes waiting
    // for the last reply) conflated "offered" with "answered" and
    // understated the overload multiple.
    let offered_per_sec = points.len() as f64 / write_secs;
    let goodput_per_sec = ok_points as f64 / secs;
    let shed_rate = shed_frames as f64 / frames.len() as f64;
    let offered_x_capacity = offered_per_sec / capacity_lanes_per_sec;
    // TCP backpressure behind `max_inflight_frames` can throttle the
    // writers toward service rate — a stable equilibrium where the load
    // actually offered never reached the configured target. The row
    // records which regime the run was in rather than asserting it away.
    let throttled_equilibrium = offered_x_capacity < OVERLOAD_TARGET_X_CAPACITY;
    assert!(
        offered_x_capacity > 1.0,
        "overload never exceeded capacity (got {offered_x_capacity:.2}×) — raise the window/conns"
    );
    println!(
        "overload: offered {:.0} pts/s measured ({offered_x_capacity:.1}× capacity, target \
         {OVERLOAD_TARGET_X_CAPACITY:.0}×{}), goodput {:.0} pts/s, shed rate {:.1}% \
         ({shed_frames}/{} frames), queue high-water {} ≤ {OVERLOAD_DEPTH_LANES} lanes",
        offered_per_sec,
        if throttled_equilibrium {
            " — THROTTLED EQUILIBRIUM"
        } else {
            ""
        },
        goodput_per_sec,
        shed_rate * 100.0,
        frames.len(),
        stats.queue_high_water_lanes
    );

    Ok(Obj::new()
        .str("dataset", &ds.name)
        .str("mode", "overload")
        .int("points", points.len() as u64)
        .int("frames", frames.len() as u64)
        .int("points_per_frame", OVERLOAD_FRAME as u64)
        .int("connections", OVERLOAD_CONNS as u64)
        .int("server_inflight_cap", OVERLOAD_WINDOW as u64)
        .int("queue_depth_lanes", OVERLOAD_DEPTH_LANES as u64)
        .num("batch_delay_ms", OVERLOAD_BATCH_DELAY.as_secs_f64() * 1e3)
        .num("capacity_lanes_per_sec", capacity_lanes_per_sec)
        .num("secs", secs)
        .num("write_secs", write_secs)
        .num("offered_target_x_capacity", OVERLOAD_TARGET_X_CAPACITY)
        .num("offered_points_per_sec_measured", offered_per_sec)
        .num("offered_x_capacity_measured", offered_x_capacity)
        .bool("throttled_equilibrium", throttled_equilibrium)
        .num("goodput_points_per_sec", goodput_per_sec)
        .int("ok_frames", ok_frames as u64)
        .int("shed_frames", shed_frames as u64)
        .num("shed_rate", shed_rate)
        .int("queue_high_water_lanes", stats.queue_high_water_lanes)
        .bool("all_frames_answered", true)
        .bool("ok_counts_verified", true)
        .build())
}

/// Drives one overload connection over its stripe of frames with the
/// write and read sides fully decoupled: a scoped writer thread blasts
/// every frame while this thread drains replies as fast as they arrive.
/// The decoupling matters — a single-threaded sliding window blocks on
/// each *admitted* frame's service latency at the window front, which
/// self-throttles the offered load back down to roughly capacity (a
/// stable equilibrium that defeats the whole point of the phase). The
/// server's `max_inflight_frames` plus the always-draining reader keep
/// both sides deadlock-free.
fn overload_conn(
    addr: std::net::SocketAddr,
    mine: &[&[Coord]],
    num_zones: usize,
) -> OverloadResult {
    let stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("overload connect: {e}"))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(READ_DEADLINE))
        .map_err(|e| e.to_string())?;
    let mut wstream = stream.try_clone().map_err(|e| e.to_string())?;
    std::thread::scope(|scope| {
        let writer = scope.spawn(move || -> Result<Duration, String> {
            let w0 = Instant::now();
            for chunk in mine {
                wstream
                    .write_all(&proto::encode_probe_request(chunk, false))
                    .map_err(|e| format!("overload write: {e}"))?;
            }
            Ok(w0.elapsed())
        });

        let mut stream = stream;
        let mut ok_mask = Vec::with_capacity(mine.len());
        let mut counts = vec![0u64; num_zones];
        // Replies arrive in request order; the k-th reply is frame k's.
        for chunk in mine {
            let body = proto::read_frame(&mut stream, 1 << 26)
                .map_err(|e| format!("overload read (deadline {READ_DEADLINE:?}): {e}"))?
                .ok_or("overload: server closed mid-conversation")?;
            let (h, payload) = proto::decode_response(&body).map_err(|e| e.to_string())?;
            if h.op != proto::OP_PROBE {
                return Err(format!("overload: unexpected op {}", h.op));
            }
            match h.status {
                proto::STATUS_OK => {
                    if h.n as usize != chunk.len() {
                        return Err("overload: OK reply with wrong point count".into());
                    }
                    let refs =
                        proto::decode_probe_payload(h.n, payload).map_err(|e| e.to_string())?;
                    for one in refs {
                        for (id, _) in one {
                            counts[id as usize] += 1;
                        }
                    }
                    ok_mask.push(true);
                }
                proto::STATUS_LOADSHED => {
                    if h.n != 0 {
                        return Err("overload: LOADSHED reply carries entries".into());
                    }
                    // v2 sheds carry an optional 4-byte retry hint.
                    proto::decode_retry_after(payload).map_err(|e| e.to_string())?;
                    ok_mask.push(false);
                }
                s => {
                    return Err(format!(
                        "overload: frame answered {} — only OK or LOADSHED is legal",
                        proto::status_name(s)
                    ))
                }
            }
        }
        let write_dur = writer.join().expect("overload writer thread")?;
        Ok((ok_mask, counts, write_dur))
    })
}
