//! loadgen — drives an `act-serve` server over TCP and records the
//! client-observed latency distribution and throughput to
//! `BENCH_serve.json` (committed at the repo root).
//!
//! ```text
//! cargo run --release -p bench --bin loadgen -- \
//!     [--datasets census] [--points N] [--seed S] [--threads C] [--batch B] [--snapshot DIR]
//! ```
//!
//! The server is spawned **in-process** on an ephemeral loopback port —
//! same code path as an external `act-serve`, but the run is
//! self-contained and the numbers include the full protocol round trip
//! (frame encode → TCP → decode → cell conversion → micro-batched probe
//! → response encode → TCP → decode). `--threads` is the number of
//! client connections (micro-batches form *across* connections),
//! `--batch` the points per request frame.
//!
//! Every run verifies before it records: the per-zone counts aggregated
//! from server replies must equal an offline probe of the same snapshot
//! over the same points, and an exact-mode sample must match refining
//! locally. On a single-core container the server and clients share one
//! hardware thread, so recorded numbers are a *floor* — see the
//! machine stamp.

use act_core::{coord_to_cell, MappedSnapshot, Probe, Refiner};
use act_serve::{Client, ServeConfig, Server};
use bench::json::{array, machine_stamp, pretty, Obj};
use bench::{make_points, paper_datasets, snapshot_path, Opts};
use geom::Coord;
use std::time::Instant;

/// Points per exact-mode verification sample.
const EXACT_SAMPLE: usize = 2_000;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let opts = Opts::parse();
    let selected: Vec<String> = if opts.datasets.is_empty() {
        // The acceptance configuration: the census-scale lattice.
        vec!["census".into()]
    } else {
        opts.datasets.clone()
    };
    let connections = opts.threads_or(&[1]);
    let connections = connections.first().copied().unwrap_or(1).max(1);
    let frame = opts.batch.clamp(1, act_serve::protocol::MAX_POINTS);
    let dir = opts
        .snapshot
        .clone()
        .unwrap_or_else(|| "target/serve-bench".to_string());
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    println!(
        "LOADGEN: {} points, {connections} connection(s), {frame} points/frame, datasets {selected:?}",
        opts.points
    );

    let mut entries = Vec::new();
    for ds in paper_datasets(opts.seed) {
        if !selected.iter().any(|d| d == &ds.name) {
            continue;
        }
        let precision = 15.0;
        println!(
            "\n=== {} ({} polygons, {precision} m) ===",
            ds.name,
            ds.polygons.len()
        );

        // Snapshot cache: build + save on first run, reuse afterwards
        // (restarts ship snapshots, not polygon sets).
        let path = snapshot_path(&dir, &ds.name, precision);
        if !path.exists() {
            let t = Instant::now();
            let built = act_core::ActIndex::build(&ds.polygons, precision).expect("build index");
            println!(
                "built index in {:.2} s (no cached snapshot)",
                t.elapsed().as_secs_f64()
            );
            let mut f = std::fs::File::create(&path).expect("create snapshot");
            built.save_snapshot(&mut f).expect("save snapshot");
        }

        // The workload, striped across connections.
        let points = make_points(&ds, opts.points, opts.seed);
        let num_zones = ds.polygons.len();

        // Offline truth from the same snapshot the server maps.
        let snap = MappedSnapshot::open(&path).expect("map snapshot");
        let mut expected = vec![0u64; num_zones];
        {
            let view = snap.view();
            let cells: Vec<_> = points.iter().map(|&c| coord_to_cell(c)).collect();
            let mut probes = vec![Probe::Miss; cells.len()];
            view.probe_batch(&cells, &mut probes);
            for &p in &probes {
                for (id, _) in view.resolve_refs(p) {
                    expected[id as usize] += 1;
                }
            }
        }

        let server = Server::spawn(
            &path,
            ServeConfig {
                refiner: Some(Refiner::new(&ds.polygons)),
                watch: None,
                ..ServeConfig::default()
            },
        )
        .expect("spawn act-serve");
        let addr = server.addr();

        // Warmup: touch the mapped pages through the server.
        {
            let mut c = Client::connect(addr).expect("connect");
            for chunk in points.chunks(frame).take(64) {
                c.probe(chunk, false).expect("warmup probe");
            }
        }
        let warm_probes = server.stats().probes;

        // Measured run: each connection owns a contiguous stripe.
        let t0 = Instant::now();
        let stripe = points.len().div_ceil(connections);
        let results: Vec<(Vec<u64>, Vec<f64>)> = std::thread::scope(|scope| {
            let point_stripes: Vec<&[Coord]> = points.chunks(stripe.max(1)).collect();
            let handles: Vec<_> = point_stripes
                .into_iter()
                .map(|mine| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("connect");
                        let mut counts = vec![0u64; num_zones];
                        let mut lat_us = Vec::with_capacity(mine.len() / frame + 1);
                        for chunk in mine.chunks(frame) {
                            let t = Instant::now();
                            let reply = client.probe(chunk, false).expect("probe frame");
                            lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                            for refs in &reply.refs {
                                for &(id, _) in refs {
                                    counts[id as usize] += 1;
                                }
                            }
                        }
                        (counts, lat_us)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
        let secs = t0.elapsed().as_secs_f64();

        // Verify: aggregated server answers ≡ offline probe.
        let mut counts = vec![0u64; num_zones];
        let mut latencies = Vec::new();
        for (c, l) in results {
            for (acc, v) in counts.iter_mut().zip(c) {
                *acc += v;
            }
            latencies.extend(l);
        }
        assert_eq!(counts, expected, "served counts diverged — not recording");

        // Exact-mode spot check against local refinement.
        let exact_n = points.len().min(EXACT_SAMPLE);
        {
            let refiner = Refiner::new(&ds.polygons);
            let view = snap.view();
            let mut c = Client::connect(addr).expect("connect");
            let sample = &points[..exact_n];
            let reply = c.probe(sample, true).expect("exact probe");
            for (pt, got) in sample.iter().zip(&reply.refs) {
                let want: Vec<(u32, bool)> = view
                    .resolve_refs(view.probe_coord(*pt))
                    .filter(|&(id, interior)| interior || refiner.contains(id, *pt))
                    .map(|(id, _)| (id, true))
                    .collect();
                assert_eq!(*got, want, "exact mode diverged at {pt} — not recording");
            }
        }

        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let stats = server.stats();
        let measured_probes = stats.probes - warm_probes - exact_n as u64;
        assert_eq!(measured_probes, points.len() as u64);
        let throughput = points.len() as f64 / secs;
        let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
        let batch_width = stats.probes as f64 / stats.batches.max(1) as f64;
        println!(
            "served {} probes in {secs:.2} s  ({:.2} M probes/s, {connections} conn, {frame}/frame)",
            points.len(),
            throughput / 1e6
        );
        println!(
            "latency/frame: p50 {p50:.0} us, p99 {p99:.0} us, max {:.0} us; mean micro-batch width {batch_width:.1}",
            latencies.last().copied().unwrap_or(f64::NAN)
        );

        entries.push(
            Obj::new()
                .str("dataset", &ds.name)
                .int("polygons", num_zones as u64)
                .num("precision_m", precision)
                .int("points", points.len() as u64)
                .int("connections", connections as u64)
                .int("points_per_frame", frame as u64)
                .num("secs", secs)
                .num("probes_per_sec", throughput)
                .num("frame_latency_p50_us", p50)
                .num("frame_latency_p99_us", p99)
                .num(
                    "frame_latency_max_us",
                    latencies.last().copied().unwrap_or(f64::NAN),
                )
                .int("server_batches", stats.batches)
                .num("mean_batch_width", batch_width)
                .int("epoch", stats.epoch as u64)
                .bool("counts_verified", true)
                .bool("exact_mode_verified", true)
                .build(),
        );
        server.shutdown();
    }

    let doc = Obj::new()
        .str("bench", "serve")
        .str(
            "command",
            "cargo run --release -p bench --bin loadgen -- --batch 1024",
        )
        .raw("machine", machine_stamp())
        .int("seed", opts.seed)
        .raw("serve_runs", array(entries))
        .build();

    // Anchor to the workspace root (two levels above crates/bench) so the
    // committed baseline is updated regardless of the invocation CWD.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(root.join("BENCH_serve.json"), pretty(&doc)).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json to {}", root.display());
}
