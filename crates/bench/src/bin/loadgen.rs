//! loadgen — drives an `act-serve` server over TCP and records the
//! client-observed latency distribution and throughput to
//! `BENCH_serve.json` (committed at the repo root).
//!
//! ```text
//! cargo run --release -p bench --bin loadgen -- \
//!     [--datasets census] [--points N] [--seed S] [--threads C] [--batch B] \
//!     [--snapshot DIR] [--overload]
//! ```
//!
//! The server is spawned **in-process** on an ephemeral loopback port —
//! same code path as an external `act-serve`, but the run is
//! self-contained and the numbers include the full protocol round trip
//! (frame encode → TCP → decode → cell conversion → micro-batched probe
//! → response encode → TCP → decode). `--threads` is the number of
//! client connections (micro-batches form *across* connections),
//! `--batch` the points per request frame.
//!
//! Every run verifies before it records: the per-zone counts aggregated
//! from server replies must equal an offline probe of the same snapshot
//! over the same points, and an exact-mode sample must match refining
//! locally. On a single-core container the server and clients share one
//! hardware thread, so recorded numbers are a *floor* — see the
//! machine stamp.
//!
//! Every response read carries a deadline: a wedged server surfaces as a
//! typed `"failed": true` row in `BENCH_serve.json` (and a non-zero
//! exit), never as a hung benchmark.
//!
//! `--overload` adds a second phase against a **fresh, deliberately
//! small** server: queue depth D lanes, one worker whose per-batch delay
//! pins capacity to a known constant, and pipelining clients driving ≥4×
//! that capacity. The phase asserts the admission-control contract —
//! every frame answered (`OK` or `LOADSHED`, nothing dropped), queue
//! high-water ≤ D, `accepted = answered + shed` — verifies the `OK`
//! answers against an offline probe of exactly those frames, and records
//! shed rate + goodput-under-overload rows.
//!
//! The throughput phase runs with the observability pipeline **on**
//! (`ObsConfig::default()`): the recorded throughput is the
//! fully-instrumented number, and the row carries the *server-side*
//! per-stage latency distribution (queue wait, batch walk, exact
//! refine, reply write, admission→flush total) pulled over the wire
//! with a histogram-flagged STATS. Stage quantiles are log-bucket
//! lower bounds, so `server_frame_p99 ≤ client_frame_p99` is asserted,
//! not assumed.
//!
//! `--router-addr HOST:PORT` drives an **already-running** `act-route`
//! (or `act-serve`) instead of spawning in-process — the CI
//! observability smoke uses this to point loadgen at a fleet started
//! with `--metrics-addr`. The external fleet must serve the same
//! dataset snapshot; counts are still verified against the local
//! offline probe, and the in-process phases (overload/faults/router)
//! are skipped.
//!
//! `--router` adds the sharded-serving phase: the snapshot splits into
//! [`ROUTER_SHARDS`] per-shard snapshots (`act_core::write_shard_files`),
//! one worker per shard, and the scatter-gather router in front — the
//! same wire protocol, so the measured path is identical to the
//! single-process run plus the extra hop. The phase verifies the routed
//! counts against the offline probe, cross-checks the router's merged
//! counter block against the per-worker sums, and records routed
//! throughput next to the single-process number from the first phase.

use act_core::{coord_to_cell, MappedSnapshot, Probe, Refiner};
use act_serve::{protocol as proto, Client, ObsConfig, ServeConfig, Server};
use bench::json::{array, machine_stamp, pretty, Obj};
use bench::{make_points, paper_datasets, snapshot_path, Opts};
use geom::Coord;
use std::io::Write;
use std::time::{Duration, Instant};

/// Points per exact-mode verification sample.
const EXACT_SAMPLE: usize = 2_000;
/// Response-read deadline: far above any healthy frame latency, far
/// below "the bench hung overnight".
const READ_DEADLINE: Duration = Duration::from_secs(30);

/// Overload phase shape: queue depth D (lanes), frame size, pipelined
/// frames per connection, connections, and the per-batch delay that pins
/// worker capacity to `OVERLOAD_BATCH_LANES / OVERLOAD_BATCH_DELAY`.
const OVERLOAD_DEPTH_LANES: usize = 1_024;
const OVERLOAD_FRAME: usize = 256;
// The *server-side* per-connection in-flight cap for the phase. The
// client pipelines without a window of its own (decoupled writer +
// always-draining reader, see `overload_conn`), so this cap — and TCP
// backpressure behind it — is what bounds the server's buffering.
const OVERLOAD_WINDOW: usize = 32;
const OVERLOAD_CONNS: usize = 4;
const OVERLOAD_BATCH_LANES: usize = 256;
const OVERLOAD_BATCH_DELAY: Duration = Duration::from_millis(2);
/// Cap on overload-phase points (the phase measures shedding, not
/// scale; ~1 600 frames is plenty).
const OVERLOAD_MAX_POINTS: usize = 409_600;
/// Configured offered-load target, as a multiple of service capacity.
/// The measured offered rate is recorded alongside this target; when
/// TCP backpressure behind `max_inflight_frames` throttles the writers
/// below it, the run is a *throttled equilibrium* and the row says so
/// instead of passing the target off as what was actually offered.
const OVERLOAD_TARGET_X_CAPACITY: f64 = 4.0;

/// Hot-cell cache phase shape (`--zipf S`): the fixed hot set the
/// Zipf(S) sampler draws from (large enough that the skew's cold tail
/// spills the CPU caches the way production traffic does — a tiny hot
/// set would leave even the cacheless walk L1-resident and measure
/// nothing), the frame size (large, so per-frame protocol overhead
/// doesn't dilute the walk-vs-cache difference), and the cap on
/// sampled probes.
const ZIPF_HOT_SET: usize = 65_536;
const ZIPF_FRAME: usize = 4_096;
const ZIPF_MAX_POINTS: usize = 2_097_152;
/// Measured-pass repetitions per [`zipf_run`]; the recorded time is the
/// best rep. One rep is ~100 ms of wall clock, short enough that one
/// scheduler hiccup swings the ratio by tens of percent — best-of-N
/// reads through the noise to the server's actual steady-state rate.
const ZIPF_REPS: usize = 7;
/// Frames in flight during a measured rep. Strict request/reply
/// ping-pong leaves the server idle for the client's turnaround after
/// every frame — a constant both sides pay that dilutes the ratio under
/// test. A few frames of pipelining keep the worker continuously busy;
/// kept small so in-flight bytes stay well under the kernel socket
/// buffers (a stalled server write plus a stalled client write is a
/// deadlock).
const ZIPF_PIPELINE: usize = 3;
/// Frames of skewed traffic driven at an external target (`--router-addr
/// --zipf`, the CI cache smoke) — enough to warm and then hit the cache.
const ZIPF_SMOKE_FRAMES: usize = 128;

/// Fairness phase shape (`--greedy`): one greedy connection blasts
/// `FAIR_FRAME`-point frames nonstop while polite clients each work
/// through a fixed stripe, against a worker whose per-batch delay pins
/// capacity to `FAIR_BATCH_LANES / FAIR_BATCH_DELAY` lanes/s. The phase
/// runs twice — without and with `client_quota_lanes` — and records the
/// worst polite client's goodput for each.
///
/// The queue is deliberately deep relative to the batch: queue depth is
/// what an unquota'd greedy connection gets to own, and every lane it
/// owns stretches the backlog-proportional retry hint a shed polite
/// client honors before trying again — so depth × greedy monopoly is
/// precisely the harm on display. The quota-on run caps any one
/// connection at a single batch's worth, which leaves the same deep
/// queue nearly empty and the polite clients rotating at fair share.
const FAIR_FRAME: usize = 256;
const FAIR_POLITE_FRAME: usize = 256;
const FAIR_POLITE_CLIENTS: usize = 3;
const FAIR_POLITE_FRAMES: usize = 32;
const FAIR_BATCH_LANES: usize = 256;
const FAIR_BATCH_DELAY: Duration = Duration::from_millis(2);
const FAIR_DEPTH_LANES: usize = 8_192;
const FAIR_WINDOW: usize = 32;
/// The per-connection quota for the quota-on run: one batch's worth —
/// the greedy connection can keep the worker busy but can no longer own
/// the queue.
const FAIR_QUOTA_LANES: usize = 256;
/// Frames in the pipelined burst driven at an external target
/// (`--router-addr --greedy`, the CI fairness smoke).
const GREEDY_BURST_FRAMES: usize = 64;

/// Sharded-serving phase shape: the fleet size behind the router.
const ROUTER_SHARDS: usize = 4;
/// Split level for the routed phase. The paper datasets are one
/// metropolitan area; at the global default (level 4, ~600 km cells)
/// the whole city is one prefix and one shard does all the work. Level
/// 10 (~10 km cells) spreads an NYC-sized bbox over ~100 prefixes so
/// the fleet actually shares the load — the row records the per-shard
/// split so imbalance is visible, not assumed away.
const ROUTER_SPLIT_LEVEL: u8 = 10;

/// One connection's measured-run outcome: per-zone counts + frame
/// latencies (µs), or the typed failure that ends the run.
type ConnResult = Result<(Vec<u64>, Vec<f64>), String>;
/// One overload connection's outcome: per-frame OK mask (false =
/// LOADSHED) + zone counts over the OK frames + how long the writer
/// took to push its whole stripe onto the wire (the offered-load side
/// of the measurement, distinct from when replies finished arriving).
type OverloadResult = Result<(Vec<bool>, Vec<u64>, Duration), String>;

/// A seeded Zipf(s) rank sampler over `0..n`: precomputed CDF +
/// xorshift64* uniforms + binary search. Deterministic, so the cache-off
/// and cache-on runs (and any re-run with the same seed) draw the exact
/// same skewed workload.
struct Zipf {
    cdf: Vec<f64>,
    state: u64,
}

impl Zipf {
    fn new(n: usize, s: f64, seed: u64) -> Zipf {
        assert!(n > 0, "zipf needs a non-empty hot set");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += ((k + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Zipf {
            cdf,
            state: seed | 1,
        }
    }

    fn next_rank(&mut self) -> usize {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The server-side pipeline stages recorded into the bench row, in
/// pipeline order. Each is a nanosecond histogram on the wire.
const TIME_STAGES: &[(&str, u8)] = &[
    ("queue_wait", proto::STAGE_QUEUE_WAIT),
    ("walk", proto::STAGE_WALK),
    ("refine", proto::STAGE_REFINE),
    ("write", proto::STAGE_WRITE),
    ("frame_total", proto::STAGE_FRAME_TOTAL),
];

/// Quantile of a wire stage histogram in its native unit (`NaN` when
/// the stage is absent or empty). Log-bucketed: the returned value is
/// the bucket **lower bound**, i.e. a slight understatement.
fn stage_raw(hists: &[proto::StageHistogram], stage: u8, q: f64) -> f64 {
    hists
        .iter()
        .find(|h| h.stage == stage && h.hist.count() > 0)
        .map_or(f64::NAN, |h| h.hist.quantile(q) as f64)
}

/// [`stage_raw`] for the nanosecond time stages, scaled to µs.
fn stage_us(hists: &[proto::StageHistogram], stage: u8, q: f64) -> f64 {
    stage_raw(hists, stage, q) / 1e3
}

/// Appends the per-stage server-side p50/p99 columns to a bench row.
fn with_stage_quantiles(mut row: Obj, hists: &[proto::StageHistogram]) -> Obj {
    for &(name, stage) in TIME_STAGES {
        row = row
            .num(
                &format!("server_{name}_p50_us"),
                stage_us(hists, stage, 0.50),
            )
            .num(
                &format!("server_{name}_p99_us"),
                stage_us(hists, stage, 0.99),
            );
    }
    row.num(
        "server_probe_depth_p50",
        stage_raw(hists, proto::STAGE_PROBE_DEPTH, 0.50),
    )
    .num(
        "server_probe_depth_p99",
        stage_raw(hists, proto::STAGE_PROBE_DEPTH, 0.99),
    )
}

fn main() {
    let opts = Opts::parse();
    let selected: Vec<String> = if opts.datasets.is_empty() {
        // The acceptance configuration: the census-scale lattice.
        vec!["census".into()]
    } else {
        opts.datasets.clone()
    };
    let connections = opts.threads_or(&[1]);
    let connections = connections.first().copied().unwrap_or(1).max(1);
    let frame = opts.batch.clamp(1, proto::MAX_POINTS);
    let dir = opts
        .snapshot
        .clone()
        .unwrap_or_else(|| "target/serve-bench".to_string());
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    println!(
        "LOADGEN: {} points, {connections} connection(s), {frame} points/frame, datasets {selected:?}{}",
        opts.points,
        if opts.overload { ", overload phase on" } else { "" },
    );
    if opts.faults && cfg!(not(feature = "fault-injection")) {
        eprintln!("LOADGEN: --faults needs `--features fault-injection`; phase will fail typed");
    }

    let mut entries = Vec::new();
    let mut failed = false;
    for ds in paper_datasets(opts.seed) {
        if !selected.iter().any(|d| d == &ds.name) {
            continue;
        }
        match run_dataset(&ds, &dir, connections, frame, &opts) {
            Ok(mut rows) => entries.append(&mut rows),
            Err(e) => {
                // The typed failure row: the bench records *that* and
                // *why* it failed instead of hanging or dying silently.
                eprintln!("LOADGEN FAILURE on {}: {e}", ds.name);
                failed = true;
                entries.push(
                    Obj::new()
                        .str("dataset", &ds.name)
                        .bool("failed", true)
                        .str("error", &e)
                        .build(),
                );
            }
        }
    }

    let doc = Obj::new()
        .str("bench", "serve")
        .str(
            "command",
            "cargo run --release -p bench --features fault-injection --bin loadgen -- --overload --faults --router --zipf 1.1 --greedy",
        )
        .raw("machine", machine_stamp())
        .int("seed", opts.seed)
        .raw("serve_runs", array(entries))
        .build();

    // Anchor to the workspace root (two levels above crates/bench) so the
    // committed baseline is updated regardless of the invocation CWD.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(root.join("BENCH_serve.json"), pretty(&doc)).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json to {}", root.display());
    if failed {
        std::process::exit(1);
    }
}

/// The full per-dataset pipeline: snapshot, offline truth, the measured
/// throughput run, verification, and (optionally) the overload phase.
/// Client-side I/O failures come back as `Err` rows, not hangs.
fn run_dataset(
    ds: &datagen::Dataset,
    dir: &str,
    connections: usize,
    frame: usize,
    opts: &Opts,
) -> Result<Vec<String>, String> {
    let precision = 15.0;
    println!(
        "\n=== {} ({} polygons, {precision} m) ===",
        ds.name,
        ds.polygons.len()
    );

    // Snapshot cache: build + save on first run, reuse afterwards
    // (restarts ship snapshots, not polygon sets).
    let path = snapshot_path(dir, &ds.name, precision);
    if !path.exists() {
        let t = Instant::now();
        let built = act_core::ActIndex::build(&ds.polygons, precision).expect("build index");
        println!(
            "built index in {:.2} s (no cached snapshot)",
            t.elapsed().as_secs_f64()
        );
        let mut f = std::fs::File::create(&path).expect("create snapshot");
        built.save_snapshot(&mut f).expect("save snapshot");
    }

    // The workload, striped across connections.
    let points = make_points(ds, opts.points, opts.seed);
    let num_zones = ds.polygons.len();

    // Offline truth from the same snapshot the server maps.
    let snap = MappedSnapshot::open(&path).expect("map snapshot");
    let mut expected = vec![0u64; num_zones];
    {
        let view = snap.view();
        let cells: Vec<_> = points.iter().map(|&c| coord_to_cell(c)).collect();
        let mut probes = vec![Probe::Miss; cells.len()];
        view.probe_batch(&cells, &mut probes);
        for &p in &probes {
            for (id, _) in view.resolve_refs(p) {
                expected[id as usize] += 1;
            }
        }
    }

    if let Some(addr) = &opts.router_addr {
        return Ok(vec![run_external(
            ds,
            &points,
            &expected,
            connections,
            frame,
            addr,
            opts,
        )?]);
    }

    let server = Server::spawn(
        &path,
        ServeConfig {
            refiner: Some(Refiner::new(&ds.polygons)),
            watch: None,
            // The headline throughput is measured with the full
            // observability pipeline on — overhead is part of the row.
            obs: Some(ObsConfig::default()),
            ..ServeConfig::default()
        },
    )
    .expect("spawn act-serve");
    let addr = server.addr();
    let connect = |what: &str| -> Result<Client, String> {
        let mut c = Client::connect(addr).map_err(|e| format!("{what}: connect: {e}"))?;
        c.set_read_timeout(Some(READ_DEADLINE))
            .map_err(|e| format!("{what}: set deadline: {e}"))?;
        Ok(c)
    };

    // Warmup: touch the mapped pages through the server.
    {
        let mut c = connect("warmup")?;
        for chunk in points.chunks(frame).take(64) {
            c.probe(chunk, false)
                .map_err(|e| format!("warmup probe: {e}"))?;
        }
    }
    let warm_probes = server.stats().probes;

    // Measured run: each connection owns a contiguous stripe.
    let t0 = Instant::now();
    let stripe = points.len().div_ceil(connections);
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let point_stripes: Vec<&[Coord]> = points.chunks(stripe.max(1)).collect();
        let handles: Vec<_> = point_stripes
            .into_iter()
            .map(|mine| {
                scope.spawn(move || {
                    let mut client = connect("measured run")?;
                    let mut counts = vec![0u64; num_zones];
                    let mut lat_us = Vec::with_capacity(mine.len() / frame + 1);
                    for chunk in mine.chunks(frame) {
                        let t = Instant::now();
                        let reply = client
                            .probe(chunk, false)
                            .map_err(|e| format!("probe frame: {e}"))?;
                        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                        for refs in &reply.refs {
                            for &(id, _) in refs {
                                counts[id as usize] += 1;
                            }
                        }
                    }
                    Ok((counts, lat_us))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let secs = t0.elapsed().as_secs_f64();

    // Verify: aggregated server answers ≡ offline probe.
    let mut counts = vec![0u64; num_zones];
    let mut latencies = Vec::new();
    for r in results {
        let (c, l) = r?;
        for (acc, v) in counts.iter_mut().zip(c) {
            *acc += v;
        }
        latencies.extend(l);
    }
    assert_eq!(counts, expected, "served counts diverged — not recording");

    // Exact-mode spot check against local refinement.
    let exact_n = points.len().min(EXACT_SAMPLE);
    {
        let refiner = Refiner::new(&ds.polygons);
        let view = snap.view();
        let mut c = connect("exact check")?;
        let sample = &points[..exact_n];
        let reply = c
            .probe(sample, true)
            .map_err(|e| format!("exact probe: {e}"))?;
        for (pt, got) in sample.iter().zip(&reply.refs) {
            let want: Vec<(u32, bool)> = view
                .resolve_refs(view.probe_coord(*pt))
                .filter(|&(id, interior)| interior || refiner.contains(id, *pt))
                .map(|(id, _)| (id, true))
                .collect();
            assert_eq!(*got, want, "exact mode diverged at {pt} — not recording");
        }
    }

    // Server-side per-stage distribution, over the wire (v3 flagged
    // STATS) — the same path an external scraper uses.
    let stats_ex = {
        let mut c = connect("stage stats")?;
        c.stats_ex().map_err(|e| format!("stats_ex: {e}"))?
    };

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let stats = server.stats();
    let measured_probes = stats.probes - warm_probes - exact_n as u64;
    assert_eq!(measured_probes, points.len() as u64);
    assert_eq!(
        stats.shed, 0,
        "the throughput phase must never shed (default depth)"
    );
    assert_eq!(stats.accepted, stats.answered + stats.shed);
    let throughput = points.len() as f64 / secs;
    let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
    let batch_width = stats.probes as f64 / stats.batches.max(1) as f64;
    println!(
        "served {} probes in {secs:.2} s  ({:.2} M probes/s, {connections} conn, {frame}/frame)",
        points.len(),
        throughput / 1e6
    );
    println!(
        "latency/frame: p50 {p50:.0} us, p99 {p99:.0} us, max {:.0} us; mean micro-batch width {batch_width:.1}",
        latencies.last().copied().unwrap_or(f64::NAN)
    );

    // Sanity: the server-side admission→flush total must sit at or
    // below what clients observed for the same frames (stage quantiles
    // are bucket lower bounds; the client adds encode/TCP/decode).
    let hists = &stats_ex.histograms;
    let server_frame_p99_us = stage_us(hists, proto::STAGE_FRAME_TOTAL, 0.99);
    assert!(
        server_frame_p99_us <= p99,
        "server-side frame p99 ({server_frame_p99_us:.0} us) exceeded client-side p99 ({p99:.0} us)"
    );
    println!(
        "server stages p50/p99 us: queue_wait {:.1}/{:.1}, walk {:.1}/{:.1}, refine {:.1}/{:.1}, \
         write {:.1}/{:.1}, frame_total {:.1}/{:.1}; probe depth p99 {:.0}",
        stage_us(hists, proto::STAGE_QUEUE_WAIT, 0.50),
        stage_us(hists, proto::STAGE_QUEUE_WAIT, 0.99),
        stage_us(hists, proto::STAGE_WALK, 0.50),
        stage_us(hists, proto::STAGE_WALK, 0.99),
        stage_us(hists, proto::STAGE_REFINE, 0.50),
        stage_us(hists, proto::STAGE_REFINE, 0.99),
        stage_us(hists, proto::STAGE_WRITE, 0.50),
        stage_us(hists, proto::STAGE_WRITE, 0.99),
        stage_us(hists, proto::STAGE_FRAME_TOTAL, 0.50),
        stage_us(hists, proto::STAGE_FRAME_TOTAL, 0.99),
        stage_raw(hists, proto::STAGE_PROBE_DEPTH, 0.99),
    );

    let mut rows = vec![with_stage_quantiles(
        Obj::new()
            .str("dataset", &ds.name)
            .int("polygons", num_zones as u64)
            .num("precision_m", precision)
            .int("points", points.len() as u64)
            .int("connections", connections as u64)
            .int("points_per_frame", frame as u64)
            .num("secs", secs)
            .num("probes_per_sec", throughput)
            .num("frame_latency_p50_us", p50)
            .num("frame_latency_p99_us", p99)
            .num(
                "frame_latency_max_us",
                latencies.last().copied().unwrap_or(f64::NAN),
            )
            .int("server_batches", stats.batches)
            .num("mean_batch_width", batch_width)
            .int("epoch", stats.epoch as u64)
            .bool("obs_enabled", true)
            .bool("server_p99_le_client_p99", true)
            .bool("counts_verified", true)
            .bool("exact_mode_verified", true),
        hists,
    )
    .build()];
    server.shutdown();

    if opts.router {
        rows.push(run_router(
            ds,
            &path,
            &snap,
            &points,
            connections,
            frame,
            throughput,
        )?);
    }
    if opts.overload {
        rows.push(run_overload(ds, &path, &snap, &points)?);
    }
    if let Some(s) = opts.zipf {
        rows.extend(run_zipf(ds, &path, &snap, &points, opts.seed, s)?);
    }
    if opts.greedy {
        rows.push(run_fairness(ds, &path, &snap, &points)?);
    }
    if opts.faults {
        #[cfg(feature = "fault-injection")]
        rows.push(run_faults(ds, &path, &snap, &points)?);
        #[cfg(not(feature = "fault-injection"))]
        return Err(
            "--faults requires a loadgen built with --features fault-injection".to_string(),
        );
    }
    Ok(rows)
}

/// The external-target phase (`--router-addr`): the same striped
/// workload driven at an already-running `act-route` or `act-serve`
/// endpoint instead of an in-process spawn. Counts are verified against
/// the local offline probe (the external fleet must serve the same
/// snapshot); the exact-mode spot check is skipped because an external
/// worker may run without a refiner. The phase also pulls a flagged
/// STATS (recording merged per-stage quantiles when the target has
/// observability on) and probes the DUMP op, tolerating UNSUPPORTED.
#[allow(clippy::too_many_arguments)]
fn run_external(
    ds: &datagen::Dataset,
    points: &[Coord],
    expected: &[u64],
    connections: usize,
    frame: usize,
    addr: &str,
    opts: &Opts,
) -> Result<String, String> {
    use std::net::ToSocketAddrs;
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("--router-addr {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("--router-addr {addr} resolved to nothing"))?;
    let num_zones = ds.polygons.len();
    println!("external: driving {addr} with {connections} conn(s), {frame}/frame");
    let connect = |what: &str| -> Result<Client, String> {
        let mut c = Client::connect(addr).map_err(|e| format!("{what}: connect {addr}: {e}"))?;
        c.set_read_timeout(Some(READ_DEADLINE))
            .map_err(|e| format!("{what}: set deadline: {e}"))?;
        Ok(c)
    };

    // Warmup: touch the fleet's mapped pages through the endpoint.
    {
        let mut c = connect("external warmup")?;
        for chunk in points.chunks(frame).take(64) {
            c.probe(chunk, false)
                .map_err(|e| format!("external warmup probe: {e}"))?;
        }
    }

    let t0 = Instant::now();
    let stripe = points.len().div_ceil(connections);
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = points
            .chunks(stripe.max(1))
            .map(|mine| {
                scope.spawn(move || {
                    let mut client = connect("external run")?;
                    let mut counts = vec![0u64; num_zones];
                    let mut lat_us = Vec::with_capacity(mine.len() / frame + 1);
                    for chunk in mine.chunks(frame) {
                        let t = Instant::now();
                        let reply = client
                            .probe(chunk, false)
                            .map_err(|e| format!("external probe: {e}"))?;
                        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                        for refs in &reply.refs {
                            for &(id, _) in refs {
                                counts[id as usize] += 1;
                            }
                        }
                    }
                    Ok((counts, lat_us))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("external client thread"))
            .collect()
    });
    let secs = t0.elapsed().as_secs_f64();

    let mut counts = vec![0u64; num_zones];
    let mut latencies = Vec::new();
    for r in results {
        let (c, l) = r?;
        for (acc, v) in counts.iter_mut().zip(c) {
            *acc += v;
        }
        latencies.extend(l);
    }
    if counts != expected {
        return Err(
            "external counts diverged from the local offline probe — is the fleet serving the \
             same snapshot?"
                .to_string(),
        );
    }

    // Observability over the wire: merged stage histograms when the
    // target runs with obs on (empty section otherwise), and the DUMP
    // op (UNSUPPORTED when no trace ring is configured).
    let stats_ex = {
        let mut c = connect("external stats")?;
        c.stats_ex()
            .map_err(|e| format!("external stats_ex: {e}"))?
    };
    let hists = &stats_ex.histograms;
    let has_stage_hists = hists
        .iter()
        .any(|h| h.stage == proto::STAGE_FRAME_TOTAL && h.hist.count() > 0);
    let dump_lines = {
        let mut c = connect("external dump")?;
        c.dump().ok().map(|text| text.lines().count() as u64)
    };

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let throughput = points.len() as f64 / secs;
    let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
    if has_stage_hists {
        let server_p99 = stage_us(hists, proto::STAGE_FRAME_TOTAL, 0.99);
        // The external fleet's histograms cover *all* its traffic (ours
        // plus anything before), so this is a sanity print, not an
        // assert — the CI smoke asserts on a fleet only we drove.
        println!(
            "external: server frame p99 {server_p99:.0} us vs client p99 {p99:.0} us \
             (fleet-lifetime histogram)"
        );
    }
    println!(
        "external: {} probes in {secs:.2} s ({:.2} M probes/s); p50 {p50:.0} us p99 {p99:.0} us; \
         stage histograms {}, trace dump {}",
        points.len(),
        throughput / 1e6,
        if has_stage_hists { "present" } else { "absent" },
        match dump_lines {
            Some(n) => format!("{n} events"),
            None => "unsupported".to_string(),
        },
    );

    // `--zipf` against an external target: drive skewed repeat traffic at
    // the endpoint so a cache-enabled worker accumulates hits — the CI
    // cache smoke scrapes `act_cache_hits_total` off /metrics afterwards.
    let mut zipf_smoke_frames = 0u64;
    if let Some(s) = opts.zipf {
        let hot = &points[..points.len().min(ZIPF_HOT_SET)];
        let mut sampler = Zipf::new(hot.len(), s, 0x51_F0ED);
        let mut c = connect("external zipf smoke")?;
        let mut buf = Vec::with_capacity(frame);
        for _ in 0..ZIPF_SMOKE_FRAMES {
            buf.clear();
            buf.extend((0..frame).map(|_| hot[sampler.next_rank()]));
            c.probe(&buf, false)
                .map_err(|e| format!("external zipf probe: {e}"))?;
            zipf_smoke_frames += 1;
        }
        println!(
            "external: zipf({s}) smoke — {zipf_smoke_frames} frames × {frame} pts over {} hot points",
            hot.len()
        );
    }

    // `--greedy` against an external target: one pipelined burst that
    // keeps many lanes in flight on a single connection, so a
    // quota-enforcing worker sheds the over-quota frames — the CI
    // fairness smoke scrapes `act_quota_sheds_total` afterwards.
    let mut burst_ok = 0u64;
    let mut burst_shed = 0u64;
    if opts.greedy {
        let burst_frame = &points[..points.len().min(FAIR_FRAME)];
        (burst_ok, burst_shed) = greedy_burst(addr, burst_frame)?;
        println!(
            "external: greedy burst — {GREEDY_BURST_FRAMES} frames × {} pts pipelined: \
             {burst_ok} OK, {burst_shed} shed",
            burst_frame.len()
        );
    }

    let row = Obj::new()
        .str("dataset", &ds.name)
        .str("mode", "external")
        .str("addr", &addr.to_string())
        .int("points", points.len() as u64)
        .int("connections", connections as u64)
        .int("points_per_frame", frame as u64)
        .num("secs", secs)
        .num("probes_per_sec", throughput)
        .num("frame_latency_p50_us", p50)
        .num("frame_latency_p99_us", p99)
        .bool("stage_histograms_present", has_stage_hists)
        .bool("trace_dump_supported", dump_lines.is_some())
        .int("trace_dump_events", dump_lines.unwrap_or(0))
        .int("zipf_smoke_frames", zipf_smoke_frames)
        .int("greedy_burst_ok_frames", burst_ok)
        .int("greedy_burst_shed_frames", burst_shed)
        .bool("counts_verified", true);
    Ok(with_stage_quantiles(row, hists).build())
}

/// One pipelined burst at an external endpoint: [`GREEDY_BURST_FRAMES`]
/// frames written back-to-back by a decoupled writer while this thread
/// drains the replies (same deadlock-free shape as [`overload_conn`]).
/// Returns (OK frames, LOADSHED frames); any other status is an error.
fn greedy_burst(addr: std::net::SocketAddr, chunk: &[Coord]) -> Result<(u64, u64), String> {
    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("burst connect: {e}"))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(READ_DEADLINE))
        .map_err(|e| e.to_string())?;
    let mut wstream = stream.try_clone().map_err(|e| e.to_string())?;
    let frame_bytes = proto::encode_probe_request(chunk, false);
    std::thread::scope(|scope| {
        let writer = scope.spawn(move || -> Result<(), String> {
            for _ in 0..GREEDY_BURST_FRAMES {
                wstream
                    .write_all(&frame_bytes)
                    .map_err(|e| format!("burst write: {e}"))?;
            }
            Ok(())
        });
        let mut stream = stream;
        let (mut ok, mut shed) = (0u64, 0u64);
        for _ in 0..GREEDY_BURST_FRAMES {
            let body = proto::read_frame(&mut stream, 1 << 26)
                .map_err(|e| format!("burst read: {e}"))?
                .ok_or("burst: server closed mid-conversation")?;
            let (h, _) = proto::decode_response(&body).map_err(|e| e.to_string())?;
            match h.status {
                proto::STATUS_OK => ok += 1,
                proto::STATUS_LOADSHED => shed += 1,
                s => {
                    return Err(format!(
                        "burst: frame answered {} — only OK or LOADSHED is legal",
                        proto::status_name(s)
                    ))
                }
            }
        }
        writer.join().expect("burst writer thread")?;
        Ok((ok, shed))
    })
}

/// The sharded-serving phase: sharder → [`ROUTER_SHARDS`] in-process
/// workers → scatter-gather router, the same workload driven through
/// the router's endpoint, counts verified against the offline probe and
/// the merged counter block cross-checked against per-worker sums. The
/// recorded ratio vs the single-process run is the scale-out headline;
/// on a box with fewer cores than workers it is a floor, not the
/// ceiling (see the machine stamp).
#[allow(clippy::too_many_arguments)]
fn run_router(
    ds: &datagen::Dataset,
    path: &std::path::Path,
    snap: &MappedSnapshot,
    points: &[Coord],
    connections: usize,
    frame: usize,
    single_process_throughput: f64,
) -> Result<String, String> {
    use act_core::write_shard_files;
    use act_serve::{Router, RouterConfig};

    let num_zones = ds.polygons.len();
    println!("router: sharding into {ROUTER_SHARDS} workers, {connections} conn(s), {frame}/frame");

    // Shard the cached snapshot. The shards are derived artifacts —
    // rebuilt per run, removed after — so a refreshed base snapshot can
    // never race stale shards.
    let index = {
        let mut f = std::fs::File::open(path).map_err(|e| format!("router: open snapshot: {e}"))?;
        act_core::ActIndex::load_snapshot(&mut f).map_err(|e| format!("router: load: {e}"))?
    };
    let shard_dir = path.with_extension("shards");
    let t = Instant::now();
    let shard_paths = write_shard_files(&index, &shard_dir, ROUTER_SPLIT_LEVEL, ROUTER_SHARDS)
        .map_err(|e| format!("router: shard: {e}"))?;
    println!("router: sharded in {:.2} s", t.elapsed().as_secs_f64());
    drop(index);

    let workers: Vec<_> = shard_paths
        .iter()
        .map(|p| {
            Server::spawn(
                p,
                ServeConfig {
                    watch: None,
                    ..ServeConfig::default()
                },
            )
            .expect("spawn shard worker")
        })
        .collect();
    let router = Router::spawn(
        workers.iter().map(|w| w.addr()).collect(),
        RouterConfig {
            split_level: ROUTER_SPLIT_LEVEL,
            ..RouterConfig::default()
        },
    )
    .map_err(|e| format!("router: spawn: {e}"))?;
    let addr = router.addr();
    let connect = |what: &str| -> Result<Client, String> {
        let mut c = Client::connect(addr).map_err(|e| format!("{what}: connect: {e}"))?;
        c.set_read_timeout(Some(READ_DEADLINE))
            .map_err(|e| format!("{what}: set deadline: {e}"))?;
        Ok(c)
    };

    // Warmup: touch every shard's mapped pages through the router.
    {
        let mut c = connect("router warmup")?;
        for chunk in points.chunks(frame).take(64) {
            c.probe(chunk, false)
                .map_err(|e| format!("router warmup probe: {e}"))?;
        }
    }
    let warm_probes: u64 = workers.iter().map(|w| w.stats().probes).sum();

    // Measured routed run: same striping as the single-process phase.
    let t0 = Instant::now();
    let stripe = points.len().div_ceil(connections);
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = points
            .chunks(stripe.max(1))
            .map(|mine| {
                scope.spawn(move || {
                    let mut client = connect("routed run")?;
                    let mut counts = vec![0u64; num_zones];
                    let mut lat_us = Vec::with_capacity(mine.len() / frame + 1);
                    for chunk in mine.chunks(frame) {
                        let t = Instant::now();
                        let reply = client
                            .probe(chunk, false)
                            .map_err(|e| format!("routed probe: {e}"))?;
                        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                        for refs in &reply.refs {
                            for &(id, _) in refs {
                                counts[id as usize] += 1;
                            }
                        }
                    }
                    Ok((counts, lat_us))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("routed client thread"))
            .collect()
    });
    let secs = t0.elapsed().as_secs_f64();

    let mut counts = vec![0u64; num_zones];
    let mut latencies = Vec::new();
    for r in results {
        let (c, l) = r?;
        for (acc, v) in counts.iter_mut().zip(c) {
            *acc += v;
        }
        latencies.extend(l);
    }

    // Oracle: routed counts ≡ offline probe of the unsharded snapshot.
    let mut expected = vec![0u64; num_zones];
    {
        let view = snap.view();
        let cells: Vec<_> = points.iter().map(|&c| coord_to_cell(c)).collect();
        let mut probes = vec![Probe::Miss; cells.len()];
        view.probe_batch(&cells, &mut probes);
        for &p in &probes {
            for (id, _) in view.resolve_refs(p) {
                expected[id as usize] += 1;
            }
        }
    }
    assert_eq!(counts, expected, "routed counts diverged — not recording");

    // Books: every probe point was answered by exactly one worker, and
    // the router's merged counter block equals the sum of the parts.
    let per_shard: Vec<u64> = workers.iter().map(|w| w.stats().probes).collect();
    let fleet_probes: u64 = per_shard.iter().sum();
    assert_eq!(fleet_probes - warm_probes, points.len() as u64);
    let merged = {
        let mut c = connect("router stats")?;
        c.stats().map_err(|e| format!("router stats: {e}"))?
    };
    assert_eq!(merged.counters.probes, fleet_probes);
    assert_eq!(merged.counters.shed, 0, "routed run must never shed");
    assert_eq!(merged.epoch, 1, "fresh fleet min epoch");

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let throughput = points.len() as f64 / secs;
    let speedup = throughput / single_process_throughput;
    let (p50, p99) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));
    println!(
        "router: {} probes in {secs:.2} s ({:.2} M probes/s routed vs {:.2} M single-process, \
         {speedup:.2}x with {ROUTER_SHARDS} workers); latency/frame p50 {p50:.0} us p99 {p99:.0} us; \
         per-shard probes {per_shard:?}",
        points.len(),
        throughput / 1e6,
        single_process_throughput / 1e6
    );

    router.shutdown();
    for w in workers {
        w.shutdown();
    }
    std::fs::remove_dir_all(&shard_dir).ok();

    Ok(Obj::new()
        .str("dataset", &ds.name)
        .str("mode", "router")
        .int("shards", ROUTER_SHARDS as u64)
        .int("split_level", ROUTER_SPLIT_LEVEL as u64)
        .raw(
            "fleet_probes_per_shard",
            format!(
                "[{}]",
                per_shard
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        )
        .int("points", points.len() as u64)
        .int("connections", connections as u64)
        .int("points_per_frame", frame as u64)
        .num("secs", secs)
        .num("probes_per_sec_routed", throughput)
        .num("probes_per_sec_single_process", single_process_throughput)
        .num("routed_over_single_process", speedup)
        .num("frame_latency_p50_us", p50)
        .num("frame_latency_p99_us", p99)
        .int("fleet_probes", fleet_probes)
        .bool("counts_verified", true)
        .bool("merged_counters_verified", true)
        .build())
}

/// The fault soak: a seeded, deterministic fault schedule — worker
/// panics, socket resets, socket stalls — fires under live traffic
/// driven through the [`act_serve::ResilientClient`]. Records the
/// latency penalty during the fault window, the time from the last
/// injected fault to the first clean reply, and whether every frame was
/// eventually answered (the client absorbing INTERNAL/reset/stall with
/// retries) with the server's books balanced.
#[cfg(feature = "fault-injection")]
fn run_faults(
    ds: &datagen::Dataset,
    path: &std::path::Path,
    snap: &MappedSnapshot,
    points: &[Coord],
) -> Result<String, String> {
    use act_serve::faults::{FaultPlan, FaultSpec, Site};
    use act_serve::{ResilientClient, RetryPolicy};

    const FAULT_FRAME: usize = 256;
    const FAULT_MAX_FRAMES: usize = 600;
    let frames: Vec<&[Coord]> = points.chunks(FAULT_FRAME).take(FAULT_MAX_FRAMES).collect();

    // The schedule: 4 worker panics spread across the soak, 3 mid-reply
    // socket resets, 4 socket stalls. Hit numbers are per-site, so the
    // same seed + same traffic reproduces the same fault times.
    let plan = FaultPlan::new(0xFA0175)
        .stall(Duration::from_millis(5))
        .with(FaultSpec {
            site: Site::WorkerPanic,
            first: 5,
            every: 40,
            count: 4,
        })
        .with(FaultSpec {
            site: Site::ConnWrite,
            first: 10,
            every: 120,
            count: 3,
        })
        .with(FaultSpec {
            site: Site::ConnStall,
            first: 20,
            every: 90,
            count: 4,
        });
    let faults = plan.arm();
    let planned_fires: u64 = 4 + 3 + 4;
    println!(
        "faults: {} frames × {FAULT_FRAME} pts through a seeded schedule \
         (4 worker panics, 3 socket resets, 4 stalls)",
        frames.len()
    );

    let server = Server::spawn(
        path,
        ServeConfig {
            workers: 1,
            watch: None,
            faults: Some(std::sync::Arc::clone(&faults)),
            ..ServeConfig::default()
        },
    )
    .expect("spawn fault-soak act-serve");

    let mut client = ResilientClient::new(
        server.addr(),
        RetryPolicy {
            max_attempts: 10,
            read_timeout: READ_DEADLINE,
            deadline: Some(Duration::from_secs(60)),
            ..RetryPolicy::default()
        },
    )
    .map_err(|e| format!("faults: client: {e}"))?;

    let mut counts = vec![0u64; ds.polygons.len()];
    let mut fault_lat_us = Vec::new();
    let mut clean_lat_us = Vec::new();
    let mut fault_end: Option<Instant> = None;
    let mut recovery = None;
    for (k, chunk) in frames.iter().enumerate() {
        let t = Instant::now();
        let reply = client
            .probe(chunk, false)
            .map_err(|e| format!("faults: frame {k} not absorbed by retries: {e}"))?;
        let us = t.elapsed().as_secs_f64() * 1e6;
        for refs in &reply.refs {
            for &(id, _) in refs {
                counts[id as usize] += 1;
            }
        }
        if faults.total_fires() < planned_fires {
            fault_lat_us.push(us);
        } else {
            if fault_end.is_none() {
                // This frame completed after the final injected fault:
                // its completion is the recovery point.
                let now = Instant::now();
                fault_end = Some(now);
                recovery = Some(t.elapsed());
            }
            clean_lat_us.push(us);
        }
    }
    if faults.total_fires() < planned_fires {
        return Err(format!(
            "faults: schedule only fired {}/{planned_fires} — traffic too thin to trust the row",
            faults.total_fires()
        ));
    }

    // Every frame was eventually answered correctly: aggregated counts
    // must equal the offline probe of the same frames.
    let mut want = vec![0u64; ds.polygons.len()];
    {
        let view = snap.view();
        let cells: Vec<_> = frames
            .iter()
            .flat_map(|f| f.iter().map(|&c| coord_to_cell(c)))
            .collect();
        let mut probes = vec![Probe::Miss; cells.len()];
        view.probe_batch(&cells, &mut probes);
        for &p in &probes {
            for (id, _) in view.resolve_refs(p) {
                want[id as usize] += 1;
            }
        }
    }
    assert_eq!(
        counts, want,
        "answers under fault injection diverged — not recording"
    );

    let stats = server.stats();
    server.shutdown();
    assert_eq!(
        stats.accepted,
        stats.answered + stats.shed,
        "faults: counters must reconcile"
    );
    assert_eq!(
        stats.panics_contained,
        faults.fires(Site::WorkerPanic),
        "every injected panic must be contained (none took a worker down)"
    );

    fault_lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    clean_lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p99_fault = percentile(&fault_lat_us, 0.99);
    let p99_clean = percentile(&clean_lat_us, 0.99);
    let recovery_ms = recovery.map_or(f64::NAN, |d| d.as_secs_f64() * 1e3);
    println!(
        "faults: p99 {p99_fault:.0} us during the fault window vs {p99_clean:.0} us after; \
         recovered {recovery_ms:.1} ms after the last fault; {} panics contained, \
         {} resets, {} stalls, {} retries over {} connections — zero lost frames",
        stats.panics_contained,
        faults.fires(Site::ConnWrite),
        faults.fires(Site::ConnStall),
        client.retries(),
        client.connects(),
    );

    Ok(Obj::new()
        .str("dataset", &ds.name)
        .str("mode", "faults")
        .int("frames", frames.len() as u64)
        .int("points_per_frame", FAULT_FRAME as u64)
        .int("worker_panics_injected", faults.fires(Site::WorkerPanic))
        .int("socket_resets_injected", faults.fires(Site::ConnWrite))
        .int("socket_stalls_injected", faults.fires(Site::ConnStall))
        .int("panics_contained", stats.panics_contained)
        .num("frame_latency_p99_fault_window_us", p99_fault)
        .num("frame_latency_p99_after_us", p99_clean)
        .num("recovery_after_last_fault_ms", recovery_ms)
        .int("client_retries", client.retries())
        .int("client_connects", client.connects())
        .num("client_backoff_secs", client.backoff_slept().as_secs_f64())
        .bool("zero_lost_frames", true)
        .bool("counts_verified", true)
        .bool("counters_reconciled", true)
        .build())
}

/// The overload phase: a fresh small-queue server, pipelining clients
/// past capacity, shed-rate + goodput rows. See the bin docs for the
/// asserted contract.
fn run_overload(
    ds: &datagen::Dataset,
    path: &std::path::Path,
    snap: &MappedSnapshot,
    points: &[Coord],
) -> Result<String, String> {
    let n_points = points.len().min(OVERLOAD_MAX_POINTS);
    let points = &points[..n_points];
    let frames: Vec<&[Coord]> = points.chunks(OVERLOAD_FRAME).collect();
    let capacity_lanes_per_sec = OVERLOAD_BATCH_LANES as f64 / OVERLOAD_BATCH_DELAY.as_secs_f64();
    println!(
        "overload: {} frames × {OVERLOAD_FRAME} pts over {OVERLOAD_CONNS} pipelining conns \
         (server in-flight cap {OVERLOAD_WINDOW}), depth {OVERLOAD_DEPTH_LANES} lanes, capacity {:.0} lanes/s",
        frames.len(),
        capacity_lanes_per_sec
    );

    let server = Server::spawn(
        path,
        ServeConfig {
            workers: 1,
            batch_lanes: OVERLOAD_BATCH_LANES,
            queue_depth_lanes: OVERLOAD_DEPTH_LANES,
            max_inflight_frames: OVERLOAD_WINDOW,
            batch_delay: Some(OVERLOAD_BATCH_DELAY),
            watch: None,
            ..ServeConfig::default()
        },
    )
    .expect("spawn overload act-serve");
    let addr = server.addr();

    // Pipelined drive: each connection owns a stripe of frames, keeps a
    // window of OVERLOAD_WINDOW requests on the wire, and records which
    // frames were answered OK vs LOADSHED (in order — the protocol
    // answers a connection's frames in request order).
    let t0 = Instant::now();
    let stripe = frames.len().div_ceil(OVERLOAD_CONNS).max(1);
    let per_conn: Vec<OverloadResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = frames
            .chunks(stripe)
            .map(|mine| scope.spawn(move || overload_conn(addr, mine, ds.polygons.len())))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("overload client thread"))
            .collect()
    });
    let secs = t0.elapsed().as_secs_f64();

    let mut ok_mask: Vec<bool> = Vec::with_capacity(frames.len());
    let mut got_counts = vec![0u64; ds.polygons.len()];
    let mut write_secs = 0f64;
    for r in per_conn {
        let (mask, counts, write_dur) = r?;
        ok_mask.extend(mask);
        for (acc, v) in got_counts.iter_mut().zip(counts) {
            *acc += v;
        }
        // Connections blast concurrently, so the slowest writer bounds
        // when the full point set had been offered.
        write_secs = write_secs.max(write_dur.as_secs_f64());
    }
    assert_eq!(
        ok_mask.len(),
        frames.len(),
        "every frame must be answered, OK or LOADSHED"
    );

    // Verify the OK answers against an offline probe of exactly those
    // frames — shedding must never corrupt what *is* answered.
    let mut want_counts = vec![0u64; ds.polygons.len()];
    {
        let view = snap.view();
        let ok_cells: Vec<_> = ok_mask
            .iter()
            .zip(&frames)
            .filter(|(ok, _)| **ok)
            .flat_map(|(_, f)| f.iter().map(|&c| coord_to_cell(c)))
            .collect();
        let mut probes = vec![Probe::Miss; ok_cells.len()];
        view.probe_batch(&ok_cells, &mut probes);
        for &p in &probes {
            for (id, _) in view.resolve_refs(p) {
                want_counts[id as usize] += 1;
            }
        }
    }
    assert_eq!(
        got_counts, want_counts,
        "OK answers under overload diverged from offline probe — not recording"
    );

    let ok_frames = ok_mask.iter().filter(|&&b| b).count();
    let shed_frames = frames.len() - ok_frames;
    let stats = server.stats();
    server.shutdown();

    // The admission-control contract, asserted before recording.
    assert_eq!(
        stats.accepted,
        frames.len() as u64,
        "one admission per frame"
    );
    assert_eq!(
        stats.shed, shed_frames as u64,
        "server and client agree on sheds"
    );
    assert_eq!(
        stats.accepted,
        stats.answered + stats.shed,
        "counters reconcile"
    );
    assert!(
        stats.queue_high_water_lanes <= OVERLOAD_DEPTH_LANES as u64,
        "queue high-water {} exceeded depth {OVERLOAD_DEPTH_LANES}",
        stats.queue_high_water_lanes
    );
    assert!(shed_frames > 0, "overload phase must actually shed");

    let ok_points: usize = ok_mask
        .iter()
        .zip(&frames)
        .filter(|(ok, _)| **ok)
        .map(|(_, f)| f.len())
        .sum();
    // Offered load is measured on the *write* side: the slowest writer's
    // blast time is when the full point set had been pushed onto the
    // wire. Dividing by the full-run wall clock (which includes waiting
    // for the last reply) conflated "offered" with "answered" and
    // understated the overload multiple.
    let offered_per_sec = points.len() as f64 / write_secs;
    let goodput_per_sec = ok_points as f64 / secs;
    let shed_rate = shed_frames as f64 / frames.len() as f64;
    let offered_x_capacity = offered_per_sec / capacity_lanes_per_sec;
    // TCP backpressure behind `max_inflight_frames` can throttle the
    // writers toward service rate — a stable equilibrium where the load
    // actually offered never reached the configured target. The row
    // records which regime the run was in rather than asserting it away.
    let throttled_equilibrium = offered_x_capacity < OVERLOAD_TARGET_X_CAPACITY;
    assert!(
        offered_x_capacity > 1.0,
        "overload never exceeded capacity (got {offered_x_capacity:.2}×) — raise the window/conns"
    );
    println!(
        "overload: offered {:.0} pts/s measured ({offered_x_capacity:.1}× capacity, target \
         {OVERLOAD_TARGET_X_CAPACITY:.0}×{}), goodput {:.0} pts/s, shed rate {:.1}% \
         ({shed_frames}/{} frames), queue high-water {} ≤ {OVERLOAD_DEPTH_LANES} lanes",
        offered_per_sec,
        if throttled_equilibrium {
            " — THROTTLED EQUILIBRIUM"
        } else {
            ""
        },
        goodput_per_sec,
        shed_rate * 100.0,
        frames.len(),
        stats.queue_high_water_lanes
    );

    Ok(Obj::new()
        .str("dataset", &ds.name)
        .str("mode", "overload")
        .int("points", points.len() as u64)
        .int("frames", frames.len() as u64)
        .int("points_per_frame", OVERLOAD_FRAME as u64)
        .int("connections", OVERLOAD_CONNS as u64)
        .int("server_inflight_cap", OVERLOAD_WINDOW as u64)
        .int("queue_depth_lanes", OVERLOAD_DEPTH_LANES as u64)
        .num("batch_delay_ms", OVERLOAD_BATCH_DELAY.as_secs_f64() * 1e3)
        .num("capacity_lanes_per_sec", capacity_lanes_per_sec)
        .num("secs", secs)
        .num("write_secs", write_secs)
        .num("offered_target_x_capacity", OVERLOAD_TARGET_X_CAPACITY)
        .num("offered_points_per_sec_measured", offered_per_sec)
        .num("offered_x_capacity_measured", offered_x_capacity)
        .bool("throttled_equilibrium", throttled_equilibrium)
        .num("goodput_points_per_sec", goodput_per_sec)
        .int("ok_frames", ok_frames as u64)
        .int("shed_frames", shed_frames as u64)
        .num("shed_rate", shed_rate)
        .int("queue_high_water_lanes", stats.queue_high_water_lanes)
        .bool("all_frames_answered", true)
        .bool("ok_counts_verified", true)
        .build())
}

/// Drives one overload connection over its stripe of frames with the
/// write and read sides fully decoupled: a scoped writer thread blasts
/// every frame while this thread drains replies as fast as they arrive.
/// The decoupling matters — a single-threaded sliding window blocks on
/// each *admitted* frame's service latency at the window front, which
/// self-throttles the offered load back down to roughly capacity (a
/// stable equilibrium that defeats the whole point of the phase). The
/// server's `max_inflight_frames` plus the always-draining reader keep
/// both sides deadlock-free.
fn overload_conn(
    addr: std::net::SocketAddr,
    mine: &[&[Coord]],
    num_zones: usize,
) -> OverloadResult {
    let stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("overload connect: {e}"))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(READ_DEADLINE))
        .map_err(|e| e.to_string())?;
    let mut wstream = stream.try_clone().map_err(|e| e.to_string())?;
    std::thread::scope(|scope| {
        let writer = scope.spawn(move || -> Result<Duration, String> {
            let w0 = Instant::now();
            for chunk in mine {
                wstream
                    .write_all(&proto::encode_probe_request(chunk, false))
                    .map_err(|e| format!("overload write: {e}"))?;
            }
            Ok(w0.elapsed())
        });

        let mut stream = stream;
        let mut ok_mask = Vec::with_capacity(mine.len());
        let mut counts = vec![0u64; num_zones];
        // Replies arrive in request order; the k-th reply is frame k's.
        for chunk in mine {
            let body = proto::read_frame(&mut stream, 1 << 26)
                .map_err(|e| format!("overload read (deadline {READ_DEADLINE:?}): {e}"))?
                .ok_or("overload: server closed mid-conversation")?;
            let (h, payload) = proto::decode_response(&body).map_err(|e| e.to_string())?;
            if h.op != proto::OP_PROBE {
                return Err(format!("overload: unexpected op {}", h.op));
            }
            match h.status {
                proto::STATUS_OK => {
                    if h.n as usize != chunk.len() {
                        return Err("overload: OK reply with wrong point count".into());
                    }
                    let refs =
                        proto::decode_probe_payload(h.n, payload).map_err(|e| e.to_string())?;
                    for one in refs {
                        for (id, _) in one {
                            counts[id as usize] += 1;
                        }
                    }
                    ok_mask.push(true);
                }
                proto::STATUS_LOADSHED => {
                    if h.n != 0 {
                        return Err("overload: LOADSHED reply carries entries".into());
                    }
                    // v2 sheds carry an optional 4-byte retry hint.
                    proto::decode_retry_after(payload).map_err(|e| e.to_string())?;
                    ok_mask.push(false);
                }
                s => {
                    return Err(format!(
                        "overload: frame answered {} — only OK or LOADSHED is legal",
                        proto::status_name(s)
                    ))
                }
            }
        }
        let write_dur = writer.join().expect("overload writer thread")?;
        Ok((ok_mask, counts, write_dur))
    })
}

/// Per-zone counts from an offline probe of `pts` against the mapped
/// snapshot — the oracle every serving phase verifies against.
fn offline_counts(snap: &MappedSnapshot, pts: &[Coord], num_zones: usize) -> Vec<u64> {
    let view = snap.view();
    let cells: Vec<_> = pts.iter().map(|&c| coord_to_cell(c)).collect();
    let mut probes = vec![Probe::Miss; cells.len()];
    view.probe_batch(&cells, &mut probes);
    let mut counts = vec![0u64; num_zones];
    for &p in &probes {
        for (id, _) in view.resolve_refs(p) {
            counts[id as usize] += 1;
        }
    }
    counts
}

/// The hot-cell cache phase (`--zipf S`): a Zipf(S)-skewed workload over
/// a fixed [`ZIPF_HOT_SET`] drives two fresh servers from the same
/// snapshot — identical except one runs with the result cache on — and
/// the row records both throughputs, the hit rate, and the speedup
/// (timed over a minimal-drain pass; see [`zipf_run`]). The cache-on
/// counts are verified against the same offline probe as the cache-off
/// counts, so a stale or corrupted cached answer fails the phase
/// instead of being recorded.
fn run_zipf(
    ds: &datagen::Dataset,
    path: &std::path::Path,
    snap: &MappedSnapshot,
    points: &[Coord],
    seed: u64,
    s: f64,
) -> Result<Vec<String>, String> {
    // The host dataset's row carries the >= 1.3x contract: with cell
    // frames (protocol v4) taking the shared coordinate->cell cost out
    // of the timed loop, a hot-set hit is a flat-table lookup plus a
    // packed-word memcpy, while a miss still pays the full trie walk —
    // and on a shallow partition the walk is the dominant per-probe
    // cost, so eliminating it shows up whole.
    let host_row = zipf_phase(
        &ds.name,
        ds.polygons.len(),
        path,
        snap,
        points,
        seed,
        s,
        Some(1.3),
    )?;

    let surge = datagen::surge_zones(seed, 16, 8, 8);
    let dir = path.parent().unwrap_or_else(|| std::path::Path::new("."));
    let surge_path = snapshot_path(dir.to_str().unwrap_or("."), &surge.name, 15.0);
    if !surge_path.exists() {
        let t = Instant::now();
        let built = act_core::ActIndex::build(&surge.polygons, 15.0).expect("build surge index");
        println!(
            "zipf: built {} in {:.1} s (cached for reruns)",
            surge.name,
            t.elapsed().as_secs_f64()
        );
        let mut f = std::fs::File::create(&surge_path).expect("create surge snapshot");
        built.save_snapshot(&mut f).expect("save surge snapshot");
    }
    let surge_snap = MappedSnapshot::open(&surge_path).expect("map surge snapshot");
    let surge_points = make_points(&surge, ZIPF_MAX_POINTS, seed);
    // The surge preset stacks 16 overlapping zone layers (16 refs per
    // probe), so the reply payload encode dominates both sides and the
    // cache's walk elimination is a smaller slice of each probe. It
    // clears 1.3x too on typical runs, but its margin sits within
    // machine noise — the contract rides on the host row, and this one
    // is recorded as evidence, not gated.
    let surge_row = zipf_phase(
        &surge.name,
        surge.polygons.len(),
        &surge_path,
        &surge_snap,
        &surge_points,
        seed,
        s,
        None,
    )?;
    Ok(vec![host_row, surge_row])
}

/// One dataset's cache-off vs cache-on comparison; `min_speedup` is the
/// acceptance floor, asserted when present (see [`run_zipf`] for which
/// datasets carry one and why).
#[allow(clippy::too_many_arguments)]
fn zipf_phase(
    name: &str,
    num_zones: usize,
    path: &std::path::Path,
    snap: &MappedSnapshot,
    points: &[Coord],
    seed: u64,
    s: f64,
    min_speedup: Option<f64>,
) -> Result<String, String> {
    use act_serve::CacheConfig;

    let hot = &points[..points.len().min(ZIPF_HOT_SET)];
    let n_points = points.len().min(ZIPF_MAX_POINTS);
    let frame = ZIPF_FRAME.min(proto::MAX_POINTS);
    let mut sampler = Zipf::new(hot.len(), s, seed ^ 0x51_F0ED);
    let top_decile = (hot.len() / 10).max(1);
    let mut top_decile_draws = 0u64;
    let workload: Vec<Coord> = (0..n_points)
        .map(|_| {
            let rank = sampler.next_rank();
            if rank < top_decile {
                top_decile_draws += 1;
            }
            hot[rank]
        })
        .collect();
    let skew = top_decile_draws as f64 / workload.len() as f64;
    println!(
        "zipf[{name}]: {} probes, Zipf({s}) over {} hot points (top 10% of ranks drew {:.1}% of \
         traffic), {frame} pts/frame",
        workload.len(),
        hot.len(),
        skew * 100.0
    );

    // One shard, full capacity: the phase runs one worker (nothing to
    // shard for), and a metro-scale dataset's probe keys share their
    // top prefix bits — the shard selector bits — so a sharded cache
    // would cram the whole hot set into one under-sized shard.
    let cache_config = CacheConfig {
        shards: 1,
        capacity: CacheConfig::default().capacity,
    };
    let expected = offline_counts(snap, &workload, num_zones);
    // Both servers stay up for the whole phase and the measured reps
    // alternate between them, so a slow stretch of the host machine
    // (the runs share it with everything else) degrades both sides of
    // the ratio instead of whichever server it happened to land on.
    let mut off_bench = ZipfBench::start(path, &workload, frame, num_zones, None)?;
    let mut on_bench = ZipfBench::start(path, &workload, frame, num_zones, Some(cache_config))?;
    for _ in 0..ZIPF_REPS {
        off_bench.rep()?;
        on_bench.rep()?;
    }
    let off = off_bench.finish();
    let on = on_bench.finish();
    assert_eq!(
        off.counts, expected,
        "cache-off counts diverged — not recording"
    );
    assert_eq!(
        on.counts, expected,
        "cache-on counts diverged — not recording"
    );

    // Cache-off must never have consulted a cache; cache-on must have
    // consulted it once per probe and hit nearly always (the hot set is
    // tiny next to the capacity, so only first touches miss).
    assert_eq!(off.stats.cache_hits + off.stats.cache_misses, 0);
    assert_eq!(
        (on.stats.cache_hits + on.stats.cache_misses) / ZIPF_REPS as u64,
        workload.len() as u64,
        "one cache consult per probe"
    );
    let hit_rate =
        on.stats.cache_hits as f64 / (on.stats.cache_hits + on.stats.cache_misses) as f64;
    assert!(
        hit_rate > 0.9,
        "hot-set hit rate {hit_rate:.3} too low to trust the row"
    );

    let off_tput = workload.len() as f64 / off.secs;
    let on_tput = workload.len() as f64 / on.secs;
    let speedup = on_tput / off_tput;
    println!(
        "zipf[{name}]: cache off {:.2} M probes/s (p99 {:.0} us) vs cache on {:.2} M probes/s \
         (p99 {:.0} us) — {speedup:.2}x, hit rate {:.2}%",
        off_tput / 1e6,
        off.p99,
        on_tput / 1e6,
        on.p99,
        hit_rate * 100.0
    );
    if let Some(floor) = min_speedup {
        assert!(
            speedup >= floor,
            "[{name}] cache-on throughput only {speedup:.2}x cache-off — below the {floor}x contract"
        );
    }

    Ok(Obj::new()
        .str("dataset", name)
        .str("mode", "zipf_cache")
        .num("zipf_s", s)
        .int("hot_set_points", hot.len() as u64)
        .num("top_decile_traffic_share", skew)
        .int("points", workload.len() as u64)
        .int("points_per_frame", frame as u64)
        .int(
            "cache_capacity",
            act_serve::CacheConfig::default().capacity as u64,
        )
        .num("secs_cache_off", off.secs)
        .num("secs_cache_on", on.secs)
        .num("probes_per_sec_cache_off", off_tput)
        .num("probes_per_sec_cache_on", on_tput)
        .num("cache_on_over_cache_off", speedup)
        .num("frame_latency_p50_us_cache_off", off.p50)
        .num("frame_latency_p99_us_cache_off", off.p99)
        .num("frame_latency_p50_us_cache_on", on.p50)
        .num("frame_latency_p99_us_cache_on", on.p99)
        .int("cache_hits", on.stats.cache_hits)
        .int("cache_misses", on.stats.cache_misses)
        .num("cache_hit_rate", hit_rate)
        .bool("measured_pass_cell_frames", true)
        .int("measured_reps_best_of", ZIPF_REPS as u64)
        .num("speedup_floor", min_speedup.unwrap_or(f64::NAN))
        .bool("counts_verified", true)
        .build())
}

/// One side of [`zipf_phase`]'s comparison after its reps finish:
/// `secs`/latencies from the best measured rep, `counts` from the
/// verification pass, `stats` cache counters from the measured reps
/// alone.
struct ZipfRun {
    secs: f64,
    p50: f64,
    p99: f64,
    counts: Vec<u64>,
    stats: act_serve::ServeStats,
}

/// One fresh single-worker server — with or without the cache — plus a
/// raw measured-pass stream against it. [`ZipfBench::start`] runs the
/// **verification** pass; each [`ZipfBench::rep`] is one **measured**
/// pass, and [`ZipfBench::finish`] keeps the best.
///
/// The verification pass replays the whole workload with a full decode
/// and returns per-zone counts for the offline-oracle check. Running it
/// first also makes it the warmup: it touches every mapped page and (on
/// the cache side) fills every hot cell, so the measured reps time the
/// steady hot-set state on both sides instead of each side's distinct
/// cold-start costs.
///
/// The measured reps send pre-encoded frames over a raw stream and
/// check only each reply's header, so the recorded throughput tracks
/// the server (the thing the cache changes), not the harness's own
/// encode/decode loop — on one core a fully-decoding client spends more
/// time parsing ref lists than the server spends answering, drowning
/// the walk-vs-cache difference in constant harness cost. Every answer
/// the cache can produce is still verified — it just isn't timed.
///
/// The measured frames are **cell frames** (protocol v4): the harness
/// pays coordinate->cell once at setup, outside the timed loop, exactly
/// as a production S2 client would — so the recorded delta is the walk
/// vs. the cache, not the fixed trigonometry both sides share. The
/// verification pass still exercises the coordinate form.
struct ZipfBench {
    server: act_serve::ServerHandle,
    stream: std::net::TcpStream,
    frames: Vec<Vec<u8>>,
    frame: usize,
    workload_len: usize,
    counts: Vec<u64>,
    warm: act_serve::ServeStats,
    best: Option<(f64, Vec<f64>)>,
}

impl ZipfBench {
    fn start(
        path: &std::path::Path,
        workload: &[Coord],
        frame: usize,
        num_zones: usize,
        cache: Option<act_serve::CacheConfig>,
    ) -> Result<Self, String> {
        let server = Server::spawn(
            path,
            ServeConfig {
                workers: 1,
                watch: None,
                cache,
                obs: if std::env::var_os("ZIPF_STAGE_DEBUG").is_some() {
                    Some(ObsConfig::default())
                } else {
                    None
                },
                ..ServeConfig::default()
            },
        )
        .expect("spawn zipf act-serve");
        let mut client =
            Client::connect(server.addr()).map_err(|e| format!("zipf connect: {e}"))?;
        client
            .set_read_timeout(Some(READ_DEADLINE))
            .map_err(|e| format!("zipf deadline: {e}"))?;

        let mut counts = vec![0u64; num_zones];
        for chunk in workload.chunks(frame) {
            let reply = client
                .probe(chunk, false)
                .map_err(|e| format!("zipf verify: {e}"))?;
            for refs in &reply.refs {
                for &(id, _) in refs {
                    counts[id as usize] += 1;
                }
            }
        }
        let warm = server.stats();

        let cells: Vec<s2cell::CellId> = workload.iter().map(|&c| coord_to_cell(c)).collect();
        let frames: Vec<Vec<u8>> = cells
            .chunks(frame)
            .map(proto::encode_probe_cells_request)
            .collect();
        let stream = std::net::TcpStream::connect(server.addr())
            .map_err(|e| format!("zipf measured connect: {e}"))?;
        stream.set_nodelay(true).map_err(|e| e.to_string())?;
        stream
            .set_read_timeout(Some(READ_DEADLINE))
            .map_err(|e| e.to_string())?;
        Ok(Self {
            server,
            stream,
            frames,
            frame,
            workload_len: workload.len(),
            counts,
            warm,
            best: None,
        })
    }

    fn rep(&mut self) -> Result<(), String> {
        let n = self.frames.len();
        let window = ZIPF_PIPELINE.min(n);
        let mut sent_at = Vec::with_capacity(n);
        let mut lat_us = Vec::with_capacity(n);
        let t0 = Instant::now();
        // Prime the pipeline, then keep [`ZIPF_PIPELINE`] frames in
        // flight: read reply i, send frame i + window. Replies come
        // back in request order (one connection, one worker).
        for bytes in &self.frames[..window] {
            sent_at.push(Instant::now());
            self.stream
                .write_all(bytes)
                .map_err(|e| format!("zipf write: {e}"))?;
        }
        for i in 0..n {
            let body = proto::read_frame(&mut self.stream, 1 << 26)
                .map_err(|e| format!("zipf read (deadline {READ_DEADLINE:?}): {e}"))?
                .ok_or("zipf: server closed mid-run")?;
            let (h, _) = proto::decode_response(&body).map_err(|e| e.to_string())?;
            let sent = self.frame.min(self.workload_len - i * self.frame);
            if h.op != proto::OP_PROBE || h.status != proto::STATUS_OK || h.n as usize != sent {
                return Err(format!(
                    "zipf: frame {i} answered op {} status {} n {} (sent {sent})",
                    h.op,
                    proto::status_name(h.status),
                    h.n
                ));
            }
            lat_us.push(sent_at[i].elapsed().as_secs_f64() * 1e6);
            if i + window < n {
                sent_at.push(Instant::now());
                self.stream
                    .write_all(&self.frames[i + window])
                    .map_err(|e| format!("zipf write: {e}"))?;
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        if self.best.as_ref().is_none_or(|(b, _)| secs < *b) {
            self.best = Some((secs, lat_us));
        }
        Ok(())
    }

    fn finish(self) -> ZipfRun {
        if std::env::var_os("ZIPF_STAGE_DEBUG").is_some() {
            if let Ok(mut c) = Client::connect(self.server.addr()) {
                if let Ok(ex) = c.stats_ex() {
                    let h = &ex.histograms;
                    eprintln!(
                        "zipf stage p50 us: queue_wait {:.1} walk {:.1} write {:.1} frame_total {:.1}",
                        stage_us(h, proto::STAGE_QUEUE_WAIT, 0.50),
                        stage_us(h, proto::STAGE_WALK, 0.50),
                        stage_us(h, proto::STAGE_WRITE, 0.50),
                        stage_us(h, proto::STAGE_FRAME_TOTAL, 0.50),
                    );
                }
            }
        }
        let (secs, mut lat_us) = self.best.expect("at least one rep");
        lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let mut stats = self.server.stats();
        // Only the measured reps' cache traffic: subtract the
        // verification pass that warmed it, so hits + misses line up
        // with the measured probes exactly.
        stats.cache_hits -= self.warm.cache_hits;
        stats.cache_misses -= self.warm.cache_misses;
        self.server.shutdown();
        ZipfRun {
            secs,
            p50: percentile(&lat_us, 0.50),
            p99: percentile(&lat_us, 0.99),
            counts: self.counts,
            stats,
        }
    }
}

/// The fairness phase (`--greedy`): a capacity-pinned worker (one batch
/// of [`FAIR_BATCH_LANES`] per [`FAIR_BATCH_DELAY`]) takes one greedy
/// connection blasting frames nonstop plus [`FAIR_POLITE_CLIENTS`]
/// polite [`act_serve::ResilientClient`]s each working through a fixed
/// stripe, honoring retry hints when shed. Run twice — without and with
/// the per-connection lane quota — the row records the *worst* polite
/// client's goodput for each and asserts the ≥5x contract. Every polite
/// answer and every greedy OK answer is verified against the offline
/// oracle before recording.
fn run_fairness(
    ds: &datagen::Dataset,
    path: &std::path::Path,
    snap: &MappedSnapshot,
    points: &[Coord],
) -> Result<String, String> {
    let need = FAIR_FRAME + FAIR_POLITE_FRAME * FAIR_POLITE_CLIENTS * FAIR_POLITE_FRAMES;
    if points.len() < need {
        return Err(format!(
            "fairness: needs {need} points, have {} — raise --points",
            points.len()
        ));
    }
    let capacity_lanes_per_sec = FAIR_BATCH_LANES as f64 / FAIR_BATCH_DELAY.as_secs_f64();
    println!(
        "fairness: 1 greedy conn ({FAIR_FRAME}-pt frames) vs {FAIR_POLITE_CLIENTS} polite \
         clients × {FAIR_POLITE_FRAMES} frames × {FAIR_POLITE_FRAME} pts, capacity \
         {capacity_lanes_per_sec:.0} lanes/s, queue {FAIR_DEPTH_LANES} lanes, quota off then \
         {FAIR_QUOTA_LANES} lanes"
    );

    // The greedy connection repeats one fixed frame (its books then
    // verify as ok_frames × the frame's offline counts); each polite
    // client owns a distinct stripe.
    let greedy_frame = &points[..FAIR_FRAME];
    let greedy_expected = offline_counts(snap, greedy_frame, ds.polygons.len());
    let stripes: Vec<&[Coord]> = (0..FAIR_POLITE_CLIENTS)
        .map(|j| {
            let at = FAIR_FRAME + FAIR_POLITE_FRAME * j * FAIR_POLITE_FRAMES;
            &points[at..at + FAIR_POLITE_FRAME * FAIR_POLITE_FRAMES]
        })
        .collect();
    let stripe_expected: Vec<Vec<u64>> = stripes
        .iter()
        .map(|st| offline_counts(snap, st, ds.polygons.len()))
        .collect();

    let off = fairness_run(path, greedy_frame, &stripes, ds.polygons.len(), None)?;
    let on = fairness_run(
        path,
        greedy_frame,
        &stripes,
        ds.polygons.len(),
        Some(FAIR_QUOTA_LANES),
    )?;
    for run in [&off, &on] {
        for (got, want) in run.polite_counts.iter().zip(&stripe_expected) {
            assert_eq!(got, want, "polite answers diverged — not recording");
        }
        let want_greedy: Vec<u64> = greedy_expected
            .iter()
            .map(|c| c * run.greedy_ok_frames)
            .collect();
        assert_eq!(
            run.greedy_counts, want_greedy,
            "greedy OK answers diverged — not recording"
        );
        assert_eq!(run.stats.accepted, run.stats.answered + run.stats.shed);
    }
    assert_eq!(off.stats.quota_sheds, 0, "no quota, no quota sheds");
    assert!(
        on.stats.quota_sheds > 0,
        "the quota run must actually shed over-quota frames"
    );

    let worst_off = off.worst_goodput();
    let worst_on = on.worst_goodput();
    let gain = worst_on / worst_off;
    println!(
        "fairness: worst polite goodput {worst_off:.0} pts/s without quota vs {worst_on:.0} \
         pts/s with — {gain:.1}x; greedy {} OK / {} shed frames without, {} OK / {} shed \
         ({} quota) with",
        off.greedy_ok_frames,
        off.greedy_shed_frames,
        on.greedy_ok_frames,
        on.greedy_shed_frames,
        on.stats.quota_sheds
    );
    assert!(
        gain >= 5.0,
        "quota only improved worst-client goodput {gain:.1}x — below the 5x contract"
    );

    Ok(Obj::new()
        .str("dataset", &ds.name)
        .str("mode", "fairness")
        .int("polite_clients", FAIR_POLITE_CLIENTS as u64)
        .int("polite_frames_each", FAIR_POLITE_FRAMES as u64)
        .int("polite_points_per_frame", FAIR_POLITE_FRAME as u64)
        .int("greedy_points_per_frame", FAIR_FRAME as u64)
        .num("capacity_lanes_per_sec", capacity_lanes_per_sec)
        .int("queue_depth_lanes", FAIR_DEPTH_LANES as u64)
        .int("quota_lanes", FAIR_QUOTA_LANES as u64)
        .num("worst_polite_goodput_no_quota", worst_off)
        .num("worst_polite_goodput_with_quota", worst_on)
        .num("quota_over_no_quota", gain)
        .num("greedy_goodput_no_quota", off.greedy_goodput)
        .num("greedy_goodput_with_quota", on.greedy_goodput)
        .int("greedy_ok_frames_no_quota", off.greedy_ok_frames)
        .int("greedy_shed_frames_no_quota", off.greedy_shed_frames)
        .int("greedy_ok_frames_with_quota", on.greedy_ok_frames)
        .int("greedy_shed_frames_with_quota", on.greedy_shed_frames)
        .int("quota_sheds", on.stats.quota_sheds)
        .int("polite_retries_no_quota", off.polite_retries)
        .int("polite_retries_with_quota", on.polite_retries)
        .bool("counts_verified", true)
        .bool("counters_reconciled", true)
        .build())
}

/// One quota-off or quota-on pass of the fairness phase.
struct FairnessRun {
    polite_goodput: Vec<f64>,
    polite_counts: Vec<Vec<u64>>,
    polite_retries: u64,
    greedy_ok_frames: u64,
    greedy_shed_frames: u64,
    greedy_counts: Vec<u64>,
    greedy_goodput: f64,
    stats: act_serve::ServeStats,
}

impl FairnessRun {
    fn worst_goodput(&self) -> f64 {
        self.polite_goodput
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

fn fairness_run(
    path: &std::path::Path,
    greedy_frame: &[Coord],
    stripes: &[&[Coord]],
    num_zones: usize,
    quota: Option<usize>,
) -> Result<FairnessRun, String> {
    use std::sync::atomic::{AtomicBool, Ordering};

    let server = Server::spawn(
        path,
        ServeConfig {
            workers: 1,
            batch_lanes: FAIR_BATCH_LANES,
            queue_depth_lanes: FAIR_DEPTH_LANES,
            max_inflight_frames: FAIR_WINDOW,
            batch_delay: Some(FAIR_BATCH_DELAY),
            client_quota_lanes: quota,
            watch: None,
            ..ServeConfig::default()
        },
    )
    .expect("spawn fairness act-serve");
    let addr = server.addr();

    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let (polite, greedy) = std::thread::scope(|scope| {
        let greedy = scope.spawn(|| greedy_conn(addr, greedy_frame, num_zones, &stop));
        let handles: Vec<_> = stripes
            .iter()
            .map(|mine| scope.spawn(move || polite_conn(addr, mine, num_zones)))
            .collect();
        let polite: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("polite client thread"))
            .collect();
        stop.store(true, Ordering::Release);
        (polite, greedy.join().expect("greedy client thread"))
    });
    let secs = t0.elapsed().as_secs_f64();

    let mut polite_goodput = Vec::new();
    let mut polite_counts = Vec::new();
    let mut polite_retries = 0u64;
    for (r, stripe) in polite.into_iter().zip(stripes) {
        let (client_secs, counts, retries) = r?;
        polite_goodput.push(stripe.len() as f64 / client_secs);
        polite_counts.push(counts);
        polite_retries += retries;
    }
    let (greedy_ok_frames, greedy_shed_frames, greedy_counts) = greedy?;
    let stats = server.stats();
    server.shutdown();
    Ok(FairnessRun {
        polite_goodput,
        polite_counts,
        polite_retries,
        greedy_ok_frames,
        greedy_shed_frames,
        greedy_counts,
        greedy_goodput: greedy_ok_frames as f64 * greedy_frame.len() as f64 / secs,
        stats,
    })
}

/// The greedy connection: a decoupled writer blasts the same frame until
/// told to stop while this thread drains every reply (OK or LOADSHED).
/// The always-draining reader keeps the server's in-flight cap from
/// deadlocking the writer, exactly as in [`overload_conn`].
fn greedy_conn(
    addr: std::net::SocketAddr,
    chunk: &[Coord],
    num_zones: usize,
    stop: &std::sync::atomic::AtomicBool,
) -> Result<(u64, u64, Vec<u64>), String> {
    use std::sync::atomic::{AtomicU64, Ordering};

    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("greedy connect: {e}"))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(READ_DEADLINE))
        .map_err(|e| e.to_string())?;
    let mut wstream = stream.try_clone().map_err(|e| e.to_string())?;
    let frame_bytes = proto::encode_probe_request(chunk, false);
    let written = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| -> Result<(), String> {
            while !stop.load(Ordering::Acquire) {
                wstream
                    .write_all(&frame_bytes)
                    .map_err(|e| format!("greedy write: {e}"))?;
                written.fetch_add(1, Ordering::Release);
            }
            Ok(())
        });
        let mut stream = stream;
        let (mut read, mut ok, mut shed) = (0u64, 0u64, 0u64);
        let mut counts = vec![0u64; num_zones];
        loop {
            if read >= written.load(Ordering::Acquire) {
                if writer.is_finished() && read >= written.load(Ordering::Acquire) {
                    break;
                }
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
            let body = proto::read_frame(&mut stream, 1 << 26)
                .map_err(|e| format!("greedy read: {e}"))?
                .ok_or("greedy: server closed mid-conversation")?;
            let (h, payload) = proto::decode_response(&body).map_err(|e| e.to_string())?;
            match h.status {
                proto::STATUS_OK => {
                    let refs =
                        proto::decode_probe_payload(h.n, payload).map_err(|e| e.to_string())?;
                    for one in refs {
                        for (id, _) in one {
                            counts[id as usize] += 1;
                        }
                    }
                    ok += 1;
                }
                proto::STATUS_LOADSHED => {
                    proto::decode_retry_after(payload).map_err(|e| e.to_string())?;
                    shed += 1;
                }
                s => {
                    return Err(format!(
                        "greedy: frame answered {} — only OK or LOADSHED is legal",
                        proto::status_name(s)
                    ))
                }
            }
            read += 1;
        }
        writer.join().expect("greedy writer thread")?;
        Ok((ok, shed, counts))
    })
}

/// One polite client: works through its stripe frame by frame over a
/// [`act_serve::ResilientClient`], which absorbs LOADSHED by honoring
/// the server's retry hint — the civic behavior the quota is there to
/// protect. Returns (elapsed secs, per-zone counts, retries).
fn polite_conn(
    addr: std::net::SocketAddr,
    stripe: &[Coord],
    num_zones: usize,
) -> Result<(f64, Vec<u64>, u64), String> {
    use act_serve::{ResilientClient, RetryPolicy};

    let mut client = ResilientClient::from_resolved(
        addr,
        RetryPolicy {
            max_attempts: 100_000,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(20),
            read_timeout: READ_DEADLINE,
            deadline: Some(Duration::from_secs(120)),
            ..RetryPolicy::default()
        },
    );
    let mut counts = vec![0u64; num_zones];
    let t0 = Instant::now();
    for chunk in stripe.chunks(FAIR_POLITE_FRAME) {
        let reply = client
            .probe(chunk, false)
            .map_err(|e| format!("polite probe: {e}"))?;
        for refs in &reply.refs {
            for &(id, _) in refs {
                counts[id as usize] += 1;
            }
        }
    }
    Ok((t0.elapsed().as_secs_f64(), counts, client.retries()))
}
