//! Regenerates the paper's **Table I**: index metrics for the three polygon
//! datasets at 60 m / 15 m / 4 m precision.
//!
//! ```text
//! cargo run --release -p bench --bin table1 [--full] [--datasets boroughs,...]
//! ```
//!
//! Columns follow the paper: indexed cells \[M\], ACT \[MB\], lookup table
//! \[MB\], build individual coverings \[s\], build super covering \[s\]. We add
//! the denormalized slot count and the trie node count for analysis.

use act_core::ActIndex;
use bench::{feasible, fmt_bytes, fmt_mcells, paper_datasets, Opts, PRECISIONS};

fn main() {
    let opts = Opts::parse();
    println!("TABLE I: Metrics of our index");
    println!("(paper: Kipf et al., ICDE 2018 — synthetic NYC datasets, see DESIGN.md)");
    println!();
    println!(
        "{:<14} {:>6} {:>12} {:>10} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "dataset",
        "prec",
        "cells [M]",
        "ACT",
        "lookup tbl",
        "cover [s]",
        "super [s]",
        "slots [M]",
        "nodes"
    );

    for ds in paper_datasets(opts.seed) {
        if !opts.wants(&ds.name) {
            continue;
        }
        for precision in PRECISIONS {
            if !feasible(&ds.name, precision, opts.full) {
                println!(
                    "{:<14} {:>4}m  (skipped: needs several GB; rerun with --full)",
                    ds.name, precision
                );
                continue;
            }
            let index = ActIndex::build(&ds.polygons, precision).expect("single-face datasets");
            let st = index.stats();
            println!(
                "{:<14} {:>4}m {:>12} {:>10} {:>12} {:>10.2} {:>10.2} {:>12} {:>10}",
                ds.name,
                precision,
                fmt_mcells(st.indexed_cells),
                fmt_bytes(st.act_bytes),
                fmt_bytes(st.lookup_table_bytes),
                st.build_coverings_secs,
                st.build_supercover_secs,
                fmt_mcells(st.denormalized_slots),
                index.act().num_nodes(),
            );
        }
    }

    println!();
    println!("shape checks vs. the paper:");
    println!(" * index size grows with polygon count at fixed precision");
    println!(" * two precisions whose terminal levels share a trie depth have");
    println!("   (near-)identical ACT sizes — the high-fanout artifact the paper");
    println!("   reports for 15 m vs 4 m (here it appears for 60 m vs 15 m, since");
    println!("   our exact max-diagonal constant maps 60 m→18 and 15 m→20, both in");
    println!("   the depth-5 node; see EXPERIMENTS.md)");
}
