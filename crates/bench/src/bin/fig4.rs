//! Regenerates the paper's **Figure 4**: multithreaded scalability of the
//! approximate join for 1…32 threads.
//!
//! ```text
//! cargo run --release -p bench --bin fig4 [--points 10000000] [--full]
//! ```
//!
//! The paper runs ACT-4m on a 14-core/28-thread socket and reports
//! near-linear scaling plus hyper-threading gains (the workload is bound by
//! memory latency). This machine's core count is printed with the results;
//! on a single-core container the curve is flat and the run degenerates to
//! a *mechanism validation*: per-thread partitioning must produce exactly
//! the same counts as the sequential join (asserted here), with zero shared
//! mutable state. See EXPERIMENTS.md for the substitution note.
//!
//! Census runs at 4 m only with `--full` (multi-GB index); without it, the
//! census series uses 15 m and is labelled accordingly.

use act_core::{join_parallel_cells_batch, ActIndex};
use bench::{feasible, make_points, paper_datasets, run_act_join, to_cells, Opts};

const THREADS: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn main() {
    let opts = Opts::parse();
    let threads = opts.threads_or(&THREADS);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "FIGURE 4: scalability, {} M points, batch {}, {} hardware thread(s) on this machine",
        opts.points as f64 / 1e6,
        opts.batch,
        cores
    );
    println!("(paper: 14 cores / 28 hyperthreads, ACT-4m, peak 4.30 B points/s)");
    println!();
    println!(
        "{:<18} {:>8} {:>14} {:>10}",
        "dataset", "threads", "M points/s", "speedup"
    );

    for ds in paper_datasets(opts.seed) {
        if !opts.wants(&ds.name) {
            continue;
        }
        let precision = if feasible(&ds.name, 4.0, opts.full) {
            4.0
        } else {
            15.0
        };
        let label = format!("{}-{}m", ds.name, precision);
        let index = ActIndex::build(&ds.polygons, precision).expect("single-face datasets");
        let points = make_points(&ds, opts.points, opts.seed);
        let cells = to_cells(&points);

        // Sequential reference for correctness checking. Workers probe in
        // batches (Act::lookup_batch), so each thread also exploits
        // memory-level parallelism within its partition.
        let seq = run_act_join(&index, &cells, ds.polygons.len());
        let mut base = 0.0;
        for &t_count in &threads {
            let t = std::time::Instant::now();
            let (counts, _stats) =
                join_parallel_cells_batch(&index, &cells, ds.polygons.len(), t_count, opts.batch);
            let secs = t.elapsed().as_secs_f64();
            assert_eq!(
                counts, seq.counts,
                "parallel join must reproduce sequential counts exactly"
            );
            let mpts = cells.len() as f64 / secs / 1e6;
            if base == 0.0 {
                base = mpts;
            }
            println!(
                "{:<18} {:>8} {:>14.1} {:>9.2}x",
                label,
                t_count,
                mpts,
                mpts / base
            );
        }
        println!();
    }

    println!("shape checks vs. the paper:");
    println!(" * per-thread counts merge to exactly the sequential result");
    println!("   (embarrassingly parallel by construction — validated above)");
    println!(" * on multi-core hardware the curve is near-linear in physical");
    println!(
        "   cores with extra gains from SMT; on this {} -thread machine the",
        cores
    );
    println!("   curve's plateau reflects the hardware, not the algorithm");
}
