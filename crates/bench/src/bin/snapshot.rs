//! Emits `BENCH_snapshot.json`: build-once / load-many timings for the
//! versioned index snapshots (`act_core::snapshot`). The question this
//! baseline answers: how much faster is a warm start from disk than
//! rebuilding the index from the polygon set?
//!
//! ```text
//! cargo run --release -p bench --bin snapshot [--datasets a,b] [--seed S] [--snapshot DIR] [--mmap]
//! ```
//!
//! Per selected dataset it builds the index once (timed), saves the
//! snapshot (timed), then loads it back [`LOADS`] times in both modes —
//! owned ([`ActIndex::load_snapshot`]) and zero-copy
//! ([`act_core::SnapshotBuf`] + [`act_core::ActIndexView`]) — verifying
//! after every load that the arena is byte-identical to the built one
//! and that a probe sample agrees. Minimum load times are recorded (the
//! steady warm-page-cache state a restarting fleet node sees).
//!
//! `--mmap` adds a third mode: [`act_core::MappedSnapshot::open`], where
//! "load" is mmap + validate and the page cache backs the probes — the
//! serving path `act-serve` runs on. On a warm cache it skips the big
//! copy entirely, so it should beat the heap read.

use act_core::{ActIndex, MappedSnapshot, Probe, SnapshotBuf};
use bench::json::{array, machine_stamp, pretty, Obj};
use bench::{make_points, paper_datasets, snapshot_path, to_cells, Opts};
use std::time::Instant;

/// Loads per mode; the minimum is recorded.
const LOADS: usize = 5;
/// Probe sample size for post-load verification.
const VERIFY_POINTS: usize = 50_000;

fn main() {
    let opts = Opts::parse();
    // Census at 15 m is the census-scale configuration this baseline is
    // about; neighborhoods rides along as a small-index contrast.
    let selected: Vec<String> = if opts.datasets.is_empty() {
        vec!["neighborhoods".into(), "census".into()]
    } else {
        opts.datasets.clone()
    };
    let dir = opts
        .snapshot
        .clone()
        .unwrap_or_else(|| "target/snapshot-bench".to_string());
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    println!("SNAPSHOT: build-once/load-many, datasets {selected:?}, dir {dir}");

    let mut entries = Vec::new();
    for ds in paper_datasets(opts.seed) {
        if !selected.iter().any(|d| d == &ds.name) {
            continue;
        }
        let precision = 15.0;
        println!(
            "\n=== {} ({} polygons, {precision} m) ===",
            ds.name,
            ds.polygons.len()
        );

        // Build once (the cost a warm start avoids).
        let t = Instant::now();
        let built = ActIndex::build(&ds.polygons, precision).expect("single-face datasets");
        let build_secs = t.elapsed().as_secs_f64();
        println!(
            "build: {build_secs:.3} s ({} nodes, {:.1} MB)",
            built.act().num_nodes(),
            built.memory_bytes() as f64 / 1e6
        );

        // Save once.
        let path = snapshot_path(&dir, &ds.name, precision);
        let t = Instant::now();
        let mut f = std::fs::File::create(&path).expect("create snapshot file");
        let snapshot_bytes = built.save_snapshot(&mut f).expect("save snapshot");
        drop(f);
        let save_secs = t.elapsed().as_secs_f64();
        println!(
            "save:  {save_secs:.3} s, {:.1} MB to {}",
            snapshot_bytes as f64 / 1e6,
            path.display()
        );

        // The probe sample every loaded copy must answer identically.
        let cells = to_cells(&make_points(&ds, VERIFY_POINTS, opts.seed));
        let mut want = vec![Probe::Miss; cells.len()];
        built.probe_batch(&cells, &mut want);
        let mut got = vec![Probe::Miss; cells.len()];

        // Owned loads.
        let mut owned_runs = Vec::new();
        for _ in 0..LOADS {
            let t = Instant::now();
            let mut f = std::fs::File::open(&path).expect("open snapshot file");
            let loaded = ActIndex::load_snapshot(&mut f).expect("load snapshot");
            owned_runs.push(t.elapsed().as_secs_f64());
            assert!(
                loaded.identical_to(&built),
                "loaded index diverged — not recording"
            );
            loaded.probe_batch(&cells, &mut got);
            assert_eq!(got, want, "loaded probes diverged — not recording");
        }

        // Zero-copy view loads (read into an aligned buffer + validate +
        // borrow; probing happens straight off the buffer).
        let mut view_runs = Vec::new();
        for _ in 0..LOADS {
            let t = Instant::now();
            let mut f = std::fs::File::open(&path).expect("open snapshot file");
            let buf = SnapshotBuf::read_from(&mut f).expect("read snapshot");
            let view = buf.view().expect("open snapshot view");
            view_runs.push(t.elapsed().as_secs_f64());
            view.probe_batch(&cells, &mut got);
            assert_eq!(got, want, "view probes diverged — not recording");
        }

        // Memory-mapped loads (--mmap): open = mmap + validate; probing
        // faults pages in from the cache on demand. The probe sample
        // runs outside the timed region, like the other modes.
        let mut mmap_runs = Vec::new();
        if opts.mmap {
            for _ in 0..LOADS {
                let t = Instant::now();
                let mapped = MappedSnapshot::open(&path).expect("map snapshot");
                mmap_runs.push(t.elapsed().as_secs_f64());
                assert!(mapped.is_mmap() || !cfg!(unix), "unix must really map");
                mapped.probe_batch(&cells, &mut got);
                assert_eq!(got, want, "mmap probes diverged — not recording");
            }
        }

        let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        let (owned_min, view_min) = (min(&owned_runs), min(&view_runs));
        println!(
            "load:  owned {owned_min:.3} s ({:.0}x vs build), zero-copy {view_min:.3} s ({:.0}x vs build)",
            build_secs / owned_min,
            build_secs / view_min
        );
        if opts.mmap {
            println!(
                "mmap:  {:.6} s open+validate ({:.0}x vs build; probes run off the page cache)",
                min(&mmap_runs),
                build_secs / min(&mmap_runs)
            );
        }

        let runs = |v: &[f64]| array(v.iter().map(|s| format!("{s:.6}")));
        let mut entry = Obj::new()
            .str("dataset", &ds.name)
            .int("polygons", ds.polygons.len() as u64)
            .num("precision_m", precision)
            .int("snapshot_bytes", snapshot_bytes)
            .int("index_nodes", built.act().num_nodes() as u64)
            .num("build_secs", build_secs)
            .num("save_secs", save_secs)
            .num("load_owned_secs_min", owned_min)
            .num("load_view_secs_min", view_min)
            .num("build_over_load_owned", build_secs / owned_min)
            .num("build_over_load_view", build_secs / view_min)
            .raw("load_owned_secs", runs(&owned_runs))
            .raw("load_view_secs", runs(&view_runs));
        if opts.mmap {
            entry = entry
                .num("load_mmap_secs_min", min(&mmap_runs))
                .num("build_over_load_mmap", build_secs / min(&mmap_runs))
                .raw("load_mmap_secs", runs(&mmap_runs));
        }
        entries.push(entry.build());
    }

    let doc = Obj::new()
        .str("bench", "snapshot")
        .str("command", "cargo run --release -p bench --bin snapshot")
        .raw("machine", machine_stamp())
        .int("seed", opts.seed)
        .int("loads_per_mode", LOADS as u64)
        .raw("snapshot_runs", array(entries))
        .build();

    // Anchor to the workspace root (two levels above crates/bench) so the
    // committed baseline is updated regardless of the invocation CWD.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(root.join("BENCH_snapshot.json"), pretty(&doc))
        .expect("write BENCH_snapshot.json");
    println!("\nwrote BENCH_snapshot.json to {}", root.display());
}
