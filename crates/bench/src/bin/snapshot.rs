//! Emits `BENCH_snapshot.json`: build-once / load-many timings for the
//! versioned index snapshots (`act_core::snapshot`). The question this
//! baseline answers: how much faster is a warm start from disk than
//! rebuilding the index from the polygon set?
//!
//! ```text
//! cargo run --release -p bench --bin snapshot [--datasets a,b] [--seed S] [--snapshot DIR] [--mmap]
//! ```
//!
//! Per selected dataset it builds the index once (timed), saves the
//! snapshot (timed), then loads it back [`LOADS`] times in both modes —
//! owned ([`ActIndex::load_snapshot`]) and zero-copy
//! ([`act_core::SnapshotBuf`] + [`act_core::ActIndexView`]) — verifying
//! after every load that the arena is byte-identical to the built one
//! and that a probe sample agrees. Minimum load times are recorded (the
//! steady warm-page-cache state a restarting fleet node sees).
//!
//! `--mmap` adds a third mode: [`act_core::MappedSnapshot::open`], where
//! "load" is mmap + validate and the page cache backs the probes — the
//! serving path `act-serve` runs on. On a warm cache it skips the big
//! copy entirely, so it should beat the heap read.

use act_core::{
    header_checksum, save_delta_file, ActIndex, DeltaLink, DeltaOp, MappedSnapshot, Probe,
    SnapshotBuf,
};
use bench::json::{array, machine_stamp, pretty, Obj};
use bench::{make_points, paper_datasets, snapshot_path, to_cells, Opts};
use geom::{Coord, Polygon, Ring};
use std::time::Instant;

/// Loads per mode; the minimum is recorded.
const LOADS: usize = 5;
/// Probe sample size for post-load verification.
const VERIFY_POINTS: usize = 50_000;

fn main() {
    let opts = Opts::parse();
    // Census at 15 m is the census-scale configuration this baseline is
    // about; neighborhoods rides along as a small-index contrast.
    let selected: Vec<String> = if opts.datasets.is_empty() {
        vec!["neighborhoods".into(), "census".into()]
    } else {
        opts.datasets.clone()
    };
    let dir = opts
        .snapshot
        .clone()
        .unwrap_or_else(|| "target/snapshot-bench".to_string());
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    println!("SNAPSHOT: build-once/load-many, datasets {selected:?}, dir {dir}");

    let mut entries = Vec::new();
    for ds in paper_datasets(opts.seed) {
        if !selected.iter().any(|d| d == &ds.name) {
            continue;
        }
        let precision = 15.0;
        println!(
            "\n=== {} ({} polygons, {precision} m) ===",
            ds.name,
            ds.polygons.len()
        );

        // Build once (the cost a warm start avoids).
        let t = Instant::now();
        let built = ActIndex::build(&ds.polygons, precision).expect("single-face datasets");
        let build_secs = t.elapsed().as_secs_f64();
        println!(
            "build: {build_secs:.3} s ({} nodes, {:.1} MB)",
            built.act().num_nodes(),
            built.memory_bytes() as f64 / 1e6
        );

        // Save once.
        let path = snapshot_path(&dir, &ds.name, precision);
        let t = Instant::now();
        let mut f = std::fs::File::create(&path).expect("create snapshot file");
        let snapshot_bytes = built.save_snapshot(&mut f).expect("save snapshot");
        drop(f);
        let save_secs = t.elapsed().as_secs_f64();
        println!(
            "save:  {save_secs:.3} s, {:.1} MB to {}",
            snapshot_bytes as f64 / 1e6,
            path.display()
        );

        // The probe sample every loaded copy must answer identically.
        let sample = make_points(&ds, VERIFY_POINTS, opts.seed);
        let cells = to_cells(&sample);
        let mut want = vec![Probe::Miss; cells.len()];
        built.probe_batch(&cells, &mut want);
        let mut got = vec![Probe::Miss; cells.len()];

        // Owned loads.
        let mut owned_runs = Vec::new();
        for _ in 0..LOADS {
            let t = Instant::now();
            let mut f = std::fs::File::open(&path).expect("open snapshot file");
            let loaded = ActIndex::load_snapshot(&mut f).expect("load snapshot");
            owned_runs.push(t.elapsed().as_secs_f64());
            assert!(
                loaded.identical_to(&built),
                "loaded index diverged — not recording"
            );
            loaded.probe_batch(&cells, &mut got);
            assert_eq!(got, want, "loaded probes diverged — not recording");
        }

        // Zero-copy view loads (read into an aligned buffer + validate +
        // borrow; probing happens straight off the buffer).
        let mut view_runs = Vec::new();
        for _ in 0..LOADS {
            let t = Instant::now();
            let mut f = std::fs::File::open(&path).expect("open snapshot file");
            let buf = SnapshotBuf::read_from(&mut f).expect("read snapshot");
            let view = buf.view().expect("open snapshot view");
            view_runs.push(t.elapsed().as_secs_f64());
            view.probe_batch(&cells, &mut got);
            assert_eq!(got, want, "view probes diverged — not recording");
        }

        // Memory-mapped loads (--mmap): open = mmap + validate; probing
        // faults pages in from the cache on demand. The probe sample
        // runs outside the timed region, like the other modes.
        let mut mmap_runs = Vec::new();
        if opts.mmap {
            for _ in 0..LOADS {
                let t = Instant::now();
                let mapped = MappedSnapshot::open(&path).expect("map snapshot");
                mmap_runs.push(t.elapsed().as_secs_f64());
                assert!(mapped.is_mmap() || !cfg!(unix), "unix must really map");
                mapped.probe_batch(&cells, &mut got);
                assert_eq!(got, want, "mmap probes diverged — not recording");
            }
        }

        // Delta apply (the live-update path): a one-polygon ACTDLT01
        // delta applied in place to a primed scratch index — what the
        // act-serve watcher does per delta instead of a full reload.
        // Timed region = the apply itself (the watcher's apply-to-
        // publish latency); the scratch re-clone runs after publish,
        // off that path, and is recorded separately. The polygon is a
        // realistic churn unit: a ~40 m geofence, not a district (those
        // go through a rebuild, not a delta).
        let delta_p = {
            let c = Coord::new(
                (ds.bbox.min.x + ds.bbox.max.x) / 2.0,
                (ds.bbox.min.y + ds.bbox.max.y) / 2.0,
            );
            let h = 0.0002; // ~20 m half-width at NYC latitudes
            Polygon::new(
                Ring::new(vec![
                    Coord::new(c.x - h, c.y - h),
                    Coord::new(c.x + h, c.y - h),
                    Coord::new(c.x + h, c.y + h),
                    Coord::new(c.x - h, c.y + h),
                    Coord::new(c.x - h, c.y - h),
                ]),
                vec![],
            )
        };
        let base_sum = header_checksum(&std::fs::read(&path).expect("read snapshot"))
            .expect("snapshot header");
        let delta_file = path.with_extension("snap.d1");
        let ops = [DeltaOp::Insert {
            id: ds.polygons.len() as u32,
            polygon: delta_p,
        }];
        save_delta_file(&ops, DeltaLink::for_base(base_sum), &delta_file).expect("save delta");
        let delta_bytes = std::fs::metadata(&delta_file).expect("stat delta").len();
        let new_id = ds.polygons.len() as u32;
        // Resolved-id ground truth (raw probes encode arena offsets,
        // which legitimately shift when the arena mutates).
        let want_refs: Vec<Vec<(u32, bool)>> =
            sample.iter().map(|&p| built.lookup_refs(p)).collect();
        let mut scratch = built.clone();
        scratch.prime_mutations(); // one-time, like the watcher's lineage open
        let mut delta_runs = Vec::new();
        let mut clone_runs = Vec::new();
        for _ in 0..LOADS {
            let t = Instant::now();
            let mut live = scratch.clone();
            clone_runs.push(t.elapsed().as_secs_f64());
            let t = Instant::now();
            act_core::apply_delta_file(&mut live, &delta_file, DeltaLink::for_base(base_sum))
                .expect("apply delta");
            delta_runs.push(t.elapsed().as_secs_f64());
            // Modulo the freshly inserted polygon, every sample point
            // must resolve exactly as in the built index.
            for (p, w) in sample.iter().zip(&want_refs) {
                let mut refs = live.lookup_refs(*p);
                refs.retain(|r| r.0 != new_id);
                assert_eq!(
                    &refs, w,
                    "delta-applied lookup diverged at {p} — not recording"
                );
            }
        }
        std::fs::remove_file(&delta_file).ok();

        let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        let (owned_min, view_min) = (min(&owned_runs), min(&view_runs));
        let delta_min = min(&delta_runs);
        println!(
            "load:  owned {owned_min:.3} s ({:.0}x vs build), zero-copy {view_min:.3} s ({:.0}x vs build)",
            build_secs / owned_min,
            build_secs / view_min
        );
        if opts.mmap {
            println!(
                "mmap:  {:.6} s open+validate ({:.0}x vs build; probes run off the page cache)",
                min(&mmap_runs),
                build_secs / min(&mmap_runs)
            );
        }
        println!(
            "delta: {delta_min:.6} s in-place apply of a {delta_bytes}-byte one-polygon delta \
             ({:.0}x vs owned reload; off-path scratch re-clone {:.3} s)",
            owned_min / delta_min,
            min(&clone_runs)
        );

        let runs = |v: &[f64]| array(v.iter().map(|s| format!("{s:.6}")));
        let mut entry = Obj::new()
            .str("dataset", &ds.name)
            .int("polygons", ds.polygons.len() as u64)
            .num("precision_m", precision)
            .int("snapshot_bytes", snapshot_bytes)
            .int("index_nodes", built.act().num_nodes() as u64)
            .num("build_secs", build_secs)
            .num("save_secs", save_secs)
            .num("load_owned_secs_min", owned_min)
            .num("load_view_secs_min", view_min)
            .num("build_over_load_owned", build_secs / owned_min)
            .num("build_over_load_view", build_secs / view_min)
            .raw("load_owned_secs", runs(&owned_runs))
            .raw("load_view_secs", runs(&view_runs))
            .int("delta_bytes", delta_bytes)
            .num("delta_apply_secs_min", delta_min)
            .num("reload_owned_over_delta_apply", owned_min / delta_min)
            .num("delta_scratch_clone_secs_min", min(&clone_runs))
            .raw("delta_apply_secs", runs(&delta_runs));
        if opts.mmap {
            entry = entry
                .num("load_mmap_secs_min", min(&mmap_runs))
                .num("build_over_load_mmap", build_secs / min(&mmap_runs))
                .raw("load_mmap_secs", runs(&mmap_runs));
        }
        entries.push(entry.build());
    }

    let doc = Obj::new()
        .str("bench", "snapshot")
        .str("command", "cargo run --release -p bench --bin snapshot")
        .raw("machine", machine_stamp())
        .int("seed", opts.seed)
        .int("loads_per_mode", LOADS as u64)
        .raw("snapshot_runs", array(entries))
        .build();

    // Anchor to the workspace root (two levels above crates/bench) so the
    // committed baseline is updated regardless of the invocation CWD.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(root.join("BENCH_snapshot.json"), pretty(&doc))
        .expect("write BENCH_snapshot.json");
    println!("\nwrote BENCH_snapshot.json to {}", root.display());
}
