//! In-process component microbench for the hot-cell cache: per-point
//! costs of the pieces the serve path composes — coordinate→cell, the
//! MLP-batched trie walk (with and without ref resolution), and the
//! cache's fill + warm-hit paths — against either the paper's `census`
//! host dataset (`cachebench census`, shallow partition, ~1 ref/pt) or
//! the stacked-geofence preset (`cachebench surge`, 16 overlapping
//! layers, ~16 refs/pt, the cache's design point). The hit loop's
//! result sink is asserted equal to the walk's, so the numbers can't
//! come from a lookup that quietly stopped answering correctly.
//!
//! Wall-clock numbers on a shared machine are ±10-20%; use them to
//! compare paths within one run, not across runs. The end-to-end
//! off/on contract lives in `loadgen --zipf`, not here.
use act_core::{coord_to_cell, MappedSnapshot, Probe};
use act_serve::{CacheConfig, HotCellCache};
use bench::{make_points, paper_datasets, snapshot_path};
use std::time::Instant;

fn main() {
    let seed = 42;
    let which = std::env::args().nth(1).unwrap_or_else(|| "census".into());
    let ds = if which == "surge" {
        datagen::surge_zones(seed, 16, 8, 8)
    } else {
        paper_datasets(seed)
            .into_iter()
            .find(|d| d.name == "census")
            .expect("census")
    };
    let dir = "target/serve-bench";
    std::fs::create_dir_all(dir).unwrap();
    let path = snapshot_path(dir, &ds.name, 15.0);
    if !path.exists() {
        let t = Instant::now();
        let built = act_core::ActIndex::build(&ds.polygons, 15.0).expect("build");
        println!("built {} in {:.1}s", ds.name, t.elapsed().as_secs_f64());
        let mut f = std::fs::File::create(&path).unwrap();
        built.save_snapshot(&mut f).unwrap();
    }
    println!(
        "{}: {} polygons, snapshot {:.1} MB",
        ds.name,
        ds.polygons.len(),
        std::fs::metadata(&path).unwrap().len() as f64 / 1e6
    );
    let snap = MappedSnapshot::open(&path).unwrap();
    let view = snap.view();

    let points = make_points(&ds, 65_536, seed);
    // Zipf(1.1) workload over the hot set, like run_zipf.
    let n = 2_000_000usize;
    let mut cdf = Vec::with_capacity(points.len());
    let mut acc = 0.0f64;
    for k in 0..points.len() {
        acc += 1.0 / ((k + 1) as f64).powf(1.1);
        cdf.push(acc);
    }
    for c in cdf.iter_mut() {
        *c /= acc;
    }
    let mut state = 0x51F0EDu64 | 1;
    let workload: Vec<_> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            let r = cdf.partition_point(|&c| c < u).min(points.len() - 1);
            points[r]
        })
        .collect();

    // 1. coord_to_cell
    let t = Instant::now();
    let cells: Vec<_> = workload.iter().map(|&c| coord_to_cell(c)).collect();
    println!(
        "coord_to_cell: {:.1} ns/pt",
        t.elapsed().as_nanos() as f64 / n as f64
    );

    // 2. warm walk, batched 2048 at a time (like the server batch path)
    let mut probes = vec![Probe::Miss; 2048];
    for chunk in cells.chunks(2048).take(64) {
        view.probe_batch(chunk, &mut probes[..chunk.len()]);
    }
    let t = Instant::now();
    for chunk in cells.chunks(2048) {
        view.probe_batch(chunk, &mut probes[..chunk.len()]);
    }
    println!(
        "warm probe_batch: {:.1} ns/pt",
        t.elapsed().as_nanos() as f64 / n as f64
    );

    // 3. walk + resolve_refs (the full cacheless answer path)
    let mut sink = 0u64;
    let t = Instant::now();
    for chunk in cells.chunks(2048) {
        view.probe_batch(chunk, &mut probes[..chunk.len()]);
        for &p in &probes[..chunk.len()] {
            for (id, _) in view.resolve_refs(p) {
                sink = sink.wrapping_add(id as u64);
            }
        }
    }
    println!(
        "walk+resolve: {:.1} ns/pt (sink {sink})",
        t.elapsed().as_nanos() as f64 / n as f64
    );

    // refs/pt + exact-answer oracle on a sample (overlap correctness)
    {
        let refiner = act_core::Refiner::new(&ds.polygons);
        let mut total_refs = 0u64;
        for (k, &c) in cells.iter().enumerate().take(2000) {
            let mut p = [Probe::Miss];
            view.probe_batch(&cells[k..k + 1], &mut p);
            let mut act: Vec<u32> = view
                .resolve_refs(p[0])
                .filter(|&(id, interior)| interior || refiner.contains(id, workload[k]))
                .map(|(id, _)| id)
                .collect();
            total_refs += view.resolve_refs(p[0]).count() as u64;
            act.sort_unstable();
            let mut brute: Vec<u32> = (0..ds.polygons.len() as u32)
                .filter(|&id| refiner.contains(id, workload[k]))
                .collect();
            brute.sort_unstable();
            assert_eq!(act, brute, "overlap answers diverge at point {k}");
            let _ = c;
        }
        println!(
            "oracle ok on 2000 pts, {:.1} candidate refs/pt",
            total_refs as f64 / 2000.0
        );
    }

    // 4. depth-reporting walk + fill
    let cache = HotCellCache::new(&CacheConfig {
        shards: 1,
        capacity: 65_536,
    });
    let mut depths = vec![0u8; 2048];
    let mut arena: Vec<u32> = Vec::new();
    for chunk in cells.chunks(2048) {
        view.probe_batch_depths(
            chunk,
            &mut probes[..chunk.len()],
            &mut depths[..chunk.len()],
        );
        for (i, &c) in chunk.iter().enumerate() {
            arena.clear();
            arena.extend(
                view.resolve_refs(probes[i])
                    .map(|(id, hit)| (id << 1) | hit as u32),
            );
            cache.insert(c, depths[i], 1, &arena);
        }
    }
    println!("cache len after fill: {}", cache.len());

    // 5. warm cache hit loop (the cache-on answer path)
    let mut spans: Vec<(usize, usize)> = Vec::new();
    let mut sink2 = 0u64;
    let t = Instant::now();
    for chunk in cells.chunks(2048) {
        arena.clear();
        spans.clear();
        let hits = cache.get_batch(chunk, 1, &mut arena, &mut spans);
        cache.record(hits, chunk.len() as u64 - hits);
        for &(s, l1) in &spans {
            if l1 > 0 {
                for &w in &arena[s..s + l1 - 1] {
                    sink2 = sink2.wrapping_add((w >> 1) as u64);
                }
            }
        }
    }
    println!(
        "cache hit path: {:.1} ns/pt (sink {sink2}, hits {} misses {})",
        t.elapsed().as_nanos() as f64 / n as f64,
        cache.hits(),
        cache.misses()
    );
    assert_eq!(sink, sink2, "cache answers diverge from walk answers");
}
