//! Minimal JSON emission for the machine-readable `BENCH_*.json` baseline
//! files. The build environment has no serde, so this is a tiny by-hand
//! writer: objects and arrays are built as strings, with string escaping
//! and non-finite-float handling centralized here.

use std::fmt::Write;

/// An ordered JSON object under construction.
#[derive(Debug, Default, Clone)]
pub struct Obj {
    fields: Vec<(String, String)>,
}

impl Obj {
    pub fn new() -> Obj {
        Obj::default()
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Obj {
        let v = escape(value);
        self.fields.push((key.to_string(), format!("\"{v}\"")));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Obj {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a float field (6 significant decimals; non-finite → `null`).
    pub fn num(mut self, key: &str, value: f64) -> Obj {
        let v = if value.is_finite() {
            format!("{value:.6}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), v));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Obj {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a field whose value is already-rendered JSON (a nested object
    /// or array).
    pub fn raw(mut self, key: &str, value: String) -> Obj {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Renders the object.
    pub fn build(self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(k), v);
        }
        out.push('}');
        out
    }
}

/// The shared machine/profile stamp every committed `BENCH_*.json`
/// carries. Hardware thread count and cargo profile make the
/// "single-core container, release build" caveat machine-readable: a
/// consumer comparing baselines can reject apples-to-oranges numbers
/// (different core counts, or a dev-profile run) without parsing prose.
pub fn machine_stamp() -> String {
    Obj::new()
        .int(
            "hardware_threads",
            std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
        )
        .str("os", std::env::consts::OS)
        .str("arch", std::env::consts::ARCH)
        .str(
            "cargo_profile",
            if cfg!(debug_assertions) {
                "dev"
            } else {
                "release"
            },
        )
        .build()
}

/// Renders a JSON array from already-rendered element strings.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// Pretty-prints a compact JSON string with two-space indentation — enough
/// for the structures this crate emits (no escaped quotes containing
/// braces are ever present in our keys/values beyond [`escape`] output).
pub fn pretty(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for ch in compact.chars() {
        if in_str {
            out.push(ch);
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                in_str = false;
            }
            continue;
        }
        match ch {
            '"' => {
                in_str = true;
                out.push(ch);
            }
            '{' | '[' => {
                depth += 1;
                out.push(ch);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(ch);
            }
            ',' => {
                out.push(ch);
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            ':' => {
                out.push(ch);
                out.push(' ');
            }
            _ => out.push(ch),
        }
    }
    out.push('\n');
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_rendering() {
        let o = Obj::new()
            .str("name", "he said \"hi\"")
            .int("n", 3)
            .num("x", 1.5)
            .num("bad", f64::NAN)
            .bool("ok", true)
            .raw("arr", array(vec!["1".to_string(), "2".to_string()]))
            .build();
        assert_eq!(
            o,
            r#"{"name":"he said \"hi\"","n":3,"x":1.500000,"bad":null,"ok":true,"arr":[1,2]}"#
        );
    }

    #[test]
    fn machine_stamp_has_the_caveat_fields() {
        let stamp = machine_stamp();
        for key in ["hardware_threads", "os", "arch", "cargo_profile"] {
            assert!(
                stamp.contains(&format!("\"{key}\":")),
                "missing {key}: {stamp}"
            );
        }
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(Obj::new().build(), "{}");
        assert_eq!(array(Vec::new()), "[]");
    }

    #[test]
    fn pretty_is_reversible_whitespace() {
        let compact = Obj::new()
            .str("a", "x")
            .raw("b", array(vec![Obj::new().int("c", 1).build()]))
            .build();
        let pretty = pretty(&compact);
        let stripped: String = {
            // Strip only whitespace outside strings.
            let mut out = String::new();
            let mut in_str = false;
            let mut escaped = false;
            for ch in pretty.chars() {
                if in_str {
                    out.push(ch);
                    if escaped {
                        escaped = false;
                    } else if ch == '\\' {
                        escaped = true;
                    } else if ch == '"' {
                        in_str = false;
                    }
                } else if ch == '"' {
                    in_str = true;
                    out.push(ch);
                } else if !ch.is_whitespace() {
                    out.push(ch);
                }
            }
            out
        };
        assert_eq!(stripped, compact);
    }
}
