//! Criterion counterpart of the paper's Figure 3: single-threaded probe
//! throughput of ACT at the three precision tiers versus the R-tree
//! baseline, per dataset.
//!
//! Scaled for benchmark runtime: boroughs and neighborhoods run at full
//! size; the census tier is represented by a 40×25 = 1000-polygon slice
//! (the full 39,184-polygon run lives in the `fig3` binary). Probes use a
//! 200k-point batch; Criterion reports per-element throughput.

use act_core::ActIndex;
use bench::{build_rtree, make_points, to_cells};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const BATCH: usize = 200_000;

fn bench_throughput(c: &mut Criterion) {
    let datasets = vec![
        datagen::boroughs(42),
        datagen::neighborhoods(42),
        datagen::blocks_scaled(40, 25, 42), // census-mini
    ];

    let mut group = c.benchmark_group("fig3_throughput");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.sample_size(20);

    for ds in &datasets {
        let points = make_points(ds, BATCH, 7);
        let cells = to_cells(&points);
        let n = ds.polygons.len();

        for precision in [60.0, 15.0, 4.0] {
            // Keep bench-time memory modest: skip 4 m for the census slice.
            if ds.name.starts_with("blocks") && precision < 15.0 {
                continue;
            }
            let index = ActIndex::build(&ds.polygons, precision).unwrap();
            group.bench_function(
                BenchmarkId::new(format!("act_{}m", precision), &ds.name),
                |b| {
                    let mut counts = vec![0u64; n];
                    b.iter(|| {
                        counts.iter_mut().for_each(|c| *c = 0);
                        act_core::join_approx_cells(&index, &cells, &mut counts)
                    });
                },
            );
        }

        let tree = build_rtree(ds);
        group.bench_function(BenchmarkId::new("rtree_baseline", &ds.name), |b| {
            let mut counts = vec![0u64; n];
            let mut hits = Vec::with_capacity(16);
            b.iter(|| {
                counts.iter_mut().for_each(|c| *c = 0);
                for &p in &points {
                    hits.clear();
                    tree.query_point_into(p, &mut hits);
                    for &id in &hits {
                        counts[id as usize] += 1;
                    }
                }
            });
        });

        // End-to-end variant: includes per-point lat/lng → cell conversion.
        let index = ActIndex::build(&ds.polygons, 15.0).unwrap();
        group.bench_function(BenchmarkId::new("act_15m_end_to_end", &ds.name), |b| {
            let mut counts = vec![0u64; n];
            b.iter(|| {
                counts.iter_mut().for_each(|c| *c = 0);
                act_core::join_approx_coords(&index, &points, &mut counts)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
