//! Build-phase benchmarks backing the paper's Table I timing rows:
//! "build individual coverings [s]" and "build super covering [s]".
//!
//! Run on neighborhoods (fast enough for Criterion); the full-size numbers
//! for all three datasets come from the `table1` binary.

use act_core::{build_super_covering, cover_polygon, CoveringParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_build(c: &mut Criterion) {
    let ds = datagen::neighborhoods(42);

    let mut group = c.benchmark_group("table1_build");
    group.sample_size(10);

    for precision in [60.0, 15.0] {
        let params = CoveringParams::new(precision);
        group.bench_function(
            BenchmarkId::new("individual_coverings", format!("{precision}m")),
            |b| {
                b.iter(|| {
                    ds.polygons
                        .iter()
                        .map(|p| cover_polygon(p, &params).unwrap().cells.len())
                        .sum::<usize>()
                });
            },
        );

        let coverings: Vec<_> = ds
            .polygons
            .iter()
            .map(|p| cover_polygon(p, &params).unwrap())
            .collect();
        group.bench_function(
            BenchmarkId::new("super_covering", format!("{precision}m")),
            |b| b.iter(|| build_super_covering(&coverings).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
