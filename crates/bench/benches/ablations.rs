//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **A1 hierarchy**: ACT's hierarchical cells vs a Magellan-style flat
//!   uniform grid at comparable memory.
//! * **A3 true-hit filtering**: exact join with interior cells enabled vs
//!   disabled (every probe that would be a true hit must instead be
//!   refined by a point-in-polygon test).
//! * **A4 radix vs binary search**: the ACT trie vs a sorted-array index
//!   over the *same* super-covering cells (the comparison §II of the paper
//!   argues qualitatively).

use act_core::{
    build_super_covering, cover_polygon, ActIndex, CoveringParams, Refiner, SortedCellIndex,
};
use bench::{make_points, to_cells};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grid::UniformGrid;

const BATCH: usize = 200_000;

fn bench_hierarchy(c: &mut Criterion) {
    let ds = datagen::neighborhoods(42);
    let points = make_points(&ds, BATCH, 7);
    let cells = to_cells(&points);
    let n = ds.polygons.len();

    let index = ActIndex::build(&ds.polygons, 15.0).unwrap();
    // Match the flat grid's memory to ACT's: each grid ref is 4 B plus one
    // 4 B offset per cell; solve nx*ny ≈ act_bytes/8 for a square-ish grid.
    let target_cells = (index.memory_bytes() / 8).max(1024);
    let nx = (target_cells as f64).sqrt() as usize;
    let flat = UniformGrid::build(&ds.polygons, ds.bbox, nx, nx);

    let mut group = c.benchmark_group("ablation_hierarchy");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.sample_size(15);

    group.bench_function(BenchmarkId::new("act_15m", "neighborhoods"), |b| {
        let mut counts = vec![0u64; n];
        b.iter(|| act_core::join_approx_cells(&index, &cells, &mut counts));
    });
    group.bench_function(
        BenchmarkId::new(format!("flat_grid_{nx}x{nx}"), "neighborhoods"),
        |b| {
            let mut counts = vec![0u64; n];
            b.iter(|| {
                for &p in &points {
                    for &r in flat.query_raw(p) {
                        counts[(r >> 1) as usize] += 1;
                    }
                }
            });
        },
    );
    group.finish();
}

fn bench_true_hit_filtering(c: &mut Criterion) {
    let ds = datagen::neighborhoods(42);
    let points = make_points(&ds, BATCH, 7);
    let n = ds.polygons.len();
    let refiner = Refiner::new(&ds.polygons);
    let params = CoveringParams::new(15.0);

    // Interior cells enabled (normal ACT).
    let with_interior = ActIndex::build(&ds.polygons, 15.0).unwrap();

    // Interior cells disabled: demote every interior cell to a candidate.
    let coverings: Vec<_> = ds
        .polygons
        .iter()
        .map(|p| {
            let mut cov = cover_polygon(p, &params).unwrap();
            for (_, interior) in cov.cells.iter_mut() {
                *interior = false;
            }
            cov
        })
        .collect();
    let no_interior = ActIndex::from_coverings(coverings, params, 0.0);

    let mut group = c.benchmark_group("ablation_true_hit_filtering");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.sample_size(10);

    group.bench_function("exact_join_with_interior_cells", |b| {
        let mut counts = vec![0u64; n];
        b.iter(|| act_core::join_exact(&with_interior, &refiner, &points, &mut counts));
    });
    group.bench_function("exact_join_without_interior_cells", |b| {
        let mut counts = vec![0u64; n];
        b.iter(|| act_core::join_exact(&no_interior, &refiner, &points, &mut counts));
    });
    group.finish();
}

fn bench_radix_vs_binary_search(c: &mut Criterion) {
    let ds = datagen::neighborhoods(42);
    let points = make_points(&ds, BATCH, 7);
    let cells = to_cells(&points);
    let params = CoveringParams::new(15.0);

    let coverings: Vec<_> = ds
        .polygons
        .iter()
        .map(|p| cover_polygon(p, &params).unwrap())
        .collect();
    let sc = build_super_covering(&coverings);
    let sorted = SortedCellIndex::build(&sc);
    let index = ActIndex::from_coverings(
        ds.polygons
            .iter()
            .map(|p| cover_polygon(p, &params).unwrap())
            .collect(),
        params,
        0.0,
    );

    let mut group = c.benchmark_group("ablation_radix_vs_binary_search");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.sample_size(15);

    group.bench_function("act_trie_lookup", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &cell in &cells {
                if !matches!(index.probe_cell(cell), act_core::Probe::Miss) {
                    hits += 1;
                }
            }
            hits
        });
    });
    group.bench_function("sorted_array_binary_search", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for &cell in &cells {
                if !matches!(sorted.lookup(cell), act_core::Probe::Miss) {
                    hits += 1;
                }
            }
            hits
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hierarchy,
    bench_true_hit_filtering,
    bench_radix_vs_binary_search
);
criterion_main!(benches);
