//! Criterion counterpart of the paper's Figure 4: the multithreaded join
//! driver at increasing thread counts.
//!
//! On the paper's 14-core machine this shows near-linear scaling; on a
//! small container it mainly validates that the parallel driver adds no
//! overhead at 1 thread and stays correct. The `fig4` binary prints the
//! paper-style series with correctness assertions.

use act_core::{join_parallel_cells, ActIndex};
use bench::{make_points, to_cells};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const BATCH: usize = 400_000;

fn bench_scalability(c: &mut Criterion) {
    let ds = datagen::neighborhoods(42);
    let index = ActIndex::build(&ds.polygons, 15.0).unwrap();
    let points = make_points(&ds, BATCH, 7);
    let cells = to_cells(&points);
    let n = ds.polygons.len();

    let mut group = c.benchmark_group("fig4_scalability");
    group.throughput(Throughput::Elements(BATCH as u64));
    group.sample_size(15);

    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new("neighborhoods_15m", threads), |b| {
            b.iter(|| join_parallel_cells(&index, &cells, n, threads));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
