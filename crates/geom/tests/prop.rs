//! Property-based tests for the geometry primitives.

use geom::{segments_intersect, CellRelation, Coord, Polygon, PreparedPolygon, Rect, Ring};
use proptest::prelude::*;

/// A random convex polygon around (cx, cy): sorted random angles on a
/// radius-perturbed circle. Convexity gives us an independent containment
/// oracle (all-cross-products-same-sign).
fn arb_convex(n: usize) -> impl Strategy<Value = Vec<Coord>> {
    (
        proptest::collection::vec(0.0f64..std::f64::consts::TAU, n),
        0.5f64..2.0,
    )
        .prop_map(|(mut angles, r)| {
            angles.sort_by(|a, b| a.partial_cmp(b).unwrap());
            angles.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
            angles
                .iter()
                .map(|&th| Coord::new(r * th.cos(), r * th.sin()))
                .collect()
        })
        .prop_filter("need >=3 distinct vertices", |v: &Vec<Coord>| v.len() >= 3)
}

fn convex_contains(verts: &[Coord], p: Coord) -> bool {
    // Strictly-inside-or-on test for CCW convex vertices.
    let n = verts.len();
    for i in 0..n {
        let a = verts[i];
        let b = verts[(i + 1) % n];
        let cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
        if cross < -1e-12 {
            return false;
        }
    }
    true
}

proptest! {
    // Explicit case count: keeps this suite deterministic-duration in CI
    // (the whole workspace test run must stay under ~60 s).
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ring_contains_matches_convex_oracle(
        verts in arb_convex(12),
        px in -3.0f64..3.0,
        py in -3.0f64..3.0,
    ) {
        let ring = Ring::new(verts.clone());
        let p = Coord::new(px, py);
        // Skip points within a whisker of the boundary, where the oracle's
        // epsilon and the ring's closed-set rule may legitimately differ.
        let poly = Polygon::new(ring.clone(), vec![]);
        let d = poly.distance_meters(p);
        prop_assume!(d == 0.0 || d > 50.0);
        prop_assert_eq!(ring.contains(p), convex_contains(&verts, p));
    }

    #[test]
    fn prepared_agrees_with_ring(
        verts in arb_convex(16),
        px in -3.0f64..3.0,
        py in -3.0f64..3.0,
    ) {
        let poly = Polygon::new(Ring::new(verts), vec![]);
        let prep = PreparedPolygon::new(&poly, 0);
        let p = Coord::new(px, py);
        // Boundary semantics differ (closed vs half-open); skip on-edge.
        prop_assume!(poly.distance_meters(p) == 0.0 || poly.distance_meters(p) > 1.0);
        let on_boundary = poly
            .all_edges()
            .any(|(a, b)| geom::segment::point_segment_distance_meters(p, a, b) < 1.0);
        prop_assume!(!on_boundary);
        prop_assert_eq!(prep.contains(p), poly.contains(p));
    }

    #[test]
    fn segment_intersection_is_symmetric(
        ax in -5.0f64..5.0, ay in -5.0f64..5.0,
        bx in -5.0f64..5.0, by in -5.0f64..5.0,
        cx in -5.0f64..5.0, cy in -5.0f64..5.0,
        dx in -5.0f64..5.0, dy in -5.0f64..5.0,
    ) {
        let (a, b) = (Coord::new(ax, ay), Coord::new(bx, by));
        let (c, d) = (Coord::new(cx, cy), Coord::new(dx, dy));
        prop_assert_eq!(
            segments_intersect(a, b, c, d),
            segments_intersect(c, d, a, b)
        );
        prop_assert_eq!(
            segments_intersect(a, b, c, d),
            segments_intersect(b, a, d, c)
        );
        // A segment always intersects itself and its endpoints.
        prop_assert!(segments_intersect(a, b, a, b));
        prop_assert!(segments_intersect(a, b, a, a));
    }

    #[test]
    fn distance_zero_iff_contained(
        verts in arb_convex(10),
        px in -3.0f64..3.0,
        py in -3.0f64..3.0,
    ) {
        let poly = Polygon::new(Ring::new(verts), vec![]);
        let p = Coord::new(px, py);
        let d = poly.distance_meters(p);
        if poly.contains(p) {
            prop_assert_eq!(d, 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
    }

    #[test]
    fn relate_quad_consistent_with_containment(
        verts in arb_convex(10),
        qx in -3.0f64..3.0,
        qy in -3.0f64..3.0,
        half in 0.01f64..0.5,
    ) {
        let poly = Polygon::new(Ring::new(verts), vec![]);
        let quad = [
            Coord::new(qx - half, qy - half),
            Coord::new(qx + half, qy - half),
            Coord::new(qx + half, qy + half),
            Coord::new(qx - half, qy + half),
        ];
        let center = Coord::new(qx, qy);
        match poly.relate_quad(&quad) {
            CellRelation::Inside => {
                // Everything sampled inside the quad is inside the polygon.
                prop_assert!(poly.contains(center));
                for c in &quad {
                    prop_assert!(poly.contains(*c));
                }
            }
            CellRelation::Outside => {
                prop_assert!(!poly.contains(center));
                for c in &quad {
                    prop_assert!(!poly.contains(*c));
                }
            }
            CellRelation::Boundary => {} // conservative; nothing to check
        }
    }

    #[test]
    fn rect_algebra(
        x0 in -10.0f64..10.0, y0 in -10.0f64..10.0,
        w0 in 0.0f64..5.0, h0 in 0.0f64..5.0,
        x1 in -10.0f64..10.0, y1 in -10.0f64..10.0,
        w1 in 0.0f64..5.0, h1 in 0.0f64..5.0,
        px in -12.0f64..12.0, py in -12.0f64..12.0,
    ) {
        let a = Rect::new(Coord::new(x0, y0), Coord::new(x0 + w0, y0 + h0));
        let b = Rect::new(Coord::new(x1, y1), Coord::new(x1 + w1, y1 + h1));
        let m = a.merged(&b);
        prop_assert!(m.contains_rect(&a) && m.contains_rect(&b));
        prop_assert!(m.area() + 1e-12 >= a.area().max(b.area()));
        // Intersection area symmetric and bounded.
        prop_assert!((a.intersection_area(&b) - b.intersection_area(&a)).abs() < 1e-12);
        prop_assert!(a.intersection_area(&b) <= a.area().min(b.area()) + 1e-12);
        // Point containment monotone under merge.
        let p = Coord::new(px, py);
        if a.contains(p) || b.contains(p) {
            prop_assert!(m.contains(p));
        }
        // contains_rect implies intersects (for non-empty).
        if a.contains_rect(&b) {
            prop_assert!(a.intersects(&b));
        }
    }

    #[test]
    fn ring_area_invariant_under_rotation(verts in arb_convex(8), k in 0usize..8) {
        let ring = Ring::new(verts.clone());
        let mut rotated = verts.clone();
        rotated.rotate_left(k % verts.len());
        let ring2 = Ring::new(rotated);
        prop_assert!((ring.area() - ring2.area()).abs() < 1e-9);
        prop_assert_eq!(ring.is_ccw(), ring2.is_ccw());
    }
}
