//! Prepared polygons: latitude-banded edge buckets for fast repeated
//! point-in-polygon tests.
//!
//! The refinement phase of a classical filter-and-refine join performs one
//! PIP test per candidate pair. A naive test is O(edges); borough polygons
//! have thousands of edges. `PreparedPolygon` buckets edges by latitude
//! band so a test only scans edges whose y-span overlaps the query's band —
//! O(edges/bands) expected. This is our stand-in for the optimized PIP
//! engines inside boost::geometry / GEOS prepared geometries.

use crate::coord::Coord;
use crate::polygon::Polygon;
use crate::rect::Rect;

/// An edge in the flat SoA edge list.
#[derive(Debug, Clone, Copy)]
struct Edge {
    ax: f64,
    ay: f64,
    bx: f64,
    by: f64,
}

/// A polygon preprocessed for fast point-in-polygon queries.
#[derive(Debug, Clone)]
pub struct PreparedPolygon {
    bbox: Rect,
    y_lo: f64,
    inv_band_height: f64,
    /// `bands[k]` lists indices into `edges` whose y-span overlaps band `k`.
    bands: Vec<Vec<u32>>,
    edges: Vec<Edge>,
}

impl PreparedPolygon {
    /// Preprocesses `poly`. `bands_hint` of 0 picks `~sqrt(edges)` bands,
    /// which balances band-list length against per-band edge count.
    pub fn new(poly: &Polygon, bands_hint: usize) -> PreparedPolygon {
        let bbox = *poly.bbox();
        let edges: Vec<Edge> = poly
            .all_edges()
            .map(|(a, b)| Edge {
                ax: a.x,
                ay: a.y,
                bx: b.x,
                by: b.y,
            })
            .collect();
        let n_bands = if bands_hint > 0 {
            bands_hint
        } else {
            ((edges.len() as f64).sqrt().ceil() as usize).max(1)
        };
        let y_lo = bbox.min.y;
        let height = (bbox.max.y - y_lo).max(f64::MIN_POSITIVE);
        let inv_band_height = n_bands as f64 / height;
        let mut bands = vec![Vec::new(); n_bands];
        for (idx, e) in edges.iter().enumerate() {
            let lo = band_of(e.ay.min(e.by), y_lo, inv_band_height, n_bands);
            let hi = band_of(e.ay.max(e.by), y_lo, inv_band_height, n_bands);
            for band in bands.iter_mut().take(hi + 1).skip(lo) {
                band.push(idx as u32);
            }
        }
        PreparedPolygon {
            bbox,
            y_lo,
            inv_band_height,
            bands,
            edges,
        }
    }

    /// The polygon's bounding box.
    #[inline]
    pub fn bbox(&self) -> &Rect {
        &self.bbox
    }

    /// Point containment (crossing number over the point's latitude band).
    ///
    /// Boundary semantics differ slightly from [`Polygon::contains`]: points
    /// exactly on an edge follow the half-open crossing rule rather than
    /// closed-set semantics. For the join this is irrelevant — measure-zero
    /// inputs — and it is what a production refinement engine does.
    pub fn contains(&self, p: Coord) -> bool {
        if !self.bbox.contains(p) {
            return false;
        }
        let band = band_of(p.y, self.y_lo, self.inv_band_height, self.bands.len());
        let mut inside = false;
        for &idx in &self.bands[band] {
            let e = &self.edges[idx as usize];
            if (e.by > p.y) != (e.ay > p.y) {
                let x_cross = e.bx + (p.y - e.by) * (e.ax - e.bx) / (e.ay - e.by);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// Number of edges indexed.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Approximate heap memory used, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.edges.len() * std::mem::size_of::<Edge>()
            + self
                .bands
                .iter()
                .map(|b| b.len() * std::mem::size_of::<u32>() + std::mem::size_of::<Vec<u32>>())
                .sum::<usize>()
    }
}

#[inline]
fn band_of(y: f64, y_lo: f64, inv_band_height: f64, n_bands: usize) -> usize {
    let b = ((y - y_lo) * inv_band_height) as isize;
    b.clamp(0, n_bands as isize - 1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Ring;

    fn star(n: usize) -> Polygon {
        // A spiky star polygon around the origin — lots of concavity.
        let mut v = Vec::new();
        for k in 0..(2 * n) {
            let r = if k % 2 == 0 { 1.0 } else { 0.4 };
            let th = std::f64::consts::PI * k as f64 / n as f64;
            v.push(Coord::new(r * th.cos(), r * th.sin()));
        }
        Polygon::new(Ring::new(v), vec![])
    }

    #[test]
    fn agrees_with_polygon_contains_on_grid() {
        let poly = star(12);
        let prep = PreparedPolygon::new(&poly, 0);
        assert_eq!(prep.num_edges(), 24);
        let mut checked = 0;
        for i in -11..=11 {
            for j in -11..=11 {
                let p = Coord::new(i as f64 / 10.0 + 0.003, j as f64 / 10.0 + 0.007);
                assert_eq!(prep.contains(p), poly.contains(p), "disagreement at {p}");
                checked += 1;
            }
        }
        assert!(checked > 500);
    }

    #[test]
    fn band_count_is_respected() {
        let poly = star(50);
        for bands in [1usize, 2, 7, 64] {
            let prep = PreparedPolygon::new(&poly, bands);
            assert_eq!(prep.bands.len(), bands);
            // Same answers regardless of band count.
            for p in [
                Coord::new(0.0, 0.0),
                Coord::new(0.9, 0.0),
                Coord::new(2.0, 2.0),
                Coord::new(-0.5, 0.1),
            ] {
                assert_eq!(prep.contains(p), poly.contains(p), "bands={bands} p={p}");
            }
        }
    }

    #[test]
    fn memory_accounting_positive() {
        let prep = PreparedPolygon::new(&star(10), 0);
        assert!(prep.memory_bytes() > 0);
    }
}
