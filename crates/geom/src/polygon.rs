//! Polygons (outer ring + holes) and multipolygons.

use crate::coord::Coord;
use crate::rect::Rect;
use crate::ring::Ring;
use crate::segment::{point_segment_distance_meters, segments_intersect};
use crate::CellRelation;

/// A polygon: one outer ring plus zero or more holes.
///
/// Winding order is not required to follow a convention — containment uses
/// ray casting, which is orientation-insensitive. Holes must lie inside the
/// outer ring and must not intersect each other (the generators guarantee
/// this; it is not validated here).
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    outer: Ring,
    holes: Vec<Ring>,
    bbox: Rect,
}

impl Polygon {
    /// Creates a polygon from its outer ring and holes.
    pub fn new(outer: Ring, holes: Vec<Ring>) -> Polygon {
        let bbox = outer.bbox();
        Polygon { outer, holes, bbox }
    }

    /// The outer ring.
    #[inline]
    pub fn outer(&self) -> &Ring {
        &self.outer
    }

    /// The holes.
    #[inline]
    pub fn holes(&self) -> &[Ring] {
        &self.holes
    }

    /// Cached bounding rectangle of the outer ring.
    #[inline]
    pub fn bbox(&self) -> &Rect {
        &self.bbox
    }

    /// Total number of vertices across all rings.
    pub fn num_vertices(&self) -> usize {
        self.outer.len() + self.holes.iter().map(Ring::len).sum::<usize>()
    }

    /// Area (outer minus holes) in degree².
    pub fn area(&self) -> f64 {
        self.outer.area() - self.holes.iter().map(Ring::area).sum::<f64>()
    }

    /// Point containment with closed-set semantics on the outer boundary.
    ///
    /// A point inside a hole is *not* contained; a point exactly on a hole
    /// boundary *is* contained (it lies on the polygon's boundary, and the
    /// boundary belongs to the closed polygon).
    pub fn contains(&self, p: Coord) -> bool {
        if !self.bbox.contains(p) {
            return false;
        }
        if !self.outer.contains(p) {
            return false;
        }
        for h in &self.holes {
            // `Ring::contains` is closed, so on-hole-boundary points return
            // true there; treat them as on the polygon boundary => contained.
            if h.contains(p) && !on_ring_boundary(h, p) {
                return false;
            }
        }
        true
    }

    /// Iterates over all edges of all rings.
    pub fn all_edges(&self) -> impl Iterator<Item = (Coord, Coord)> + '_ {
        self.outer
            .edges()
            .chain(self.holes.iter().flat_map(|h| h.edges()))
    }

    /// Distance from `p` to the polygon in meters: 0 if contained,
    /// otherwise the distance to the nearest boundary edge.
    ///
    /// This is the quantity the paper's precision guarantee bounds: every
    /// approximate join partner reported for `p` has
    /// `p.distance_to_polygon ≤ ε`.
    pub fn distance_meters(&self, p: Coord) -> f64 {
        if self.contains(p) {
            return 0.0;
        }
        let mut best = f64::MAX;
        for (a, b) in self.all_edges() {
            let d = point_segment_distance_meters(p, a, b);
            if d < best {
                best = d;
            }
        }
        best
    }

    /// Classifies a convex quad (e.g. the lat/lng corners of a grid cell,
    /// given in ring order) against this polygon.
    ///
    /// Returns:
    /// * [`CellRelation::Outside`]  — quad ∩ polygon = ∅
    /// * [`CellRelation::Inside`]   — quad ⊆ polygon (true-hit cell)
    /// * [`CellRelation::Boundary`] — the quad intersects the boundary
    ///
    /// Touching counts as `Boundary` (conservative: never misclassifies a
    /// partially-covered cell as `Inside`/`Outside`).
    pub fn relate_quad(&self, quad: &[Coord; 4]) -> CellRelation {
        let quad_bbox = Rect::from_points(quad.iter().copied());
        if !self.bbox.intersects(&quad_bbox) {
            return CellRelation::Outside;
        }

        // Any polygon edge crossing any quad edge => boundary cell.
        // The bbox pre-filter on each edge keeps this O(edges near the quad).
        for (a, b) in self.all_edges() {
            let edge_bbox = Rect::from_points([a, b]);
            if !edge_bbox.intersects(&quad_bbox) {
                continue;
            }
            for i in 0..4 {
                let (q1, q2) = (quad[i], quad[(i + 1) % 4]);
                if segments_intersect(a, b, q1, q2) {
                    return CellRelation::Boundary;
                }
            }
        }

        // No edge crossings: the quad is entirely inside or outside each
        // ring. If any ring (outer or hole) is nested inside the quad, part
        // of the quad is on both sides of the boundary.
        if quad_contains_point(quad, self.outer.vertices()[0]) {
            return CellRelation::Boundary;
        }
        for h in &self.holes {
            if quad_contains_point(quad, h.vertices()[0]) {
                return CellRelation::Boundary;
            }
        }

        // The quad is now either fully inside the polygon interior or fully
        // outside; one representative point decides.
        if self.contains(quad_center(quad)) {
            CellRelation::Inside
        } else {
            CellRelation::Outside
        }
    }
}

fn quad_center(quad: &[Coord; 4]) -> Coord {
    Coord::new(
        0.25 * (quad[0].x + quad[1].x + quad[2].x + quad[3].x),
        0.25 * (quad[0].y + quad[1].y + quad[2].y + quad[3].y),
    )
}

/// Point-in-convex-quad by ray casting over the 4 edges (reuses the ring
/// logic on a stack-allocated ring would need an allocation; inline a
/// minimal crossing test instead).
fn quad_contains_point(quad: &[Coord; 4], p: Coord) -> bool {
    let mut inside = false;
    let mut j = 3;
    for i in 0..4 {
        let a = quad[j];
        let b = quad[i];
        if (b.y > p.y) != (a.y > p.y) {
            let x_cross = b.x + (p.y - b.y) * (a.x - b.x) / (a.y - b.y);
            if p.x < x_cross {
                inside = !inside;
            }
        }
        j = i;
    }
    inside
}

fn on_ring_boundary(ring: &Ring, p: Coord) -> bool {
    use crate::segment::{on_segment, orient2d, Orientation};
    ring.edges()
        .any(|(a, b)| orient2d(a, b, p) == Orientation::Collinear && on_segment(a, b, p))
}

/// A collection of polygons treated as one region (e.g. a borough made of
/// several islands).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiPolygon {
    polygons: Vec<Polygon>,
}

impl MultiPolygon {
    /// Creates a multipolygon from parts.
    pub fn new(polygons: Vec<Polygon>) -> MultiPolygon {
        MultiPolygon { polygons }
    }

    /// The parts.
    #[inline]
    pub fn polygons(&self) -> &[Polygon] {
        &self.polygons
    }

    /// Union bounding box.
    pub fn bbox(&self) -> Rect {
        let mut r = Rect::EMPTY;
        for p in &self.polygons {
            r.merge(p.bbox());
        }
        r
    }

    /// True if any part contains `p`.
    pub fn contains(&self, p: Coord) -> bool {
        self.polygons.iter().any(|poly| poly.contains(p))
    }

    /// Minimum distance over parts.
    pub fn distance_meters(&self, p: Coord) -> f64 {
        self.polygons
            .iter()
            .map(|poly| poly.distance_meters(p))
            .fold(f64::MAX, f64::min)
    }

    /// Total vertices.
    pub fn num_vertices(&self) -> usize {
        self.polygons.iter().map(Polygon::num_vertices).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(x0: f64, y0: f64, x1: f64, y1: f64) -> Ring {
        Ring::new(vec![
            Coord::new(x0, y0),
            Coord::new(x1, y0),
            Coord::new(x1, y1),
            Coord::new(x0, y1),
        ])
    }

    fn donut() -> Polygon {
        Polygon::new(
            square(0.0, 0.0, 10.0, 10.0),
            vec![square(4.0, 4.0, 6.0, 6.0)],
        )
    }

    #[test]
    fn contains_respects_holes() {
        let d = donut();
        assert!(d.contains(Coord::new(1.0, 1.0)));
        assert!(!d.contains(Coord::new(5.0, 5.0))); // in the hole
        assert!(!d.contains(Coord::new(11.0, 5.0)));
        // On the hole boundary: closed polygon => contained.
        assert!(d.contains(Coord::new(4.0, 5.0)));
        // On the outer boundary.
        assert!(d.contains(Coord::new(0.0, 5.0)));
    }

    #[test]
    fn area_subtracts_holes() {
        assert_eq!(donut().area(), 100.0 - 4.0);
        assert_eq!(donut().num_vertices(), 8);
    }

    #[test]
    fn distance_zero_inside_positive_outside() {
        let d = donut();
        assert_eq!(d.distance_meters(Coord::new(1.0, 1.0)), 0.0);
        let out = d.distance_meters(Coord::new(12.0, 5.0));
        assert!(out > 0.0);
        // ~2 degrees from the right edge at y=5: ~2·111km·cos(5°).
        let expected = 2.0 * crate::coord::METERS_PER_DEG_LAT * (5.0f64).to_radians().cos();
        assert!((out - expected).abs() / expected < 0.01, "got {out}");
        // Inside the hole: distance to hole boundary (1 degree from edge at (5,5)).
        let inhole = d.distance_meters(Coord::new(5.0, 5.0));
        assert!(inhole > 0.0);
    }

    #[test]
    fn relate_quad_basic() {
        let d = donut();
        let inside: [Coord; 4] = [
            Coord::new(1.0, 1.0),
            Coord::new(2.0, 1.0),
            Coord::new(2.0, 2.0),
            Coord::new(1.0, 2.0),
        ];
        assert_eq!(d.relate_quad(&inside), CellRelation::Inside);

        let outside: [Coord; 4] = [
            Coord::new(20.0, 20.0),
            Coord::new(21.0, 20.0),
            Coord::new(21.0, 21.0),
            Coord::new(20.0, 21.0),
        ];
        assert_eq!(d.relate_quad(&outside), CellRelation::Outside);

        let straddling: [Coord; 4] = [
            Coord::new(9.0, 1.0),
            Coord::new(11.0, 1.0),
            Coord::new(11.0, 2.0),
            Coord::new(9.0, 2.0),
        ];
        assert_eq!(d.relate_quad(&straddling), CellRelation::Boundary);
    }

    #[test]
    fn relate_quad_hole_cases() {
        let d = donut();
        // Quad entirely within the hole: outside the polygon.
        let in_hole: [Coord; 4] = [
            Coord::new(4.5, 4.5),
            Coord::new(5.5, 4.5),
            Coord::new(5.5, 5.5),
            Coord::new(4.5, 5.5),
        ];
        assert_eq!(d.relate_quad(&in_hole), CellRelation::Outside);
        // Quad straddling the hole boundary.
        let straddle_hole: [Coord; 4] = [
            Coord::new(3.5, 4.5),
            Coord::new(4.5, 4.5),
            Coord::new(4.5, 5.5),
            Coord::new(3.5, 5.5),
        ];
        assert_eq!(d.relate_quad(&straddle_hole), CellRelation::Boundary);
        // Quad swallowing the whole hole but inside the outer ring: boundary.
        let swallow: [Coord; 4] = [
            Coord::new(3.0, 3.0),
            Coord::new(7.0, 3.0),
            Coord::new(7.0, 7.0),
            Coord::new(3.0, 7.0),
        ];
        assert_eq!(d.relate_quad(&swallow), CellRelation::Boundary);
    }

    #[test]
    fn relate_quad_polygon_inside_quad() {
        // Tiny polygon entirely within a big quad: the quad straddles the
        // boundary (parts are in, parts are out).
        let tiny = Polygon::new(square(1.0, 1.0, 1.1, 1.1), vec![]);
        let big: [Coord; 4] = [
            Coord::new(0.0, 0.0),
            Coord::new(5.0, 0.0),
            Coord::new(5.0, 5.0),
            Coord::new(0.0, 5.0),
        ];
        assert_eq!(tiny.relate_quad(&big), CellRelation::Boundary);
    }

    #[test]
    fn relate_quad_touching_counts_as_boundary() {
        let d = donut();
        // Quad sharing exactly one edge with the polygon's outer boundary.
        let touching: [Coord; 4] = [
            Coord::new(10.0, 1.0),
            Coord::new(12.0, 1.0),
            Coord::new(12.0, 2.0),
            Coord::new(10.0, 2.0),
        ];
        assert_eq!(d.relate_quad(&touching), CellRelation::Boundary);
    }

    #[test]
    fn multipolygon_union_semantics() {
        let mp = MultiPolygon::new(vec![
            Polygon::new(square(0.0, 0.0, 1.0, 1.0), vec![]),
            Polygon::new(square(5.0, 5.0, 6.0, 6.0), vec![]),
        ]);
        assert!(mp.contains(Coord::new(0.5, 0.5)));
        assert!(mp.contains(Coord::new(5.5, 5.5)));
        assert!(!mp.contains(Coord::new(3.0, 3.0)));
        assert_eq!(mp.num_vertices(), 8);
        assert!(mp.bbox().contains(Coord::new(3.0, 3.0)));
        let d = mp.distance_meters(Coord::new(2.0, 0.5));
        assert!(d > 0.0);
    }
}
