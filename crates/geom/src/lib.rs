//! # geom — planar geometry primitives for the ACT geospatial join
//!
//! This crate provides the geometric substrate of the reproduction of
//! Kipf et al., *Approximate Geospatial Joins with Precision Guarantees*
//! (ICDE 2018): polygons, point-in-polygon tests, segment predicates,
//! distances, and the polygon-versus-cell classification used when
//! computing quadtree coverings.
//!
//! ## Coordinate convention
//!
//! All geometry lives in **geodetic degree space**: `x` is longitude and
//! `y` is latitude, both in degrees. Topological predicates (containment,
//! intersection) are evaluated planarly, which is exact for the city-scale
//! polygons this system targets (the datasets span ~0.5°; the projection
//! error of treating great-circle edges as straight lines at that scale is
//! far below GPS accuracy). Metric quantities (distances in meters) apply
//! the local scale factors `meters/°lat` and `meters/°lng = cos(lat)·…`.
//!
//! ## Quick example
//!
//! ```
//! use geom::{Coord, Polygon, Ring};
//!
//! let square = Polygon::new(
//!     Ring::new(vec![
//!         Coord::new(0.0, 0.0),
//!         Coord::new(1.0, 0.0),
//!         Coord::new(1.0, 1.0),
//!         Coord::new(0.0, 1.0),
//!     ]),
//!     vec![],
//! );
//! assert!(square.contains(Coord::new(0.5, 0.5)));
//! assert!(!square.contains(Coord::new(1.5, 0.5)));
//! ```

#![forbid(unsafe_code)]

pub mod coord;
pub mod polygon;
pub mod prepared;
pub mod rect;
pub mod ring;
pub mod segment;

pub use coord::Coord;
pub use polygon::{MultiPolygon, Polygon};
pub use prepared::PreparedPolygon;
pub use rect::Rect;
pub use ring::Ring;
pub use segment::{orient2d, segments_intersect, Orientation};

/// The relation of a (convex) cell quad to a polygon, from the cell's
/// perspective. This drives the covering recursion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellRelation {
    /// The cell is entirely outside the polygon.
    Outside,
    /// The cell is entirely inside the polygon (a *true hit* / interior cell).
    Inside,
    /// The cell intersects the polygon boundary (a *candidate* cell).
    Boundary,
}
