//! Linear rings: closed polylines that bound polygon faces.

use crate::coord::Coord;
use crate::rect::Rect;
use crate::segment::{on_segment, orient2d, Orientation};

/// A closed ring of vertices. The closing edge from the last vertex back to
/// the first is implicit (vertices are stored without repetition).
///
/// Rings are stored as given; orientation can be queried with
/// [`Ring::is_ccw`] and normalized with [`Ring::reversed`].
#[derive(Debug, Clone, PartialEq)]
pub struct Ring {
    vertices: Vec<Coord>,
}

impl Ring {
    /// Creates a ring from at least three vertices.
    ///
    /// # Panics
    /// Panics if fewer than 3 vertices are supplied (a degenerate ring).
    pub fn new(vertices: Vec<Coord>) -> Ring {
        assert!(
            vertices.len() >= 3,
            "a ring needs at least 3 vertices, got {}",
            vertices.len()
        );
        Ring { vertices }
    }

    /// The vertices (closing edge implicit).
    #[inline]
    pub fn vertices(&self) -> &[Coord] {
        &self.vertices
    }

    /// Number of vertices (== number of edges).
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Rings can never be empty; provided for clippy symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over the edges, including the closing edge.
    pub fn edges(&self) -> impl Iterator<Item = (Coord, Coord)> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| (self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Twice the signed area (shoelace formula). Positive = CCW.
    pub fn signed_area2(&self) -> f64 {
        let mut s = 0.0;
        for (p, q) in self.edges() {
            s += p.cross(q);
        }
        s
    }

    /// Absolute area in degree² units.
    #[inline]
    pub fn area(&self) -> f64 {
        0.5 * self.signed_area2().abs()
    }

    /// True if vertices wind counter-clockwise.
    #[inline]
    pub fn is_ccw(&self) -> bool {
        self.signed_area2() > 0.0
    }

    /// A copy with reversed winding.
    pub fn reversed(&self) -> Ring {
        let mut v = self.vertices.clone();
        v.reverse();
        Ring { vertices: v }
    }

    /// The bounding rectangle.
    pub fn bbox(&self) -> Rect {
        Rect::from_points(self.vertices.iter().copied())
    }

    /// Point-in-ring test by the crossing-number (ray casting) rule.
    ///
    /// Points exactly on an edge are reported as **contained** (closed-set
    /// semantics, which is what the join's exact-refinement mode wants: a
    /// GPS point on a boundary should match the polygon).
    pub fn contains(&self, p: Coord) -> bool {
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let a = self.vertices[j];
            let b = self.vertices[i];
            // On-edge check (closed semantics).
            if orient2d(a, b, p) == Orientation::Collinear && on_segment(a, b, p) {
                return true;
            }
            // Half-open crossing rule: count edges whose y-span straddles p.y.
            if (b.y > p.y) != (a.y > p.y) {
                let x_cross = b.x + (p.y - b.y) * (a.x - b.x) / (a.y - b.y);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Perimeter length in degree units.
    pub fn perimeter_deg(&self) -> f64 {
        self.edges().map(|(p, q)| p.distance_deg(q)).sum()
    }

    /// Perimeter length in meters (local equirectangular approximation).
    pub fn perimeter_meters(&self) -> f64 {
        self.edges().map(|(p, q)| p.distance_meters(q)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Ring {
        Ring::new(vec![
            Coord::new(0.0, 0.0),
            Coord::new(1.0, 0.0),
            Coord::new(1.0, 1.0),
            Coord::new(0.0, 1.0),
        ])
    }

    #[test]
    #[should_panic(expected = "at least 3 vertices")]
    fn degenerate_ring_panics() {
        Ring::new(vec![Coord::new(0.0, 0.0), Coord::new(1.0, 0.0)]);
    }

    #[test]
    fn area_and_orientation() {
        let sq = unit_square();
        assert_eq!(sq.area(), 1.0);
        assert!(sq.is_ccw());
        let rev = sq.reversed();
        assert!(!rev.is_ccw());
        assert_eq!(rev.area(), 1.0);
    }

    #[test]
    fn containment_interior_exterior() {
        let sq = unit_square();
        assert!(sq.contains(Coord::new(0.5, 0.5)));
        assert!(!sq.contains(Coord::new(1.5, 0.5)));
        assert!(!sq.contains(Coord::new(-0.5, 0.5)));
        assert!(!sq.contains(Coord::new(0.5, -0.5)));
        assert!(!sq.contains(Coord::new(0.5, 1.5)));
    }

    #[test]
    fn containment_on_boundary_is_closed() {
        let sq = unit_square();
        assert!(sq.contains(Coord::new(0.0, 0.5))); // edge
        assert!(sq.contains(Coord::new(0.5, 0.0))); // edge
        assert!(sq.contains(Coord::new(0.0, 0.0))); // vertex
        assert!(sq.contains(Coord::new(1.0, 1.0))); // vertex
    }

    #[test]
    fn containment_concave() {
        // A "C" shape: point in the notch is outside.
        let c = Ring::new(vec![
            Coord::new(0.0, 0.0),
            Coord::new(3.0, 0.0),
            Coord::new(3.0, 1.0),
            Coord::new(1.0, 1.0),
            Coord::new(1.0, 2.0),
            Coord::new(3.0, 2.0),
            Coord::new(3.0, 3.0),
            Coord::new(0.0, 3.0),
        ]);
        assert!(c.contains(Coord::new(0.5, 1.5)));
        assert!(!c.contains(Coord::new(2.0, 1.5))); // inside the notch
        assert!(c.contains(Coord::new(2.0, 0.5)));
        assert!(c.contains(Coord::new(2.0, 2.5)));
    }

    #[test]
    fn containment_ray_through_vertex() {
        // A point whose rightward ray passes exactly through a vertex must
        // not be double counted. Diamond with vertex at (1, 0.5).
        let d = Ring::new(vec![
            Coord::new(0.0, 0.0),
            Coord::new(1.0, 0.5),
            Coord::new(0.0, 1.0),
            Coord::new(-1.0, 0.5),
        ]);
        assert!(d.contains(Coord::new(0.0, 0.5)));
        assert!(!d.contains(Coord::new(-2.0, 0.5)));
        assert!(!d.contains(Coord::new(1.5, 0.5)));
    }

    #[test]
    fn edges_close_the_ring() {
        let sq = unit_square();
        let edges: Vec<_> = sq.edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[3].1, sq.vertices()[0]);
    }

    #[test]
    fn perimeter() {
        assert!((unit_square().perimeter_deg() - 4.0).abs() < 1e-12);
    }
}
