//! Axis-aligned bounding rectangles (MBRs).

use crate::coord::Coord;

/// An axis-aligned rectangle in degree space; the minimum bounding
/// rectangle (MBR) type used by the R-tree baseline and by generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub min: Coord,
    pub max: Coord,
}

impl Rect {
    /// An "empty" rectangle that behaves as the identity for
    /// [`Rect::expand_to`] (contains nothing, min > max).
    pub const EMPTY: Rect = Rect {
        min: Coord::new(f64::MAX, f64::MAX),
        max: Coord::new(f64::MIN, f64::MIN),
    };

    /// Creates a rectangle from corner coordinates.
    #[inline]
    pub fn new(min: Coord, max: Coord) -> Rect {
        Rect { min, max }
    }

    /// The tight bound of a point set. Returns [`Rect::EMPTY`] for an empty
    /// iterator.
    pub fn from_points<I: IntoIterator<Item = Coord>>(pts: I) -> Rect {
        let mut r = Rect::EMPTY;
        for p in pts {
            r.expand_to(p);
        }
        r
    }

    /// True if min > max on either axis (contains nothing).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Grows this rectangle to include `p`.
    #[inline]
    pub fn expand_to(&mut self, p: Coord) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Grows this rectangle to include another rectangle.
    #[inline]
    pub fn merge(&mut self, o: &Rect) {
        self.min.x = self.min.x.min(o.min.x);
        self.min.y = self.min.y.min(o.min.y);
        self.max.x = self.max.x.max(o.max.x);
        self.max.y = self.max.y.max(o.max.y);
    }

    /// The union of two rectangles.
    #[inline]
    pub fn merged(&self, o: &Rect) -> Rect {
        let mut r = *self;
        r.merge(o);
        r
    }

    /// Closed-set point containment.
    #[inline]
    pub fn contains(&self, p: Coord) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True if the (closed) rectangles overlap.
    #[inline]
    pub fn intersects(&self, o: &Rect) -> bool {
        self.min.x <= o.max.x
            && self.max.x >= o.min.x
            && self.min.y <= o.max.y
            && self.max.y >= o.min.y
    }

    /// True if `o` lies entirely within this rectangle.
    #[inline]
    pub fn contains_rect(&self, o: &Rect) -> bool {
        o.min.x >= self.min.x
            && o.max.x <= self.max.x
            && o.min.y >= self.min.y
            && o.max.y <= self.max.y
    }

    /// Area in degree² (zero for empty rects).
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.max.x - self.min.x) * (self.max.y - self.min.y)
        }
    }

    /// Half-perimeter in degrees (the R*-tree "margin" measure).
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.max.x - self.min.x) + (self.max.y - self.min.y)
        }
    }

    /// Area of the intersection with `o` in degree².
    #[inline]
    pub fn intersection_area(&self, o: &Rect) -> f64 {
        let w = (self.max.x.min(o.max.x) - self.min.x.max(o.min.x)).max(0.0);
        let h = (self.max.y.min(o.max.y) - self.min.y.max(o.min.y)).max(0.0);
        w * h
    }

    /// The increase in area needed to include `o`.
    #[inline]
    pub fn enlargement(&self, o: &Rect) -> f64 {
        self.merged(o).area() - self.area()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Coord {
        Coord::new(
            0.5 * (self.min.x + self.max.x),
            0.5 * (self.min.y + self.max.y),
        )
    }

    /// The four corners in CCW order starting at `min`.
    #[inline]
    pub fn corners(&self) -> [Coord; 4] {
        [
            self.min,
            Coord::new(self.max.x, self.min.y),
            self.max,
            Coord::new(self.min.x, self.max.y),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Coord::new(x0, y0), Coord::new(x1, y1))
    }

    #[test]
    fn empty_identity() {
        assert!(Rect::EMPTY.is_empty());
        assert_eq!(Rect::EMPTY.area(), 0.0);
        let mut e = Rect::EMPTY;
        e.expand_to(Coord::new(1.0, 2.0));
        assert_eq!(e, r(1.0, 2.0, 1.0, 2.0));
        assert!(!e.is_empty());
    }

    #[test]
    fn containment_and_intersection() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert!(a.contains(Coord::new(1.0, 1.0)));
        assert!(a.contains(Coord::new(0.0, 0.0))); // closed
        assert!(a.contains(Coord::new(2.0, 2.0)));
        assert!(!a.contains(Coord::new(2.01, 1.0)));

        let b = r(1.0, 1.0, 3.0, 3.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&r(3.0, 3.0, 4.0, 4.0).merged(&r(5.0, 5.0, 6.0, 6.0))));
        assert!(!a.intersects(&r(2.1, 0.0, 3.0, 1.0)));
        // Touching edges count as intersecting (closed sets).
        assert!(a.intersects(&r(2.0, 0.0, 3.0, 1.0)));

        assert!(a.contains_rect(&r(0.5, 0.5, 1.5, 1.5)));
        assert!(!a.contains_rect(&b));
    }

    #[test]
    fn measures() {
        let a = r(0.0, 0.0, 2.0, 3.0);
        assert_eq!(a.area(), 6.0);
        assert_eq!(a.margin(), 5.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.intersection_area(&b), 2.0);
        assert_eq!(a.intersection_area(&r(5.0, 5.0, 6.0, 6.0)), 0.0);
        assert_eq!(a.enlargement(&b), 9.0 - 6.0);
        assert_eq!(a.enlargement(&r(0.5, 0.5, 1.0, 1.0)), 0.0);
    }

    #[test]
    fn from_points_bounds_all() {
        let pts = [
            Coord::new(1.0, 5.0),
            Coord::new(-2.0, 3.0),
            Coord::new(0.5, -1.0),
        ];
        let b = Rect::from_points(pts);
        for p in pts {
            assert!(b.contains(p));
        }
        assert_eq!(b, r(-2.0, -1.0, 1.0, 5.0));
    }

    #[test]
    fn corners_ccw() {
        let a = r(0.0, 0.0, 1.0, 2.0);
        let c = a.corners();
        // Shoelace must be positive for CCW ordering.
        let mut s = 0.0;
        for i in 0..4 {
            let p = c[i];
            let q = c[(i + 1) % 4];
            s += p.x * q.y - q.x * p.y;
        }
        assert!(s > 0.0);
    }
}
