//! Segment predicates: orientation, intersection, point–segment distance.

use crate::coord::Coord;

/// The orientation of an ordered point triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Counter-clockwise turn.
    Ccw,
    /// Clockwise turn.
    Cw,
    /// The three points are collinear.
    Collinear,
}

/// Robust-enough orientation predicate: the sign of the cross product
/// `(b-a) × (c-a)` with a relative epsilon to absorb floating-point noise
/// on nearly collinear inputs.
#[inline]
pub fn orient2d(a: Coord, b: Coord, c: Coord) -> Orientation {
    let det = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
    // Scale-aware tolerance: the determinant's rounding error is bounded by
    // a few ulps of the largest intermediate product.
    let mag = (b.x - a.x).abs().max((b.y - a.y).abs()) * (c.x - a.x).abs().max((c.y - a.y).abs());
    let eps = 1e-14 * mag.max(f64::MIN_POSITIVE);
    if det > eps {
        Orientation::Ccw
    } else if det < -eps {
        Orientation::Cw
    } else {
        Orientation::Collinear
    }
}

/// Returns `true` if point `p` lies on the closed segment `(a, b)`,
/// assuming `a`, `b`, `p` are collinear.
#[inline]
pub fn on_segment(a: Coord, b: Coord, p: Coord) -> bool {
    p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
}

/// Tests whether closed segments `(p1, p2)` and `(q1, q2)` intersect,
/// including touching endpoints and collinear overlap.
pub fn segments_intersect(p1: Coord, p2: Coord, q1: Coord, q2: Coord) -> bool {
    let o1 = orient2d(p1, p2, q1);
    let o2 = orient2d(p1, p2, q2);
    let o3 = orient2d(q1, q2, p1);
    let o4 = orient2d(q1, q2, p2);

    if o1 != o2
        && o3 != o4
        && o1 != Orientation::Collinear
        && o2 != Orientation::Collinear
        && o3 != Orientation::Collinear
        && o4 != Orientation::Collinear
    {
        return true;
    }
    // Collinear / touching special cases.
    (o1 == Orientation::Collinear && on_segment(p1, p2, q1))
        || (o2 == Orientation::Collinear && on_segment(p1, p2, q2))
        || (o3 == Orientation::Collinear && on_segment(q1, q2, p1))
        || (o4 == Orientation::Collinear && on_segment(q1, q2, p2))
}

/// Squared distance from `p` to the closed segment `(a, b)` in degree²
/// units with the x-axis pre-scaled by `kx` (to account for longitude
/// compression); used internally by the meter-distance helpers.
#[inline]
fn point_segment_dist2_scaled(p: Coord, a: Coord, b: Coord, kx: f64) -> f64 {
    let (px, py) = ((p.x - a.x) * kx, p.y - a.y);
    let (bx, by) = ((b.x - a.x) * kx, b.y - a.y);
    let len2 = bx * bx + by * by;
    let t = if len2 == 0.0 {
        0.0
    } else {
        ((px * bx + py * by) / len2).clamp(0.0, 1.0)
    };
    let dx = px - t * bx;
    let dy = py - t * by;
    dx * dx + dy * dy
}

/// Distance in meters from point `p` to the closed segment `(a, b)`,
/// using the local equirectangular approximation at `p`'s latitude.
pub fn point_segment_distance_meters(p: Coord, a: Coord, b: Coord) -> f64 {
    let kx = p.y.to_radians().cos();
    let d2 = point_segment_dist2_scaled(p, a, b, kx);
    d2.sqrt() * crate::coord::METERS_PER_DEG_LAT
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Coord = Coord::new(0.0, 0.0);
    const B: Coord = Coord::new(4.0, 0.0);

    #[test]
    fn orientation_basics() {
        assert_eq!(orient2d(A, B, Coord::new(2.0, 1.0)), Orientation::Ccw);
        assert_eq!(orient2d(A, B, Coord::new(2.0, -1.0)), Orientation::Cw);
        assert_eq!(orient2d(A, B, Coord::new(2.0, 0.0)), Orientation::Collinear);
        assert_eq!(orient2d(A, B, Coord::new(9.0, 0.0)), Orientation::Collinear);
    }

    #[test]
    fn proper_crossing() {
        assert!(segments_intersect(
            A,
            B,
            Coord::new(2.0, -1.0),
            Coord::new(2.0, 1.0)
        ));
        assert!(!segments_intersect(
            A,
            B,
            Coord::new(2.0, 0.5),
            Coord::new(2.0, 1.0)
        ));
    }

    #[test]
    fn endpoint_touching_counts() {
        assert!(segments_intersect(A, B, B, Coord::new(5.0, 3.0)));
        assert!(segments_intersect(
            A,
            B,
            Coord::new(2.0, 0.0),
            Coord::new(2.0, 5.0)
        ));
    }

    #[test]
    fn collinear_overlap_counts() {
        assert!(segments_intersect(
            A,
            B,
            Coord::new(3.0, 0.0),
            Coord::new(6.0, 0.0)
        ));
        assert!(!segments_intersect(
            A,
            B,
            Coord::new(5.0, 0.0),
            Coord::new(6.0, 0.0)
        ));
    }

    #[test]
    fn parallel_disjoint() {
        assert!(!segments_intersect(
            A,
            B,
            Coord::new(0.0, 1.0),
            Coord::new(4.0, 1.0)
        ));
    }

    #[test]
    fn shared_endpoint_degenerate() {
        // Zero-length segment on the other segment.
        assert!(segments_intersect(
            A,
            B,
            Coord::new(1.0, 0.0),
            Coord::new(1.0, 0.0)
        ));
        assert!(!segments_intersect(
            A,
            B,
            Coord::new(1.0, 1.0),
            Coord::new(1.0, 1.0)
        ));
    }

    #[test]
    fn point_segment_distance() {
        // At the equator (kx ≈ 1) the math reduces to planar geometry.
        let p = Coord::new(2.0, 3.0);
        let d = point_segment_distance_meters(p, A, B);
        let expected = 3.0 * crate::coord::METERS_PER_DEG_LAT;
        assert!((d - expected).abs() / expected < 2e-3, "got {d}");
        // Beyond an endpoint, distance is to the endpoint.
        let q = Coord::new(7.0, 0.0);
        let d = point_segment_distance_meters(q, A, B);
        let expected = 3.0 * crate::coord::METERS_PER_DEG_LAT;
        assert!((d - expected).abs() / expected < 2e-2, "got {d}");
        // On the segment: zero.
        assert_eq!(
            point_segment_distance_meters(Coord::new(1.0, 0.0), A, B),
            0.0
        );
    }
}
