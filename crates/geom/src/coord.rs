//! 2D coordinates in degree space (x = longitude, y = latitude).

use std::fmt;

/// Meters per degree of latitude on a mean-radius Earth (`π·R/180`).
pub const METERS_PER_DEG_LAT: f64 = std::f64::consts::PI * 6_371_008.8 / 180.0;

/// A 2D coordinate: `x` = longitude in degrees, `y` = latitude in degrees.
///
/// Also used as a plain 2D vector for planar predicates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Coord {
    /// Longitude in degrees.
    pub x: f64,
    /// Latitude in degrees.
    pub y: f64,
}

impl Coord {
    /// Creates a coordinate from (longitude, latitude) in degrees.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Coord { x, y }
    }

    /// Creates a coordinate from (latitude, longitude) in degrees —
    /// the argument order used by most mapping UIs.
    #[inline]
    pub const fn from_lat_lng(lat: f64, lng: f64) -> Self {
        Coord { x: lng, y: lat }
    }

    /// Latitude in degrees.
    #[inline]
    pub fn lat(&self) -> f64 {
        self.y
    }

    /// Longitude in degrees.
    #[inline]
    pub fn lng(&self) -> f64 {
        self.x
    }

    /// Component-wise subtraction (vector from `o` to `self`).
    #[inline]
    pub fn sub(&self, o: Coord) -> Coord {
        Coord::new(self.x - o.x, self.y - o.y)
    }

    /// 2D cross product (z-component of the 3D cross product).
    #[inline]
    pub fn cross(&self, o: Coord) -> f64 {
        self.x * o.y - self.y * o.x
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, o: Coord) -> f64 {
        self.x * o.x + self.y * o.y
    }

    /// Euclidean distance in *degree* units (only meaningful for
    /// topological tolerance checks, not for metric distances).
    #[inline]
    pub fn distance_deg(&self, o: Coord) -> f64 {
        ((self.x - o.x).powi(2) + (self.y - o.y).powi(2)).sqrt()
    }

    /// Approximate ground distance in meters using the local equirectangular
    /// scale at the mean latitude. Accurate to well under 0.1% at city scale,
    /// which is all the precision-guarantee validation needs.
    pub fn distance_meters(&self, o: Coord) -> f64 {
        let mean_lat = 0.5 * (self.y + o.y);
        let kx = METERS_PER_DEG_LAT * mean_lat.to_radians().cos();
        let dx = (self.x - o.x) * kx;
        let dy = (self.y - o.y) * METERS_PER_DEG_LAT;
        (dx * dx + dy * dy).sqrt()
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.7}, {:.7})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        let a = Coord::new(-74.0, 40.7);
        let b = Coord::from_lat_lng(40.7, -74.0);
        assert_eq!(a, b);
        assert_eq!(a.lat(), 40.7);
        assert_eq!(a.lng(), -74.0);
    }

    #[test]
    fn cross_sign_orientation() {
        let a = Coord::new(1.0, 0.0);
        let b = Coord::new(0.0, 1.0);
        assert!(a.cross(b) > 0.0); // CCW
        assert!(b.cross(a) < 0.0); // CW
        assert_eq!(a.cross(a), 0.0);
    }

    #[test]
    fn meter_distance_latitude_degree() {
        // 1° of latitude ≈ 111.2 km, independent of longitude.
        let a = Coord::new(-74.0, 40.0);
        let b = Coord::new(-74.0, 41.0);
        let d = a.distance_meters(b);
        assert!((d - 111_195.0).abs() < 100.0, "got {d}");
    }

    #[test]
    fn meter_distance_longitude_shrinks_with_latitude() {
        // 1° of longitude at 40.7°N ≈ cos(40.7°)·111.2 km ≈ 84.3 km.
        let a = Coord::new(-74.0, 40.7);
        let b = Coord::new(-73.0, 40.7);
        let d = a.distance_meters(b);
        let expected = METERS_PER_DEG_LAT * (40.7f64).to_radians().cos();
        assert!((d - expected).abs() < 1.0, "got {d} expected {expected}");
    }

    #[test]
    fn meter_distance_agrees_with_haversine_at_city_scale() {
        // Compare against the s2cell haversine for a ~5 km Manhattan span.
        let a = Coord::new(-73.9855, 40.7580);
        let b = Coord::new(-74.0445, 40.6892); // Statue of Liberty
        let planar = a.distance_meters(b);
        // Haversine on the same mean-radius sphere gives 9123.9 m.
        let haversine = {
            let (lat1, lat2) = (a.y.to_radians(), b.y.to_radians());
            let dlat = lat2 - lat1;
            let dlng = (b.x - a.x).to_radians();
            let h =
                (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlng / 2.0).sin().powi(2);
            2.0 * h.sqrt().asin() * 6_371_008.8
        };
        assert!(
            (planar - haversine).abs() < 1.0,
            "planar {planar} vs haversine {haversine}"
        );
    }
}
